//! Test configuration and the deterministic case RNG.

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic generator seeding from the test name (SplitMix64 over an
/// FNV-1a hash), so every run of a given test sees the same case stream
/// and failures reproduce without recorded seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
