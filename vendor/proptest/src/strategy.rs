//! Value-generation strategies: the shim's core trait and combinators.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: `generate`
/// produces a finished value directly.
pub trait Strategy {
    /// The generated type (printable so failing cases can be reported).
    type Value: Debug;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
        }
    }
}

/// A type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.inner)(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among same-typed strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.arms.len() as u64) as usize;
        self.arms[arm].generate(rng)
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

// ---------------------------------------------------------------------
// Primitive strategies: integer ranges and `any::<T>()`
// ---------------------------------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128 + 1) as u64;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy over a type's whole domain (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Result of [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident/$idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A / 0);
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);

// ---------------------------------------------------------------------
// Collections and Option
// ---------------------------------------------------------------------

/// A length/size domain for collection strategies.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi_exclusive - self.lo) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// Result of [`crate::collection::vec`].
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Result of [`crate::collection::btree_set`].
pub struct BTreeSetStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for BTreeSetStrategy<S>
where
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        // Bounded attempts: a small element domain may not hold `target`
        // distinct values.
        for _ in 0..target.saturating_mul(16).max(16) {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

/// Result of [`crate::option::of`].
pub struct OptionStrategy<S> {
    pub(crate) inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
