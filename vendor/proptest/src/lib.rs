//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! reimplements the subset of the proptest 1.x API that the workspace's
//! property tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, integer-range and tuple strategies, [`prop_oneof!`],
//! `collection::{vec, btree_set}`, `option::of`, `any::<T>()`, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case prints its generated input and the test
//!   panics; the RNG is seeded from the test name, so failures reproduce
//!   exactly on re-run;
//! * value streams differ from upstream proptest's.

pub mod strategy;
pub mod test_runner;

/// Strategies for `Option<T>` (`proptest::option::of`).
pub mod option {
    use crate::strategy::{OptionStrategy, Strategy};

    /// Generates `None` roughly a quarter of the time, otherwise `Some` of
    /// the inner strategy's value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

/// Collection strategies (`proptest::collection::{vec, btree_set}`).
pub mod collection {
    use crate::strategy::{BTreeSetStrategy, SizeRange, Strategy, VecStrategy};

    /// A `Vec` whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// A `BTreeSet` with approximately `size` distinct elements (fewer if
    /// the element domain is too small to supply them).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// item becomes a `#[test]` that runs `body` for `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for case in 0..cfg.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);
                )+
                let debugged = format!("{:?}", ($(&$arg,)+));
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || $body
                ));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest '{}': case {}/{} failed with input {}",
                        stringify!($name), case + 1, cfg.cases, debugged,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Picks uniformly among the listed strategies (all must produce the same
/// value type). Upstream's per-arm weights are not supported.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn vec_sizes_respected(v in crate::collection::vec(0u8..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_map(step in prop_oneof![
            (1u8..5).prop_map(|n| (0u8, n)),
            (10u8..12).prop_map(|n| (1u8, n)),
        ]) {
            match step {
                (0, n) => prop_assert!((1..5).contains(&n)),
                (1, n) => prop_assert!((10..12).contains(&n)),
                other => panic!("impossible arm {other:?}"),
            }
        }

        #[test]
        fn sets_are_distinct(s in crate::collection::btree_set(1u64..60, 1..25)) {
            prop_assert!(!s.is_empty() && s.len() < 25);
        }

        #[test]
        fn option_of_mixes(o in crate::option::of(1u32..4)) {
            if let Some(v) = o {
                prop_assert!((1..4).contains(&v));
            }
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::for_test("alpha");
        let mut b = crate::test_runner::TestRng::for_test("alpha");
        let mut c = crate::test_runner::TestRng::for_test("beta");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }
}
