//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! implements the small API subset the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`] /
//! `bench_function` / `bench_with_input` / `finish`, [`Bencher::iter`] / `iter_with_setup`,
//! [`BenchmarkId::new`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Each benchmark runs `sample_size` timed samples and prints
//! min/median/max wall time — enough to compare runs by hand; there is no
//! statistical analysis, plotting, or baseline persistence.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Top-level harness handle passed to each `criterion_group!` target.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("\nbench group: {name}");
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            sample_size,
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed);
        }
        samples.sort();
        let (min, med, max) = (
            samples[0],
            samples[samples.len() / 2],
            samples[samples.len() - 1],
        );
        println!(
            "  {label}: min {min:?}  median {med:?}  max {max:?}  ({} samples)",
            samples.len()
        );
    }
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        std::hint::black_box(routine());
        self.elapsed = start.elapsed();
    }

    /// Runs `setup` untimed, then times `routine` on its output.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        self.elapsed = start.elapsed();
    }
}

/// A `function_name/parameter` benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// Collects benchmark functions into a runner the shim can invoke.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point: runs every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert_eq!(runs, 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
