//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the subset of the `parking_lot` API that the workspace actually
//! uses (`Mutex`, `RwLock`, `Condvar` with the guard-by-reference calling
//! convention and no lock poisoning), implemented on top of `std::sync`.
//! Poisoned locks are transparently recovered, matching `parking_lot`'s
//! "no poisoning" semantics.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Instant;

/// A mutual-exclusion lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                guard: Some(e.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard returned by [`Mutex::lock`].
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily take the
/// std guard out (std's condvar consumes and returns guards by value while
/// `parking_lot`'s operates on `&mut` guards).
pub struct MutexGuard<'a, T: ?Sized> {
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present")
    }
}

/// A reader-writer lock with `parking_lot`'s non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            guard: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { guard: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockReadGuard {
                guard: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            guard: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { guard: g }),
            Err(sync::TryLockError::Poisoned(e)) => Some(RwLockWriteGuard {
                guard: e.into_inner(),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    guard: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    guard: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Result of [`Condvar::wait_until`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable operating on `&mut MutexGuard`, like `parking_lot`'s.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub fn new() -> Self {
        Condvar::default()
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard present");
        guard.guard = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Waits until notified or `deadline` passes; reports which happened.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard present");
        let timeout = deadline.saturating_duration_since(Instant::now());
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
        assert!(*ready);
        t.join().unwrap();
    }

    #[test]
    fn wait_until_times_out() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() + Duration::from_millis(10));
        assert!(res.timed_out());
        assert_eq!(*g, 0);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5u32);
        assert_eq!(*l.read(), 5);
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn rwlock_try_variants() {
        let l = RwLock::new(1u32);
        {
            let r = l.try_read().expect("uncontended try_read");
            assert_eq!(*r, 1);
            // A reader blocks writers but not other readers.
            assert!(l.try_write().is_none());
            assert!(l.try_read().is_some());
        }
        {
            let mut w = l.try_write().expect("uncontended try_write");
            *w = 2;
            assert!(l.try_read().is_none());
        }
        assert_eq!(*l.read(), 2);
    }
}
