//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the subset of the `rand` 0.8 API the workspace uses:
//! [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and
//! [`Rng::gen_range`] / [`Rng::gen_bool`] over integer ranges. The
//! generator is SplitMix64 — deterministic, fast, and statistically fine
//! for workload generation (the only use in this repo); it makes no
//! attempt to be reproducible against upstream `rand`'s value streams.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: everything reduces to `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (the `seed_from_u64` subset).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128) - (self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// User-facing convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 random mantissa bits, same construction as rand's open01.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen_range(0u32..1000), b.gen_range(0u32..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for i in 0usize..200 {
            let x = rng.gen_range(0..=i);
            assert!(x <= i);
            let y = rng.gen_range(5u32..17);
            assert!((5..17).contains(&y));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..2000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((700..1300).contains(&heads), "suspicious bias: {heads}");
    }
}
