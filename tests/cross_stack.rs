//! Cross-crate integration tests: the software library, the simulated
//! microarchitecture and the workload layer must agree with each other and
//! with sequential reference semantics.

use ostructs::core::OCell;
use ostructs::cpu::{task, Machine, MachineCfg, SimError};
use ostructs::mem::{Fault, HierarchyCfg, MemSys, PageFlags};
use ostructs::uarch::{OManager, OManagerCfg, OpOutcome};
use ostructs::workloads::harness::DsCfg;
use ostructs::workloads::{btree, hashtable, linked_list, rbtree};

/// The software cell and the hardware manager execute the same operation
/// script and end with identical version structure and values.
#[test]
fn software_and_hardware_semantics_agree() {
    // Script: (op, version, value) over one location.
    #[derive(Clone, Copy)]
    enum S {
        Store(u32, u32),
        Lock(u32, u32),           // version, tid
        Unlock(u32, Option<u32>), // tid, create
    }
    let script = [
        S::Store(2, 20),
        S::Store(1, 10),
        S::Lock(2, 5),
        S::Unlock(5, Some(3)),
        S::Store(7, 70),
        S::Lock(7, 6),
        S::Unlock(6, None),
    ];

    // Software.
    let cell: OCell<u32> = OCell::new();
    for s in script {
        match s {
            S::Store(v, val) => cell.store_version(v as u64, val).unwrap(),
            S::Lock(v, tid) => {
                cell.lock_load_version(v as u64, tid as u64).unwrap();
            }
            S::Unlock(tid, create) => cell
                .unlock_version(tid as u64, create.map(|c| c as u64))
                .unwrap(),
        }
    }

    // Hardware.
    let mut ms = MemSys::new(HierarchyCfg::paper(1), 64 << 20);
    let va = ms.map_zeroed(1, PageFlags::VersionedRoot).unwrap();
    let mut mgr = OManager::new(OManagerCfg::default(), &mut ms).unwrap();
    for s in script {
        match s {
            S::Store(v, val) => {
                mgr.store_version(&mut ms, 0, va, v, val).unwrap();
            }
            S::Lock(v, tid) => {
                let out = mgr.lock_load_version(&mut ms, 0, va, v, tid).unwrap();
                assert!(matches!(out, OpOutcome::Done { .. }));
            }
            S::Unlock(tid, create) => {
                // The hardware unlock names the locked version explicitly;
                // recover it from the software cell's convention (tid 5
                // locked version 2, tid 6 locked version 7).
                let vl = if tid == 5 { 2 } else { 7 };
                mgr.unlock_version(&mut ms, 0, va, vl, tid, create).unwrap();
            }
        }
    }

    // Same versions, same values, everything unlocked.
    let hw: Vec<(u32, u32, u32)> = mgr.peek_versions(&ms, va).unwrap();
    let sw: Vec<u64> = cell.versions();
    assert_eq!(
        hw.iter()
            .rev()
            .map(|&(v, _, _)| v as u64)
            .collect::<Vec<_>>(),
        sw
    );
    for &(v, val, locked) in &hw {
        assert_eq!(locked, 0);
        assert_eq!(cell.load_version(v as u64), val);
    }
}

/// All four irregular workloads validate end-to-end on a 4-core machine.
#[test]
fn irregular_workloads_validate_end_to_end() {
    let cfg = DsCfg {
        initial: 64,
        ops: 48,
        reads_per_write: 2,
        scan_range: 0,
        key_space: 256,
        seed: 99,
        insert_only: false,
    };
    linked_list::run_versioned(MachineCfg::paper(4), &cfg).assert_ok();
    btree::run_versioned(MachineCfg::paper(4), &cfg).assert_ok();
    hashtable::run_versioned(MachineCfg::paper(4), &cfg).assert_ok();
    rbtree::run_versioned(MachineCfg::paper(4), &cfg).assert_ok();
}

/// The determinism pillar: the same program on the same machine produces
/// bit-identical cycle counts, twice, across the whole stack.
#[test]
fn whole_stack_determinism() {
    let run = || {
        let cfg = DsCfg {
            initial: 50,
            ops: 40,
            reads_per_write: 4,
            scan_range: 4,
            key_space: 200,
            seed: 5,
            insert_only: true,
        };
        let a = btree::run_versioned(MachineCfg::paper(8), &cfg);
        a.assert_ok();
        (a.cycles, a.cpu.versioned_ops, a.mem.l1_accesses())
    };
    assert_eq!(run(), run());
}

/// Protection model end-to-end: conventional access to a versioned page
/// surfaces as a typed [`SimError::Fault`] naming the task, core, address
/// and cycle; versioned access to a conventional page likewise.
#[test]
fn protection_faults_surface() {
    let mut m = Machine::new(MachineCfg::paper(1));
    let root = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_root(&mut s.ms).unwrap()
    };
    let err = m
        .run_tasks(vec![task(move |ctx| async move {
            ctx.load_u32(root).await; // conventional load of a versioned page
        })])
        .expect_err("conventional access to versioned page must fault");
    match err {
        SimError::Fault(f) => {
            assert_eq!(
                f.fault,
                Fault::ConventionalAccessToVersionedPage { va: root }
            );
            assert_eq!(f.va, root);
            assert_eq!(f.tid, 1);
        }
        other => panic!("expected architectural fault, got: {other}"),
    }

    let mut m2 = Machine::new(MachineCfg::paper(1));
    let data = {
        let st = m2.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_data(&mut s.ms, 4).unwrap()
    };
    let err = m2
        .run_tasks(vec![task(move |ctx| async move {
            ctx.store_version(data, 1, 0).await; // versioned store to data page
        })])
        .expect_err("versioned access to conventional page must fault");
    match err {
        SimError::Fault(f) => {
            assert_eq!(
                f.fault,
                Fault::VersionedAccessToConventionalPage { va: data }
            );
            assert_eq!(f.va, data);
        }
        other => panic!("expected architectural fault, got: {other}"),
    }
}

/// The Fig. 10 latency knob monotonically slows versioned runs but leaves
/// the unversioned baseline untouched.
#[test]
fn latency_knob_is_versioned_only() {
    let cfg = DsCfg {
        initial: 60,
        ops: 32,
        reads_per_write: 4,
        scan_range: 0,
        key_space: 240,
        seed: 8,
        insert_only: false,
    };
    let base_v = linked_list::run_versioned(MachineCfg::paper(2), &cfg);
    let base_u = linked_list::run_unversioned(MachineCfg::paper(1), &cfg);
    let mut slow = MachineCfg::paper(2);
    slow.omgr.versioned_extra_latency = 10;
    let slow_v = linked_list::run_versioned(slow, &cfg);
    let mut slow_u_cfg = MachineCfg::paper(1);
    slow_u_cfg.omgr.versioned_extra_latency = 10;
    let slow_u = linked_list::run_unversioned(slow_u_cfg, &cfg);
    base_v.assert_ok();
    slow_v.assert_ok();
    assert!(slow_v.cycles > base_v.cycles);
    assert_eq!(slow_u.cycles, base_u.cycles, "no versioned ops, no effect");
}
