//! The live scrape endpoint for long-running invocations.
//!
//! ROADMAP item 2 reserves `osim-serve` for the sweep service front end;
//! this is its first concrete slice: a std-only (no dependencies beyond
//! `osim-metrics`) HTTP/1.1 server over [`std::net::TcpListener`] that
//! renders the shared metric sources on demand. Three routes:
//!
//! * `GET /metrics` — Prometheus text exposition via
//!   [`osim_metrics::Registry::to_prometheus`];
//! * `GET /metrics.json` — the registry's JSON conventions
//!   (`{"counters": .., "gauges": .., "hists": ..}`);
//! * `GET /window` — recent flight-recorder windows (per-window deltas).
//!
//! The server never touches stdout (byte-compared output stays clean);
//! the bound address is announced on stderr so `--metrics-addr
//! 127.0.0.1:0` with an ephemeral port is scriptable. Requests are served
//! serially on one accept thread — a scrape every few seconds from one
//! Prometheus instance is the design load, not a public web server.

use osim_metrics::flight::Collector;
use osim_metrics::json::Json;
use osim_metrics::Registry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{Builder, JoinHandle};
use std::time::Duration;

/// Produces the `/window` JSON body (usually
/// `FlightRecorder::window_json`).
pub type WindowSource = Arc<dyn Fn() -> Json + Send + Sync>;

/// A running metrics endpoint. Dropping it stops the accept thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `spec` (a `host:port` string; port 0 picks an ephemeral
    /// port) and starts serving. `collect` builds the point-in-time
    /// registry for `/metrics` and `/metrics.json`; `window` renders
    /// `/window`.
    pub fn start(
        spec: &str,
        collect: Collector,
        window: WindowSource,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(spec)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_worker = Arc::clone(&stop);
        let thread = Builder::new()
            .name("osim-serve".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_worker.load(Ordering::Acquire) {
                        break;
                    }
                    if let Ok(stream) = stream {
                        // A misbehaving client must not wedge the
                        // endpoint; errors just drop the connection.
                        let _ = serve_one(stream, &collect, &window);
                    }
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread. Idempotent.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_one(mut stream: TcpStream, collect: &Collector, window: &WindowSource) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    let path = match read_request_path(&mut stream)? {
        Some(p) => p,
        None => return Ok(()),
    };
    let (status, content_type, body) = match path.as_str() {
        "/metrics" => {
            let mut reg = Registry::new();
            collect(&mut reg);
            (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                reg.to_prometheus(),
            )
        }
        "/metrics.json" => {
            let mut reg = Registry::new();
            collect(&mut reg);
            (
                "200 OK",
                "application/json",
                format!("{}\n", reg.to_json().to_pretty()),
            )
        }
        "/window" => (
            "200 OK",
            "application/json",
            format!("{}\n", window().to_pretty()),
        ),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "routes: /metrics /metrics.json /window\n".to_string(),
        ),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Reads the request head and returns the path of a `GET` request
/// (query strings stripped), or `None` for anything unparseable.
fn read_request_path(stream: &mut TcpStream) -> io::Result<Option<String>> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) => return Err(e),
        };
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    let request_line = match head.lines().next() {
        Some(l) => l,
        None => return Ok(None),
    };
    let mut parts = request_line.split_whitespace();
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(target)) => {
            let path = target.split('?').next().unwrap_or(target);
            Ok(Some(path.to_string()))
        }
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osim_metrics::json::obj;
    use std::sync::atomic::AtomicU64;

    fn test_server() -> (MetricsServer, Arc<AtomicU64>) {
        let hits = Arc::new(AtomicU64::new(0));
        let hits_src = Arc::clone(&hits);
        let collect: Collector = Arc::new(move |reg: &mut Registry| {
            reg.counter_add(
                "osim_test_scrapes_total",
                &[],
                hits_src.fetch_add(1, Ordering::Relaxed) + 1,
            );
            reg.gauge_set("osim_test_depth", &[], 3.0);
            reg.hist_record("osim_test_lat_us", &[("fig", "f\"1\"")], 17);
        });
        let window: WindowSource =
            Arc::new(|| obj(vec![("schema", Json::Str("osim-flight-v1".into()))]));
        let server =
            MetricsServer::start("127.0.0.1:0", collect, window).expect("bind ephemeral port");
        (server, hits)
    }

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").expect("write");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let (head, body) = response.split_once("\r\n\r\n").expect("header split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn metrics_route_serves_prometheus_text() {
        let (server, _) = test_server();
        let (head, body) = http_get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(body.contains("# TYPE osim_test_scrapes_total counter"));
        assert!(body.contains("osim_test_depth 3"));
        // Label escaping survives the wire.
        assert!(body.contains("fig=\"f\\\"1\\\"\""));
    }

    #[test]
    fn scrapes_observe_fresh_collector_state() {
        let (server, _) = test_server();
        let (_, first) = http_get(server.addr(), "/metrics");
        let (_, second) = http_get(server.addr(), "/metrics");
        let value = |body: &str| -> u64 {
            body.lines()
                .find(|l| l.starts_with("osim_test_scrapes_total "))
                .and_then(|l| l.rsplit(' ').next())
                .and_then(|v| v.parse().ok())
                .expect("counter sample")
        };
        assert!(value(&second) > value(&first));
    }

    #[test]
    fn json_routes_parse() {
        let (server, _) = test_server();
        let (head, body) = http_get(server.addr(), "/metrics.json");
        assert!(head.contains("application/json"));
        let doc = osim_metrics::json::parse(&body).expect("valid json");
        assert!(doc.get("counters").is_some());
        let (_, wbody) = http_get(server.addr(), "/window");
        let wdoc = osim_metrics::json::parse(&wbody).expect("valid window json");
        assert_eq!(
            wdoc.get("schema").and_then(|s| s.as_str()),
            Some("osim-flight-v1")
        );
    }

    #[test]
    fn unknown_route_is_404_and_server_survives() {
        let (server, _) = test_server();
        let (head, _) = http_get(server.addr(), "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));
        let (head, _) = http_get(server.addr(), "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"));
    }

    #[test]
    fn stop_is_idempotent() {
        let (mut server, _) = test_server();
        server.stop();
        server.stop();
    }
}
