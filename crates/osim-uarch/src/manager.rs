//! The O-structure manager: versioned operations, free list, and the
//! Memory Version Manager's garbage collector (§III of the paper).

use osim_mem::{FxHashMap, FxHashSet};
use osim_metrics::Histogram;
use std::collections::{BTreeSet, HashSet};

use osim_mem::{
    line_of, AccessKind, EventLog, Fault, FaultPlan, Injector, MemSys, PageFlags, PAGE_SIZE,
};

use crate::compressed::{CEntry, CompressedLine};
use crate::oracle::OracleReport;
use crate::vblock::{VBlock, VBLOCK_BYTES};
use crate::{TaskId, Version};

/// Garbage-collection configuration (§III-B).
#[derive(Debug, Clone, Copy)]
pub struct GcConfig {
    /// Start a collection phase when the free list drops below this many
    /// blocks. 0 disables the collector entirely (the §IV-F "plentiful"
    /// baseline).
    pub watermark: u32,
}

/// Configuration of the O-structure manager.
#[derive(Debug, Clone, Copy)]
pub struct OManagerCfg {
    /// Version blocks carved at boot.
    pub initial_free_blocks: u32,
    /// Version blocks the OS trap adds when the free list empties.
    pub refill_blocks: u32,
    /// Cost of the OS free-list refill trap, in cycles.
    pub trap_latency: u64,
    /// Fixed extra latency injected into *every* versioned operation — the
    /// knob behind Figure 10 (0 in the baseline; the paper sweeps 2–10).
    pub versioned_extra_latency: u64,
    /// Keep version-block lists sorted (newest first). Disabling this is the
    /// §IV-F "no version sorting" ablation: stores always prepend and
    /// lookups must scan the whole list.
    pub sorted_insertion: bool,
    /// Garbage collector settings.
    pub gc: GcConfig,
    /// Deterministic fault-injection plan (None = inject nothing).
    pub fault_plan: Option<FaultPlan>,
    /// Refill-trap attempts (beyond the first) before an empty free list
    /// surfaces as [`Fault::OutOfVersionBlocks`]. Each retry doubles the
    /// modeled trap cost (bounded exponential backoff) and forces a
    /// garbage-collection attempt first.
    pub refill_retry_limit: u32,
    /// Arm the runtime invariant oracles (lock exclusion, version
    /// monotonicity, GC liveness); violations accumulate in the
    /// [`crate::OracleReport`] returned by [`OManager::oracle_report`].
    /// Off by default — the stress harness turns it on.
    pub oracles: bool,
}

impl Default for OManagerCfg {
    fn default() -> Self {
        OManagerCfg {
            initial_free_blocks: 1 << 16,
            refill_blocks: 1 << 12,
            trap_latency: 500,
            versioned_extra_latency: 0,
            sorted_insertion: true,
            gc: GcConfig { watermark: 1 << 10 },
            fault_plan: None,
            refill_retry_limit: 3,
            oracles: false,
        }
    }
}

/// Counters kept by the manager.
#[derive(Debug, Clone, Default)]
pub struct OStats {
    /// Versioned loads (plain and locking) answered by a compressed line.
    pub direct_hits: u64,
    /// Versioned operations that walked the version-block list.
    pub full_lookups: u64,
    /// Version blocks read during walks (unique lines charged).
    pub walk_reads: u64,
    /// `STORE-VERSION` operations completed (including unlock-created).
    pub stores: u64,
    /// Version blocks allocated from the free list.
    pub allocated_blocks: u64,
    /// Version blocks reclaimed by the collector.
    pub reclaimed_blocks: u64,
    /// Garbage-collection phases completed.
    pub gc_phases: u64,
    /// OS traps taken to refill the free list.
    pub refill_traps: u64,
    /// Refill-trap *retries*: extra attempts after a first refill failed.
    pub refill_retries: u64,
    /// Allocations that succeeded only after at least one failed refill or
    /// a forced reclamation (graceful-degradation recoveries).
    pub recovered_allocations: u64,
    /// Carve attempts failed by the fault injector.
    pub injected_carve_failures: u64,
    /// Per-operation latency cycles added by injected jitter.
    pub injected_jitter_cycles: u64,
    /// Stall cycles added by injected coherence-invalidation delay.
    pub injected_coherence_delay_cycles: u64,
    /// Garbage-collection attempts forced by allocation pressure (ignoring
    /// the watermark) before giving up on an allocation.
    pub forced_gc_attempts: u64,
    /// Mid-run pool shrinks applied by the fault injector.
    pub pool_shrink_events: u64,
}

impl OStats {
    /// Resets all counters.
    pub fn reset(&mut self) {
        *self = OStats::default();
    }
}

/// Latency distributions recorded by the manager alongside [`OStats`].
/// Values are simulated cycles, so the contents are deterministic and
/// scheduler-invariant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MvmHists {
    /// Cycles charged per version-list walk (the `ReadNoAlloc` pointer
    /// chase of a full lookup; 0 for single-node lists already local).
    pub version_walk: Histogram,
    /// Cycles an allocation was paused by the refill-trap/forced-GC path
    /// — the graceful-degradation pauses of an empty free list.
    pub gc_pause: Histogram,
}

impl MvmHists {
    /// Clears both histograms.
    pub fn reset(&mut self) {
        self.version_walk.reset();
        self.gc_pause.reset();
    }
}

/// One observable Memory Version Manager event. Timestamps come from the
/// hierarchy clock ([`osim_mem::Hierarchy::set_clock`]), which issuing
/// cores keep current.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MvmEvent {
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// What happened.
    pub kind: MvmEventKind,
}

/// Kinds of Memory Version Manager events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MvmEventKind {
    /// The free list dropped below the GC watermark.
    WatermarkCrossed {
        /// Blocks left on the free list.
        free: u32,
    },
    /// A collection phase started.
    GcStart {
        /// Task-id boundary recorded at phase start (§III-B).
        boundary: TaskId,
        /// Shadowed blocks moved to the pending list.
        pending: u32,
    },
    /// A collection phase finalized.
    GcEnd {
        /// Blocks returned to the free list.
        reclaimed: u32,
    },
    /// The OS carved fresh version blocks onto the free list.
    FreeListCarve {
        /// Blocks added.
        blocks: u32,
    },
    /// A version block was popped off the free list.
    FreeListAlloc {
        /// Physical address of the block.
        pa: u32,
        /// Blocks left after the pop.
        free: u32,
    },
    /// An OS trap refilled the empty free list.
    RefillTrap,
    /// The fault injector shrank the free list mid-run.
    PoolShrink {
        /// Blocks dropped from the free list.
        dropped: u32,
    },
    /// A refill carve failed (injected or genuine physical exhaustion).
    CarveFailed {
        /// Zero-based retry attempt this failure belongs to.
        attempt: u32,
    },
    /// A compressed version-block line was installed/updated; samples the
    /// line's per-line occupancy (live entries out of 8).
    CompressedOccupancy {
        /// Core whose L1 holds the compressed line.
        core: u32,
        /// Physical address of the O-structure root word (the line's tag).
        root_pa: u32,
        /// Live entries in the line after the update.
        entries: u32,
    },
}

impl MvmEvent {
    /// Short stable name for exporters.
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            MvmEventKind::WatermarkCrossed { .. } => "watermark_crossed",
            MvmEventKind::GcStart { .. } => "gc_start",
            MvmEventKind::GcEnd { .. } => "gc_end",
            MvmEventKind::FreeListCarve { .. } => "freelist_carve",
            MvmEventKind::FreeListAlloc { .. } => "freelist_alloc",
            MvmEventKind::RefillTrap => "refill_trap",
            MvmEventKind::PoolShrink { .. } => "pool_shrink",
            MvmEventKind::CarveFailed { .. } => "carve_failed",
            MvmEventKind::CompressedOccupancy { .. } => "compressed_occupancy",
        }
    }
}

/// Why a versioned operation could not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// The requested version (or any version ≤ the cap) does not exist yet.
    VersionAbsent,
    /// The target version exists but is locked.
    VersionLocked,
}

/// Result of one versioned operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpOutcome {
    /// The operation completed.
    Done {
        /// Loaded/stored datum.
        value: u32,
        /// The version actually accessed (relevant for `LOAD-LATEST`).
        version: Version,
        /// Cycles charged.
        latency: u64,
    },
    /// The operation must stall; the issuing core should retry once the
    /// O-structure changes. The cycles spent discovering this are charged.
    Blocked {
        reason: BlockReason,
        latency: u64,
        /// Task holding the contended version (0 = none/unknown); feeds
        /// deadlock blame reports.
        holder: TaskId,
    },
}

impl OpOutcome {
    /// Latency charged by this attempt.
    pub fn latency(&self) -> u64 {
        match *self {
            OpOutcome::Done { latency, .. } | OpOutcome::Blocked { latency, .. } => latency,
        }
    }
}

/// State of an in-flight collection phase.
struct GcPhase {
    /// "Youngest active task recorded" at phase start (§III-B), widened to
    /// the highest task id ever begun so that out-of-order spawning
    /// cannot create a reader for a pending block after the phase started.
    boundary: TaskId,
    /// `(root_pa, block_pa)` pairs moved from the shadowed list.
    pending: Vec<(u32, u32)>,
}

/// The O-structure manager: per-core compressed-line payloads plus the
/// shared free list and garbage collector.
pub struct OManager {
    cfg: OManagerCfg,
    /// Physical address of the first free version block (0 = empty).
    free_head: u32,
    free_count: u32,
    /// Compressed-line payloads, one map per core keyed by `root_pa`. The
    /// matching L1 slot is tracked by the hierarchy; both are kept in sync.
    /// Splitting per core keeps the hot-path key a bare `u32` and each
    /// map small (bounded by that core's L1 compressed slots).
    compressed: Vec<FxHashMap<u32, CompressedLine>>,
    /// Shadowed version blocks: `(root_pa, block_pa)`.
    shadowed: Vec<(u32, u32)>,
    /// With `sorted_insertion` off, roots whose list order has actually
    /// been violated by an out-of-order store. Lists not in this set are
    /// still descending (in-order creation, "the common case in real
    /// programs"), so lookups may keep their early exits.
    unsorted_roots: FxHashSet<u32>,
    gc_phase: Option<GcPhase>,
    /// Currently active task ids.
    active: BTreeSet<TaskId>,
    /// Highest task id ever begun.
    max_id_seen: u32,
    /// `(core, root_pa)` pairs whose compressed line was discarded by
    /// another core's mutation since the core last asked. Feeds the cpu
    /// layer's stall-cause attribution (coherence vs. version state).
    coherence_lost: FxHashSet<(usize, u32)>,
    /// Host-side mirror of every version-block list, in exact list order:
    /// `(version, block_pa)` per node. The simulated list in [`PhysMem`]
    /// stays authoritative — walks still charge the modeled accesses — but
    /// the *search* (version comparisons, match resolution) runs on this
    /// mirror so the hot path never decodes simulated memory per node.
    /// Debug builds cross-check the mirror against the physical list.
    lists: FxHashMap<u32, Vec<(Version, u32)>>,
    /// Exact-version index: `(root_pa, version)` → block pa, maintained on
    /// store/unlink/GC/release, so exact-version lookups resolve in O(1).
    index: FxHashMap<(u32, Version), u32>,
    /// Reusable unique-line scratch for walk charging (replaces a per-walk
    /// `HashSet` allocation; walks are short, so linear scan wins).
    walk_lines: Vec<u32>,
    /// OS refill-trap cycles charged since the last
    /// [`OManager::take_trap_cycles`] — the free-list/GC share of an
    /// operation's latency, kept separate so cores can attribute it.
    pending_trap_cycles: u64,
    /// Deterministic fault injector (present iff the config carries a plan).
    injector: Option<Injector>,
    /// Invariant-oracle accumulator (present iff `cfg.oracles`); boxed so
    /// the disarmed common case costs one pointer.
    oracle: Option<Box<OracleReport>>,
    /// Counters; reset between warm-up and measurement.
    pub stats: OStats,
    /// Latency distributions; reset alongside [`OManager::stats`].
    pub hists: MvmHists,
    /// Observable event stream (disabled by default; enable by replacing
    /// with [`EventLog::with_capacity`]).
    pub events: EventLog<MvmEvent>,
}

impl OManager {
    /// Creates a manager and carves its initial free list out of fresh
    /// version-block pool pages.
    pub fn new(cfg: OManagerCfg, ms: &mut MemSys) -> Result<Self, Fault> {
        // Every mirrored list node backs one version block, so the pool
        // size bounds both host-side maps: pre-sizing moves all their
        // rehashes out of the measured hot path.
        let blocks = cfg.initial_free_blocks as usize;
        let mut mgr = OManager {
            cfg,
            free_head: 0,
            free_count: 0,
            compressed: (0..ms.hier.cfg().cores)
                .map(|_| FxHashMap::default())
                .collect(),
            shadowed: Vec::new(),
            unsorted_roots: FxHashSet::default(),
            gc_phase: None,
            active: BTreeSet::new(),
            max_id_seen: 0,
            coherence_lost: FxHashSet::default(),
            lists: FxHashMap::with_capacity_and_hasher(blocks, Default::default()),
            index: FxHashMap::with_capacity_and_hasher(blocks, Default::default()),
            walk_lines: Vec::new(),
            pending_trap_cycles: 0,
            injector: cfg.fault_plan.map(Injector::new),
            oracle: cfg.oracles.then(Box::default),
            stats: OStats::default(),
            hists: MvmHists::default(),
            events: EventLog::disabled(),
        };
        mgr.carve(ms, cfg.initial_free_blocks)?;
        Ok(mgr)
    }

    /// The configuration in force.
    pub fn cfg(&self) -> &OManagerCfg {
        &self.cfg
    }

    /// Blocks currently on the free list.
    pub fn free_blocks(&self) -> u32 {
        self.free_count
    }

    /// Entries currently on the shadowed list (awaiting a GC phase).
    pub fn shadowed_len(&self) -> usize {
        self.shadowed.len()
    }

    /// True while a collection phase is pending finalization.
    pub fn gc_phase_active(&self) -> bool {
        self.gc_phase.is_some()
    }

    /// Whether the list rooted at `root_pa` is known to be in descending
    /// version order (always true with sorted insertion).
    fn list_sorted(&self, root_pa: u32) -> bool {
        self.cfg.sorted_insertion || !self.unsorted_roots.contains(&root_pa)
    }

    // ------------------------------------------------------------------
    // Invariant oracles (armed by `OManagerCfg::oracles`)
    // ------------------------------------------------------------------

    /// The invariant-oracle accumulator (None unless [`OManagerCfg::oracles`]
    /// was set). The report survives stat resets: oracle checks are about
    /// whole-run correctness, not the measurement window.
    pub fn oracle_report(&self) -> Option<&OracleReport> {
        self.oracle.as_deref()
    }

    /// Lock-exclusion oracle, acquire side: a lock grant must find the
    /// block unlocked.
    #[inline]
    fn oracle_lock_grant(
        &mut self,
        root_pa: u32,
        block_pa: u32,
        held_by: TaskId,
        grant_to: TaskId,
    ) {
        if let Some(o) = self.oracle.as_deref_mut() {
            o.lock_checks += 1;
            if held_by != 0 {
                o.violation(format!(
                    "lock-exclusion: root {root_pa:#010x} block {block_pa:#010x} \
                     granted to task {grant_to} while held by task {held_by}"
                ));
            }
        }
    }

    /// Lock-exclusion oracle, release side: the cleared lock must have been
    /// held by the releasing task.
    #[inline]
    fn oracle_lock_release(&mut self, root_pa: u32, block_pa: u32, held_by: TaskId, tid: TaskId) {
        if let Some(o) = self.oracle.as_deref_mut() {
            o.lock_checks += 1;
            if held_by != tid {
                o.violation(format!(
                    "lock-exclusion: root {root_pa:#010x} block {block_pa:#010x} \
                     unlocked by task {tid} but held by task {held_by}"
                ));
            }
        }
    }

    /// Version-monotonicity oracle: after inserting `v` at `pos`, a sorted
    /// list must still be strictly descending around the insertion point.
    fn oracle_order(&mut self, root_pa: u32, pos: usize, v: Version) {
        if self.oracle.is_none() || !self.list_sorted(root_pa) {
            return;
        }
        let (prev, next) = match self.lists.get(&root_pa) {
            Some(list) => (
                pos.checked_sub(1)
                    .and_then(|i| list.get(i))
                    .map(|&(p, _)| p),
                list.get(pos + 1).map(|&(n, _)| n),
            ),
            None => (None, None),
        };
        let Some(o) = self.oracle.as_deref_mut() else {
            return;
        };
        o.order_checks += 1;
        if prev.is_some_and(|p| p <= v) || next.is_some_and(|n| n >= v) {
            o.violation(format!(
                "version-monotonicity: root {root_pa:#010x} insert of version {v} \
                 at position {pos} between {prev:?} and {next:?} breaks descending order"
            ));
        }
    }

    /// GC-liveness oracle: a block the collector just reclaimed must have
    /// been shadowed, unlocked, off the list head, and superseded by a
    /// strictly newer version — i.e. unreachable by every present or
    /// future task (§III-B).
    fn oracle_gc_free(&mut self, ms: &MemSys, root_pa: u32, blk: &VBlock) {
        if self.oracle.is_none() {
            return;
        }
        let head = ms.phys.read_u32(root_pa);
        let newer = self
            .lists
            .get(&root_pa)
            .is_some_and(|l| l.iter().any(|&(ver, _)| ver > blk.version));
        let Some(o) = self.oracle.as_deref_mut() else {
            return;
        };
        o.gc_checks += 1;
        let mut bad: Vec<&str> = Vec::new();
        if !blk.shadowed {
            bad.push("not shadowed");
        }
        if !blk.unlocked() {
            bad.push("still locked");
        }
        if head == blk.pa {
            bad.push("is the list head");
        }
        if !newer {
            bad.push("no newer version remains");
        }
        if !bad.is_empty() {
            o.violation(format!(
                "gc-liveness: root {root_pa:#010x} freed version {} block {:#010x}: {}",
                blk.version,
                blk.pa,
                bad.join(", ")
            ));
        }
    }

    // ------------------------------------------------------------------
    // Host-side list mirror + exact-version index
    // ------------------------------------------------------------------

    /// Records a freshly linked block in the mirror and the index.
    fn mirror_insert(&mut self, root_pa: u32, pos: usize, v: Version, block_pa: u32) {
        self.lists
            .entry(root_pa)
            .or_default()
            .insert(pos, (v, block_pa));
        let prev = self.index.insert((root_pa, v), block_pa);
        debug_assert!(
            prev.is_none(),
            "duplicate version {v} at root {root_pa:#010x}"
        );
    }

    /// Drops an unlinked block from the mirror and the index.
    fn mirror_remove(&mut self, root_pa: u32, block_pa: u32) {
        let Some(list) = self.lists.get_mut(&root_pa) else {
            debug_assert!(false, "unlink from unmirrored root {root_pa:#010x}");
            return;
        };
        let Some(pos) = list.iter().position(|&(_, pa)| pa == block_pa) else {
            debug_assert!(false, "unlink of unmirrored block {block_pa:#010x}");
            return;
        };
        let (v, _) = list.remove(pos);
        self.index.remove(&(root_pa, v));
    }

    /// Drops a whole structure from the mirror and the index.
    fn mirror_release(&mut self, root_pa: u32) {
        if let Some(list) = self.lists.remove(&root_pa) {
            for (v, _) in list {
                self.index.remove(&(root_pa, v));
            }
        }
    }

    /// Debug cross-check: the mirror must match the physical list exactly.
    #[cfg(debug_assertions)]
    fn mirror_check(&self, ms: &MemSys, root_pa: u32) {
        let mut physical = Vec::new();
        let mut cur = ms.phys.read_u32(root_pa);
        while cur != 0 {
            let blk = VBlock::read(&ms.phys, cur);
            physical.push((blk.version, blk.pa));
            cur = blk.next;
        }
        let mirrored = self.lists.get(&root_pa).cloned().unwrap_or_default();
        assert_eq!(
            mirrored, physical,
            "mirror diverged from physical list at root {root_pa:#010x}"
        );
        for &(v, pa) in &physical {
            assert_eq!(self.index.get(&(root_pa, v)), Some(&pa));
        }
    }

    /// Charges the modeled walk over the first `nodes` mirror entries of
    /// `root_pa`'s list: one `ReadNoAlloc` per *unique line*, exactly as the
    /// physical pointer chase did. Returns the charged latency.
    fn charge_walk(&mut self, ms: &mut MemSys, core: usize, root_pa: u32, nodes: usize) -> u64 {
        let mut latency = 0;
        let mut lines = std::mem::take(&mut self.walk_lines);
        lines.clear();
        for i in 0..nodes {
            let pa = self.lists[&root_pa][i].1;
            let line = line_of(pa);
            if !lines.contains(&line) {
                lines.push(line);
                let acc = ms.hier.access(core, pa, AccessKind::ReadNoAlloc);
                latency += acc.latency;
                self.prune(&acc.dropped_compressed);
                self.stats.walk_reads += 1;
            }
        }
        self.walk_lines = lines;
        self.hists.version_walk.record(latency);
        latency
    }

    // ------------------------------------------------------------------
    // Free list (§III "Free-list")
    // ------------------------------------------------------------------

    /// Carves `blocks` fresh version blocks from new pool pages and links
    /// them onto the free list. This is the protected OS-side operation.
    fn carve(&mut self, ms: &mut MemSys, blocks: u32) -> Result<(), Fault> {
        self.events.push(MvmEvent {
            cycle: ms.hier.clock(),
            kind: MvmEventKind::FreeListCarve { blocks },
        });
        let per_page = PAGE_SIZE / VBLOCK_BYTES;
        let pages = blocks.div_ceil(per_page);
        for _ in 0..pages {
            let ppn = ms.phys.alloc_page().ok_or(Fault::OutOfVersionBlocks)?;
            // Mark the page as version-block storage so user-mode accesses
            // fault; the VA itself is never handed to user code.
            ms.pt.map_next(ppn, PageFlags::VBlockPool);
            let base = ppn * PAGE_SIZE;
            for i in 0..per_page {
                let pa = base + i * VBLOCK_BYTES;
                self.push_free(ms, pa);
            }
        }
        Ok(())
    }

    /// Links a block onto the free list (functional write; free-list
    /// maintenance happens off the critical path).
    fn push_free(&mut self, ms: &mut MemSys, pa: u32) {
        let blk = VBlock {
            pa,
            version: 0,
            next: self.free_head,
            head: false,
            shadowed: false,
            locked_by: 0,
            data: 0,
        };
        blk.write(&mut ms.phys);
        self.free_head = pa;
        self.free_count += 1;
    }

    /// Pops a block from the free list, trapping to the OS for a refill if
    /// it is empty. Returns `(block_pa, latency)`.
    ///
    /// The Memory Version Manager keeps the free-list head (and its link)
    /// staged off the critical path — "unused version blocks are stored in
    /// a free-list that is managed mostly by the hardware" — so a pop
    /// costs one L1-class access rather than a demand miss, and the fresh
    /// block's line is installed locally so the immediately following
    /// full-block write hits (a write-no-fetch: the old contents are dead).
    fn alloc_block(&mut self, ms: &mut MemSys, core: usize) -> Result<(u32, u64), Fault> {
        let now = ms.hier.clock();
        let mut latency = 0;
        if let Some(keep) = self.injector.as_mut().and_then(Injector::shrink_due) {
            self.apply_pool_shrink(ms, now, keep);
        }
        if self.free_count == 0 {
            latency += self.refill_with_retry(ms, now)?;
        }
        let pa = self.free_head;
        debug_assert_ne!(pa, 0, "free list non-empty after refill");
        latency += 4; // staged free-list pop: L1-class latency
        let dropped = ms.hier.fill_local(core, pa);
        self.prune(&dropped);
        let blk = VBlock::read(&ms.phys, pa);
        self.free_head = blk.next;
        self.free_count -= 1;
        self.stats.allocated_blocks += 1;
        self.events.push(MvmEvent {
            cycle: now,
            kind: MvmEventKind::FreeListAlloc {
                pa,
                free: self.free_count,
            },
        });
        let wm = self.cfg.gc.watermark;
        if wm != 0 && self.free_count + 1 >= wm && self.free_count < wm {
            self.events.push(MvmEvent {
                cycle: now,
                kind: MvmEventKind::WatermarkCrossed {
                    free: self.free_count,
                },
            });
        }
        self.maybe_start_gc(now);
        Ok((pa, latency))
    }

    /// Drops free-list blocks until only `keep` remain — the injected
    /// "OS reclaimed pool pages under memory pressure" fault.
    fn apply_pool_shrink(&mut self, ms: &mut MemSys, now: u64, keep: u32) {
        let mut dropped = 0u32;
        while self.free_count > keep && self.free_head != 0 {
            let blk = VBlock::read(&ms.phys, self.free_head);
            self.free_head = blk.next;
            self.free_count -= 1;
            dropped += 1;
        }
        if dropped > 0 {
            self.stats.pool_shrink_events += 1;
            self.events.push(MvmEvent {
                cycle: now,
                kind: MvmEventKind::PoolShrink { dropped },
            });
        }
    }

    /// The graceful-degradation path for an empty free list: a modeled OS
    /// refill trap with bounded retry/backoff. Each failed attempt (injected
    /// carve failure, exhausted refill budget, or genuine physical-memory
    /// exhaustion) forces a garbage-collection attempt before retrying; the
    /// trap cost doubles per retry. Returns the cycles charged, or
    /// [`Fault::OutOfVersionBlocks`] once the retry limit is exhausted.
    fn refill_with_retry(&mut self, ms: &mut MemSys, now: u64) -> Result<u64, Fault> {
        let mut latency = 0;
        let mut attempt: u32 = 0;
        loop {
            self.stats.refill_traps += 1;
            let cost = self.cfg.trap_latency << attempt.min(4);
            latency += cost;
            self.pending_trap_cycles += cost;
            self.events.push(MvmEvent {
                cycle: now,
                kind: MvmEventKind::RefillTrap,
            });

            let injected_fail = self
                .injector
                .as_mut()
                .is_some_and(Injector::transient_carve_failure);
            let budget_ok = self.injector.as_ref().is_none_or(Injector::refill_allowed);
            let mut carved = false;
            if injected_fail {
                self.stats.injected_carve_failures += 1;
            } else if budget_ok && self.carve(ms, self.cfg.refill_blocks).is_ok() {
                carved = true;
                if let Some(inj) = &mut self.injector {
                    inj.note_refill();
                }
            }
            if carved && self.free_count > 0 {
                if attempt > 0 {
                    self.stats.recovered_allocations += 1;
                }
                self.hists.gc_pause.record(latency);
                return Ok(latency);
            }
            self.events.push(MvmEvent {
                cycle: now,
                kind: MvmEventKind::CarveFailed { attempt },
            });

            // Before retrying, try to reclaim shadowed blocks regardless of
            // the watermark (forced GC under allocation pressure).
            self.stats.forced_gc_attempts += 1;
            self.force_gc(ms, now);
            if self.free_count > 0 {
                self.stats.recovered_allocations += 1;
                self.hists.gc_pause.record(latency);
                return Ok(latency);
            }

            if attempt >= self.cfg.refill_retry_limit {
                return Err(Fault::OutOfVersionBlocks);
            }
            attempt += 1;
            self.stats.refill_retries += 1;
        }
    }

    /// Pressure reclamation: start a collection phase regardless of the
    /// watermark and try to finalize it immediately. Succeeds only when no
    /// active task can still reach the pending blocks (the §III-B boundary
    /// rule holds even under pressure).
    fn force_gc(&mut self, ms: &mut MemSys, now: u64) {
        if self.cfg.gc.watermark == 0 {
            return; // collector disabled (§IV-F ablation): no pressure GC either
        }
        if self.gc_phase.is_none() && !self.shadowed.is_empty() {
            let youngest_active = self.active.last().copied().unwrap_or(0);
            let boundary = youngest_active.max(self.max_id_seen);
            let pending = std::mem::take(&mut self.shadowed);
            self.events.push(MvmEvent {
                cycle: now,
                kind: MvmEventKind::GcStart {
                    boundary,
                    pending: pending.len() as u32,
                },
            });
            self.gc_phase = Some(GcPhase { boundary, pending });
        }
        self.maybe_finalize_gc(ms);
    }

    /// Per-operation latency added by injected jitter (0 without a plan).
    fn injected_jitter(&mut self) -> u64 {
        match &mut self.injector {
            Some(inj) => {
                let j = inj.jitter();
                self.stats.injected_jitter_cycles += j;
                j
            }
            None => 0,
        }
    }

    /// Injected delivery delay for a coherence invalidation's effect, in
    /// cycles (0 without a plan). The cpu layer adds this to the stall of a
    /// coherence-attributed blocked retry, modeling a delayed invalidation.
    pub fn coherence_delay_penalty(&mut self) -> u64 {
        match &mut self.injector {
            Some(inj) => {
                let d = inj.coherence_delay();
                self.stats.injected_coherence_delay_cycles += d;
                d
            }
            None => 0,
        }
    }

    // ------------------------------------------------------------------
    // Garbage collection (§III-B)
    // ------------------------------------------------------------------

    /// Registers the beginning of task `tid` (the `TASK-BEGIN` instruction).
    pub fn task_begin(&mut self, tid: TaskId) {
        debug_assert!(tid > 0, "task id 0 is reserved for 'unlocked'");
        if let Some(&oldest) = self.active.first() {
            debug_assert!(
                tid >= oldest,
                "rule 3 violated: task {tid} created below the oldest active task {oldest}"
            );
        }
        self.active.insert(tid);
        self.max_id_seen = self.max_id_seen.max(tid);
    }

    /// Registers the end of task `tid` (the `TASK-END` instruction) and
    /// gives the collector a chance to finalize a pending phase.
    pub fn task_end(&mut self, ms: &mut MemSys, tid: TaskId) {
        self.active.remove(&tid);
        self.maybe_finalize_gc(ms);
    }

    /// Starts a collection phase if the watermark is crossed and shadowed
    /// blocks are available.
    fn maybe_start_gc(&mut self, now: u64) {
        if self.cfg.gc.watermark == 0
            || self.gc_phase.is_some()
            || self.shadowed.is_empty()
            || self.free_count >= self.cfg.gc.watermark
        {
            return;
        }
        let youngest_active = self.active.last().copied().unwrap_or(0);
        let boundary = youngest_active.max(self.max_id_seen);
        let pending = std::mem::take(&mut self.shadowed);
        self.events.push(MvmEvent {
            cycle: now,
            kind: MvmEventKind::GcStart {
                boundary,
                pending: pending.len() as u32,
            },
        });
        self.gc_phase = Some(GcPhase { boundary, pending });
    }

    /// Finalizes the current phase once the oldest active task is younger
    /// than the recorded boundary, moving pending blocks to the free list.
    fn maybe_finalize_gc(&mut self, ms: &mut MemSys) {
        let ready = match (&self.gc_phase, self.active.first()) {
            (Some(_), None) => true,
            (Some(ph), Some(&oldest)) => oldest > ph.boundary,
            (None, _) => false,
        };
        if !ready {
            return;
        }
        let Some(phase) = self.gc_phase.take() else {
            return; // unreachable: `ready` implies a phase exists
        };
        let mut reclaimed: HashSet<u32> = HashSet::new();
        for (root_pa, block_pa) in phase.pending {
            let blk = VBlock::read(&ms.phys, block_pa);
            if !blk.unlocked() {
                // A leaked lock: keep the block alive rather than corrupt
                // the structure (debug builds flag the protocol violation;
                // the oracle records it so release stress runs see it too).
                if let Some(o) = self.oracle.as_deref_mut() {
                    o.gc_checks += 1;
                    o.violation(format!(
                        "gc-liveness: shadowed block {block_pa:#010x} reached \
                         finalization still locked by task {}",
                        blk.locked_by
                    ));
                }
                debug_assert!(false, "shadowed block {block_pa:#010x} still locked");
                self.shadowed.push((root_pa, block_pa));
                continue;
            }
            if self.unlink(ms, root_pa, block_pa) {
                self.oracle_gc_free(ms, root_pa, &blk);
                self.push_free(ms, block_pa);
                reclaimed.insert(block_pa);
                self.stats.reclaimed_blocks += 1;
            }
        }
        // Any compressed line that cached a reclaimed block is stale;
        // conservatively drop the whole line (GC phases are rare).
        if !reclaimed.is_empty() {
            for per_core in &mut self.compressed {
                per_core.retain(|_, line| !line_contains_any(line, &reclaimed));
            }
        }
        self.stats.gc_phases += 1;
        self.events.push(MvmEvent {
            cycle: ms.hier.clock(),
            kind: MvmEventKind::GcEnd {
                reclaimed: reclaimed.len() as u32,
            },
        });
    }

    /// Unlinks `block_pa` from the list rooted at `root_pa` (background
    /// hardware operation, no timing). Returns false if the block was not
    /// found (already unlinked).
    fn unlink(&mut self, ms: &mut MemSys, root_pa: u32, block_pa: u32) -> bool {
        let head = ms.phys.read_u32(root_pa);
        if head == 0 {
            return false;
        }
        if head == block_pa {
            // A shadowed block has a newer version, so it is never the head
            // while that newer version is still linked; reaching here means
            // the protocol was violated.
            if let Some(o) = self.oracle.as_deref_mut() {
                o.gc_checks += 1;
                o.violation(format!(
                    "gc-liveness: shadowed block {block_pa:#010x} is the head \
                     of the list rooted at {root_pa:#010x}"
                ));
            }
            debug_assert!(false, "shadowed block at head of list");
            return false;
        }
        let mut prev = head;
        loop {
            let prev_blk = VBlock::read(&ms.phys, prev);
            if prev_blk.next == 0 {
                return false;
            }
            if prev_blk.next == block_pa {
                let victim = VBlock::read(&ms.phys, block_pa);
                let mut updated = prev_blk;
                updated.next = victim.next;
                updated.write(&mut ms.phys);
                self.mirror_remove(root_pa, block_pa);
                return true;
            }
            prev = prev_blk.next;
        }
    }

    // ------------------------------------------------------------------
    // Compressed-line plumbing
    // ------------------------------------------------------------------

    /// Removes payloads whose L1 slots were evicted or invalidated.
    fn prune(&mut self, dropped: &[(usize, u32)]) {
        for &(core, root_pa) in dropped {
            self.compressed[core].remove(&root_pa);
        }
    }

    /// Direct-access probe: returns a clone of the compressed entry for
    /// (core, root) if both the L1 slot and the payload are present.
    fn compressed_line(
        &mut self,
        ms: &mut MemSys,
        core: usize,
        root_pa: u32,
    ) -> Option<&mut CompressedLine> {
        let slot_hit = ms.hier.compressed_probe(core, root_pa);
        if !slot_hit {
            self.compressed[core].remove(&root_pa);
            return None;
        }
        self.compressed[core].get_mut(&root_pa)
    }

    /// Installs/updates this core's compressed line with an entry, allocating
    /// the L1 slot if needed.
    fn compressed_install(
        &mut self,
        ms: &mut MemSys,
        core: usize,
        root_pa: u32,
        entry: CEntry,
        head_version: Option<Version>,
    ) {
        let dropped = ms.hier.compressed_fill(core, root_pa);
        self.prune(&dropped);
        let line = self.compressed[core].entry(root_pa).or_default();
        if !line.insert(entry) {
            // The version does not fit this line's 2^14 window (stale base):
            // rebuild the line around the new version, as hardware would
            // rebuild a discarded compressed block.
            *line = CompressedLine::new();
            let ok = line.insert(entry);
            debug_assert!(
                ok || entry.locked_by != 0,
                "fresh line rejects only odd lockers"
            );
        }
        if let Some(h) = head_version {
            if line.get(h).is_some() {
                line.set_head_version(Some(h));
            }
        }
        let entries = line.len() as u32;
        self.events.push(MvmEvent {
            cycle: ms.hier.clock(),
            kind: MvmEventKind::CompressedOccupancy {
                core: core as u32,
                root_pa,
                entries,
            },
        });
    }

    /// Coherence: a mutation of the structure rooted at `root_pa` by `core`
    /// discards every other core's compressed line for it. Each loss is
    /// remembered so the victims' next blocked retry can be attributed to
    /// coherence (see [`OManager::take_coherence_lost`]).
    fn compressed_coherence(&mut self, ms: &mut MemSys, core: usize, root_pa: u32) {
        let dropped = ms.hier.compressed_invalidate_others(core, root_pa);
        self.coherence_lost.extend(dropped.iter().copied());
        self.prune(&dropped);
    }

    /// Consumes the coherence-loss marker for `core`'s view of the
    /// structure at `va`: true exactly once after another core's mutation
    /// invalidated this core's compressed line. Issuing cores call this
    /// when an operation blocks, to attribute the stall to coherence
    /// rather than to the version state alone.
    pub fn take_coherence_lost(&mut self, ms: &MemSys, core: usize, va: u32) -> bool {
        match ms.pt.translate_versioned(va) {
            Ok(root_pa) => self.coherence_lost.remove(&(core, root_pa)),
            Err(_) => false,
        }
    }

    /// Drains the OS refill-trap cycles charged since the last call. The
    /// issuing core folds these into its stall accounting under the
    /// free-list/GC cause — the latency itself is already part of the
    /// operation's charged latency.
    pub fn take_trap_cycles(&mut self) -> u64 {
        std::mem::take(&mut self.pending_trap_cycles)
    }

    // ------------------------------------------------------------------
    // The versioned operations (§II-A)
    // ------------------------------------------------------------------

    /// `LOAD-VERSION`: load the exact version `v` of the O-structure at
    /// virtual address `va`.
    pub fn load_version(
        &mut self,
        ms: &mut MemSys,
        core: usize,
        va: u32,
        v: Version,
    ) -> Result<OpOutcome, Fault> {
        self.load_impl(ms, core, va, v, false, 0)
    }

    /// `LOAD-LATEST`: load the highest created version ≤ `cap`.
    pub fn load_latest(
        &mut self,
        ms: &mut MemSys,
        core: usize,
        va: u32,
        cap: Version,
    ) -> Result<OpOutcome, Fault> {
        self.load_impl(ms, core, va, cap, true, 0)
    }

    /// `LOCK-LOAD-VERSION`: exact load + lock by task `tid`.
    pub fn lock_load_version(
        &mut self,
        ms: &mut MemSys,
        core: usize,
        va: u32,
        v: Version,
        tid: TaskId,
    ) -> Result<OpOutcome, Fault> {
        debug_assert!(tid > 0);
        self.load_impl(ms, core, va, v, false, tid)
    }

    /// `LOCK-LOAD-LATEST`: capped load + lock by task `tid`.
    pub fn lock_load_latest(
        &mut self,
        ms: &mut MemSys,
        core: usize,
        va: u32,
        cap: Version,
        tid: TaskId,
    ) -> Result<OpOutcome, Fault> {
        debug_assert!(tid > 0);
        self.load_impl(ms, core, va, cap, true, tid)
    }

    /// Shared implementation of the four load flavours. `lock_as == 0`
    /// means no lock is taken.
    fn load_impl(
        &mut self,
        ms: &mut MemSys,
        core: usize,
        va: u32,
        v: Version,
        latest: bool,
        lock_as: TaskId,
    ) -> Result<OpOutcome, Fault> {
        let root_pa = ms.pt.translate_versioned(va)?;
        let mut latency = self.cfg.versioned_extra_latency + self.injected_jitter();
        let l1_hit = 4; // compressed lines live in the L1

        // --- Direct access -------------------------------------------------
        let direct = match self.compressed_line(ms, core, root_pa) {
            Some(line) => {
                let found = if latest {
                    line.latest_capped(v).copied()
                } else {
                    line.get(v).copied()
                };
                if let Some(e) = &found {
                    if e.locked_by == 0 {
                        line.touch(e.version);
                    }
                }
                found
            }
            None => None,
        };
        {
            if let Some(e) = direct {
                latency += l1_hit;
                if e.locked_by != 0 {
                    return Ok(OpOutcome::Blocked {
                        reason: BlockReason::VersionLocked,
                        latency,
                        holder: e.locked_by,
                    });
                }
                self.stats.direct_hits += 1;
                if lock_as != 0 {
                    // Acquire the lock: write the backing version block.
                    latency += ms.hier.access(core, e.block_pa, AccessKind::Write).latency;
                    let mut blk = VBlock::read(&ms.phys, e.block_pa);
                    self.oracle_lock_grant(root_pa, e.block_pa, blk.locked_by, lock_as);
                    debug_assert!(blk.unlocked());
                    blk.locked_by = lock_as;
                    blk.write(&mut ms.phys);
                    if let Some(line) = self.compressed[core].get_mut(&root_pa) {
                        if !line.set_lock(e.version, lock_as) {
                            line.remove(e.version);
                        }
                    }
                    self.compressed_coherence(ms, core, root_pa);
                }
                return Ok(OpOutcome::Done {
                    value: e.data,
                    version: e.version,
                    latency,
                });
            }
        }

        // --- Full lookup ----------------------------------------------------
        self.stats.full_lookups += 1;
        let root = ms.hier.access(core, root_pa, AccessKind::Read);
        latency += root.latency;
        self.prune(&root.dropped_compressed);

        let head_pa = ms.phys.read_u32(root_pa);
        if head_pa == 0 {
            return Ok(OpOutcome::Blocked {
                reason: BlockReason::VersionAbsent,
                latency,
                holder: 0,
            });
        }

        #[cfg(debug_assertions)]
        self.mirror_check(ms, root_pa);

        let sorted = self.list_sorted(root_pa);

        // The walk is still the latency model, but the *search* runs on the
        // host mirror: version comparisons read `lists` and the match is
        // resolved by the exact-version index, so simulated memory is only
        // decoded for the head-protection check and the returned block.
        let head_ok = VBlock::read(&ms.phys, head_pa).head;
        let list = &self.lists[&root_pa];
        debug_assert_eq!(list[0].1, head_pa, "mirror head is stale");
        let head_version = list[0].0;
        let mut nodes = 0;
        let mut best: Option<(Version, u32)> = None;
        if head_ok {
            for &(ver, pa) in list {
                nodes += 1;
                let matched = if latest { ver <= v } else { ver == v };
                if matched {
                    if sorted {
                        best = Some((ver, pa));
                        break;
                    }
                    // Unsorted: remember the best candidate and keep scanning.
                    match best {
                        Some((bv, _)) if bv >= ver => {}
                        _ => best = Some((ver, pa)),
                    }
                    if !latest {
                        break; // exact match; duplicates are impossible
                    }
                } else if sorted && ver < v {
                    break; // sorted: nothing older can match an exact load
                }
            }
        } else {
            nodes = 1; // the protection check charges the head before faulting
        }
        if !latest {
            // O(1) exact-version resolution; the mirror scan above only
            // determines how far the modeled walk advances.
            let indexed = self.index.get(&(root_pa, v)).copied();
            debug_assert_eq!(best.map(|(_, pa)| pa), indexed, "index out of sync");
            best = indexed.map(|pa| (v, pa));
        }
        latency += self.charge_walk(ms, core, root_pa, nodes);
        if !head_ok {
            return Err(Fault::NotListHead { pa: head_pa });
        }

        let Some((_, best_pa)) = best else {
            return Ok(OpOutcome::Blocked {
                reason: BlockReason::VersionAbsent,
                latency,
                holder: 0,
            });
        };
        let blk = VBlock::read(&ms.phys, best_pa);
        if !blk.unlocked() {
            return Ok(OpOutcome::Blocked {
                reason: BlockReason::VersionLocked,
                latency,
                holder: blk.locked_by,
            });
        }

        // Cache the matching block (pollution rule: only this one).
        let dropped = ms.hier.fill_local(core, blk.pa);
        self.prune(&dropped);

        let mut locked_by = 0;
        if lock_as != 0 {
            latency += ms.hier.access(core, blk.pa, AccessKind::Write).latency;
            self.oracle_lock_grant(root_pa, blk.pa, blk.locked_by, lock_as);
            let mut b = blk;
            b.locked_by = lock_as;
            b.write(&mut ms.phys);
            locked_by = lock_as;
        }

        // Refresh this core's compressed line with the accessed version.
        // Only in sorted mode does the list head prove "newest overall",
        // which is what `latest_capped` needs.
        let known_head = (sorted && blk.pa == head_pa).then_some(head_version);
        self.compressed_install(
            ms,
            core,
            root_pa,
            CEntry {
                version: blk.version,
                locked_by,
                data: blk.data,
                block_pa: blk.pa,
            },
            known_head,
        );
        if lock_as != 0 {
            self.compressed_coherence(ms, core, root_pa);
        }

        Ok(OpOutcome::Done {
            value: blk.data,
            version: blk.version,
            latency,
        })
    }

    /// Front insertion with a known head (the store fast path): allocate,
    /// link ahead of the current head, demote the old head's head bit and
    /// register it on the shadowed list.
    #[allow(clippy::too_many_arguments)]
    fn store_at_front(
        &mut self,
        ms: &mut MemSys,
        core: usize,
        root_pa: u32,
        v: Version,
        data: u32,
        old_head_pa: u32,
        mut latency: u64,
    ) -> Result<OpOutcome, Fault> {
        debug_assert_eq!(
            ms.phys.read_u32(root_pa),
            old_head_pa,
            "compressed line's head is stale"
        );
        let (new_pa, alloc_lat) = self.alloc_block(ms, core)?;
        latency += alloc_lat;
        let new_blk = VBlock {
            pa: new_pa,
            version: v,
            next: old_head_pa,
            head: true,
            shadowed: false,
            locked_by: 0,
            data,
        };
        new_blk.write(&mut ms.phys);
        latency += ms.hier.access(core, new_pa, AccessKind::Write).latency;
        latency += ms.hier.access(core, root_pa, AccessKind::Write).latency;
        ms.phys.write_u32(root_pa, new_pa);
        let mut oh = VBlock::read(&ms.phys, old_head_pa);
        oh.head = false;
        let shadow = !oh.shadowed;
        oh.shadowed = true;
        oh.write(&mut ms.phys);
        latency += ms.hier.access(core, old_head_pa, AccessKind::Write).latency;
        if shadow {
            self.shadowed.push((root_pa, old_head_pa));
        }
        debug_assert_eq!(
            self.lists
                .get(&root_pa)
                .and_then(|l| l.first())
                .map(|&(_, pa)| pa),
            Some(old_head_pa),
            "mirror head is stale"
        );
        self.mirror_insert(root_pa, 0, v, new_pa);
        self.oracle_order(root_pa, 0, v);
        self.stats.stores += 1;
        let head_version = self.list_sorted(root_pa).then_some(v);
        self.compressed_install(
            ms,
            core,
            root_pa,
            CEntry {
                version: v,
                locked_by: 0,
                data,
                block_pa: new_pa,
            },
            head_version,
        );
        if head_version.is_none() {
            // The head changed but the list is no longer provably sorted:
            // any head-version claim the line carries is stale now.
            if let Some(line) = self.compressed[core].get_mut(&root_pa) {
                line.set_head_version(None);
            }
        }
        self.compressed_coherence(ms, core, root_pa);
        Ok(OpOutcome::Done {
            value: data,
            version: v,
            latency,
        })
    }

    /// `STORE-VERSION`: create version `v` with datum `data`.
    pub fn store_version(
        &mut self,
        ms: &mut MemSys,
        core: usize,
        va: u32,
        v: Version,
        data: u32,
    ) -> Result<OpOutcome, Fault> {
        let root_pa = ms.pt.translate_versioned(va)?;
        let mut latency = self.cfg.versioned_extra_latency + self.injected_jitter();

        // Direct-access fast path: when this core's compressed line knows
        // the head version and `v` is a fresh maximum, the front insertion
        // point is known from one cache lookup — no list walk, mirroring
        // what direct access does for loads.
        let fast = match self.compressed_line(ms, core, root_pa) {
            Some(line) => match line.head_version() {
                Some(h) if v > h => line.get(h).map(|e| (h, e.block_pa)),
                _ => None,
            },
            None => None,
        };
        if let Some((_, head_block_pa)) = fast {
            latency += 4; // the compressed-line lookup
            return self.store_at_front(ms, core, root_pa, v, data, head_block_pa, latency);
        }

        // Read the root to find the insertion point.
        let root = ms.hier.access(core, root_pa, AccessKind::Read);
        latency += root.latency;
        self.prune(&root.dropped_compressed);
        let head_pa = ms.phys.read_u32(root_pa);

        // Find `prev` (last block with version > v) and the follower. The
        // search runs on the host mirror; the modeled walk is charged after.
        let mut prev: Option<VBlock> = None;
        let mut follower: Option<VBlock> = None;
        let mut prev_idx: Option<usize> = None;
        if head_pa != 0 {
            #[cfg(debug_assertions)]
            self.mirror_check(ms, root_pa);
            let was_sorted = self.list_sorted(root_pa);
            let head_ok = VBlock::read(&ms.phys, head_pa).head;
            let list = &self.lists[&root_pa];
            debug_assert_eq!(list[0].1, head_pa, "mirror head is stale");
            let mut nodes = 0;
            let mut follower_pa = None;
            let mut dup = false;
            if head_ok {
                for (i, &(ver, pa)) in list.iter().enumerate() {
                    nodes += 1;
                    if ver == v {
                        dup = true;
                        break;
                    }
                    if self.cfg.sorted_insertion {
                        if ver < v {
                            follower_pa = Some(pa);
                            break;
                        }
                        prev_idx = Some(i);
                    } else if i == 0 && was_sorted && ver < v {
                        // Unsorted mode: always prepend. Versions created in
                        // order keep the list sorted anyway (the paper's
                        // common case), which lets the duplicate scan stop
                        // at the head; only lists whose order was actually
                        // violated pay a full scan.
                        break; // prepend of a fresh maximum: no duplicate possible
                    }
                }
            } else {
                nodes = 1; // the protection check charges the head before faulting
            }
            debug_assert_eq!(
                dup,
                self.index.contains_key(&(root_pa, v)),
                "index out of sync"
            );
            latency += self.charge_walk(ms, core, root_pa, nodes);
            if !head_ok {
                return Err(Fault::NotListHead { pa: head_pa });
            }
            if dup {
                return Err(Fault::VersionExists { va, version: v });
            }
            if self.cfg.sorted_insertion {
                prev = prev_idx.map(|i| VBlock::read(&ms.phys, self.lists[&root_pa][i].1));
                follower = follower_pa.map(|pa| VBlock::read(&ms.phys, pa));
            } else {
                let head_blk = VBlock::read(&ms.phys, head_pa);
                if v < head_blk.version {
                    // An out-of-order prepend breaks the list's order.
                    self.unsorted_roots.insert(root_pa);
                }
                follower = Some(head_blk);
            }
        }

        // Allocate and fill the new block.
        let (new_pa, alloc_lat) = self.alloc_block(ms, core)?;
        latency += alloc_lat;
        let at_front = prev.is_none();
        let next_pa = match &follower {
            Some(f) => f.pa,
            None => 0,
        };
        let new_blk = VBlock {
            pa: new_pa,
            version: v,
            next: next_pa,
            head: at_front,
            shadowed: false,
            locked_by: 0,
            data,
        };
        new_blk.write(&mut ms.phys);
        latency += ms.hier.access(core, new_pa, AccessKind::Write).latency;

        // Link it in. The two lines involved are acquired for exclusive
        // access; in the simulator operations are serialized by timestamps,
        // so the paper's re-check/retry protocol always succeeds on the
        // first try and we charge the two exclusive accesses.
        if at_front {
            latency += ms.hier.access(core, root_pa, AccessKind::Write).latency;
            ms.phys.write_u32(root_pa, new_pa);
            if let Some(old_head) = &follower {
                // Clear the old head bit (same exclusive access pattern).
                let mut oh = *old_head;
                oh.head = false;
                oh.write(&mut ms.phys);
                latency += ms.hier.access(core, oh.pa, AccessKind::Write).latency;
            }
        } else {
            let Some(mut p) = prev else {
                unreachable!("not at front implies a predecessor");
            };
            p.next = new_pa;
            p.write(&mut ms.phys);
            latency += ms.hier.access(core, p.pa, AccessKind::Write).latency;
        }
        self.mirror_insert(root_pa, prev_idx.map_or(0, |i| i + 1), v, new_pa);
        self.oracle_order(root_pa, prev_idx.map_or(0, |i| i + 1), v);

        // Shadow the next-older version (Figure 5): creating v makes the
        // version just below it unreachable for tasks ≥ v. (An
        // out-of-order prepend of an *older* version shadows nothing.)
        if let Some(f) = &follower {
            let mut fb = VBlock::read(&ms.phys, f.pa);
            if !fb.shadowed && fb.version < v {
                fb.shadowed = true;
                fb.write(&mut ms.phys);
                self.shadowed.push((root_pa, fb.pa));
            }
        }

        self.stats.stores += 1;

        // Compressed-line upkeep: update ours, discard everyone else's.
        // `head_version` on the compressed line means "newest version
        // overall", which a front insertion proves whenever the list is
        // still in descending order.
        let head_version = (self.list_sorted(root_pa) && at_front).then_some(v);
        self.compressed_install(
            ms,
            core,
            root_pa,
            CEntry {
                version: v,
                locked_by: 0,
                data,
                block_pa: new_pa,
            },
            head_version,
        );
        if at_front && head_version.is_none() {
            // An out-of-order prepend changed the head without proving
            // "newest overall": drop any stale head-version claim so the
            // store fast path cannot front-insert against the wrong block.
            // (When not at front the head did not change and our line's
            // claim stays valid; remote lines are dropped either way.)
            if let Some(line) = self.compressed[core].get_mut(&root_pa) {
                line.set_head_version(None);
            }
        }
        self.compressed_coherence(ms, core, root_pa);

        Ok(OpOutcome::Done {
            value: data,
            version: v,
            latency,
        })
    }

    /// `UNLOCK-VERSION`: unlock version `vl` (held by `tid`), optionally
    /// creating a new unlocked version `vn` carrying the same datum.
    pub fn unlock_version(
        &mut self,
        ms: &mut MemSys,
        core: usize,
        va: u32,
        vl: Version,
        tid: TaskId,
        create: Option<Version>,
    ) -> Result<OpOutcome, Fault> {
        let root_pa = ms.pt.translate_versioned(va)?;
        let mut latency = self.cfg.versioned_extra_latency + self.injected_jitter();

        // Locate the block holding vl: via our compressed line if possible,
        // else by walking.
        let block_pa = match self.compressed_line(ms, core, root_pa) {
            Some(line) => line.get(vl).map(|e| e.block_pa),
            None => None,
        };
        let (block_pa, walk_latency) = match block_pa {
            Some(pa) => {
                self.stats.direct_hits += 1;
                (pa, 4)
            }
            None => {
                self.stats.full_lookups += 1;
                let root = ms.hier.access(core, root_pa, AccessKind::Read);
                let mut lat = root.latency;
                self.prune(&root.dropped_compressed);
                let sorted = self.list_sorted(root_pa);
                let head_pa = ms.phys.read_u32(root_pa);
                let mut found = None;
                let mut nodes = 0;
                let mut head_ok = true;
                if head_pa != 0 {
                    #[cfg(debug_assertions)]
                    self.mirror_check(ms, root_pa);
                    head_ok = VBlock::read(&ms.phys, head_pa).head;
                    if head_ok {
                        for &(ver, pa) in &self.lists[&root_pa] {
                            nodes += 1;
                            if ver == vl {
                                found = Some(pa);
                                break;
                            }
                            if sorted && ver < vl {
                                break;
                            }
                        }
                    } else {
                        nodes = 1; // the protection check charges the head
                    }
                }
                debug_assert_eq!(
                    found,
                    self.index.get(&(root_pa, vl)).copied().filter(|_| head_ok),
                    "index out of sync"
                );
                lat += self.charge_walk(ms, core, root_pa, nodes);
                if !head_ok {
                    return Err(Fault::NotListHead { pa: head_pa });
                }
                match found {
                    Some(pa) => (pa, lat),
                    None => return Err(Fault::NotLockOwner { va, version: vl }),
                }
            }
        };
        latency += walk_latency;

        let mut blk = VBlock::read(&ms.phys, block_pa);
        if blk.locked_by != tid {
            return Err(Fault::NotLockOwner { va, version: vl });
        }
        self.oracle_lock_release(root_pa, block_pa, blk.locked_by, tid);
        blk.locked_by = 0;
        blk.write(&mut ms.phys);
        latency += ms.hier.access(core, block_pa, AccessKind::Write).latency;

        if let Some(line) = self.compressed[core].get_mut(&root_pa) {
            let _ = line.set_lock(vl, 0);
        }
        self.compressed_coherence(ms, core, root_pa);

        let value = blk.data;
        if let Some(vn) = create {
            let store = self.store_version(ms, core, va, vn, value)?;
            latency += store
                .latency()
                .saturating_sub(self.cfg.versioned_extra_latency);
        }

        Ok(OpOutcome::Done {
            value,
            version: vl,
            latency,
        })
    }

    /// Releases an entire O-structure (§III-C, "Allocating and Freeing
    /// O-structures"): every version block of the list rooted at `va` goes
    /// back to the free list and the root word is reset to null, after
    /// which the address behaves like a fresh O-structure again.
    ///
    /// The caller owns the safety contract the paper states: "no unfinished
    /// task may access that location as an O-structure" — i.e. call this
    /// only at quiescent points (the paper's suggested policy for delayed
    /// memory recycling). Locked blocks indicate a violated contract and
    /// fault.
    pub fn release_structure(&mut self, ms: &mut MemSys, va: u32) -> Result<u32, Fault> {
        let root_pa = ms.pt.translate_versioned(va)?;
        let mut cur = ms.phys.read_u32(root_pa);
        let mut freed = 0;
        let mut first = true;
        while cur != 0 {
            let blk = VBlock::read(&ms.phys, cur);
            if first && !blk.head {
                return Err(Fault::NotListHead { pa: cur });
            }
            first = false;
            if !blk.unlocked() {
                return Err(Fault::NotLockOwner {
                    va,
                    version: blk.version,
                });
            }
            let next = blk.next;
            self.push_free(ms, cur);
            freed += 1;
            cur = next;
        }
        ms.phys.write_u32(root_pa, 0);
        self.mirror_release(root_pa);
        // Blocks returned to the free list may still sit on the shadowed
        // list; drop those entries (they are already free).
        self.shadowed.retain(|&(r, _)| r != root_pa);
        if let Some(phase) = &mut self.gc_phase {
            phase.pending.retain(|&(r, _)| r != root_pa);
        }
        // Every cached view of this structure is now stale. This is an
        // explicit release, not a coherence event, so pending loss markers
        // for the root die with it.
        for core in 0..ms.hier.cfg().cores {
            ms.hier.compressed_drop(core, root_pa);
            self.compressed[core].remove(&root_pa);
        }
        self.coherence_lost.retain(|&(_, r)| r != root_pa);
        self.stats.reclaimed_blocks += freed as u64;
        self.unsorted_roots.remove(&root_pa);
        Ok(freed)
    }

    // ------------------------------------------------------------------
    // Functional inspection (zero-timing; tests and validation harness)
    // ------------------------------------------------------------------

    /// Returns every `(version, data, locked_by)` of the O-structure at
    /// `va`, newest first, without touching timing state.
    pub fn peek_versions(
        &self,
        ms: &MemSys,
        va: u32,
    ) -> Result<Vec<(Version, u32, TaskId)>, Fault> {
        let root_pa = ms.pt.translate_versioned(va)?;
        let mut out = Vec::new();
        let mut cur = ms.phys.read_u32(root_pa);
        while cur != 0 {
            let blk = VBlock::read(&ms.phys, cur);
            out.push((blk.version, blk.data, blk.locked_by));
            cur = blk.next;
        }
        Ok(out)
    }

    /// Functional `LOAD-LATEST` (no timing): the newest version ≤ `cap`.
    pub fn peek_latest(
        &self,
        ms: &MemSys,
        va: u32,
        cap: Version,
    ) -> Result<Option<(Version, u32)>, Fault> {
        Ok(self
            .peek_versions(ms, va)?
            .into_iter()
            .filter(|&(ver, _, _)| ver <= cap)
            .max_by_key(|&(ver, _, _)| ver)
            .map(|(ver, data, _)| (ver, data)))
    }
}

/// True if any entry of the line references a reclaimed block.
fn line_contains_any(line: &CompressedLine, reclaimed: &HashSet<u32>) -> bool {
    // CompressedLine does not expose iteration; test via its public API by
    // checking each reclaimed block address. Small sets keep this cheap.
    reclaimed.iter().any(|&pa| line_has_block(line, pa))
}

fn line_has_block(line: &CompressedLine, pa: u32) -> bool {
    line.entries_ref().iter().any(|e| e.block_pa == pa)
}
