//! Runtime invariant oracles for the O-structure manager.
//!
//! When [`crate::OManagerCfg::oracles`] is set, the manager checks the
//! paper's semantic invariants *at runtime* on every relevant operation and
//! records violations instead of (only) tripping debug assertions:
//!
//! * **Lock exclusion** — a version lock is only ever granted on an
//!   unlocked block (§II-C single-writer rule).
//! * **Version monotonicity** — sorted version lists stay strictly
//!   descending around every insertion (§III-A).
//! * **GC liveness** — the collector only frees blocks that are shadowed,
//!   unlocked, not the list head, and superseded by a strictly newer
//!   version (§III-B: no live version is ever reclaimed).
//!
//! The checks are cheap (a handful of integer compares next to work that
//! already touched the same state) but not free, so they default to off and
//! are armed by the `stress` harness, which runs every quick figure under
//! many shaken schedules and fails the run if any oracle records a
//! violation. Recording rather than asserting means a violation surfaces as
//! a reproducible report line (`--fig … --shake-seed …`) in release builds
//! too, instead of only aborting debug ones.

/// Violation details kept verbatim; later violations only bump the counter
/// so a pathological run cannot grow the report without bound.
const MAX_DETAILS: usize = 8;

/// What the invariant oracles observed during a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OracleReport {
    /// Lock-exclusion checks performed (one per lock grant / unlock).
    pub lock_checks: u64,
    /// Version-order checks performed (one per sorted-list insertion).
    pub order_checks: u64,
    /// GC-liveness checks performed (one per block the collector frees).
    pub gc_checks: u64,
    /// Total violations across all oracles.
    pub violations: u64,
    /// First [`MAX_DETAILS`] violation messages, in discovery order.
    pub details: Vec<String>,
}

impl OracleReport {
    /// True when no oracle recorded a violation.
    pub fn ok(&self) -> bool {
        self.violations == 0
    }

    /// Total checks performed across all oracles.
    pub fn checks(&self) -> u64 {
        self.lock_checks + self.order_checks + self.gc_checks
    }

    /// Records one violation, keeping the first few messages.
    pub(crate) fn violation(&mut self, detail: String) {
        self.violations += 1;
        if self.details.len() < MAX_DETAILS {
            self.details.push(detail);
        }
    }

    /// One-line summary (`"3 checks, ok"` / `"… 2 violation(s)"`).
    pub fn summary(&self) -> String {
        if self.ok() {
            format!("{} oracle check(s), all passed", self.checks())
        } else {
            format!(
                "{} oracle check(s), {} violation(s); first: {}",
                self.checks(),
                self.violations,
                self.details.first().map_or("<none>", |s| s.as_str())
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_counts_and_caps_details() {
        let mut r = OracleReport::default();
        assert!(r.ok());
        for i in 0..20 {
            r.violation(format!("v{i}"));
        }
        assert!(!r.ok());
        assert_eq!(r.violations, 20);
        assert_eq!(r.details.len(), MAX_DETAILS);
        assert_eq!(r.details[0], "v0");
        assert!(r.summary().contains("20 violation(s)"));
        assert!(r.summary().contains("v0"));
    }

    #[test]
    fn summary_reports_clean_runs() {
        let r = OracleReport {
            lock_checks: 2,
            gc_checks: 1,
            ..OracleReport::default()
        };
        assert_eq!(r.checks(), 3);
        assert!(r.summary().contains("all passed"));
    }
}
