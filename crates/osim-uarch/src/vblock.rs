//! The 16-byte Version Block record (Figure 3 of the paper).
//!
//! Layout in simulated physical memory (little-endian words):
//!
//! | offset | field |
//! |--------|-------|
//! | +0     | version identifier (32 bits) |
//! | +4     | link word: bits 0–27 = next block's physical address ÷ 16, bit 30 = shadowed flag, bit 31 = head bit |
//! | +8     | locked-by task id (0 = unlocked) |
//! | +12    | datum (32 bits) |
//!
//! The paper gives the next pointer 30 bits; since blocks are 16-byte
//! aligned, 28 bits of block index address the full 32-bit physical space,
//! which leaves bit 30 free for the *shadowed* flag the garbage collector
//! uses to avoid double-registering a block on the shadowed list.

use osim_mem::PhysMem;

use crate::{TaskId, Version};

/// Size of a version block in bytes.
pub const VBLOCK_BYTES: u32 = 16;

const HEAD_BIT: u32 = 1 << 31;
const SHADOW_BIT: u32 = 1 << 30;
const NEXT_MASK: u32 = (1 << 28) - 1;

/// A decoded version block. The authoritative copy always lives in
/// [`PhysMem`]; this struct is a read/modify/write view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VBlock {
    /// Physical address of this block (16-byte aligned).
    pub pa: u32,
    /// Version identifier.
    pub version: Version,
    /// Physical address of the next (older) block, or 0 for end of list.
    pub next: u32,
    /// Head-of-list bit; checked on every O-structure entry for protection.
    pub head: bool,
    /// Garbage-collector flag: this block is already on the shadowed list.
    pub shadowed: bool,
    /// Task currently holding this version's lock (0 = unlocked).
    pub locked_by: TaskId,
    /// The stored datum.
    pub data: u32,
}

impl VBlock {
    /// Reads and decodes the block at physical address `pa`.
    pub fn read(mem: &PhysMem, pa: u32) -> VBlock {
        debug_assert_eq!(pa % VBLOCK_BYTES, 0, "unaligned version block {pa:#010x}");
        let link = mem.read_u32(pa + 4);
        VBlock {
            pa,
            version: mem.read_u32(pa),
            next: (link & NEXT_MASK) * VBLOCK_BYTES,
            head: link & HEAD_BIT != 0,
            shadowed: link & SHADOW_BIT != 0,
            locked_by: mem.read_u32(pa + 8),
            data: mem.read_u32(pa + 12),
        }
    }

    /// Encodes and writes the block back to physical memory.
    pub fn write(&self, mem: &mut PhysMem) {
        debug_assert_eq!(self.pa % VBLOCK_BYTES, 0);
        debug_assert_eq!(self.next % VBLOCK_BYTES, 0, "unaligned next pointer");
        let mut link = self.next / VBLOCK_BYTES;
        debug_assert!(link <= NEXT_MASK);
        if self.head {
            link |= HEAD_BIT;
        }
        if self.shadowed {
            link |= SHADOW_BIT;
        }
        mem.write_u32(self.pa, self.version);
        mem.write_u32(self.pa + 4, link);
        mem.write_u32(self.pa + 8, self.locked_by);
        mem.write_u32(self.pa + 12, self.data);
    }

    /// True when no task holds this version's lock.
    pub fn unlocked(&self) -> bool {
        self.locked_by == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with_page() -> (PhysMem, u32) {
        let mut m = PhysMem::new(1 << 20);
        let base = m.alloc_page().unwrap() * osim_mem::PAGE_SIZE;
        (m, base)
    }

    #[test]
    fn roundtrip_all_fields() {
        let (mut m, base) = mem_with_page();
        let b = VBlock {
            pa: base + 32,
            version: 0xfeed_f00d,
            next: base + 16,
            head: true,
            shadowed: false,
            locked_by: 77,
            data: 0xdede_dede,
        };
        b.write(&mut m);
        assert_eq!(VBlock::read(&m, base + 32), b);
    }

    #[test]
    fn head_and_shadow_bits_are_independent() {
        let (mut m, base) = mem_with_page();
        for (head, shadowed) in [(false, false), (true, false), (false, true), (true, true)] {
            let b = VBlock {
                pa: base,
                version: 1,
                next: 0,
                head,
                shadowed,
                locked_by: 0,
                data: 0,
            };
            b.write(&mut m);
            let r = VBlock::read(&m, base);
            assert_eq!((r.head, r.shadowed), (head, shadowed));
            assert_eq!(r.next, 0);
        }
    }

    #[test]
    fn null_next_roundtrips() {
        let (mut m, base) = mem_with_page();
        let b = VBlock {
            pa: base,
            version: 3,
            next: 0,
            head: true,
            shadowed: false,
            locked_by: 0,
            data: 42,
        };
        b.write(&mut m);
        let r = VBlock::read(&m, base);
        assert_eq!(r.next, 0);
        assert!(r.unlocked());
    }

    #[test]
    fn high_physical_next_pointer() {
        // 28 bits of block index cover the whole 32-bit physical space.
        let (mut m, base) = mem_with_page();
        let far = 0xffff_fff0; // highest 16-aligned address
        let b = VBlock {
            pa: base,
            version: 1,
            next: far,
            head: false,
            shadowed: false,
            locked_by: 0,
            data: 0,
        };
        b.write(&mut m);
        assert_eq!(VBlock::read(&m, base).next, far);
    }
}
