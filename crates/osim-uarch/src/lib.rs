//! Microarchitectural O-structure manager.
//!
//! This crate implements §III of the paper: the per-core O-structure logic
//! that lives next to the L1 caches plus the shared Memory Version Manager.
//!
//! * [`vblock`] — the 16-byte Version Block record (version id, 30-bit
//!   physical next pointer, head bit, locked-by field, 32-bit datum), stored
//!   for real in the simulated physical memory and linked by physical
//!   pointers.
//! * [`compressed`] — compressed version-block cache lines: eight
//!   `(data, version-offset, lock-offset)` entries under an 18-bit version
//!   base, giving single-lookup *direct access* in the L1.
//! * [`manager`] — the [`manager::OManager`]: executes the six O-structure
//!   operations against the cache hierarchy with full timing (direct access
//!   vs. full list walk, pollution-avoiding fills, coherence discards), owns
//!   the hardware free list, and runs the shadowed/pending-list garbage
//!   collector of §III-B.
//! * [`oracle`] — opt-in runtime invariant oracles (lock exclusion, version
//!   monotonicity, GC liveness) the schedule-shaking stress harness checks
//!   across perturbed interleavings.
//!
//! All state that the paper puts "in memory" (version blocks, free-list
//! links) really is in [`osim_mem::PhysMem`]; all state the paper puts in
//! cache metadata (compressed lines) is keyed to real L1 slots managed by
//! [`osim_mem::Hierarchy`].

pub mod compressed;
pub mod manager;
pub mod oracle;
pub mod vblock;

pub use compressed::CompressedLine;
pub use osim_mem::{FaultPlan, Injector, PoolShrink, SpecError};

pub use manager::{
    BlockReason, GcConfig, MvmEvent, MvmEventKind, MvmHists, OManager, OManagerCfg, OStats,
    OpOutcome,
};
pub use oracle::OracleReport;
pub use vblock::VBlock;

/// A version identifier. Under the task-based runtime these are task IDs,
/// so version order mirrors sequential program order (§III-B rule 1).
pub type Version = u32;

/// A task identifier (used in locked-by fields). 0 means "unlocked".
pub type TaskId = u32;
