//! Compressed version-block cache lines (§III-A, "Data compression").
//!
//! Eight version-block entries are packed into one 64-byte L1 line: an
//! 18-bit *version base*, a 4-bit line offset (absorbed here into
//! [`CompressedLine::head_version`] book-keeping) and eight entries of
//! `(32-bit data, 14-bit version offset, 14-bit lock offset)`. The only
//! restriction compression imposes is that all versions and lockers cached
//! in one line fall within a 2^14 window above the base.
//!
//! The *payload* modeled here pairs with an L1 slot tracked by
//! [`osim_mem::Hierarchy`] (kind `Compressed`, tagged by the O-structure's
//! root physical address). When the hierarchy reports that slot evicted or
//! invalidated, the manager drops the payload.

use crate::{TaskId, Version};

/// Window covered by one compressed line: versions in `[base, base + 2^14)`.
pub const VERSION_WINDOW: u32 = 1 << 14;

/// One compressed version-block entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CEntry {
    /// Full version id (stored in hardware as a 14-bit offset from the base).
    pub version: Version,
    /// Full locker id, 0 if unlocked (stored as a 14-bit offset).
    pub locked_by: TaskId,
    /// The datum.
    pub data: u32,
    /// Physical address of the backing version block. Hardware recovers
    /// this from the version-block list; we carry it so lock/unlock hits
    /// can write the right block without a second walk. It does not change
    /// the modeled line size (the paper's entries are 60 bits and we only
    /// ever charge one L1 lookup for a direct access).
    pub block_pa: u32,
}

/// Payload of one compressed version-block line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CompressedLine {
    /// Version base; all entries satisfy `base <= version < base + 2^14`.
    base: Version,
    entries: Vec<CEntry>,
    /// LRU ticks, parallel to `entries`.
    lru: Vec<u64>,
    tick: u64,
    /// Version at the head of the version-block list, if this line knows it.
    /// Only when the head version is itself cached can a `LOAD-LATEST` be
    /// answered directly (otherwise a newer version might exist in memory).
    head_version: Option<Version>,
}

/// Capacity of a compressed line (8 entries per 64-byte line).
pub const ENTRIES_PER_LINE: usize = 8;

impl CompressedLine {
    /// An empty line.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up an exact version.
    pub fn get(&self, version: Version) -> Option<&CEntry> {
        self.entries.iter().find(|e| e.version == version)
    }

    /// Marks `version` most recently used.
    pub fn touch(&mut self, version: Version) {
        self.tick += 1;
        if let Some(i) = self.entries.iter().position(|e| e.version == version) {
            self.lru[i] = self.tick;
        }
    }

    /// The version at the list head, if known to this line.
    pub fn head_version(&self) -> Option<Version> {
        self.head_version
    }

    /// Records which version currently heads the list (or forgets it).
    pub fn set_head_version(&mut self, v: Option<Version>) {
        self.head_version = v;
    }

    /// Answers `LOAD-LATEST(cap)` directly if this line can prove the
    /// answer: the head version must be cached here and `head <= cap`
    /// (the head is the globally newest version, so it is the latest one
    /// not exceeding `cap`).
    pub fn latest_capped(&self, cap: Version) -> Option<&CEntry> {
        let head = self.head_version?;
        if head <= cap {
            self.get(head)
        } else {
            None
        }
    }

    /// Tries to insert (or update) an entry; fails if the version or locker
    /// cannot be expressed in this line's 2^14 window. The LRU entry is
    /// evicted when all eight slots are full.
    pub fn insert(&mut self, e: CEntry) -> bool {
        if self.entries.is_empty() {
            // An empty line re-bases itself to the incoming version.
            self.base = e.version & !(VERSION_WINDOW - 1);
        }
        if !self.fits(e.version) || (e.locked_by != 0 && !self.fits(e.locked_by)) {
            return false;
        }
        self.tick += 1;
        if let Some(i) = self.entries.iter().position(|x| x.version == e.version) {
            self.entries[i] = e;
            self.lru[i] = self.tick;
            return true;
        }
        if self.entries.len() == ENTRIES_PER_LINE {
            let victim = match self.lru.iter().enumerate().min_by_key(|(_, &t)| t) {
                Some((victim, _)) => victim,
                None => unreachable!("full line"),
            };
            if self.head_version == Some(self.entries[victim].version) {
                self.head_version = None;
            }
            self.entries.swap_remove(victim);
            self.lru.swap_remove(victim);
        }
        self.entries.push(e);
        self.lru.push(self.tick);
        true
    }

    /// Updates the lock field of a cached version in place. Returns false
    /// if the version is not cached or the locker does not fit the window.
    pub fn set_lock(&mut self, version: Version, locked_by: TaskId) -> bool {
        if locked_by != 0 && !self.fits(locked_by) {
            return false;
        }
        match self.entries.iter_mut().find(|e| e.version == version) {
            Some(e) => {
                e.locked_by = locked_by;
                true
            }
            None => false,
        }
    }

    /// Removes a version from the line (e.g. its block was reclaimed).
    pub fn remove(&mut self, version: Version) {
        if let Some(i) = self.entries.iter().position(|e| e.version == version) {
            self.entries.swap_remove(i);
            self.lru.swap_remove(i);
            if self.head_version == Some(version) {
                self.head_version = None;
            }
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// All cached entries (order is unspecified).
    pub fn entries_ref(&self) -> &[CEntry] {
        &self.entries
    }

    /// True if no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn fits(&self, v: u32) -> bool {
        v >= self.base && v - self.base < VERSION_WINDOW
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(version: u32, data: u32) -> CEntry {
        CEntry {
            version,
            locked_by: 0,
            data,
            block_pa: version * 16,
        }
    }

    #[test]
    fn insert_and_get() {
        let mut l = CompressedLine::new();
        assert!(l.insert(e(100, 7)));
        assert_eq!(l.get(100).unwrap().data, 7);
        assert!(l.get(99).is_none());
    }

    #[test]
    fn window_restriction() {
        let mut l = CompressedLine::new();
        assert!(l.insert(e(100, 1)));
        // 100 rounds down to base 0; 0x3fff fits, 0x4000 does not.
        assert!(l.insert(e(VERSION_WINDOW - 1, 2)));
        assert!(!l.insert(e(VERSION_WINDOW, 3)), "outside the 2^14 window");
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn empty_line_rebases() {
        let mut l = CompressedLine::new();
        assert!(l.insert(e(5 * VERSION_WINDOW + 3, 1)));
        assert!(l.insert(e(5 * VERSION_WINDOW + 9, 2)));
        assert!(!l.insert(e(3, 9)), "below the re-based window");
    }

    #[test]
    fn lru_eviction_at_capacity() {
        let mut l = CompressedLine::new();
        for v in 0..8 {
            assert!(l.insert(e(v, v)));
        }
        l.touch(0); // keep version 0 hot; version 1 is now LRU
        assert!(l.insert(e(8, 8)));
        assert_eq!(l.len(), 8);
        assert!(l.get(1).is_none(), "LRU victim evicted");
        assert!(l.get(0).is_some());
        assert!(l.get(8).is_some());
    }

    #[test]
    fn latest_capped_requires_known_head() {
        let mut l = CompressedLine::new();
        l.insert(e(10, 1));
        assert!(l.latest_capped(20).is_none(), "head unknown");
        l.set_head_version(Some(10));
        assert_eq!(l.latest_capped(20).unwrap().version, 10);
        assert_eq!(l.latest_capped(10).unwrap().version, 10);
        assert!(l.latest_capped(9).is_none(), "head newer than cap");
    }

    #[test]
    fn evicting_head_entry_forgets_head() {
        let mut l = CompressedLine::new();
        for v in 0..8 {
            l.insert(e(v, v));
        }
        l.set_head_version(Some(7));
        for v in 1..8 {
            l.touch(v); // version 0... wait, make 7 the LRU
        }
        // Make 7 coldest: touch all others.
        for v in 0..7 {
            l.touch(v);
        }
        l.insert(e(9, 9));
        assert!(l.get(7).is_none());
        assert_eq!(l.head_version(), None);
    }

    #[test]
    fn set_lock_updates_in_place() {
        let mut l = CompressedLine::new();
        l.insert(e(4, 0));
        assert!(l.set_lock(4, 9));
        assert_eq!(l.get(4).unwrap().locked_by, 9);
        assert!(l.set_lock(4, 0));
        assert_eq!(l.get(4).unwrap().locked_by, 0);
        assert!(!l.set_lock(5, 9), "absent version");
    }

    #[test]
    fn oversized_locker_rejected() {
        let mut l = CompressedLine::new();
        l.insert(e(4, 0));
        assert!(
            !l.set_lock(4, 2 * VERSION_WINDOW),
            "locker outside window cannot be compressed"
        );
    }

    #[test]
    fn remove_clears_entry_and_head() {
        let mut l = CompressedLine::new();
        l.insert(e(4, 0));
        l.set_head_version(Some(4));
        l.remove(4);
        assert!(l.is_empty());
        assert_eq!(l.head_version(), None);
    }

    #[test]
    fn reinsert_same_version_updates() {
        let mut l = CompressedLine::new();
        l.insert(e(4, 1));
        l.insert(e(4, 2));
        assert_eq!(l.len(), 1);
        assert_eq!(l.get(4).unwrap().data, 2);
    }
}
