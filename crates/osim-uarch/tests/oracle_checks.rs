//! Integration tests for the runtime invariant oracles: armed runs must
//! record checks (and no violations) across lock, store and GC paths, and
//! disarmed runs must report nothing.

use osim_mem::{HierarchyCfg, MemSys, PageFlags};
use osim_uarch::{GcConfig, OManager, OManagerCfg};

fn setup(cfg: OManagerCfg) -> (MemSys, OManager, u32) {
    let mut ms = MemSys::new(HierarchyCfg::paper(2), 64 << 20);
    let va = ms.map_zeroed(1, PageFlags::VersionedRoot).unwrap();
    let mgr = OManager::new(cfg, &mut ms).unwrap();
    (ms, mgr, va)
}

fn armed_cfg() -> OManagerCfg {
    OManagerCfg {
        initial_free_blocks: 256,
        refill_blocks: 256,
        gc: GcConfig { watermark: 10_000 }, // trigger on every allocation
        oracles: true,
        ..OManagerCfg::default()
    }
}

#[test]
fn disarmed_manager_reports_no_oracle() {
    let (mut ms, mut mgr, va) = setup(OManagerCfg::default());
    mgr.store_version(&mut ms, 0, va, 1, 10).unwrap();
    assert!(mgr.oracle_report().is_none());
}

#[test]
fn lock_oracle_counts_grants_and_releases() {
    let (mut ms, mut mgr, va) = setup(armed_cfg());
    mgr.store_version(&mut ms, 0, va, 1, 10).unwrap();
    // Grant via the full-lookup path, release, then grant again through the
    // compressed line (direct path).
    mgr.lock_load_version(&mut ms, 0, va, 1, 7).unwrap();
    mgr.unlock_version(&mut ms, 0, va, 1, 7, None).unwrap();
    mgr.lock_load_version(&mut ms, 0, va, 1, 8).unwrap();
    mgr.unlock_version(&mut ms, 0, va, 1, 8, None).unwrap();
    let rep = mgr.oracle_report().expect("oracle armed");
    assert!(rep.ok(), "no violations expected: {:?}", rep.details);
    assert_eq!(rep.lock_checks, 4, "2 grants + 2 releases");
}

#[test]
fn order_oracle_checks_sorted_insertions() {
    let (mut ms, mut mgr, va) = setup(armed_cfg());
    // Out-of-order creation exercises middle, front and back insertions.
    for v in [5u32, 2, 9, 7, 1] {
        mgr.store_version(&mut ms, 0, va, v, v).unwrap();
    }
    let rep = mgr.oracle_report().expect("oracle armed");
    assert!(rep.ok(), "no violations expected: {:?}", rep.details);
    assert_eq!(rep.order_checks, 5, "one check per store");
}

#[test]
fn gc_oracle_checks_reclaimed_blocks() {
    let (mut ms, mut mgr, va) = setup(armed_cfg());
    mgr.task_begin(1);
    mgr.store_version(&mut ms, 0, va, 1, 10).unwrap();
    mgr.task_begin(2);
    mgr.store_version(&mut ms, 0, va, 2, 20).unwrap(); // shadows v1
    mgr.task_begin(3);
    mgr.store_version(&mut ms, 0, va, 3, 30).unwrap(); // phase starts
    mgr.task_end(&mut ms, 1);
    mgr.task_end(&mut ms, 2);
    mgr.task_end(&mut ms, 3); // phase finalizes, v1 reclaimed
    assert_eq!(mgr.stats.reclaimed_blocks, 1);
    let rep = mgr.oracle_report().expect("oracle armed");
    assert!(rep.ok(), "no violations expected: {:?}", rep.details);
    assert_eq!(rep.gc_checks, 1, "one check per reclaimed block");
    assert!(rep.checks() >= rep.gc_checks + rep.order_checks);
}

#[test]
fn oracle_stays_clean_under_unsorted_insertion_ablation() {
    // The §IV-F "no version sorting" ablation prepends unconditionally; the
    // order oracle must skip lists whose order was genuinely violated
    // rather than flag the ablation as a bug.
    let cfg = OManagerCfg {
        sorted_insertion: false,
        ..armed_cfg()
    };
    let (mut ms, mut mgr, va) = setup(cfg);
    for v in [5u32, 2, 9, 7, 1] {
        mgr.store_version(&mut ms, 0, va, v, v).unwrap();
    }
    let rep = mgr.oracle_report().expect("oracle armed");
    assert!(
        rep.ok(),
        "ablation must not trip the oracle: {:?}",
        rep.details
    );
}
