//! Tests for the manager's performance paths: the compressed-line store
//! fast path, the staged free list, and sortedness tracking in the
//! unsorted-insertion ablation.

use osim_mem::{HierarchyCfg, MemSys, PageFlags};
use osim_uarch::{OManager, OManagerCfg, OpOutcome};

fn setup(cores: usize, cfg: OManagerCfg) -> (MemSys, OManager, u32) {
    let mut ms = MemSys::new(HierarchyCfg::paper(cores), 64 << 20);
    let va = ms.map_zeroed(1, PageFlags::VersionedRoot).unwrap();
    let mgr = OManager::new(cfg, &mut ms).unwrap();
    (ms, mgr, va)
}

fn latency(out: OpOutcome) -> u64 {
    match out {
        OpOutcome::Done { latency, .. } => latency,
        other => panic!("expected Done, got {other:?}"),
    }
}

#[test]
fn warm_front_store_is_faster_than_cold() {
    let (mut ms, mut mgr, va) = setup(1, OManagerCfg::default());
    // Cold store: must read the (empty) root, walk nothing, allocate.
    let cold = latency(mgr.store_version(&mut ms, 0, va, 1, 1).unwrap());
    // The store installed a compressed line with the head version, so the
    // next front insertion takes the fast path: one cache lookup + the
    // link writes, no walk.
    let warm = latency(mgr.store_version(&mut ms, 0, va, 2, 2).unwrap());
    assert!(
        warm <= cold,
        "fast-path store {warm} should not exceed cold store {cold}"
    );
    let walks_before = mgr.stats.walk_reads;
    latency(mgr.store_version(&mut ms, 0, va, 3, 3).unwrap());
    assert_eq!(
        mgr.stats.walk_reads, walks_before,
        "fast-path stores do not walk the version list"
    );
}

#[test]
fn fast_path_preserves_list_structure() {
    let (mut ms, mut mgr, va) = setup(1, OManagerCfg::default());
    for v in 1..=20u32 {
        mgr.store_version(&mut ms, 0, va, v, v * 10).unwrap();
    }
    let versions: Vec<u32> = mgr
        .peek_versions(&ms, va)
        .unwrap()
        .iter()
        .map(|&(v, _, _)| v)
        .collect();
    assert_eq!(versions, (1..=20u32).rev().collect::<Vec<_>>());
    // Shadowing still registered along the fast path: 19 older versions.
    assert_eq!(mgr.shadowed_len(), 19);
    // Head-bit protection: only the newest block is a head.
    for v in 1..=20u32 {
        match mgr.load_version(&mut ms, 0, va, v).unwrap() {
            OpOutcome::Done { value, .. } => assert_eq!(value, v * 10),
            other => panic!("version {v}: {other:?}"),
        }
    }
}

#[test]
fn remote_mutation_disables_the_fast_path_until_rebuilt() {
    let (mut ms, mut mgr, va) = setup(2, OManagerCfg::default());
    mgr.store_version(&mut ms, 0, va, 1, 1).unwrap();
    mgr.store_version(&mut ms, 0, va, 2, 2).unwrap();
    let walks_before = mgr.stats.walk_reads;
    // Core 1 has no compressed line for this root: its store walks.
    mgr.store_version(&mut ms, 1, va, 3, 3).unwrap();
    assert!(mgr.stats.walk_reads > walks_before);
    // Core 0's line was invalidated by core 1's store: its next store
    // walks again, then re-arms the fast path.
    let walks_before = mgr.stats.walk_reads;
    mgr.store_version(&mut ms, 0, va, 4, 4).unwrap();
    assert!(mgr.stats.walk_reads > walks_before);
    let walks_before = mgr.stats.walk_reads;
    mgr.store_version(&mut ms, 0, va, 5, 5).unwrap();
    assert_eq!(mgr.stats.walk_reads, walks_before, "fast path re-armed");
}

#[test]
fn out_of_order_store_disables_early_exit_but_stays_correct() {
    let cfg = OManagerCfg {
        sorted_insertion: false,
        ..OManagerCfg::default()
    };
    let (mut ms, mut mgr, va) = setup(1, cfg);
    // In-order creation keeps the prepend-only list sorted.
    for v in [1u32, 2, 3] {
        mgr.store_version(&mut ms, 0, va, v, v).unwrap();
    }
    let sorted: Vec<u32> = mgr
        .peek_versions(&ms, va)
        .unwrap()
        .iter()
        .map(|&(v, _, _)| v)
        .collect();
    assert_eq!(
        sorted,
        vec![3, 2, 1],
        "prepend of ascending versions is sorted"
    );
    // An out-of-order store flags the list; lookups remain correct.
    mgr.store_version(&mut ms, 0, va, 2_000, 42).unwrap();
    mgr.store_version(&mut ms, 0, va, 10, 10).unwrap(); // out of order now
    let shape: Vec<u32> = mgr
        .peek_versions(&ms, va)
        .unwrap()
        .iter()
        .map(|&(v, _, _)| v)
        .collect();
    assert_eq!(
        shape,
        vec![10, 2000, 3, 2, 1],
        "prepend order, not version order"
    );
    for (cap, want) in [(1u32, 1u32), (5, 3), (10, 10), (5000, 2000)] {
        match mgr.load_latest(&mut ms, 0, va, cap).unwrap() {
            OpOutcome::Done { version, .. } => assert_eq!(version, want, "cap {cap}"),
            other => panic!("cap {cap}: {other:?}"),
        }
    }
    // Duplicate detection still works on the unsorted list.
    assert!(mgr.store_version(&mut ms, 0, va, 2, 0).is_err());
}

#[test]
fn allocation_latency_is_l1_class() {
    // The staged free list: allocations must not pay DRAM-class latency,
    // or the §IV-F comparison inverts (fresh blocks all cold-miss).
    let (mut ms, mut mgr, va) = setup(1, OManagerCfg::default());
    let first = latency(mgr.store_version(&mut ms, 0, va, 1, 1).unwrap());
    // Store = root read (cold, up to DRAM) + pop (L1-class) + three writes
    // (L1-class after fill_local). Everything beyond the root read must be
    // small.
    assert!(
        first < 120 + 80,
        "store latency {first} suggests a cold-miss allocation path"
    );
}
