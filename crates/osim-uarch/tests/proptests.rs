//! Property-based cross-validation: the microarchitectural O-structure
//! manager (caches, compressed lines, version-block lists, GC) against a
//! plain functional model of the §II-A semantics. Whatever path an access
//! takes — direct compressed hit, full list walk, post-coherence rebuild —
//! the architectural result must be identical.

use std::collections::BTreeMap;

use proptest::prelude::*;

use osim_mem::{HierarchyCfg, MemSys, PageFlags};
use osim_uarch::{BlockReason, GcConfig, OManager, OManagerCfg, OpOutcome};

fn blocked_with(out: &OpOutcome, want: BlockReason) -> bool {
    matches!(out, OpOutcome::Blocked { reason, .. } if *reason == want)
}

#[derive(Debug, Clone)]
enum Step {
    Store {
        cell: u8,
        v: u32,
        val: u32,
        core: u8,
    },
    Load {
        cell: u8,
        v: u32,
        core: u8,
    },
    Latest {
        cell: u8,
        cap: u32,
        core: u8,
    },
    LockLatest {
        cell: u8,
        cap: u32,
        tid: u8,
        core: u8,
    },
    Unlock {
        cell: u8,
        tid: u8,
        create: Option<u32>,
        core: u8,
    },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let cell = 0u8..4;
    let ver = 1u32..24;
    let core = 0u8..2;
    prop_oneof![
        (cell.clone(), ver.clone(), any::<u32>(), core.clone())
            .prop_map(|(cell, v, val, core)| Step::Store { cell, v, val, core }),
        (cell.clone(), ver.clone(), core.clone()).prop_map(|(cell, v, core)| Step::Load {
            cell,
            v,
            core
        }),
        (cell.clone(), ver.clone(), core.clone()).prop_map(|(cell, cap, core)| Step::Latest {
            cell,
            cap,
            core
        }),
        (cell.clone(), ver.clone(), 1u8..6, core.clone()).prop_map(|(cell, cap, tid, core)| {
            Step::LockLatest {
                cell,
                cap,
                tid,
                core,
            }
        }),
        (cell, 1u8..6, proptest::option::of(ver), core).prop_map(|(cell, tid, create, core)| {
            Step::Unlock {
                cell,
                tid,
                create,
                core,
            }
        }),
    ]
}

/// Functional model of one cell.
#[derive(Default)]
struct ModelCell {
    versions: BTreeMap<u32, (u32, u32)>, // version -> (value, locked_by; 0 = free)
    held: BTreeMap<u32, u32>,            // tid -> version
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn manager_matches_functional_model(
        steps in proptest::collection::vec(step_strategy(), 1..80),
    ) {
        let mut ms = MemSys::new(HierarchyCfg::paper(2), 64 << 20);
        let base = ms.map_zeroed(1, PageFlags::VersionedRoot).unwrap();
        let mut mgr = OManager::new(
            OManagerCfg {
                initial_free_blocks: 256,
                gc: GcConfig { watermark: 0 }, // no GC: the model keeps all versions
                ..OManagerCfg::default()
            },
            &mut ms,
        )
        .unwrap();
        let mut model: Vec<ModelCell> = (0..4).map(|_| ModelCell::default()).collect();
        let va = |cell: u8| base + cell as u32 * 4;

        for step in steps {
            match step {
                Step::Store { cell, v, val, core } => {
                    let m = &mut model[cell as usize];
                    let want_err = m.versions.contains_key(&v);
                    let got = mgr.store_version(&mut ms, core as usize, va(cell), v, val);
                    if want_err {
                        prop_assert!(got.is_err(), "store of existing version must fault");
                    } else {
                        prop_assert!(got.is_ok());
                        m.versions.insert(v, (val, 0));
                    }
                }
                Step::Load { cell, v, core } => {
                    let m = &model[cell as usize];
                    let got = mgr.load_version(&mut ms, core as usize, va(cell), v).unwrap();
                    match m.versions.get(&v) {
                        Some(&(val, 0)) => match got {
                            OpOutcome::Done { value, version, .. } => {
                                prop_assert_eq!((value, version), (val, v));
                            }
                            other => prop_assert!(false, "expected Done, got {:?}", other),
                        },
                        Some(_) => prop_assert!(blocked_with(&got, BlockReason::VersionLocked)),
                        None => prop_assert!(blocked_with(&got, BlockReason::VersionAbsent)),
                    }
                }
                Step::Latest { cell, cap, core } => {
                    let m = &model[cell as usize];
                    let got = mgr.load_latest(&mut ms, core as usize, va(cell), cap).unwrap();
                    match m.versions.range(..=cap).next_back() {
                        Some((&v, &(val, 0))) => match got {
                            OpOutcome::Done { value, version, .. } => {
                                prop_assert_eq!((value, version), (val, v));
                            }
                            other => prop_assert!(false, "expected Done, got {:?}", other),
                        },
                        Some(_) => prop_assert!(blocked_with(&got, BlockReason::VersionLocked)),
                        None => prop_assert!(blocked_with(&got, BlockReason::VersionAbsent)),
                    }
                }
                Step::LockLatest { cell, cap, tid, core } => {
                    let m = &mut model[cell as usize];
                    // Keep the protocol simple: one lock per task per cell.
                    if m.held.contains_key(&(tid as u32)) {
                        continue;
                    }
                    let got = mgr
                        .lock_load_latest(&mut ms, core as usize, va(cell), cap, tid as u32)
                        .unwrap();
                    match m.versions.range(..=cap).next_back().map(|(&v, &s)| (v, s)) {
                        Some((v, (val, 0))) => {
                            match got {
                                OpOutcome::Done { value, version, .. } => {
                                    prop_assert_eq!((value, version), (val, v));
                                }
                                other => prop_assert!(false, "expected Done, got {:?}", other),
                            }
                            m.versions.get_mut(&v).unwrap().1 = tid as u32;
                            m.held.insert(tid as u32, v);
                        }
                        Some(_) => prop_assert!(blocked_with(&got, BlockReason::VersionLocked)),
                        None => prop_assert!(blocked_with(&got, BlockReason::VersionAbsent)),
                    }
                }
                Step::Unlock { cell, tid, create, core } => {
                    let m = &mut model[cell as usize];
                    let Some(&vl) = m.held.get(&(tid as u32)) else {
                        let got = mgr.unlock_version(
                            &mut ms, core as usize, va(cell), 1, tid as u32, None,
                        );
                        prop_assert!(got.is_err(), "unlock without hold must fault");
                        continue;
                    };
                    // Skip renames that would collide; the workload layer
                    // guarantees fresh rename versions.
                    if let Some(vn) = create {
                        if m.versions.contains_key(&vn) {
                            continue;
                        }
                    }
                    let got = mgr
                        .unlock_version(&mut ms, core as usize, va(cell), vl, tid as u32, create)
                        .unwrap();
                    prop_assert!(matches!(got, OpOutcome::Done { .. }), "unlock must succeed");
                    let val = m.versions.get(&vl).unwrap().0;
                    m.versions.get_mut(&vl).unwrap().1 = 0;
                    m.held.remove(&(tid as u32));
                    if let Some(vn) = create {
                        m.versions.insert(vn, (val, 0));
                    }
                }
            }
        }

        // Final structural agreement: every cell's version list matches.
        for (i, m) in model.iter().enumerate() {
            let got = mgr.peek_versions(&ms, va(i as u8)).unwrap();
            let want: Vec<(u32, u32, u32)> = m
                .versions
                .iter()
                .rev()
                .map(|(&v, &(val, lock))| (v, val, lock))
                .collect();
            prop_assert_eq!(got, want, "cell {}", i);
        }
    }
}
