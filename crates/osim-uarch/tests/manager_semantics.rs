//! Semantic tests for the O-structure operations (§II-A of the paper),
//! exercised through the full microarchitectural path: page table, caches,
//! version-block lists and compressed lines.

use osim_mem::{Fault, HierarchyCfg, MemSys, PageFlags};
use osim_uarch::{BlockReason, GcConfig, OManager, OManagerCfg, OpOutcome};

fn setup(cores: usize, cfg: OManagerCfg) -> (MemSys, OManager, u32) {
    let mut ms = MemSys::new(HierarchyCfg::paper(cores), 64 << 20);
    let va = ms.map_zeroed(1, PageFlags::VersionedRoot).unwrap();
    let mgr = OManager::new(cfg, &mut ms).unwrap();
    (ms, mgr, va)
}

fn default_setup() -> (MemSys, OManager, u32) {
    setup(2, OManagerCfg::default())
}

fn value_of(out: OpOutcome) -> u32 {
    match out {
        OpOutcome::Done { value, .. } => value,
        other => panic!("expected Done, got {other:?}"),
    }
}

fn version_of(out: OpOutcome) -> u32 {
    match out {
        OpOutcome::Done { version, .. } => version,
        other => panic!("expected Done, got {other:?}"),
    }
}

fn reason_of(out: OpOutcome) -> BlockReason {
    match out {
        OpOutcome::Blocked { reason, .. } => reason,
        other => panic!("expected Blocked, got {other:?}"),
    }
}

#[test]
fn store_then_load_exact() {
    let (mut ms, mut mgr, va) = default_setup();
    mgr.store_version(&mut ms, 0, va, 3, 0x2a).unwrap();
    let out = mgr.load_version(&mut ms, 0, va, 3).unwrap();
    assert_eq!(value_of(out), 0x2a);
}

#[test]
fn load_of_absent_version_blocks() {
    let (mut ms, mut mgr, va) = default_setup();
    let out = mgr.load_version(&mut ms, 0, va, 1).unwrap();
    assert_eq!(reason_of(out), BlockReason::VersionAbsent);
    mgr.store_version(&mut ms, 0, va, 2, 9).unwrap();
    // Version 1 still does not exist; only version 2 does.
    let out = mgr.load_version(&mut ms, 0, va, 1).unwrap();
    assert_eq!(reason_of(out), BlockReason::VersionAbsent);
}

#[test]
fn out_of_order_version_creation() {
    // §II-A: "version 2 may be stored to and loaded from before version 1
    // is created" — the renaming behaviour.
    let (mut ms, mut mgr, va) = default_setup();
    mgr.store_version(&mut ms, 0, va, 2, 22).unwrap();
    assert_eq!(value_of(mgr.load_version(&mut ms, 0, va, 2).unwrap()), 22);
    mgr.store_version(&mut ms, 0, va, 1, 11).unwrap();
    assert_eq!(value_of(mgr.load_version(&mut ms, 0, va, 1).unwrap()), 11);
    assert_eq!(value_of(mgr.load_version(&mut ms, 0, va, 2).unwrap()), 22);
    // The list is kept sorted newest-first regardless of creation order.
    let vers: Vec<u32> = mgr
        .peek_versions(&ms, va)
        .unwrap()
        .iter()
        .map(|&(v, _, _)| v)
        .collect();
    assert_eq!(vers, vec![2, 1]);
}

#[test]
fn all_created_versions_remain_loadable() {
    let (mut ms, mut mgr, va) = default_setup();
    for v in 1..=20u32 {
        mgr.store_version(&mut ms, 0, va, v, v * 100).unwrap();
    }
    for v in 1..=20u32 {
        assert_eq!(
            value_of(mgr.load_version(&mut ms, 0, va, v).unwrap()),
            v * 100
        );
    }
}

#[test]
fn versions_are_immutable() {
    let (mut ms, mut mgr, va) = default_setup();
    mgr.store_version(&mut ms, 0, va, 5, 1).unwrap();
    assert_eq!(
        mgr.store_version(&mut ms, 0, va, 5, 2),
        Err(Fault::VersionExists { va, version: 5 })
    );
    assert_eq!(value_of(mgr.load_version(&mut ms, 0, va, 5).unwrap()), 1);
}

#[test]
fn load_latest_picks_highest_not_exceeding_cap() {
    let (mut ms, mut mgr, va) = default_setup();
    for v in [2u32, 5, 9] {
        mgr.store_version(&mut ms, 0, va, v, v).unwrap();
    }
    for (cap, want_ver) in [(2u32, 2u32), (3, 2), (5, 5), (8, 5), (9, 9), (100, 9)] {
        let out = mgr.load_latest(&mut ms, 0, va, cap).unwrap();
        assert_eq!(version_of(out), want_ver, "cap {cap}");
        assert_eq!(
            value_of(mgr.load_latest(&mut ms, 0, va, cap).unwrap()),
            want_ver
        );
    }
    // Below every version: blocks.
    let out = mgr.load_latest(&mut ms, 0, va, 1).unwrap();
    assert_eq!(reason_of(out), BlockReason::VersionAbsent);
}

#[test]
fn lock_blocks_exact_loads_of_that_version_only() {
    let (mut ms, mut mgr, va) = default_setup();
    mgr.store_version(&mut ms, 0, va, 1, 10).unwrap();
    mgr.store_version(&mut ms, 0, va, 2, 20).unwrap();
    let out = mgr.lock_load_version(&mut ms, 0, va, 1, 7).unwrap();
    assert_eq!(value_of(out), 10);
    // Same version: stalls (even from another core).
    let out = mgr.load_version(&mut ms, 1, va, 1).unwrap();
    assert_eq!(reason_of(out), BlockReason::VersionLocked);
    // "If another version of the same location is locked, the lock is
    // ignored": version 2 loads fine.
    assert_eq!(value_of(mgr.load_version(&mut ms, 1, va, 2).unwrap()), 20);
}

#[test]
fn locking_a_locked_version_stalls() {
    let (mut ms, mut mgr, va) = default_setup();
    mgr.store_version(&mut ms, 0, va, 1, 10).unwrap();
    mgr.lock_load_version(&mut ms, 0, va, 1, 7).unwrap();
    let out = mgr.lock_load_version(&mut ms, 1, va, 1, 8).unwrap();
    assert_eq!(reason_of(out), BlockReason::VersionLocked);
}

#[test]
fn unlock_requires_owner() {
    let (mut ms, mut mgr, va) = default_setup();
    mgr.store_version(&mut ms, 0, va, 1, 10).unwrap();
    mgr.lock_load_version(&mut ms, 0, va, 1, 7).unwrap();
    assert_eq!(
        mgr.unlock_version(&mut ms, 1, va, 1, 8, None),
        Err(Fault::NotLockOwner { va, version: 1 })
    );
    mgr.unlock_version(&mut ms, 0, va, 1, 7, None).unwrap();
    assert_eq!(value_of(mgr.load_version(&mut ms, 1, va, 1).unwrap()), 10);
}

#[test]
fn unlock_with_create_copies_value() {
    // UNLOCK-VERSION(vl, vn): "optionally create a new version vn with the
    // same value as that stored in version vl; vn is left unlocked".
    let (mut ms, mut mgr, va) = default_setup();
    mgr.store_version(&mut ms, 0, va, 3, 33).unwrap();
    mgr.lock_load_version(&mut ms, 0, va, 3, 3).unwrap();
    mgr.unlock_version(&mut ms, 0, va, 3, 3, Some(4)).unwrap();
    let out = mgr.load_version(&mut ms, 1, va, 4).unwrap();
    assert_eq!(value_of(out), 33);
    // Both versions exist and are unlocked.
    let vers = mgr.peek_versions(&ms, va).unwrap();
    assert_eq!(vers, vec![(4, 33, 0), (3, 33, 0)]);
}

#[test]
fn load_latest_blocks_when_latest_is_locked() {
    let (mut ms, mut mgr, va) = default_setup();
    mgr.store_version(&mut ms, 0, va, 1, 10).unwrap();
    mgr.store_version(&mut ms, 0, va, 5, 50).unwrap();
    mgr.lock_load_version(&mut ms, 0, va, 5, 9).unwrap();
    // Latest ≤ 7 is version 5 which is locked: the call blocks (it does
    // NOT fall back to version 1 — ordering would break).
    let out = mgr.load_latest(&mut ms, 1, va, 7).unwrap();
    assert_eq!(reason_of(out), BlockReason::VersionLocked);
    // But a cap below 5 is served by version 1 regardless of the lock.
    assert_eq!(value_of(mgr.load_latest(&mut ms, 1, va, 4).unwrap()), 10);
}

#[test]
fn hand_over_hand_unlock_create_orders_follower() {
    // The §IV-D traversal idiom: predecessor holds the latest version
    // locked, follower's LOCK-LOAD-LATEST stalls, unlock(+1) releases it.
    let (mut ms, mut mgr, va) = default_setup();
    mgr.store_version(&mut ms, 0, va, 1, 77).unwrap();
    // Task 1 (predecessor) locks latest ≤ 1.
    let out = mgr.lock_load_latest(&mut ms, 0, va, 1, 1).unwrap();
    assert_eq!(version_of(out), 1);
    // Task 2 (follower) tries to lock latest ≤ 2: stalls on the lock.
    let out = mgr.lock_load_latest(&mut ms, 1, va, 2, 2).unwrap();
    assert_eq!(reason_of(out), BlockReason::VersionLocked);
    // Predecessor unlocks, renaming to version 2.
    mgr.unlock_version(&mut ms, 0, va, 1, 1, Some(2)).unwrap();
    // Follower retries and now locks version 2.
    let out = mgr.lock_load_latest(&mut ms, 1, va, 2, 2).unwrap();
    assert_eq!(version_of(out), 2);
    assert_eq!(value_of(mgr.load_version(&mut ms, 0, va, 1).unwrap()), 77);
}

#[test]
fn direct_access_is_faster_than_full_lookup() {
    let (mut ms, mut mgr, va) = default_setup();
    for v in 1..=8u32 {
        mgr.store_version(&mut ms, 0, va, v, v).unwrap();
    }
    // A cold load from core 1 walks the list.
    let cold = mgr.load_version(&mut ms, 1, va, 8).unwrap();
    let direct_before = mgr.stats.direct_hits;
    // The second identical load is a compressed-line direct hit.
    let warm = mgr.load_version(&mut ms, 1, va, 8).unwrap();
    assert!(
        mgr.stats.direct_hits > direct_before,
        "second load is direct"
    );
    assert!(
        warm.latency() < cold.latency(),
        "direct {} < full {}",
        warm.latency(),
        cold.latency()
    );
}

#[test]
fn remote_store_discards_compressed_line() {
    let (mut ms, mut mgr, va) = default_setup();
    mgr.store_version(&mut ms, 0, va, 1, 1).unwrap();
    // Core 1 warms its compressed line.
    mgr.load_version(&mut ms, 1, va, 1).unwrap();
    mgr.load_version(&mut ms, 1, va, 1).unwrap();
    let drops_before = ms.hier.stats.compressed_coherence_drops;
    // Core 0 stores a new version: coherence discards core 1's line.
    mgr.store_version(&mut ms, 0, va, 2, 2).unwrap();
    assert!(ms.hier.stats.compressed_coherence_drops > drops_before);
    let full_before = mgr.stats.full_lookups;
    mgr.load_version(&mut ms, 1, va, 1).unwrap();
    assert!(
        mgr.stats.full_lookups > full_before,
        "line was rebuilt by a walk"
    );
}

#[test]
fn versioned_ops_fault_on_conventional_pages() {
    let (mut ms, mut mgr, _va) = default_setup();
    let conv = ms.map_zeroed(1, PageFlags::Conventional).unwrap();
    assert_eq!(
        mgr.load_version(&mut ms, 0, conv, 1),
        Err(Fault::VersionedAccessToConventionalPage { va: conv })
    );
    assert_eq!(
        mgr.store_version(&mut ms, 0, conv, 1, 0),
        Err(Fault::VersionedAccessToConventionalPage { va: conv })
    );
}

#[test]
fn extra_latency_knob_inflates_every_versioned_op() {
    // The Figure 10 mechanism: inject N cycles into each versioned access.
    let run = |extra: u64| {
        let cfg = OManagerCfg {
            versioned_extra_latency: extra,
            ..OManagerCfg::default()
        };
        let (mut ms, mut mgr, va) = setup(1, cfg);
        let s = mgr.store_version(&mut ms, 0, va, 1, 1).unwrap().latency();
        let l = mgr.load_version(&mut ms, 0, va, 1).unwrap().latency();
        (s, l)
    };
    let (s0, l0) = run(0);
    let (s10, l10) = run(10);
    assert_eq!(s10, s0 + 10);
    assert_eq!(l10, l0 + 10);
}

#[test]
fn unsorted_mode_still_correct() {
    let cfg = OManagerCfg {
        sorted_insertion: false,
        ..OManagerCfg::default()
    };
    let (mut ms, mut mgr, va) = setup(1, cfg);
    for v in [4u32, 1, 3, 2] {
        mgr.store_version(&mut ms, 0, va, v, v * 10).unwrap();
    }
    for v in 1..=4u32 {
        assert_eq!(
            value_of(mgr.load_version(&mut ms, 0, va, v).unwrap()),
            v * 10
        );
    }
    assert_eq!(version_of(mgr.load_latest(&mut ms, 0, va, 3).unwrap()), 3);
    assert_eq!(
        mgr.store_version(&mut ms, 0, va, 4, 0),
        Err(Fault::VersionExists { va, version: 4 })
    );
}

// ----------------------------------------------------------------------
// Garbage collection (§III-B)
// ----------------------------------------------------------------------

fn gc_cfg() -> OManagerCfg {
    OManagerCfg {
        initial_free_blocks: 256,
        refill_blocks: 256,
        gc: GcConfig { watermark: 10_000 }, // trigger on every allocation
        ..OManagerCfg::default()
    }
}

#[test]
fn shadowed_version_is_reclaimed_after_tasks_pass() {
    let (mut ms, mut mgr, va) = setup(1, gc_cfg());
    mgr.task_begin(1);
    mgr.store_version(&mut ms, 0, va, 1, 10).unwrap();
    mgr.task_begin(2);
    mgr.store_version(&mut ms, 0, va, 2, 20).unwrap(); // shadows v1
    assert_eq!(mgr.shadowed_len(), 1);
    mgr.task_begin(3);
    mgr.store_version(&mut ms, 0, va, 3, 30).unwrap(); // phase starts
    assert!(mgr.gc_phase_active());
    // Version 1 is shadowed but still accessible ("The blocks may still be
    // accessed by the program").
    assert_eq!(value_of(mgr.load_version(&mut ms, 0, va, 1).unwrap()), 10);
    mgr.task_end(&mut ms, 1);
    mgr.task_end(&mut ms, 2);
    assert!(mgr.gc_phase_active(), "task 3 still active");
    mgr.task_end(&mut ms, 3);
    assert!(!mgr.gc_phase_active());
    assert_eq!(mgr.stats.gc_phases, 1);
    assert_eq!(mgr.stats.reclaimed_blocks, 1);
    // Version 1 is gone; 2 and 3 remain.
    let vers: Vec<u32> = mgr
        .peek_versions(&ms, va)
        .unwrap()
        .iter()
        .map(|&(v, _, _)| v)
        .collect();
    assert_eq!(vers, vec![3, 2]);
    let out = mgr.load_version(&mut ms, 0, va, 1).unwrap();
    assert_eq!(reason_of(out), BlockReason::VersionAbsent);
}

#[test]
fn gc_waits_for_old_readers() {
    let (mut ms, mut mgr, va) = setup(1, gc_cfg());
    mgr.task_begin(1);
    mgr.store_version(&mut ms, 0, va, 1, 10).unwrap();
    mgr.task_begin(2);
    mgr.store_version(&mut ms, 0, va, 2, 20).unwrap();
    mgr.task_begin(3);
    mgr.store_version(&mut ms, 0, va, 3, 30).unwrap(); // phase starts
                                                       // Tasks 2 and 3 end, but task 1 (old) is still running: no reclaim.
    mgr.task_end(&mut ms, 3);
    mgr.task_end(&mut ms, 2);
    assert!(mgr.gc_phase_active());
    assert_eq!(value_of(mgr.load_version(&mut ms, 0, va, 1).unwrap()), 10);
    mgr.task_end(&mut ms, 1);
    assert!(!mgr.gc_phase_active());
    assert_eq!(mgr.stats.reclaimed_blocks, 1);
}

#[test]
fn gc_recovers_free_blocks() {
    let (mut ms, mut mgr, va) = setup(1, gc_cfg());
    let initial_free = mgr.free_blocks();
    // A long chain of stores, each shadowing its predecessor, with task
    // windows closing as we go.
    for t in 1..=100u32 {
        mgr.task_begin(t);
        mgr.store_version(&mut ms, 0, va, t, t).unwrap();
        mgr.task_end(&mut ms, t);
    }
    assert!(mgr.stats.gc_phases >= 1);
    assert!(
        mgr.stats.reclaimed_blocks >= 90,
        "{}",
        mgr.stats.reclaimed_blocks
    );
    // Free list is nearly back to the start: allocated 100, reclaimed most.
    assert!(initial_free - mgr.free_blocks() <= 10);
    // The newest version survives.
    assert_eq!(
        value_of(mgr.load_version(&mut ms, 0, va, 100).unwrap()),
        100
    );
}

#[test]
fn refill_trap_extends_free_list() {
    let cfg = OManagerCfg {
        initial_free_blocks: 256,
        refill_blocks: 256,
        gc: GcConfig { watermark: 0 }, // GC disabled
        ..OManagerCfg::default()
    };
    let (mut ms, mut mgr, va) = setup(1, cfg);
    for v in 1..=300u32 {
        mgr.store_version(&mut ms, 0, va, v, v).unwrap();
    }
    assert!(mgr.stats.refill_traps >= 1);
    assert_eq!(mgr.stats.allocated_blocks, 300);
    // Everything is still loadable (nothing was collected).
    assert_eq!(value_of(mgr.load_version(&mut ms, 0, va, 1).unwrap()), 1);
    assert_eq!(
        value_of(mgr.load_version(&mut ms, 0, va, 300).unwrap()),
        300
    );
}

#[test]
fn out_of_ram_faults() {
    let cfg = OManagerCfg {
        initial_free_blocks: 256,
        refill_blocks: 256,
        gc: GcConfig { watermark: 0 },
        ..OManagerCfg::default()
    };
    // Tiny RAM: a handful of pages.
    let mut ms = MemSys::new(HierarchyCfg::paper(1), 8 * 4096);
    let va = ms.map_zeroed(1, PageFlags::VersionedRoot).unwrap();
    let mut mgr = OManager::new(cfg, &mut ms).unwrap();
    let mut faulted = false;
    for v in 1..=4000u32 {
        match mgr.store_version(&mut ms, 0, va, v, v) {
            Ok(_) => {}
            Err(Fault::OutOfVersionBlocks) => {
                faulted = true;
                break;
            }
            Err(e) => panic!("unexpected fault {e:?}"),
        }
    }
    assert!(faulted, "RAM exhaustion must surface as OutOfVersionBlocks");
}

#[test]
fn multiple_ostructures_are_independent() {
    let (mut ms, mut mgr, va) = default_setup();
    let va2 = va + 4;
    let va3 = va + 64; // different cache line
    mgr.store_version(&mut ms, 0, va, 1, 100).unwrap();
    mgr.store_version(&mut ms, 0, va2, 1, 200).unwrap();
    mgr.store_version(&mut ms, 0, va3, 2, 300).unwrap();
    assert_eq!(value_of(mgr.load_version(&mut ms, 0, va, 1).unwrap()), 100);
    assert_eq!(value_of(mgr.load_version(&mut ms, 0, va2, 1).unwrap()), 200);
    assert_eq!(value_of(mgr.load_latest(&mut ms, 0, va3, 9).unwrap()), 300);
    assert_eq!(
        reason_of(mgr.load_version(&mut ms, 0, va3, 1).unwrap()),
        BlockReason::VersionAbsent
    );
}

#[test]
fn determinism_of_latencies() {
    let run = || {
        let (mut ms, mut mgr, va) = default_setup();
        let mut sig = Vec::new();
        for v in 1..=32u32 {
            let core = (v % 2) as usize;
            sig.push(
                mgr.store_version(&mut ms, core, va, v, v)
                    .unwrap()
                    .latency(),
            );
            sig.push(mgr.load_latest(&mut ms, 1 - core, va, v).unwrap().latency());
        }
        sig
    };
    assert_eq!(run(), run());
}

// ----------------------------------------------------------------------
// §III-C: converting an O-structure back to conventional use
// ----------------------------------------------------------------------

#[test]
fn release_structure_returns_blocks_and_resets_the_root() {
    let (mut ms, mut mgr, va) = default_setup();
    for v in 1..=10u32 {
        mgr.store_version(&mut ms, 0, va, v, v).unwrap();
    }
    let free_before = mgr.free_blocks();
    let freed = mgr.release_structure(&mut ms, va).unwrap();
    assert_eq!(freed, 10);
    assert_eq!(mgr.free_blocks(), free_before + 10);
    // The address is a fresh O-structure again.
    let out = mgr.load_latest(&mut ms, 0, va, u32::MAX).unwrap();
    assert_eq!(reason_of(out), BlockReason::VersionAbsent);
    mgr.store_version(&mut ms, 0, va, 1, 99).unwrap();
    assert_eq!(value_of(mgr.load_version(&mut ms, 0, va, 1).unwrap()), 99);
}

#[test]
fn release_structure_faults_on_a_locked_version() {
    let (mut ms, mut mgr, va) = default_setup();
    mgr.store_version(&mut ms, 0, va, 1, 1).unwrap();
    mgr.lock_load_version(&mut ms, 0, va, 1, 7).unwrap();
    assert!(mgr.release_structure(&mut ms, va).is_err());
    // The structure is untouched.
    mgr.unlock_version(&mut ms, 0, va, 1, 7, None).unwrap();
    assert_eq!(value_of(mgr.load_version(&mut ms, 0, va, 1).unwrap()), 1);
}

#[test]
fn release_structure_of_empty_cell_is_a_noop() {
    let (mut ms, mut mgr, va) = default_setup();
    assert_eq!(mgr.release_structure(&mut ms, va).unwrap(), 0);
}

#[test]
fn released_blocks_do_not_confuse_a_pending_gc_phase() {
    let (mut ms, mut mgr, va) = setup(1, gc_cfg());
    let va2 = va + 4;
    mgr.task_begin(1);
    mgr.store_version(&mut ms, 0, va, 1, 1).unwrap();
    mgr.store_version(&mut ms, 0, va2, 1, 1).unwrap();
    mgr.task_begin(2);
    mgr.store_version(&mut ms, 0, va, 2, 2).unwrap(); // shadows va:1
    mgr.store_version(&mut ms, 0, va2, 2, 2).unwrap(); // shadows va2:1
    mgr.task_begin(3);
    mgr.store_version(&mut ms, 0, va, 3, 3).unwrap(); // phase starts
    assert!(mgr.gc_phase_active());
    // Release va2 entirely while its shadowed entry is pending.
    mgr.release_structure(&mut ms, va2).unwrap();
    mgr.task_end(&mut ms, 1);
    mgr.task_end(&mut ms, 2);
    mgr.task_end(&mut ms, 3);
    assert!(!mgr.gc_phase_active());
    // va's shadowed version was reclaimed; the released va2 blocks were
    // not double-freed (free count is consistent: 3 va blocks + 2 va2
    // blocks allocated, 1 va block GC'd, 2 va2 blocks released).
    let vers: Vec<u32> = mgr
        .peek_versions(&ms, va)
        .unwrap()
        .iter()
        .map(|&(v, _, _)| v)
        .collect();
    assert_eq!(vers, vec![3, 2]);
    assert!(mgr.peek_versions(&ms, va2).unwrap().is_empty());
}
