//! Shared configuration for the criterion benches.
//!
//! Every bench here drives a *simulation*; what criterion measures is the
//! host time to simulate one configuration, which tracks the simulated
//! cycle count closely for a fixed machine. The figures themselves are
//! regenerated (in simulated cycles, with full validation) by
//! `cargo run -p osim-experiments --release -- <figN>`; the benches keep
//! the same sweeps continuously exercised and timed at a criterion-friendly
//! size.

use osim_workloads::harness::DsCfg;

/// A bench-sized irregular workload (small enough for criterion's
/// repeated sampling).
pub fn bench_cfg(initial: usize, ops: usize, reads_per_write: u32) -> DsCfg {
    DsCfg {
        initial,
        ops,
        reads_per_write,
        scan_range: 0,
        key_space: initial as u32 * 4,
        seed: 0xbe,
        insert_only: false,
    }
}
