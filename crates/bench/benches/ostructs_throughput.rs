//! Multithreaded throughput for the concurrent versioned store (ISSUE 8):
//! the software O-structure hot paths measured the way a storage engine
//! would be — ops/sec across real threads, uncontended and contended.
//!
//! Groups:
//! * `uncontended` — each thread owns a private preloaded cell and loads
//!   committed versions; measures the read fast path with zero sharing.
//! * `hot_key` — every thread hammers one shared cell (reads) or one
//!   shared key (writes); measures the contended single-cell path.
//! * `zipf_mixed` — 90/10 read/write mix over a sharded `OMap` with a
//!   zipf-skewed key distribution and a live `ReaderRegistry` + `Vacuum`;
//!   the end-to-end store shape.
//! * `mutex_baseline` — a replica of the pre-ISSUE-8 one-big-mutex cell,
//!   so the committed-read fast path's win is visible in one run.
//!
//! Each bench routine performs `ops()` operations per timed call (split
//! across the thread count), so the printed per-call nanoseconds divided
//! by `ops()` is the per-op cost. `OSIM_BENCH_SMOKE=1` shrinks every
//! workload to CI-smoke size.

use criterion::{criterion_group, criterion_main, Criterion};
use ostructs_core::map::OMap;
use ostructs_core::vacuum::{ReaderRegistry, Vacuum, VacuumCfg};
use ostructs_core::OCell;
use std::hint::black_box;
use std::sync::Arc;
use std::thread;

fn smoke() -> bool {
    std::env::var_os("OSIM_BENCH_SMOKE").is_some()
}

/// Total operations per timed call (all threads combined).
fn ops() -> u64 {
    if smoke() {
        2_000
    } else {
        200_000
    }
}

fn thread_counts() -> Vec<usize> {
    let max = thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1];
    for t in [2, 4, 8] {
        if t <= max && !smoke() {
            counts.push(t);
        }
    }
    if smoke() && max >= 2 {
        counts.push(2);
    }
    counts
}

/// splitmix64: the repo's standard deterministic stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A zipf(s≈1) sampler over `n` keys via an inverse-CDF table.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Self {
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / k as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        Zipf { cdf: weights }
    }

    fn sample(&self, rng: &mut u64) -> usize {
        let u = (splitmix64(rng) >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Runs `body` on `threads` threads, each performing `per_thread` ops.
fn fan_out(threads: usize, per_thread: u64, body: impl Fn(usize, u64) + Sync) {
    if threads == 1 {
        body(0, per_thread);
        return;
    }
    thread::scope(|scope| {
        for t in 0..threads {
            let body = &body;
            scope.spawn(move || body(t, per_thread));
        }
    });
}

fn uncontended(c: &mut Criterion) {
    let mut g = c.benchmark_group("ostructs/uncontended");
    g.sample_size(10);
    for threads in thread_counts() {
        let per_thread = ops() / threads as u64;
        // One private, preloaded cell per thread: committed-read fast path.
        let cells: Vec<OCell<u64>> = (0..threads)
            .map(|_| {
                let cell = OCell::new();
                for v in 1..=32u64 {
                    cell.store_version(v, v).unwrap();
                }
                cell
            })
            .collect();
        g.bench_function(format!("load_latest/t{threads}"), |b| {
            b.iter(|| {
                fan_out(threads, per_thread, |t, n| {
                    let cell = &cells[t];
                    for i in 0..n {
                        black_box(cell.try_load_latest(black_box(1 + i % 32)));
                    }
                });
            })
        });
        g.bench_function(format!("load_version_arc/t{threads}"), |b| {
            b.iter(|| {
                fan_out(threads, per_thread, |t, n| {
                    let cell = &cells[t];
                    for i in 0..n {
                        black_box(cell.try_load_version_arc(black_box(1 + i % 32)));
                    }
                });
            })
        });
    }
    g.finish();
}

fn hot_key(c: &mut Criterion) {
    let mut g = c.benchmark_group("ostructs/hot_key");
    g.sample_size(10);
    for threads in thread_counts() {
        let per_thread = ops() / threads as u64;
        let cell = OCell::new();
        for v in 1..=32u64 {
            cell.store_version(v, v).unwrap();
        }
        g.bench_function(format!("shared_load_latest/t{threads}"), |b| {
            b.iter(|| {
                fan_out(threads, per_thread, |_, n| {
                    for i in 0..n {
                        black_box(cell.try_load_latest(black_box(1 + i % 32)));
                    }
                });
            })
        });
    }
    // Contended writes: every op stores a fresh version of one key.
    let write_ops = ops() / 10; // stores grow history; keep calls bounded
    for threads in thread_counts() {
        let per_thread = write_ops / threads as u64;
        g.bench_function(format!("shared_store/t{threads}"), |b| {
            let next = Arc::new(std::sync::atomic::AtomicU64::new(1));
            b.iter(|| {
                let cell: OCell<u64> = OCell::with_initial(0, 0);
                fan_out(threads, per_thread, |_, n| {
                    for _ in 0..n {
                        let v = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        cell.store_version(v, v).unwrap();
                    }
                });
                black_box(cell.version_count())
            })
        });
    }
    g.finish();
}

fn zipf_mixed(c: &mut Criterion) {
    let mut g = c.benchmark_group("ostructs/zipf_mixed");
    g.sample_size(10);
    let keys = if smoke() { 64 } else { 1024 };
    let zipf = Zipf::new(keys);
    for threads in thread_counts() {
        let per_thread = ops() / threads as u64;
        let reg = ReaderRegistry::new();
        let _vac = Vacuum::start(
            reg.clone(),
            VacuumCfg {
                interval: std::time::Duration::from_millis(5),
            },
        );
        let m: OMap<u32, u64> = OMap::new();
        for k in 0..keys as u32 {
            let v = reg.next_version();
            m.insert(k, v, u64::from(k)).unwrap();
        }
        g.bench_function(format!("get90_put10/t{threads}"), |b| {
            b.iter(|| {
                fan_out(threads, per_thread, |t, n| {
                    let mut rng = 0x5eed_0000 + t as u64;
                    for _ in 0..n {
                        let k = zipf.sample(&mut rng) as u32;
                        if splitmix64(&mut rng).is_multiple_of(10) {
                            let v = reg.next_version();
                            m.insert(k, v, v).unwrap();
                        } else {
                            let pin = reg.pin();
                            black_box(m.get_arc(&k, pin.cap()));
                        }
                    }
                });
            })
        });
    }
    g.finish();
}

/// The pre-ISSUE-8 design, replicated faithfully: every operation —
/// including committed reads — takes one big mutex over a version map of
/// `Slot`s (value + lock owner) plus the per-task lock table. Kept in the
/// bench so the committed-read fast path's win is measurable in one run
/// without checking out an old commit.
mod mutex_replica {
    use parking_lot::Mutex;
    use std::collections::{BTreeMap, HashMap};

    struct Slot {
        value: u64,
        locked_by: Option<u64>,
    }

    struct State {
        versions: BTreeMap<u64, Slot>,
        #[allow(dead_code)]
        held: HashMap<u64, u64>,
    }

    pub struct MutexCell {
        state: Mutex<State>,
    }

    impl MutexCell {
        pub fn new() -> Self {
            MutexCell {
                state: Mutex::new(State {
                    versions: BTreeMap::new(),
                    held: HashMap::new(),
                }),
            }
        }

        pub fn store_version(&self, v: u64, val: u64) {
            self.state.lock().versions.insert(
                v,
                Slot {
                    value: val,
                    locked_by: None,
                },
            );
        }

        pub fn try_load_latest(&self, cap: u64) -> Option<(u64, u64)> {
            self.state
                .lock()
                .versions
                .range(..=cap)
                .next_back()
                .filter(|(_, s)| s.locked_by.is_none())
                .map(|(&v, s)| (v, s.value))
        }
    }
}

fn mutex_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("ostructs/mutex_baseline");
    g.sample_size(10);
    for threads in thread_counts() {
        let per_thread = ops() / threads as u64;
        let cell = mutex_replica::MutexCell::new();
        for v in 1..=32u64 {
            cell.store_version(v, v);
        }
        g.bench_function(format!("shared_load_latest/t{threads}"), |b| {
            b.iter(|| {
                fan_out(threads, per_thread, |_, n| {
                    for i in 0..n {
                        black_box(cell.try_load_latest(black_box(1 + i % 32)));
                    }
                });
            })
        });
    }
    g.finish();
}

criterion_group!(benches, uncontended, hot_key, zipf_mixed, mutex_baseline);
criterion_main!(benches);
