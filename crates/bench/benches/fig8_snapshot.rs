//! Figure 8 bench: versioned BST vs the read-write-lock baseline on the
//! scans+inserts mix.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osim_cpu::MachineCfg;
use osim_workloads::btree;
use osim_workloads::harness::DsCfg;

fn cfg(scan_range: u32) -> DsCfg {
    DsCfg {
        initial: 100,
        ops: 48,
        reads_per_write: 3,
        scan_range,
        key_space: 400,
        seed: 0xf8,
        insert_only: true,
    }
}

fn fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8");
    g.sample_size(10);
    for range in [1u32, 8, 64] {
        g.bench_with_input(BenchmarkId::new("versioned_8c", range), &range, |b, &r| {
            b.iter(|| {
                btree::run_versioned(MachineCfg::paper(8), &cfg(r))
                    .assert_ok()
                    .cycles
            })
        });
        g.bench_with_input(BenchmarkId::new("rwlock_8c", range), &range, |b, &r| {
            b.iter(|| {
                btree::run_rwlock(MachineCfg::paper(8), &cfg(r))
                    .assert_ok()
                    .cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
