//! Figure 9 bench: the L1 size sweep.

use bench::bench_cfg;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osim_cpu::MachineCfg;
use osim_mem::CacheCfg;
use osim_workloads::btree;

fn fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9");
    g.sample_size(10);
    let cfg = bench_cfg(100, 48, 4);
    for kb in [8u32, 32, 128] {
        g.bench_with_input(BenchmarkId::new("btree_versioned_8c", kb), &kb, |b, &kb| {
            b.iter(|| {
                let mut m = MachineCfg::paper(8);
                m.hier.l1 = CacheCfg::l1_sized(kb);
                btree::run_versioned(m, &cfg).assert_ok().cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
