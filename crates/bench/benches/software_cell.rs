//! Software O-structure benchmarks (the §II-C observation that software
//! versioning is much slower than plain memory operations, motivating
//! hardware support).
//!
//! Set `OSIM_BENCH_SMOKE=1` to shrink every workload to CI-smoke size.

use criterion::{criterion_group, criterion_main, Criterion};
use ostructs_core::{OCell, ORuntime};
use std::hint::black_box;

fn smoke() -> bool {
    std::env::var_os("OSIM_BENCH_SMOKE").is_some()
}

fn cell_ops(c: &mut Criterion) {
    let versions = if smoke() { 8u64 } else { 64 };
    let tasks = if smoke() { 8 } else { 64 };
    let mut g = c.benchmark_group("software_cell");
    g.sample_size(10);
    g.bench_function("store_version", |b| {
        b.iter_with_setup(OCell::new, |cell| {
            for v in 1..=versions {
                cell.store_version(v, v as u32).unwrap();
            }
            black_box(cell.version_count())
        })
    });
    g.bench_function("load_latest_64_versions", |b| {
        let cell = OCell::new();
        for v in 1..=versions {
            cell.store_version(v, v as u32).unwrap();
        }
        b.iter(|| black_box(cell.load_latest(black_box(versions))))
    });
    g.bench_function("lock_unlock_rename", |b| {
        let cell = OCell::with_initial(0, 0u32);
        let mut next = 1u64;
        b.iter(|| {
            let (vl, _) = cell.lock_load_latest(u64::MAX, 1).unwrap();
            let _ = vl;
            cell.unlock_version(1, Some(next)).unwrap();
            next += 1;
        })
    });
    g.bench_function("plain_mutex_baseline", |b| {
        // What the software cell competes against: a plain lock + word.
        let m = std::sync::Mutex::new(0u32);
        b.iter(|| {
            let mut g = m.lock().unwrap();
            *g = g.wrapping_add(1);
            black_box(*g)
        })
    });
    g.bench_function("runtime_pipeline_64_tasks", |b| {
        b.iter(|| {
            let rt = ORuntime::new(4);
            let cell = OCell::with_initial(0, 0u64);
            rt.track(&cell);
            let tasks: Vec<Box<dyn FnOnce(u64) + Send>> = (0..tasks)
                .map(|_| {
                    let cell = cell.clone();
                    Box::new(move |tid: u64| {
                        let prev = cell.load_version(tid - 1);
                        cell.store_version(tid, prev + 1).unwrap();
                    }) as Box<dyn FnOnce(u64) + Send>
                })
                .collect();
            rt.run(tasks);
            black_box(cell.load_latest(u64::MAX))
        })
    });
    g.finish();
}

criterion_group!(benches, cell_ops);
criterion_main!(benches);
