//! Hot-path microbenchmarks: each one isolates a single layer the PR 4
//! optimisations touched, so a change to the scheduler, gate arena, cache
//! directory or version manager is measured on its own rather than through
//! a whole experiment sweep.
//!
//! Set `OSIM_BENCH_SMOKE=1` to shrink every workload to CI-smoke size
//! (exercises the code, proves nothing about performance).

use criterion::{criterion_group, criterion_main, Criterion};
use osim_engine::{SchedulerKind, Sim};
use osim_mem::{AccessKind, HierarchyCfg, MemSys, PageFlags};
use osim_uarch::{OManager, OManagerCfg};

fn smoke() -> bool {
    std::env::var_os("OSIM_BENCH_SMOKE").is_some()
}

/// Pure event-dispatch throughput: many tasks ticking the clock, no gates,
/// no memory system. Compares the calendar queue against the reference
/// binary heap on the exact same event schedule.
fn executor_throughput(c: &mut Criterion) {
    let (tasks, ticks) = if smoke() { (8, 50) } else { (64, 2_000) };
    let mut g = c.benchmark_group("hotpath/executor");
    g.sample_size(10);
    for kind in [SchedulerKind::CalendarQueue, SchedulerKind::BinaryHeap] {
        g.bench_function(format!("sleep_storm/{}", kind.name()), |b| {
            b.iter(|| {
                let sim = Sim::with_scheduler(kind);
                for t in 0..tasks {
                    let h = sim.handle();
                    sim.spawn(async move {
                        // Staggered periods keep all wheel buckets busy.
                        let period = 1 + (t % 7);
                        for _ in 0..ticks {
                            h.sleep(period).await;
                        }
                    });
                }
                sim.run().unwrap()
            })
        });
    }
    g.finish();
}

/// Steady-state gate traffic: a broadcast opener and a pack of waiters that
/// re-park every cycle — the slab waiter arena's recycle path.
fn gate_wait_open(c: &mut Criterion) {
    let (waiters, rounds) = if smoke() { (4, 50) } else { (32, 2_000) };
    let mut g = c.benchmark_group("hotpath/gate");
    g.sample_size(10);
    for kind in [SchedulerKind::CalendarQueue, SchedulerKind::BinaryHeap] {
        g.bench_function(format!("broadcast_churn/{}", kind.name()), |b| {
            b.iter(|| {
                let sim = Sim::with_scheduler(kind);
                let h = sim.handle();
                let gate = h.gate();
                for _ in 0..waiters {
                    let gate = gate.clone();
                    sim.spawn(async move {
                        for _ in 0..rounds {
                            gate.wait().await;
                        }
                    });
                }
                sim.spawn(async move {
                    for _ in 0..rounds {
                        gate.open_at(h.now() + 1);
                        h.sleep(1).await;
                    }
                });
                sim.run().unwrap()
            })
        });
    }
    g.finish();
}

/// The L1 hit path: repeated reads of a small resident set, plus the
/// presence-directory bookkeeping that rides on every access.
fn l1_hit_path(c: &mut Criterion) {
    let accesses = if smoke() { 1_000 } else { 200_000 };
    let mut g = c.benchmark_group("hotpath/l1");
    g.sample_size(10);
    g.bench_function("resident_reads", |b| {
        let mut ms = MemSys::new(HierarchyCfg::paper(2), 64 << 20);
        // 8 resident lines, touched once to fill.
        for i in 0..8u32 {
            ms.hier.access(0, 0x1000 + i * 64, AccessKind::Read);
        }
        b.iter(|| {
            let mut total = 0u64;
            for i in 0..accesses {
                let line = 0x1000 + (i % 8) * 64;
                total += ms.hier.access(0, line, AccessKind::Read).latency;
            }
            total
        })
    });
    g.finish();
}

/// The versioned-store fast path plus direct-hit loads: the version
/// manager's host-side mirror, exact-version index and compressed lines.
fn versioned_store_path(c: &mut Criterion) {
    let stores = if smoke() { 200 } else { 20_000 };
    let mut g = c.benchmark_group("hotpath/versioned");
    g.sample_size(10);
    g.bench_function("store_then_load", |b| {
        b.iter(|| {
            let mut ms = MemSys::new(HierarchyCfg::paper(1), 64 << 20);
            let va = ms.map_zeroed(1, PageFlags::VersionedRoot).unwrap();
            let cfg = OManagerCfg {
                initial_free_blocks: stores + 64,
                ..Default::default()
            };
            let mut mgr = OManager::new(cfg, &mut ms).unwrap();
            let mut total = 0u64;
            for v in 1..=stores {
                mgr.store_version(&mut ms, 0, va, v, v).unwrap();
                if let osim_uarch::OpOutcome::Done { latency, .. } =
                    mgr.load_version(&mut ms, 0, va, v).unwrap()
                {
                    total += latency;
                }
            }
            total
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    executor_throughput,
    gate_wait_open,
    l1_hit_path,
    versioned_store_path
);
criterion_main!(benches);
