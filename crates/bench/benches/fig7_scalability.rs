//! Figure 7 bench: the core-count sweep of versioned runs.

use bench::bench_cfg;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osim_cpu::MachineCfg;
use osim_workloads::{btree, linked_list};

fn fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7");
    g.sample_size(10);
    let cfg = bench_cfg(100, 48, 4);
    for cores in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("linked_list", cores),
            &cores,
            |b, &cores| {
                b.iter(|| {
                    linked_list::run_versioned(MachineCfg::paper(cores), &cfg)
                        .assert_ok()
                        .cycles
                })
            },
        );
        g.bench_with_input(BenchmarkId::new("btree", cores), &cores, |b, &cores| {
            b.iter(|| {
                btree::run_versioned(MachineCfg::paper(cores), &cfg)
                    .assert_ok()
                    .cycles
            })
        });
    }
    g.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
