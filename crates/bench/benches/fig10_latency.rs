//! Figure 10 bench: the injected versioned-op latency sweep.

use bench::bench_cfg;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use osim_cpu::MachineCfg;
use osim_workloads::btree;

fn fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10");
    g.sample_size(10);
    let cfg = bench_cfg(100, 48, 4);
    for extra in [0u64, 2, 6, 10] {
        g.bench_with_input(
            BenchmarkId::new("btree_versioned_8c", extra),
            &extra,
            |b, &e| {
                b.iter(|| {
                    let mut m = MachineCfg::paper(8);
                    m.omgr.versioned_extra_latency = e;
                    btree::run_versioned(m, &cfg).assert_ok().cycles
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, fig10);
criterion_main!(benches);
