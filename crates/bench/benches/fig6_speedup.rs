//! Figure 6 bench: one parallel-versioned and one sequential-unversioned
//! run per benchmark (the ratio of simulated cycles is the figure's bar).

use bench::bench_cfg;
use criterion::{criterion_group, criterion_main, Criterion};
use osim_cpu::MachineCfg;
use osim_workloads::levenshtein::LevCfg;
use osim_workloads::matmul::MatmulCfg;
use osim_workloads::{btree, hashtable, levenshtein, linked_list, matmul, rbtree};

fn fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    let cfg = bench_cfg(80, 48, 4);
    g.bench_function("linked_list/versioned_8c", |b| {
        b.iter(|| {
            linked_list::run_versioned(MachineCfg::paper(8), &cfg)
                .assert_ok()
                .cycles
        })
    });
    g.bench_function("linked_list/unversioned_seq", |b| {
        b.iter(|| {
            linked_list::run_unversioned(MachineCfg::paper(1), &cfg)
                .assert_ok()
                .cycles
        })
    });
    g.bench_function("btree/versioned_8c", |b| {
        b.iter(|| {
            btree::run_versioned(MachineCfg::paper(8), &cfg)
                .assert_ok()
                .cycles
        })
    });
    g.bench_function("btree/unversioned_seq", |b| {
        b.iter(|| {
            btree::run_unversioned(MachineCfg::paper(1), &cfg)
                .assert_ok()
                .cycles
        })
    });
    g.bench_function("hashtable/versioned_8c", |b| {
        b.iter(|| {
            hashtable::run_versioned(MachineCfg::paper(8), &cfg)
                .assert_ok()
                .cycles
        })
    });
    g.bench_function("hashtable/unversioned_seq", |b| {
        b.iter(|| {
            hashtable::run_unversioned(MachineCfg::paper(1), &cfg)
                .assert_ok()
                .cycles
        })
    });
    g.bench_function("rbtree/versioned_8c", |b| {
        b.iter(|| {
            rbtree::run_versioned(MachineCfg::paper(8), &cfg)
                .assert_ok()
                .cycles
        })
    });
    g.bench_function("rbtree/unversioned_seq", |b| {
        b.iter(|| {
            rbtree::run_unversioned(MachineCfg::paper(1), &cfg)
                .assert_ok()
                .cycles
        })
    });
    let mat = MatmulCfg { n: 12, seed: 1 };
    g.bench_function("matmul/versioned_8c", |b| {
        b.iter(|| {
            matmul::run_versioned(MachineCfg::paper(8), &mat)
                .assert_ok()
                .cycles
        })
    });
    g.bench_function("matmul/unversioned_seq", |b| {
        b.iter(|| {
            matmul::run_unversioned(MachineCfg::paper(1), &mat)
                .assert_ok()
                .cycles
        })
    });
    let lev = LevCfg { len: 32, seed: 2 };
    g.bench_function("levenshtein/versioned_8c", |b| {
        b.iter(|| {
            levenshtein::run_versioned(MachineCfg::paper(8), &lev)
                .assert_ok()
                .cycles
        })
    });
    g.bench_function("levenshtein/unversioned_seq", |b| {
        b.iter(|| {
            levenshtein::run_unversioned(MachineCfg::paper(1), &lev)
                .assert_ok()
                .cycles
        })
    });
    g.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
