//! Design-choice ablations called out in DESIGN.md:
//!
//! * per-pass renaming (Fig. 1-faithful) vs lock-only ordering in the
//!   linked-list pipeline;
//! * long vs short order-cell holds in the red-black writer (the §IV-D
//!   delete-locking observation).

use bench::bench_cfg;
use criterion::{criterion_group, criterion_main, Criterion};
use osim_cpu::MachineCfg;
use osim_workloads::rbtree::LockHold;
use osim_workloads::{linked_list, rbtree};

fn ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let cfg = bench_cfg(80, 48, 1);
    g.bench_function("list/rename_on_pass", |b| {
        b.iter(|| {
            linked_list::run_versioned_with(MachineCfg::paper(8), &cfg, true)
                .assert_ok()
                .cycles
        })
    });
    g.bench_function("list/lock_only", |b| {
        b.iter(|| {
            linked_list::run_versioned_with(MachineCfg::paper(8), &cfg, false)
                .assert_ok()
                .cycles
        })
    });
    g.bench_function("rbtree/long_hold", |b| {
        b.iter(|| {
            rbtree::run_versioned_with(MachineCfg::paper(8), &cfg, LockHold::Long)
                .assert_ok()
                .cycles
        })
    });
    g.bench_function("rbtree/short_hold", |b| {
        b.iter(|| {
            rbtree::run_versioned_with(MachineCfg::paper(8), &cfg, LockHold::Short)
                .assert_ok()
                .cycles
        })
    });
    g.finish();
}

criterion_group!(benches, ablations);
criterion_main!(benches);
