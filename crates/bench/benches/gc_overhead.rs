//! §IV-F bench: the collecting vs non-collecting configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use osim_cpu::MachineCfg;
use osim_uarch::GcConfig;
use osim_workloads::harness::DsCfg;
use osim_workloads::linked_list;

fn cfg() -> DsCfg {
    DsCfg {
        initial: 10,
        ops: 200,
        reads_per_write: 1,
        scan_range: 0,
        key_space: 64,
        seed: 0x6c,
        insert_only: false,
    }
}

fn gc(c: &mut Criterion) {
    let mut g = c.benchmark_group("gc_overhead");
    g.sample_size(10);
    g.bench_function("tight_watermark", |b| {
        b.iter(|| {
            let mut m = MachineCfg::paper(1);
            m.omgr.initial_free_blocks = 512;
            m.omgr.refill_blocks = 256;
            m.omgr.gc = GcConfig { watermark: 448 };
            linked_list::run_versioned_with(m, &cfg(), true)
                .assert_ok()
                .cycles
        })
    });
    g.bench_function("plentiful_no_gc", |b| {
        b.iter(|| {
            let mut m = MachineCfg::paper(1);
            m.omgr.initial_free_blocks = 1 << 16;
            m.omgr.gc = GcConfig { watermark: 0 };
            linked_list::run_versioned_with(m, &cfg(), true)
                .assert_ok()
                .cycles
        })
    });
    g.finish();
}

criterion_group!(benches, gc);
criterion_main!(benches);
