//! Integration tests of the simulated machine: cores, runtime, versioned
//! operations end-to-end, and the reader-writer lock baseline.

use std::cell::RefCell;
use std::rc::Rc;

use osim_cpu::{task, Machine, MachineCfg, SimError, WaitClass};

fn machine(cores: usize) -> Machine {
    Machine::new(MachineCfg::paper(cores))
}

#[test]
fn producer_consumer_across_cores() {
    let mut m = machine(2);
    let root = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_root(&mut s.ms).unwrap()
    };
    let got = Rc::new(RefCell::new(None));
    let got2 = Rc::clone(&got);
    let tasks = vec![
        // Task 1 on core 0: long compute, then publish version 1.
        task(move |ctx| async move {
            ctx.work(10_000).await;
            ctx.store_version(root, 1, 0xabcd).await;
        }),
        // Task 2 on core 1: starts immediately, must stall on version 1.
        task(move |ctx| async move {
            let v = ctx.load_version(root, 1).await;
            *got2.borrow_mut() = Some((v, ctx.now()));
        }),
    ];
    let report = m.run_tasks(tasks).unwrap();
    let (v, t) = got.borrow().unwrap();
    assert_eq!(v, 0xabcd);
    assert!(t >= 5_000, "consumer had to wait for the producer");
    assert!(report.cycles() >= 5_000);
    let st = m.state();
    let st = st.borrow();
    assert_eq!(st.cpu.versioned_loads, 1);
    assert_eq!(st.cpu.versioned_loads_stalled, 1);
    assert!(st.cpu.stall_cycles > 0);
    assert_eq!(st.cpu.tasks_run, 2);
}

#[test]
fn static_assignment_round_robins_cores() {
    let mut m = machine(4);
    let cores_seen = Rc::new(RefCell::new(Vec::new()));
    let tasks = (0..8)
        .map(|i| {
            let log = Rc::clone(&cores_seen);
            task(move |ctx| async move {
                log.borrow_mut().push((i, ctx.core(), ctx.tid()));
                ctx.work(1).await;
            })
        })
        .collect();
    m.run_tasks(tasks).unwrap();
    let mut log = cores_seen.borrow_mut();
    log.sort();
    let expect: Vec<(usize, usize, u32)> = (0..8).map(|i| (i, i % 4, i as u32 + 1)).collect();
    assert_eq!(*log, expect);
}

#[test]
fn hand_over_hand_pipeline_is_ordered() {
    // Four tasks pass through one cell in task order using the Fig. 1
    // protocol: LOCK-LOAD-LATEST, then UNLOCK(vl, tid+1).
    let mut m = machine(4);
    let root = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_root(&mut s.ms).unwrap()
    };
    let order = Rc::new(RefCell::new(Vec::new()));
    let mut tasks = vec![task(move |ctx| async move {
        // Task 1 seeds version 1.
        ctx.store_version(root, 1, 7).await;
    })];
    for _ in 0..3 {
        let order = Rc::clone(&order);
        tasks.push(task(move |ctx| async move {
            let tid = ctx.tid();
            let (vl, val) = ctx.lock_load_latest(root, tid).await;
            assert_eq!(val, 7);
            order.borrow_mut().push(tid);
            // Simulate some critical-section work before releasing.
            ctx.work(200).await;
            ctx.unlock_version(root, vl, Some(tid + 1)).await;
        }));
    }
    m.run_tasks(tasks).unwrap();
    assert_eq!(*order.borrow(), vec![2, 3, 4], "tasks entered in id order");
}

#[test]
fn conventional_memory_is_coherent_across_cores() {
    let mut m = machine(2);
    let buf = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_data(&mut s.ms, 4).unwrap()
    };
    let seen = Rc::new(RefCell::new(0));
    let seen2 = Rc::clone(&seen);
    let tasks = vec![
        task(move |ctx| async move {
            ctx.store_u32(buf, 99).await;
            ctx.work(100).await;
        }),
        task(move |ctx| async move {
            // Poll until the writer's value is visible.
            loop {
                let v = ctx.load_u32(buf).await;
                if v == 99 {
                    *seen2.borrow_mut() = v;
                    break;
                }
                ctx.work(10).await;
            }
        }),
    ];
    m.run_tasks(tasks).unwrap();
    assert_eq!(*seen.borrow(), 99);
}

#[test]
fn rwlock_excludes_writers() {
    let mut m = machine(4);
    let (lock_va, counter) = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        let l = s.alloc.alloc_data(&mut s.ms, 4).unwrap();
        let c = s.alloc.alloc_data(&mut s.ms, 4).unwrap();
        (l, c)
    };
    let n = 16;
    let tasks = (0..n)
        .map(|_| {
            task(move |ctx| async move {
                let lock = osim_cpu::SimRwLock::at(lock_va);
                lock.write_lock(&ctx).await;
                // Non-atomic read-modify-write protected by the lock.
                let v = ctx.load_u32(counter).await;
                ctx.work(50).await;
                ctx.store_u32(counter, v + 1).await;
                lock.write_unlock(&ctx).await;
            })
        })
        .collect();
    m.run_tasks(tasks).unwrap();
    let st = m.state();
    let mut st = st.borrow_mut();
    let s = &mut *st;
    let pa = s.ms.pt.translate_conventional(counter).unwrap();
    assert_eq!(s.ms.phys.read_u32(pa), n);
}

#[test]
fn rwlock_readers_overlap_but_writers_do_not() {
    let mut m = machine(4);
    let lock_va = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_data(&mut s.ms, 4).unwrap()
    };
    let concurrency = Rc::new(RefCell::new((0u32, 0u32))); // (current, max)
    let mut tasks = Vec::new();
    for _ in 0..4 {
        let conc = Rc::clone(&concurrency);
        tasks.push(task(move |ctx| async move {
            let lock = osim_cpu::SimRwLock::at(lock_va);
            lock.read_lock(&ctx).await;
            {
                let mut c = conc.borrow_mut();
                c.0 += 1;
                c.1 = c.1.max(c.0);
            }
            ctx.work(5_000).await;
            conc.borrow_mut().0 -= 1;
            lock.read_unlock(&ctx).await;
        }));
    }
    m.run_tasks(tasks).unwrap();
    assert!(
        concurrency.borrow().1 >= 2,
        "readers must overlap, max concurrency {}",
        concurrency.borrow().1
    );
}

#[test]
fn deadlock_on_never_created_version() {
    let mut m = machine(1);
    let root = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_root(&mut s.ms).unwrap()
    };
    let tasks = vec![task(move |ctx| async move {
        ctx.load_version(root, 42).await;
    })];
    let err = m.run_tasks(tasks).expect_err("must deadlock");
    let SimError::Deadlock(report) = err else {
        panic!("expected deadlock report, got: {err}");
    };
    assert_eq!(report.entries.len(), 1);
    let e = &report.entries[0];
    assert_eq!(e.tid, Some(1));
    assert_eq!(e.va, Some(u64::from(root)));
    assert_eq!(e.version, Some(42));
    assert_eq!(e.class, WaitClass::NeverProduced);
    let text = format!("{report}");
    assert!(text.contains("version 42"), "blame text: {text}");
    assert!(text.contains("never-produced"), "blame text: {text}");
}

#[test]
fn phases_accumulate_time_and_task_ids() {
    let mut m = machine(2);
    let root = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_root(&mut s.ms).unwrap()
    };
    let r1 = m
        .run_tasks(vec![task(move |ctx| async move {
            assert_eq!(ctx.tid(), 1);
            ctx.store_version(root, ctx.tid(), 5).await;
        })])
        .unwrap();
    let r2 = m
        .run_tasks(vec![task(move |ctx| async move {
            // Task ids continue across phases.
            assert_eq!(ctx.tid(), 2);
            let (ver, val) = ctx.load_latest(root, ctx.tid()).await;
            assert_eq!((ver, val), (1, 5));
        })])
        .unwrap();
    assert_eq!(r2.start, r1.end);
    assert!(r2.end >= r2.start);
}

#[test]
fn reset_stats_separates_warmup_from_measurement() {
    let mut m = machine(1);
    let buf = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_data(&mut s.ms, 64).unwrap()
    };
    m.run_tasks(vec![task(move |ctx| async move {
        for i in 0..16 {
            ctx.store_u32(buf + (i % 4) * 4, i).await;
        }
    })])
    .unwrap();
    m.reset_stats();
    {
        let st = m.state();
        assert_eq!(st.borrow().cpu.stores, 0);
    }
    m.run_tasks(vec![task(move |ctx| async move {
        ctx.load_u32(buf).await;
    })])
    .unwrap();
    let st = m.state();
    let st = st.borrow();
    assert_eq!(st.cpu.loads, 1);
    // The warm-up's cache contents survive the stats reset.
    assert_eq!(st.ms.hier.stats.l1_read_hits[0], 1);
}

#[test]
fn determinism_across_machines() {
    let run = || {
        let mut m = machine(4);
        let root = {
            let st = m.state();
            let mut st = st.borrow_mut();
            let s = &mut *st;
            s.alloc.alloc_root(&mut s.ms).unwrap()
        };
        let mut tasks = vec![task(move |ctx| async move {
            ctx.store_version(root, 1, 0).await;
        })];
        for _ in 0..12 {
            tasks.push(task(move |ctx| async move {
                let tid = ctx.tid();
                let (vl, v) = ctx.lock_load_latest(root, tid).await;
                ctx.work((v as u64 * 13) % 97 + 5).await;
                ctx.unlock_version(root, vl, Some(tid + 1)).await;
                let _ = ctx.load_latest(root, tid).await;
            }));
        }
        let r = m.run_tasks(tasks).unwrap();
        r.cycles()
    };
    assert_eq!(run(), run());
}

#[test]
fn work_respects_issue_width() {
    let mut m = machine(1);
    let t0 = Rc::new(RefCell::new((0, 0)));
    let t0c = Rc::clone(&t0);
    m.run_tasks(vec![task(move |ctx| async move {
        let a = ctx.now();
        ctx.work(100).await; // 2-way: 50 cycles
        let b = ctx.now();
        *t0c.borrow_mut() = (a, b);
    })])
    .unwrap();
    let (a, b) = *t0.borrow();
    assert_eq!(b - a, 50);
}
