//! Property: broadcast and targeted gate-wakeup delivery produce
//! cycle-for-cycle, counter-for-counter identical simulations whenever no
//! wake-up can mismatch a parked waiter's filter.
//!
//! Targeted delivery differs from broadcast in exactly one situation: an
//! open whose payload does *not* satisfy some parked waiter's filter. Under
//! broadcast that waiter wakes, re-executes its versioned load (a modeled
//! operation: cache accesses, stall segments, a new park-order position)
//! and re-parks; under targeted delivery it never wakes, so that modeled
//! re-check never happens. Whenever every open's payload satisfies every
//! waiter parked on that gate — the *herd-free* regime — the two policies
//! wake identical task sets at identical cycles in identical order, and the
//! whole simulation must be indistinguishable, down to every cache, stall
//! and MVM counter.
//!
//! Single-assignment dataflow provides that regime by construction: each
//! O-structure receives exactly one version (v1), every consumer awaits
//! exactly that version (or `LOAD-LATEST` with a cap ≥ 1, whose `AtMost`
//! filter v1 also satisfies), and the only lock ever taken on a structure
//! is its producer's, so an `UNLOCK-VERSION` payload `[1]` satisfies every
//! blocked consumer too. These properties drive randomized DAGs of such
//! tasks — fan-in, fan-out, random compute, random core counts, fault
//! injection — through both policies and require bit-identical outcomes.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use osim_cpu::{task, Machine, MachineCfg, WakeupPolicy};
use osim_uarch::FaultPlan;

/// One node of the dataflow DAG.
#[derive(Debug, Clone)]
struct Node {
    /// Indices of earlier nodes whose value this node consumes.
    preds: Vec<usize>,
    /// `LOAD-LATEST` with this cap instead of `LOAD-VERSION(1)` when >0.
    latest_cap: Vec<u32>,
    /// Modeled compute between the loads and the store.
    work: u64,
    /// Whether the producer lock-loads and unlocks its own value after
    /// publishing it (exercises the unlock wake-up path).
    relock: bool,
}

fn dag() -> impl Strategy<Value = Vec<Node>> {
    proptest::collection::vec(
        (
            0u64..150,
            any::<bool>(),
            proptest::collection::vec(0u32..4, 0..3),
        ),
        2..16,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (work, relock, pred_picks))| {
                let mut preds: Vec<usize> = pred_picks
                    .iter()
                    .filter(|_| i > 0)
                    .map(|&p| p as usize % i)
                    .collect();
                preds.sort_unstable();
                preds.dedup();
                // cap 0 encodes an exact LOAD-VERSION(1); odd caps use
                // LOAD-LATEST with a cap the stored v1 always satisfies.
                let latest_cap = preds
                    .iter()
                    .map(|&p| if p % 2 == 1 { 1 + (p as u32 % 7) } else { 0 })
                    .collect();
                Node {
                    preds,
                    latest_cap,
                    work,
                    relock,
                }
            })
            .collect()
    })
}

/// Runs the DAG under one wake-up policy and fingerprints everything
/// observable: phase cycles, consumed values, and every counter the
/// simulator keeps.
fn fingerprint(nodes: &[Node], cores: usize, inject: Option<&str>, wakeup: WakeupPolicy) -> String {
    let mut cfg = MachineCfg::paper(cores);
    cfg.wakeup = wakeup;
    cfg.omgr.fault_plan = inject.map(|s| FaultPlan::parse(s).expect("valid preset"));
    let mut m = Machine::new(cfg);

    let roots: Vec<u32> = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        (0..nodes.len())
            .map(|_| s.alloc.alloc_root(&mut s.ms).expect("root allocates"))
            .collect()
    };

    let seen: Rc<RefCell<Vec<(usize, u32)>>> = Rc::default();
    let tasks = nodes
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let node = node.clone();
            let roots = roots.clone();
            let seen = Rc::clone(&seen);
            task(move |ctx| async move {
                let mut acc = i as u32;
                for (k, &p) in node.preds.iter().enumerate() {
                    let cap = node.latest_cap[k];
                    let got = if cap > 0 {
                        ctx.load_latest(roots[p], cap).await.1
                    } else {
                        ctx.load_version(roots[p], 1).await
                    };
                    acc = acc.wrapping_mul(31).wrapping_add(got);
                }
                ctx.work(node.work).await;
                ctx.store_version(roots[i], 1, acc).await;
                if node.relock {
                    let v = ctx.lock_load_version(roots[i], 1).await;
                    ctx.work(7).await;
                    ctx.unlock_version(roots[i], 1, None).await;
                    assert_eq!(v, acc);
                }
                seen.borrow_mut().push((i, acc));
            })
        })
        .collect();

    let report = m.run_tasks(tasks).expect("dataflow DAG cannot deadlock");
    let st = m.state();
    let st = st.borrow();
    format!(
        "phase[{}..{}] seen{:?} cpu{:?} mem{:?} mvm{:?}",
        report.start,
        report.end,
        seen.borrow(),
        st.cpu,
        st.ms.hier.stats,
        st.omgr.stats,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn herd_free_dataflow_is_policy_invariant(
        nodes in dag(),
        cores in prop_oneof![Just(2usize), Just(3), Just(8)],
        inject in prop_oneof![
            Just(None),
            Just(Some("latency-jitter")),
            Just(Some("pool-pressure")),
            Just(Some("chaos")),
        ],
    ) {
        let broadcast = fingerprint(&nodes, cores, inject, WakeupPolicy::Broadcast);
        let targeted = fingerprint(&nodes, cores, inject, WakeupPolicy::Targeted);
        prop_assert_eq!(
            broadcast, targeted,
            "wake delivery leaked into simulated state: cores={} inject={:?}", cores, inject
        );
    }
}

/// The divergence the targeted ablation *is allowed* to produce happens
/// only through suppressed re-checks; on a gate with a single waiter whose
/// filter the open satisfies, the wake cycle itself must be bit-identical.
#[test]
fn satisfied_wake_cycle_is_identical_across_policies() {
    let wake_cycle = |wakeup: WakeupPolicy| {
        let mut cfg = MachineCfg::paper(2);
        cfg.wakeup = wakeup;
        let mut m = Machine::new(cfg);
        let root = {
            let st = m.state();
            let mut st = st.borrow_mut();
            let s = &mut *st;
            s.alloc.alloc_root(&mut s.ms).expect("root allocates")
        };
        let woke_at = Rc::new(RefCell::new(0u64));
        let woke = Rc::clone(&woke_at);
        let tasks = vec![
            task(move |ctx| async move {
                ctx.work(5_000).await;
                ctx.store_version(root, 3, 42).await;
            }),
            task(move |ctx| async move {
                let v = ctx.load_version(root, 3).await;
                assert_eq!(v, 42);
                *woke.borrow_mut() = ctx.now();
            }),
        ];
        m.run_tasks(tasks).expect("no deadlock");
        let woke = *woke_at.borrow();
        woke
    };
    assert_eq!(
        wake_cycle(WakeupPolicy::Broadcast),
        wake_cycle(WakeupPolicy::Targeted)
    );
}
