//! Instruction-interface semantics: CAS, allocator services, statistics
//! tagging, and the blocking flavours under contention.

use std::cell::RefCell;
use std::rc::Rc;

use osim_cpu::{task, Machine, MachineCfg};

fn machine(cores: usize) -> Machine {
    Machine::new(MachineCfg::paper(cores))
}

fn alloc_data(m: &Machine, bytes: u32) -> u32 {
    let st = m.state();
    let mut st = st.borrow_mut();
    let s = &mut *st;
    s.alloc.alloc_data(&mut s.ms, bytes).unwrap()
}

fn alloc_root(m: &Machine) -> u32 {
    let st = m.state();
    let mut st = st.borrow_mut();
    let s = &mut *st;
    s.alloc.alloc_root(&mut s.ms).unwrap()
}

#[test]
fn cas_success_and_failure_semantics() {
    let mut m = machine(1);
    let word = alloc_data(&m, 4);
    let log = Rc::new(RefCell::new(Vec::new()));
    let log2 = Rc::clone(&log);
    m.run_tasks(vec![task(move |ctx| async move {
        ctx.store_u32(word, 5).await;
        // Failing CAS returns the observed value and writes nothing.
        let seen = ctx.cas_u32(word, 4, 9).await;
        let after = ctx.load_u32(word).await;
        log2.borrow_mut().push(("fail", seen, after));
        // Succeeding CAS returns the expected value and writes.
        let seen = ctx.cas_u32(word, 5, 9).await;
        let after = ctx.load_u32(word).await;
        log2.borrow_mut().push(("ok", seen, after));
    })])
    .unwrap();
    assert_eq!(*log.borrow(), vec![("fail", 5, 5), ("ok", 5, 9)]);
}

#[test]
fn cas_serializes_racing_increments() {
    let mut m = machine(8);
    let word = alloc_data(&m, 4);
    let tasks = (0..32)
        .map(|_| {
            task(move |ctx| async move {
                loop {
                    let v = ctx.load_u32(word).await;
                    if ctx.cas_u32(word, v, v + 1).await == v {
                        break;
                    }
                    ctx.work(16).await;
                }
            })
        })
        .collect();
    m.run_tasks(tasks).unwrap();
    let st = m.state();
    let st = st.borrow();
    let pa = st.ms.pt.translate_conventional(word).unwrap();
    assert_eq!(st.ms.phys.read_u32(pa), 32);
}

#[test]
fn malloc_regions_are_usable_and_disjoint() {
    let mut m = machine(1);
    let seen = Rc::new(RefCell::new(Vec::new()));
    let seen2 = Rc::clone(&seen);
    m.run_tasks(vec![task(move |ctx| async move {
        let a = ctx.malloc(16).await;
        let b = ctx.malloc(16).await;
        let r = ctx.malloc_root().await;
        ctx.store_u32(a, 1).await;
        ctx.store_u32(b, 2).await;
        ctx.store_version(r, 1, 3).await;
        let va = ctx.load_u32(a).await;
        let vb = ctx.load_u32(b).await;
        let vr = ctx.load_version(r, 1).await;
        seen2.borrow_mut().push((va, vb, vr));
        // Freed data memory is recycled for the same size class.
        ctx.free(a, 16).await;
        let c = ctx.malloc(16).await;
        seen2.borrow_mut().push((a, c, 0));
    })])
    .unwrap();
    let seen = seen.borrow();
    assert_eq!(seen[0], (1, 2, 3));
    assert_eq!(seen[1].0, seen[1].1, "size-class reuse");
}

#[test]
fn root_tag_is_consumed_by_exactly_one_op() {
    let mut m = machine(1);
    let r = alloc_root(&m);
    m.run_tasks(vec![task(move |ctx| async move {
        ctx.store_version(r, 1, 7).await;
        ctx.tag_root();
        ctx.load_version(r, 1).await; // tagged
        ctx.load_version(r, 1).await; // untagged
        ctx.load_version(r, 1).await; // untagged
    })])
    .unwrap();
    let st = m.state();
    let st = st.borrow();
    assert_eq!(st.cpu.root_loads, 1);
    assert_eq!(st.cpu.versioned_loads, 3);
}

#[test]
fn lock_contention_counts_stalls_for_the_loser() {
    let mut m = machine(2);
    let r = alloc_root(&m);
    let mut tasks = vec![task(move |ctx| async move {
        ctx.store_version(r, 1, 0).await;
        let _ = ctx.lock_load_version(r, 1).await;
        ctx.work(2_000).await; // hold the lock for a while
        ctx.unlock_version(r, 1, None).await;
    })];
    tasks.push(task(move |ctx| async move {
        // Arrive well inside the first task's 1000-cycle critical section.
        ctx.work(1_000).await;
        let _ = ctx.lock_load_version(r, 1).await;
        ctx.unlock_version(r, 1, None).await;
    }));
    m.run_tasks(tasks).unwrap();
    let st = m.state();
    let st = st.borrow();
    assert_eq!(st.cpu.versioned_loads_stalled, 1);
    assert!(st.cpu.stall_cycles >= 500);
}

#[test]
fn unlock_rename_wakes_exact_version_waiters() {
    // A waiter on an exact version that only the rename creates.
    let mut m = machine(2);
    let r = alloc_root(&m);
    let woke = Rc::new(RefCell::new(0u64));
    let woke2 = Rc::clone(&woke);
    let tasks = vec![
        task(move |ctx| async move {
            ctx.store_version(r, 1, 42).await;
            let _ = ctx.lock_load_version(r, 1).await;
            ctx.work(1_000).await;
            ctx.unlock_version(r, 1, Some(2)).await;
        }),
        task(move |ctx| async move {
            let v = ctx.load_version(r, 2).await; // exists only after rename
            *woke2.borrow_mut() = ctx.now();
            assert_eq!(v, 42);
        }),
    ];
    m.run_tasks(tasks).unwrap();
    assert!(*woke.borrow() >= 500, "waiter woke after the rename");
}

#[test]
fn per_phase_task_ids_feed_the_gc_window() {
    let mut m = machine(2);
    let r = alloc_root(&m);
    m.run_tasks(vec![task(move |ctx| async move {
        ctx.store_version(r, 16, 0).await;
    })])
    .unwrap();
    // Second phase: ids continue, so versions stay monotonic.
    m.run_tasks(vec![
        task(move |ctx| async move {
            assert_eq!(ctx.tid(), 2);
            ctx.store_version(r, 32, 1).await;
        }),
        task(move |ctx| async move {
            assert_eq!(ctx.tid(), 3);
            let (v, _) = ctx.load_latest(r, 48).await;
            assert_eq!(v, 32);
        }),
    ])
    .unwrap();
    let st = m.state();
    let st = st.borrow();
    assert_eq!(st.cpu.tasks_run, 3);
}
