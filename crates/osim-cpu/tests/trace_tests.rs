//! End-to-end tests of the execution tracer.

use osim_cpu::{task, Machine, MachineCfg, OpKind};

fn machine(cores: usize) -> Machine {
    Machine::new(MachineCfg::paper(cores))
}

#[test]
fn trace_captures_the_full_op_stream() {
    let mut m = machine(2);
    m.enable_trace(10_000);
    let root = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_root(&mut s.ms).unwrap()
    };
    let buf = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_data(&mut s.ms, 8).unwrap()
    };
    m.run_tasks(vec![
        task(move |ctx| async move {
            ctx.work(100).await;
            ctx.store_u32(buf, 1).await;
            ctx.store_version(root, 1, 5).await;
        }),
        task(move |ctx| async move {
            let v = ctx.load_version(root, 1).await; // will stall
            ctx.store_u32(buf + 4, v).await;
        }),
    ])
    .unwrap();

    let st = m.state();
    let st = st.borrow();
    let s = st.trace.summary();
    assert_eq!(s.of(OpKind::Work).count, 1);
    assert_eq!(s.of(OpKind::Store).count, 2);
    assert_eq!(s.of(OpKind::VersionedStore).count, 1);
    assert_eq!(s.of(OpKind::VersionedLoad).count, 1);
    assert_eq!(s.of(OpKind::VersionedLoad).stalled, 1, "consumer stalled");
    // The stalled load spans the producer's compute window.
    let records = st.trace.records();
    let vload = records
        .iter()
        .find(|r| r.kind == OpKind::VersionedLoad)
        .unwrap();
    assert!(vload.end - vload.start >= 50);
    assert_eq!(vload.va, root);
    assert_eq!(vload.version, 1);
    // Records are well-formed: end >= start, cores in range.
    for r in st.trace.records() {
        assert!(r.end >= r.start);
        assert!(r.core < 2);
    }
}

#[test]
fn tracing_does_not_change_timing() {
    let run = |traced: bool| {
        let mut m = machine(4);
        if traced {
            m.enable_trace(1 << 16);
        }
        let root = {
            let st = m.state();
            let mut st = st.borrow_mut();
            let s = &mut *st;
            s.alloc.alloc_root(&mut s.ms).unwrap()
        };
        let mut tasks = vec![task(move |ctx| async move {
            ctx.store_version(root, 1, 0).await;
        })];
        for _ in 0..12 {
            tasks.push(task(move |ctx| async move {
                let tid = ctx.tid();
                let (vl, v) = ctx.lock_load_latest(root, tid).await;
                ctx.work(v as u64 % 37 + 3).await;
                ctx.unlock_version(root, vl, Some(tid + 1)).await;
            }));
        }
        m.run_tasks(tasks).unwrap().cycles()
    };
    assert_eq!(run(false), run(true), "tracing is observation-only");
}

#[test]
fn bounded_trace_reports_drops() {
    let mut m = machine(1);
    m.enable_trace(4);
    m.run_tasks(vec![task(move |ctx| async move {
        for _ in 0..10 {
            ctx.work(1).await;
        }
    })])
    .unwrap();
    let st = m.state();
    let st = st.borrow();
    assert_eq!(st.trace.records().len(), 4);
    assert_eq!(st.trace.dropped, 6);
}

#[test]
fn machine_capture_spans_every_layer() {
    let mut m = machine(2);
    m.enable_trace(1 << 16);
    let root = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_root(&mut s.ms).unwrap()
    };
    let mut tasks = vec![task(move |ctx| async move {
        ctx.store_version(root, 1, 0).await;
    })];
    for _ in 0..8 {
        tasks.push(task(move |ctx| async move {
            let tid = ctx.tid();
            let (vl, v) = ctx.lock_load_latest(root, tid).await;
            ctx.work(v as u64 % 13 + 2).await;
            ctx.unlock_version(root, vl, Some(tid + 1)).await;
        }));
    }
    m.run_tasks(tasks).unwrap();
    let st = m.state();
    let st = st.borrow();
    // Core layer: per-op records.
    assert!(!st.trace.records().is_empty());
    // Memory layer: demand accesses stamped with a non-decreasing clock.
    let mem = st.ms.hier.events.records();
    assert!(!mem.is_empty(), "hierarchy events captured");
    assert!(mem.windows(2).all(|w| w[0].cycle <= w[1].cycle));
    assert!(
        mem.iter().any(|e| e.cycle > 0),
        "clock reaches the hierarchy"
    );
    // Version-manager layer: the version stores allocated blocks.
    let mvm = st.omgr.events.records();
    assert!(
        mvm.iter().any(|e| e.kind_name() == "freelist_alloc"),
        "allocation events captured"
    );
}

#[test]
fn csv_export_has_one_row_per_record() {
    let mut m = machine(1);
    m.enable_trace(100);
    m.run_tasks(vec![task(move |ctx| async move {
        let a = ctx.malloc(8).await;
        ctx.store_u32(a, 1).await;
        ctx.load_u32(a).await;
    })])
    .unwrap();
    let st = m.state();
    let st = st.borrow();
    let mut buf = Vec::new();
    st.trace.to_csv(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_eq!(text.lines().count(), 1 + st.trace.records().len());
}
