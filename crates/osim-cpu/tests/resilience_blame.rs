//! Robustness integration tests: deadlock blame reports for each misuse
//! class, graceful degradation under version-block exhaustion, recovery
//! through the modeled OS refill trap, and the livelock watchdog.

use osim_cpu::{task, Machine, MachineCfg, SimError, WaitClass};
use osim_mem::Fault;
use osim_uarch::FaultPlan;

/// Misuse class 1: loading a version nobody ever produces. The blame
/// report names the `(va, version)` wait target and classifies it as
/// never-produced.
#[test]
fn blame_missing_version() {
    let mut m = Machine::new(MachineCfg::paper(2));
    let root = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_root(&mut s.ms).unwrap()
    };
    let err = m
        .run_tasks(vec![task(move |ctx| async move {
            ctx.load_version(root, 99).await;
        })])
        .expect_err("version 99 is never stored");
    let SimError::Deadlock(report) = err else {
        panic!("expected deadlock, got: {err}");
    };
    assert_eq!(report.entries.len(), 1);
    let e = &report.entries[0];
    assert_eq!(e.tid, Some(1));
    assert_eq!(e.va, Some(u64::from(root)));
    assert_eq!(e.version, Some(99));
    assert_eq!(e.kind, Some("missing-version"));
    assert_eq!(e.holder, None);
    assert_eq!(e.class, WaitClass::NeverProduced);
    let text = format!("{report}");
    assert!(text.contains("never-produced"), "blame text: {text}");
}

/// Misuse class 2: a two-task lock cycle. Each blocked task's entry names
/// the version it waits for and the task holding it, and both are
/// classified as members of a lock cycle.
#[test]
fn blame_lock_cycle() {
    let mut m = Machine::new(MachineCfg::paper(2));
    let (x, y) = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        (
            s.alloc.alloc_root(&mut s.ms).unwrap(),
            s.alloc.alloc_root(&mut s.ms).unwrap(),
        )
    };
    // Phase 1 (tid 1): seed version 1 of both cells.
    m.run_tasks(vec![task(move |ctx| async move {
        ctx.store_version(x, 1, 10).await;
        ctx.store_version(y, 1, 20).await;
    })])
    .unwrap();
    // Phase 2 (tids 2 and 3, on different cores): cross-wise lock order.
    let tasks = vec![
        task(move |ctx| async move {
            ctx.lock_load_version(x, 1).await;
            ctx.work(2_000).await;
            ctx.lock_load_version(y, 1).await; // blocks: held by tid 3
        }),
        task(move |ctx| async move {
            ctx.lock_load_version(y, 1).await;
            ctx.work(2_000).await;
            ctx.lock_load_version(x, 1).await; // blocks: held by tid 2
        }),
    ];
    let err = m.run_tasks(tasks).expect_err("cross-wise locks must cycle");
    let SimError::Deadlock(report) = err else {
        panic!("expected deadlock, got: {err}");
    };
    assert_eq!(report.entries.len(), 2);
    let by_tid = |tid: u64| {
        report
            .entries
            .iter()
            .find(|e| e.tid == Some(tid))
            .unwrap_or_else(|| panic!("no blame entry for task {tid}"))
    };
    let a = by_tid(2);
    assert_eq!(a.va, Some(u64::from(y)));
    assert_eq!(a.version, Some(1));
    assert_eq!(a.kind, Some("locked-version"));
    assert_eq!(a.holder, Some(3));
    assert_eq!(a.class, WaitClass::LockCycle);
    let b = by_tid(3);
    assert_eq!(b.va, Some(u64::from(x)));
    assert_eq!(b.holder, Some(2));
    assert_eq!(b.class, WaitClass::LockCycle);
    let text = format!("{report}");
    assert!(text.contains("lock-cycle"), "blame text: {text}");
    assert!(text.contains("held by task"), "blame text: {text}");
}

/// Misuse class 3: version-block pool exhaustion with the collector
/// disabled and the OS refill budget at zero. The bounded retry loop
/// gives up and `run_tasks` returns a typed fault carrying the issuing
/// task's id, address and cycle — no panic anywhere on the path.
#[test]
fn exhausted_pool_is_a_typed_fault() {
    let mut cfg = MachineCfg::paper(1);
    cfg.omgr.initial_free_blocks = 256; // one page carve
    cfg.omgr.gc.watermark = 0; // §IV-F ablation: collector disabled
    cfg.omgr.fault_plan = Some(FaultPlan {
        refill_budget: Some(0),
        ..FaultPlan::default()
    });
    let mut m = Machine::new(cfg);
    let root = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_root(&mut s.ms).unwrap()
    };
    let err = m
        .run_tasks(vec![task(move |ctx| async move {
            for v in 1..=300u32 {
                ctx.store_version(root, v, v).await;
            }
        })])
        .expect_err("300 versions cannot fit in a 256-block pool");
    let SimError::Fault(f) = err else {
        panic!("expected architectural fault, got: {err}");
    };
    assert_eq!(f.fault, Fault::OutOfVersionBlocks);
    assert_eq!(f.tid, 1);
    assert_eq!(f.va, root);
    assert!(f.cycle > 0);
    // The bounded retry loop ran before giving up.
    let st = m.state();
    let st = st.borrow();
    assert!(st.omgr.stats.refill_traps > 0);
    assert!(st.omgr.stats.refill_retries > 0);
    assert_eq!(st.omgr.stats.recovered_allocations, 0);
}

/// Same pressure, but the OS trap eventually succeeds: two injected
/// transient carve failures per refill, then recovery. The run completes
/// and the resilience counters show the retry path was exercised.
#[test]
fn transient_carve_failures_recover() {
    let mut cfg = MachineCfg::paper(1);
    cfg.omgr.initial_free_blocks = 256;
    cfg.omgr.gc.watermark = 0;
    cfg.omgr.fault_plan = Some(FaultPlan {
        carve_fail_pct: 100,
        max_carve_failures: 2,
        ..FaultPlan::default()
    });
    let mut m = Machine::new(cfg);
    let root = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_root(&mut s.ms).unwrap()
    };
    m.run_tasks(vec![task(move |ctx| async move {
        for v in 1..=300u32 {
            ctx.store_version(root, v, v).await;
        }
    })])
    .expect("refill recovers after bounded retries");
    let st = m.state();
    let st = st.borrow();
    assert!(st.omgr.stats.refill_retries > 0, "retries exercised");
    assert!(
        st.omgr.stats.recovered_allocations > 0,
        "allocation recovered"
    );
    assert!(st.omgr.stats.injected_carve_failures > 0);
}

/// A task that sleeps forever without retiring work trips the progress
/// watchdog instead of hanging the harness.
#[test]
fn watchdog_catches_livelock() {
    let mut cfg = MachineCfg::paper(1);
    cfg.watchdog_cycles = Some(5_000);
    let mut m = Machine::new(cfg);
    let err = m
        .run_tasks(vec![task(move |ctx| async move {
            loop {
                ctx.handle().sleep(50).await; // spins without progress
            }
        })])
        .expect_err("watchdog must fire");
    let SimError::Watchdog(w) = err else {
        panic!("expected watchdog report, got: {err}");
    };
    assert!(w.now >= 5_000);
    assert_eq!(w.idle_cycles, 5_000);
}

/// The same machine configuration and fault plan produce byte-identical
/// blame reports: injection is deterministic end to end.
#[test]
fn blame_reports_are_deterministic() {
    let run = || {
        let mut m = Machine::new(MachineCfg::paper(2));
        let root = {
            let st = m.state();
            let mut st = st.borrow_mut();
            let s = &mut *st;
            s.alloc.alloc_root(&mut s.ms).unwrap()
        };
        let err = m
            .run_tasks(vec![
                task(move |ctx| async move {
                    ctx.store_version(root, 1, 7).await;
                    ctx.load_version(root, 5).await; // never produced
                }),
                task(move |ctx| async move {
                    ctx.load_version(root, 6).await; // never produced
                }),
            ])
            .expect_err("both tasks wedge");
        format!("{err}")
    };
    assert_eq!(run(), run());
}
