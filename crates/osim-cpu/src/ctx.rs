//! The task-side instruction interface.

use std::cell::{Cell, RefCell};
use std::convert::Infallible;
use std::rc::Rc;

use osim_engine::{Cycle, Gate, SimHandle, WaitInfo, Wake, WakeFilter, WakeOrigin};
use osim_mem::{AccessKind, Fault};
use osim_uarch::{BlockReason, OpOutcome, TaskId, Version};

use crate::capture::DepEdge;
use crate::error::TaskFault;
use crate::machine::{MachineState, WakeupPolicy};
use crate::stats::StallCause;
use crate::trace::{OpKind, TraceRecord};

/// Wake-tag vocabulary carried by O-structure gate openings, so a woken
/// task knows which event released it without re-reading shared state.
pub mod wake {
    use osim_engine::WakeTag;

    /// A `STORE-VERSION` completed on the structure.
    pub const STORE: WakeTag = 1;
    /// An `UNLOCK-VERSION` completed on the structure.
    pub const UNLOCK: WakeTag = 2;

    /// Human-readable tag name (for debug traces).
    pub fn name(tag: WakeTag) -> &'static str {
        match tag {
            STORE => "store",
            UNLOCK => "unlock",
            _ => "generic",
        }
    }
}

/// Whether the `OSIM_TRACE` debug-print hook is on. The environment is
/// read once per process: the flag is consulted on every versioned
/// operation, and a `getenv` call per op is measurable host overhead in
/// long sweeps.
fn osim_trace() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| std::env::var_os("OSIM_TRACE").is_some())
}

/// The instruction interface one task programs against.
///
/// Every method models one or more instructions of the paper's extended
/// ISA. Memory operations suspend the issuing core for the exact modeled
/// latency; the blocking O-structure flavours additionally park the core on
/// the structure's wait gate until a `STORE-VERSION`/`UNLOCK-VERSION`
/// arrives, charging the wait as stall cycles.
///
/// Faults (protection violations, double-stores, exhausted version-block
/// storage, …) abort the simulation *gracefully*: the fault is recorded
/// with the issuing task's coordinates, the engine is halted, and
/// [`crate::Machine::run_tasks`] surfaces it as
/// [`crate::SimError::Fault`] — in hardware the OS would kill the process.
///
/// Setting the `OSIM_TRACE` environment variable prints lock/unlock/stall
/// events to stderr — a quick live view when debugging a deadlocking
/// protocol; for structured capture use [`crate::Machine::enable_trace`].
#[derive(Clone)]
pub struct TaskCtx {
    core: usize,
    tid: u32,
    st: Rc<RefCell<MachineState>>,
    h: SimHandle,
    /// One-shot tag: the next versioned operation is a data-structure root
    /// entry (for the §IV-D root-stall statistics).
    root_tag: Rc<Cell<bool>>,
}

impl TaskCtx {
    pub(crate) fn new(core: usize, tid: u32, st: Rc<RefCell<MachineState>>, h: SimHandle) -> Self {
        TaskCtx {
            core,
            tid,
            st,
            h,
            root_tag: Rc::new(Cell::new(false)),
        }
    }

    /// The core this task runs on.
    pub fn core(&self) -> usize {
        self.core
    }

    /// This task's id (doubles as its version under the runtime rules).
    pub fn tid(&self) -> TaskId {
        self.tid
    }

    /// A context identical to this one but with a different task id.
    pub fn with_tid(&self, tid: TaskId) -> TaskCtx {
        TaskCtx {
            tid,
            root_tag: Rc::new(Cell::new(false)),
            ..self.clone()
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.h.now()
    }

    /// Records an architectural fault and halts the simulation; the caller's
    /// future is never resumed (the engine stops dispatching events), so the
    /// return type is uninhabited — divergence is expressed as
    /// `match ctx.fault_abort(..).await {}`.
    async fn fault_abort(&self, va: u32, fault: Fault) -> Infallible {
        {
            let mut st = self.st.borrow_mut();
            if st.fault.is_none() {
                st.fault = Some(TaskFault {
                    tid: self.tid,
                    core: self.core,
                    va,
                    cycle: self.h.now(),
                    fault,
                });
            }
        }
        self.h.request_halt();
        std::future::pending().await
    }

    /// The engine handle (for gates and sleeps in test harnesses).
    pub fn handle(&self) -> &SimHandle {
        &self.h
    }

    // ------------------------------------------------------------------
    // Plain computation
    // ------------------------------------------------------------------

    /// Executes `instrs` non-memory instructions on this 2-way in-order
    /// core: `ceil(instrs / issue_width)` cycles.
    pub async fn work(&self, instrs: u64) {
        let start = self.h.now();
        let cycles = {
            let mut st = self.st.borrow_mut();
            st.cpu.instructions += instrs;
            st.cpu.core_mut(self.core).instructions += instrs;
            instrs.div_ceil(st.issue_width)
        };
        self.h.sleep(cycles).await;
        self.trace(OpKind::Work, 0, 0, start, None);
    }

    // ------------------------------------------------------------------
    // Conventional memory
    // ------------------------------------------------------------------

    /// Conventional 32-bit load.
    pub async fn load_u32(&self, va: u32) -> u32 {
        let res = {
            let mut st = self.st.borrow_mut();
            st.tick(self.h.now());
            let MachineState { ms, cpu, .. } = &mut *st;
            ms.pt.translate_conventional(va).map(|pa| {
                let acc = ms.hier.access(self.core, pa, AccessKind::Read);
                cpu.instructions += 1;
                cpu.loads += 1;
                cpu.core_mut(self.core).instructions += 1;
                (acc.latency, ms.phys.read_u32(pa))
            })
        };
        let (latency, val) = match res {
            Ok(x) => x,
            Err(f) => match self.fault_abort(va, f).await {},
        };
        self.h.sleep(latency).await;
        self.trace(OpKind::Load, va, 0, self.h.now() - latency, None);
        val
    }

    /// Conventional 32-bit store.
    pub async fn store_u32(&self, va: u32, val: u32) {
        let res = {
            let mut st = self.st.borrow_mut();
            st.tick(self.h.now());
            let MachineState { ms, cpu, .. } = &mut *st;
            ms.pt.translate_conventional(va).map(|pa| {
                let acc = ms.hier.access(self.core, pa, AccessKind::Write);
                cpu.instructions += 1;
                cpu.stores += 1;
                cpu.core_mut(self.core).instructions += 1;
                ms.phys.write_u32(pa, val);
                acc.latency
            })
        };
        let latency = match res {
            Ok(l) => l,
            Err(f) => match self.fault_abort(va, f).await {},
        };
        self.h.sleep(latency).await;
        self.trace(OpKind::Store, va, 0, self.h.now() - latency, None);
    }

    /// Atomic compare-and-swap on a conventional word. Returns the value
    /// observed before the operation (success ⇔ it equals `expected`).
    pub async fn cas_u32(&self, va: u32, expected: u32, new: u32) -> u32 {
        let res = {
            let mut st = self.st.borrow_mut();
            st.tick(self.h.now());
            let MachineState { ms, cpu, .. } = &mut *st;
            ms.pt.translate_conventional(va).map(|pa| {
                let acc = ms.hier.access(self.core, pa, AccessKind::Write);
                cpu.instructions += 1;
                cpu.cas_ops += 1;
                cpu.core_mut(self.core).instructions += 1;
                let old = ms.phys.read_u32(pa);
                if old == expected {
                    ms.phys.write_u32(pa, new);
                }
                (acc.latency, old)
            })
        };
        let (latency, old) = match res {
            Ok(x) => x,
            Err(f) => match self.fault_abort(va, f).await {},
        };
        self.h.sleep(latency).await;
        self.trace(OpKind::Cas, va, 0, self.h.now() - latency, None);
        old
    }

    // ------------------------------------------------------------------
    // O-structure operations
    // ------------------------------------------------------------------

    /// Tags the *next* versioned operation as a data-structure root entry,
    /// feeding the §IV-D root-stall statistics.
    pub fn tag_root(&self) {
        self.root_tag.set(true);
    }

    /// `LOAD-VERSION`: blocks until version `v` exists and is unlocked.
    pub async fn load_version(&self, va: u32, v: Version) -> u32 {
        self.versioned_load(va, v, false, false).await.1
    }

    /// `LOAD-LATEST`: blocks until some version ≤ `cap` exists, unlocked.
    /// Returns `(version, value)`.
    pub async fn load_latest(&self, va: u32, cap: Version) -> (Version, u32) {
        self.versioned_load(va, cap, true, false).await
    }

    /// `LOCK-LOAD-VERSION`: exact load + lock as this task.
    pub async fn lock_load_version(&self, va: u32, v: Version) -> u32 {
        self.versioned_load(va, v, false, true).await.1
    }

    /// `LOCK-LOAD-LATEST`: capped load + lock as this task.
    /// Returns `(version, value)` — the version is needed for the matching
    /// `UNLOCK-VERSION`.
    pub async fn lock_load_latest(&self, va: u32, cap: Version) -> (Version, u32) {
        self.versioned_load(va, cap, true, true).await
    }

    async fn versioned_load(
        &self,
        va: u32,
        v: Version,
        latest: bool,
        lock: bool,
    ) -> (Version, u32) {
        let op_start = self.h.now();
        let root = self.root_tag.take();
        {
            let mut st = self.st.borrow_mut();
            st.cpu.versioned_ops += 1;
            st.cpu.versioned_loads += 1;
            st.cpu.core_mut(self.core).versioned_ops += 1;
            if root {
                st.cpu.root_loads += 1;
            }
        }
        // Cause of the most recent blocked attempt (None = never stalled).
        let mut last_stall: Option<StallCause> = None;
        // Holder of the contended version at the last blocked attempt
        // (0 = none), for deadlock blame reports.
        let mut blocked_holder: TaskId = 0;
        // Dependency-flow capture across retries: when the op first
        // blocked, total blocked cycles, and the wake that released the
        // final (satisfying) retry.
        let mut first_block_at: Option<Cycle> = None;
        let mut total_waited: Cycle = 0;
        let mut last_wake: Option<(Wake, Cycle)> = None;
        // Injected delivery delay of the invalidation behind a
        // coherence-attributed block (fault injection only).
        let mut coh_extra: u64 = 0;
        loop {
            let res = {
                let mut st = self.st.borrow_mut();
                st.tick(self.h.now());
                let MachineState { ms, omgr, .. } = &mut *st;
                let r = match (latest, lock) {
                    (false, false) => omgr.load_version(ms, self.core, va, v),
                    (true, false) => omgr.load_latest(ms, self.core, va, v),
                    (false, true) => omgr.lock_load_version(ms, self.core, va, v, self.tid),
                    (true, true) => omgr.lock_load_latest(ms, self.core, va, v, self.tid),
                };
                if let Ok(OpOutcome::Blocked { reason, holder, .. }) = r {
                    // Attribute the coming stall while the manager's view
                    // is current: a block right after another core's
                    // mutation invalidated our compressed line is charged
                    // to coherence, not to the version state.
                    let cause = if omgr.take_coherence_lost(ms, self.core, va) {
                        StallCause::CoherenceInval
                    } else {
                        match reason {
                            BlockReason::VersionAbsent => StallCause::MissingVersion,
                            BlockReason::VersionLocked => StallCause::LockedVersion,
                        }
                    };
                    coh_extra = if cause == StallCause::CoherenceInval {
                        omgr.coherence_delay_penalty()
                    } else {
                        0
                    };
                    last_stall = Some(cause);
                    blocked_holder = holder;
                }
                r
            };
            let out = match res {
                Ok(out) => out,
                Err(f) => match self.fault_abort(va, f).await {},
            };
            match out {
                OpOutcome::Done {
                    value,
                    version,
                    latency,
                } => {
                    if lock && osim_trace() {
                        eprintln!(
                            "[{}] task {} LOCKED va={va:#x} version={version}",
                            self.h.now(),
                            self.tid
                        );
                    }
                    self.h.sleep(latency).await;
                    if let Some(cause) = last_stall {
                        let mut st = self.st.borrow_mut();
                        st.cpu.versioned_loads_stalled += 1;
                        if root {
                            st.cpu.root_loads_stalled += 1;
                        }
                        // Record the producer→consumer edge for the wake
                        // that satisfied this load (observation only; see
                        // `capture` module docs).
                        if let Some((wake, woken_at)) = last_wake {
                            st.deps.push(DepEdge {
                                va,
                                awaited: v,
                                resolved: version,
                                cause,
                                consumer_tid: self.tid,
                                consumer_core: self.core as u32,
                                producer_tid: (wake.origin.label >> 32) as u32,
                                producer_core: wake.origin.label as u32,
                                produced_at: wake.origin.at,
                                blocked_at: first_block_at.unwrap_or(woken_at),
                                woken_at,
                                waited: total_waited,
                            });
                        }
                    }
                    let kind = if lock {
                        OpKind::VersionedLockLoad
                    } else {
                        OpKind::VersionedLoad
                    };
                    self.trace(kind, va, version, op_start, last_stall);
                    // A successful lock changes the structure's state;
                    // nothing can be *unblocked* by it, so no wake-up.
                    return (version, value);
                }
                OpOutcome::Blocked {
                    reason, latency, ..
                } => {
                    if osim_trace() {
                        eprintln!(
                            "[{}] task {} core {} blocked {:?} va={:#x} v={} latest={} lock={}",
                            self.h.now(),
                            self.tid,
                            self.core,
                            reason,
                            va,
                            v,
                            latest,
                            lock
                        );
                    }
                    let cause = match last_stall {
                        Some(c) => c,
                        None => unreachable!("blocked attempt recorded its cause"),
                    };
                    let stall_start = self.h.now();
                    // Register what we are about to block on, so a deadlock
                    // or watchdog report can name the wait target. The kind
                    // is the *structural* wait-for edge (the manager's block
                    // reason), not the stall-cause attribution: a block whose
                    // cycles are charged to coherence is still waiting on the
                    // version's state.
                    self.h.set_wait_info(WaitInfo {
                        label: u64::from(self.tid),
                        resource: u64::from(va),
                        target: u64::from(v),
                        kind: match reason {
                            BlockReason::VersionAbsent => "missing-version",
                            BlockReason::VersionLocked => "locked-version",
                        },
                        holder: (blocked_holder != 0).then_some(u64::from(blocked_holder)),
                    });
                    // Take the ticket *now*, before sleeping off the failed
                    // attempt's latency: a store/unlock landing during that
                    // sleep must still wake us. An injected coherence delay
                    // stretches the failed attempt (the invalidation's
                    // effect arrives late), not the wake-up.
                    //
                    // Under targeted delivery the ticket also registers what
                    // we await: an exact load can only be satisfied by its
                    // version appearing (or unlocking); a capped load by any
                    // version at or below the cap. Broadcast openers ignore
                    // the filter, so registering it is behaviour-neutral
                    // until the machine opts into `WakeupPolicy::Targeted`.
                    let wakeup = self.st.borrow().wakeup;
                    let ticket = match wakeup {
                        WakeupPolicy::Broadcast => self.gate_for(va).ticket(),
                        WakeupPolicy::Targeted => {
                            let filter = if latest {
                                WakeFilter::AtMost(u64::from(v))
                            } else {
                                WakeFilter::Exact(u64::from(v))
                            };
                            self.gate_for(va).ticket_filtered(filter)
                        }
                    };
                    self.h.sleep(latency + coh_extra).await;
                    let woken = ticket.await;
                    self.h.clear_wait_info();
                    if osim_trace() {
                        eprintln!(
                            "[{}] task {} woken by {} on va={va:#x}",
                            self.h.now(),
                            self.tid,
                            wake::name(woken.tag)
                        );
                    }
                    first_block_at.get_or_insert(stall_start);
                    last_wake = Some((woken, self.h.now()));
                    let mut st = self.st.borrow_mut();
                    let waited = self.h.now() - stall_start;
                    total_waited += waited;
                    st.cpu.charge_stall(self.core, cause, waited);
                }
            }
        }
    }

    /// `STORE-VERSION`: creates version `v` holding `val` and wakes any
    /// task stalled on this O-structure.
    pub async fn store_version(&self, va: u32, v: Version, val: u32) {
        let res = {
            let mut st = self.st.borrow_mut();
            st.cpu.versioned_ops += 1;
            st.cpu.core_mut(self.core).versioned_ops += 1;
            st.tick(self.h.now());
            let MachineState { ms, omgr, cpu, .. } = &mut *st;
            omgr.store_version(ms, self.core, va, v, val).map(|out| {
                // Any OS refill-trap cycles inside that latency are stall
                // time attributable to the free-list/GC machinery.
                let trap = omgr.take_trap_cycles();
                if trap > 0 {
                    cpu.charge_stall(self.core, StallCause::FreeListGc, trap);
                }
                (out.latency(), trap)
            })
        };
        let (latency, trap) = match res {
            Ok(x) => x,
            Err(f) => match self.fault_abort(va, f).await {},
        };
        self.h.sleep(latency).await;
        let stall = (trap > 0).then_some(StallCause::FreeListGc);
        self.trace(OpKind::VersionedStore, va, v, self.h.now() - latency, stall);
        let wakeup = self.st.borrow().wakeup;
        let origin = self.wake_origin();
        match wakeup {
            WakeupPolicy::Broadcast => self.gate_for(va).open_tagged_from(wake::STORE, origin),
            // A store publishes exactly one version.
            WakeupPolicy::Targeted => {
                self.gate_for(va)
                    .open_targeted_from(wake::STORE, &[u64::from(v)], origin)
            }
        }
    }

    /// `UNLOCK-VERSION`: unlocks `vl` (held by this task); with
    /// `create = Some(vn)` also creates unlocked version `vn` carrying the
    /// same value. Wakes stalled tasks.
    pub async fn unlock_version(&self, va: u32, vl: Version, create: Option<Version>) {
        if osim_trace() {
            eprintln!(
                "[{}] task {} UNLOCK va={va:#x} vl={vl} create={create:?}",
                self.h.now(),
                self.tid
            );
        }
        let res = {
            let mut st = self.st.borrow_mut();
            st.cpu.versioned_ops += 1;
            st.cpu.core_mut(self.core).versioned_ops += 1;
            st.tick(self.h.now());
            let MachineState { ms, omgr, cpu, .. } = &mut *st;
            omgr.unlock_version(ms, self.core, va, vl, self.tid, create)
                .map(|out| {
                    // A rename (`create`) allocates a version block and may
                    // trap.
                    let trap = omgr.take_trap_cycles();
                    if trap > 0 {
                        cpu.charge_stall(self.core, StallCause::FreeListGc, trap);
                    }
                    (out.latency(), trap)
                })
        };
        let (latency, trap) = match res {
            Ok(x) => x,
            Err(f) => match self.fault_abort(va, f).await {},
        };
        self.h.sleep(latency).await;
        let stall = (trap > 0).then_some(StallCause::FreeListGc);
        self.trace(OpKind::Unlock, va, vl, self.h.now() - latency, stall);
        let wakeup = self.st.borrow().wakeup;
        let origin = self.wake_origin();
        match wakeup {
            WakeupPolicy::Broadcast => self.gate_for(va).open_tagged_from(wake::UNLOCK, origin),
            // An unlock makes the locked version readable, and a rename
            // additionally publishes the created version; one open carrying
            // both keeps matching waiters waking in park order (two separate
            // opens would reorder them relative to a broadcast).
            WakeupPolicy::Targeted => {
                let payloads = [u64::from(vl), u64::from(create.unwrap_or(vl))];
                self.gate_for(va)
                    .open_targeted_from(wake::UNLOCK, &payloads, origin)
            }
        }
    }

    /// Releases an entire O-structure (every version block back to the
    /// free list, root reset to null) and drops the machine's wait gate
    /// for `va` if nobody is parked on it.
    ///
    /// The gate cleanup is what keeps the per-machine gate map bounded:
    /// without it, every O-structure address that ever blocked a task (or
    /// published a wake-up) pins a gate entry for the life of the machine,
    /// even after the structure is freed and its address recycled. Freeing
    /// at a quiescent point — the only legal time to call this, per the
    /// manager's contract — means the gate has no waiters and can go.
    /// Returns the number of version blocks freed.
    pub async fn release_structure(&self, va: u32) -> u32 {
        let res = {
            let mut st = self.st.borrow_mut();
            st.tick(self.h.now());
            let MachineState { ms, omgr, .. } = &mut *st;
            let r = omgr.release_structure(ms, va);
            if r.is_ok() {
                // A release is only legal at quiescent points, so the gate
                // (if any) should be idle; a parked waiter means the
                // caller's contract is violated — keep the gate so the
                // waiter can still be woken (or blamed by a deadlock
                // report) instead of silently orphaning it.
                if st.gates.get(&va).is_some_and(|g| g.waiting() == 0) {
                    st.gates.remove(&va);
                }
            }
            r
        };
        match res {
            Ok(freed) => freed,
            Err(f) => match self.fault_abort(va, f).await {},
        }
    }

    // ------------------------------------------------------------------
    // Task lifecycle (TASK-BEGIN / TASK-END)
    // ------------------------------------------------------------------

    /// `TASK-BEGIN`: reports this task as active to the version manager.
    pub fn task_begin(&self) {
        self.st.borrow_mut().omgr.task_begin(self.tid);
    }

    /// `TASK-END`: reports completion; may finalize a GC phase.
    pub fn task_end(&self) {
        let mut st = self.st.borrow_mut();
        st.tick(self.h.now());
        let MachineState { ms, omgr, cpu, .. } = &mut *st;
        omgr.task_end(ms, self.tid);
        cpu.tasks_run += 1;
        cpu.core_mut(self.core).tasks_run += 1;
    }

    // ------------------------------------------------------------------
    // Runtime services
    // ------------------------------------------------------------------

    /// Allocates `bytes` of conventional heap, charging the runtime's
    /// malloc instruction budget.
    pub async fn malloc(&self, bytes: u32) -> u32 {
        let (res, instrs) = {
            let mut st = self.st.borrow_mut();
            let instrs = st.malloc_instrs;
            let MachineState { ms, alloc, .. } = &mut *st;
            (alloc.alloc_data(ms, bytes), instrs)
        };
        let va = match res {
            Ok(va) => va,
            Err(f) => match self.fault_abort(0, f).await {},
        };
        self.work(instrs).await;
        va
    }

    /// Frees a conventional heap allocation.
    pub async fn free(&self, va: u32, bytes: u32) {
        let instrs = {
            let mut st = self.st.borrow_mut();
            st.alloc.free_data(va, bytes);
            st.malloc_instrs
        };
        self.work(instrs).await;
    }

    /// Allocates one fresh O-structure root word (a versioned address with
    /// no versions yet).
    pub async fn malloc_root(&self) -> u32 {
        let (res, instrs) = {
            let mut st = self.st.borrow_mut();
            let instrs = st.malloc_instrs;
            let MachineState { ms, alloc, .. } = &mut *st;
            (alloc.alloc_root(ms), instrs)
        };
        let va = match res {
            Ok(va) => va,
            Err(f) => match self.fault_abort(0, f).await {},
        };
        self.work(instrs).await;
        va
    }

    /// Appends a trace record if tracing is enabled (end = now).
    fn trace(&self, kind: OpKind, va: u32, version: u32, start: Cycle, stall: Option<StallCause>) {
        let mut st = self.st.borrow_mut();
        if st.trace.enabled() {
            st.trace.push(TraceRecord {
                core: self.core,
                tid: self.tid,
                kind,
                va,
                version,
                start,
                end: self.h.now(),
                stall,
            });
        }
    }

    /// Producer identity stamped on wake-ups this task publishes: the
    /// task/core pair packed into the origin label (task ids start at 1,
    /// so a real producer's label is never 0 = unattributed).
    fn wake_origin(&self) -> WakeOrigin {
        WakeOrigin {
            label: (u64::from(self.tid) << 32) | self.core as u64,
            at: self.h.now(),
        }
    }

    fn gate_for(&self, va: u32) -> Gate {
        let mut st = self.st.borrow_mut();
        st.gates.entry(va).or_insert_with(|| self.h.gate()).clone()
    }
}
