//! The software task scheduler (§IV-A).
//!
//! The paper's runtime divides sequential code into tasks and assigns them
//! to cores statically ("a static assignment of tasks to cores. This policy
//! imposes a minimal runtime overhead, but neglects load imbalance"). Task
//! ids reflect sequential program order, which is what makes versions
//! reflect program order (garbage-collection rule 1).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;

use osim_engine::Sim;

use crate::ctx::TaskCtx;
use crate::machine::MachineState;

/// A boxed task body.
pub type TaskFuture = Pin<Box<dyn Future<Output = ()>>>;

/// A task: a closure from its execution context to its body.
pub type TaskFn = Box<dyn FnOnce(TaskCtx) -> TaskFuture>;

/// Wraps an async closure as a [`TaskFn`].
///
/// ```ignore
/// let t = task(|ctx| async move { ctx.work(10).await; });
/// ```
pub fn task<F, Fut>(f: F) -> TaskFn
where
    F: FnOnce(TaskCtx) -> Fut + 'static,
    Fut: Future<Output = ()> + 'static,
{
    Box::new(move |ctx| Box::pin(f(ctx)))
}

/// Spawns one driver per core onto `sim`. Task `i` (zero-based) gets id
/// `first_tid + i` and runs on core `i % cores`; each driver executes its
/// tasks in order, bracketing them with `TASK-BEGIN`/`TASK-END`.
pub(crate) fn spawn_static(
    sim: &Sim,
    st: Rc<RefCell<MachineState>>,
    cores: usize,
    first_tid: u32,
    tasks: Vec<TaskFn>,
) {
    let mut queues: Vec<VecDeque<(u32, TaskFn)>> = (0..cores).map(|_| VecDeque::new()).collect();
    for (i, t) in tasks.into_iter().enumerate() {
        queues[i % cores].push_back((first_tid + i as u32, t));
    }
    for (core, queue) in queues.into_iter().enumerate() {
        if queue.is_empty() {
            continue;
        }
        let st = Rc::clone(&st);
        let handle = sim.handle();
        sim.spawn(async move {
            // `TASK-END` of task k is issued *after* `TASK-BEGIN` of task
            // k+P on the same core. Per-core queues run in ascending id
            // order, so every queued task is protected by a still-active
            // lower-id task: the collector's active window can never slide
            // past a task that has not begun (GC rule 3 at creation
            // granularity), yet it does slide forward as cores retire
            // tasks, enabling on-the-fly collection phases.
            let mut prev: Option<TaskCtx> = None;
            for (tid, body) in queue {
                let ctx = TaskCtx::new(core, tid, Rc::clone(&st), handle.clone());
                ctx.task_begin();
                if let Some(p) = prev.take() {
                    p.task_end();
                }
                let began = handle.now();
                body(ctx.clone()).await;
                let quantum = handle.now() - began;
                st.borrow_mut().hist_run_quantum.record(quantum);
                prev = Some(ctx);
            }
            if let Some(p) = prev.take() {
                p.task_end();
            }
        });
    }
}
