//! Causal-observability capture: dependency-flow edges and interval
//! telemetry.
//!
//! Both captures are strictly host-side observation. A dependency edge is
//! recorded *after* a blocked versioned load completes, from values the
//! simulation already computed (the wake's tag/origin and the stall
//! bookkeeping the stall-cause attribution keeps anyway); the interval
//! sampler reads cumulative counters at cycle-epoch boundaries from within
//! machine-state borrows the issuing core already holds. Neither inserts
//! simulation events, sleeps, or gate traffic, so modeled timing — and
//! every byte of default-path output — is identical with capture on or
//! off. Rings grow once to their configured capacity and are then reused,
//! matching the allocation-free steady-state contract of the hot loop.

use osim_engine::Cycle;

use crate::stats::StallCause;

/// Capture configuration carried by [`crate::MachineCfg`]. The default is
/// everything off, which is also completely free on the hot path (one
/// disabled-ring branch per prospective record).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CaptureCfg {
    /// Ring capacity for dependency edges (0 = capture off).
    pub dep_edges: usize,
    /// Epoch length, in cycles, for interval telemetry (0 = sampler off).
    pub sample_every: u64,
    /// Ring capacity for interval samples (0 = sampler off).
    pub samples: usize,
}

impl CaptureCfg {
    /// A convenient armed configuration: `dep_edges` edge slots and a
    /// sampler with the given epoch, sized generously.
    pub fn armed(dep_edges: usize, sample_every: u64, samples: usize) -> Self {
        CaptureCfg {
            dep_edges,
            sample_every,
            samples,
        }
    }

    /// Whether any capture channel is on.
    pub fn any(&self) -> bool {
        self.dep_edges > 0 || (self.sample_every > 0 && self.samples > 0)
    }
}

/// One producer→consumer dependency edge: a versioned load blocked on
/// `va`, and the recorded `STORE-VERSION`/`UNLOCK-VERSION` released it.
///
/// When a load blocks and re-checks more than once (broadcast wake-ups
/// are spurious by contract), only the *satisfying* wake — the one whose
/// re-check completed the load — becomes an edge; `waited` still
/// accumulates every blocked interval, so edge cycle-weights match the
/// stall cycles charged to the consumer for this operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepEdge {
    /// Root virtual address of the contended O-structure.
    pub va: u32,
    /// Version requested (exact loads) or cap (latest loads).
    pub awaited: u32,
    /// Version the load finally returned.
    pub resolved: u32,
    /// Stall-cause attribution of the final blocked interval.
    pub cause: StallCause,
    /// Consumer coordinates (the blocked load).
    pub consumer_tid: u32,
    /// Core the consumer ran on.
    pub consumer_core: u32,
    /// Producer task id (0 = unattributed: the wake carried no origin).
    pub producer_tid: u32,
    /// Core the producer ran on.
    pub producer_core: u32,
    /// Cycle the producing store/unlock completed.
    pub produced_at: Cycle,
    /// Cycle the consumer first blocked on this operation.
    pub blocked_at: Cycle,
    /// Cycle the satisfying wake resumed the consumer.
    pub woken_at: Cycle,
    /// Total blocked cycles across every retry of this operation (equals
    /// the stall cycles charged for it).
    pub waited: Cycle,
}

impl DepEdge {
    /// Whether the satisfying wake carried a producer identity.
    pub fn attributed(&self) -> bool {
        self.producer_tid != 0
    }
}

/// One interval-telemetry sample.
///
/// Counters are *deltas* over `(prev.at, at]` (the interval since the
/// previous sample); `free_blocks` is a point-in-time gauge. Samples land
/// on the absolute `sample_every` cycle grid, but when simulated time
/// jumps across several epoch boundaries in one step (a long DRAM sleep,
/// say) a single sample covers the whole jump — intervals are therefore
/// multiples of the epoch, not always exactly one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Epoch-boundary cycle this sample was taken at.
    pub at: Cycle,
    /// Instructions retired in the interval.
    pub instructions: u64,
    /// Stall cycles charged in the interval, by [`StallCause::index`].
    pub stalls: [u64; 4],
    /// Version blocks on the MVM free list at the boundary (gauge).
    pub free_blocks: u64,
    /// L1 hits (reads + writes) in the interval.
    pub l1_hits: u64,
    /// L1 misses in the interval.
    pub l1_misses: u64,
    /// L2 hits in the interval.
    pub l2_hits: u64,
    /// L2 misses in the interval.
    pub l2_misses: u64,
}

impl Sample {
    /// Total stall cycles of the interval.
    pub fn stall_cycles(&self) -> u64 {
        self.stalls.iter().sum()
    }
}

/// Cumulative counter snapshot the sampler diffs against (all values are
/// running totals at the previous emitted boundary).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SampleBase {
    pub instructions: u64,
    pub stalls: [u64; 4],
    pub l1_hits: u64,
    pub l1_misses: u64,
    pub l2_hits: u64,
    pub l2_misses: u64,
}

/// Host-side epoch sampler state. `every == 0` disables it.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct Sampler {
    /// Epoch length in cycles (0 = off).
    pub every: u64,
    /// Next epoch boundary to emit at.
    pub next_at: Cycle,
    /// Counter totals at the last emitted boundary.
    pub base: SampleBase,
}
