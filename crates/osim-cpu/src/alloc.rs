//! Runtime memory allocator over the simulated 32-bit address space.
//!
//! Two regions are managed:
//!
//! * a **conventional heap** of ordinary data pages (workload nodes, arrays,
//!   lock words), with size-class free lists so deleted nodes can be reused
//!   by unversioned baselines;
//! * a **versioned root region** of `VersionedRoot` pages, handed out one
//!   4-byte root word at a time. Root words are never recycled during a run,
//!   following §III-C ("the simplest solution is for programs to delay the
//!   recycling of memory ... until points of execution where no parallel
//!   tasks are executing").
//!
//! Allocator bookkeeping itself is functional (it models the runtime's
//! malloc metadata, whose cost the caller charges as instructions via
//! [`crate::TaskCtx::work`]).

use std::collections::HashMap;

use osim_mem::{Fault, MemSys, PageFlags, PAGE_SIZE};

/// The runtime allocator.
#[derive(Default)]
pub struct SimAlloc {
    data_cursor: u32,
    data_end: u32,
    root_cursor: u32,
    root_end: u32,
    /// Size-class free lists for the conventional heap.
    free: HashMap<u32, Vec<u32>>,
    /// Bytes handed out from the conventional heap (net of frees).
    pub data_live: u64,
    /// Root words handed out.
    pub roots_live: u64,
}

impl SimAlloc {
    /// Creates an empty allocator; regions grow on demand.
    pub fn new() -> Self {
        Self::default()
    }

    fn round(bytes: u32) -> u32 {
        bytes.max(4).next_multiple_of(8)
    }

    /// Allocates `bytes` of conventional data, 8-byte aligned.
    ///
    /// Fails with [`Fault::OutOfVersionBlocks`] if the simulated RAM is
    /// exhausted, so callers can surface the condition as a typed error
    /// instead of an abort.
    pub fn alloc_data(&mut self, ms: &mut MemSys, bytes: u32) -> Result<u32, Fault> {
        let size = Self::round(bytes);
        if let Some(va) = self.free.get_mut(&size).and_then(Vec::pop) {
            self.data_live += size as u64;
            return Ok(va);
        }
        if self.data_cursor + size > self.data_end || self.data_cursor == 0 {
            let pages = size.div_ceil(PAGE_SIZE).max(4);
            let base = ms
                .map_zeroed(pages, PageFlags::Conventional)
                .ok_or(Fault::OutOfVersionBlocks)?;
            // Virtual pages are contiguous, so if the fresh block adjoins
            // the old region just extend it; otherwise restart the cursor.
            if base != self.data_end || self.data_cursor == 0 {
                self.data_cursor = base;
            }
            self.data_end = base + pages * PAGE_SIZE;
        }
        let va = self.data_cursor;
        self.data_cursor += size;
        self.data_live += size as u64;
        Ok(va)
    }

    /// Returns a conventional allocation of `bytes` to its size class.
    pub fn free_data(&mut self, va: u32, bytes: u32) {
        let size = Self::round(bytes);
        self.data_live = self.data_live.saturating_sub(size as u64);
        self.free.entry(size).or_default().push(va);
    }

    /// Allocates one zeroed O-structure root word.
    ///
    /// Fails with [`Fault::OutOfVersionBlocks`] on RAM exhaustion.
    pub fn alloc_root(&mut self, ms: &mut MemSys) -> Result<u32, Fault> {
        if self.root_cursor + 4 > self.root_end || self.root_cursor == 0 {
            let pages = 4;
            let base = ms
                .map_zeroed(pages, PageFlags::VersionedRoot)
                .ok_or(Fault::OutOfVersionBlocks)?;
            if base != self.root_end || self.root_cursor == 0 {
                self.root_cursor = base;
            }
            self.root_end = base + pages * PAGE_SIZE;
        }
        let va = self.root_cursor;
        self.root_cursor += 4;
        self.roots_live += 1;
        Ok(va)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osim_mem::HierarchyCfg;

    fn ms() -> MemSys {
        MemSys::new(HierarchyCfg::paper(1), 64 << 20)
    }

    #[test]
    fn data_allocations_are_disjoint_and_aligned() {
        let mut ms = ms();
        let mut a = SimAlloc::new();
        let x = a.alloc_data(&mut ms, 12).unwrap();
        let y = a.alloc_data(&mut ms, 12).unwrap();
        assert_eq!(x % 8, 0);
        assert_eq!(y % 8, 0);
        assert!(y >= x + 16, "12 rounds to 16");
        ms.phys
            .write_u32(ms.pt.translate_conventional(x).unwrap(), 1);
        ms.phys
            .write_u32(ms.pt.translate_conventional(y).unwrap(), 2);
        assert_eq!(
            ms.phys.read_u32(ms.pt.translate_conventional(x).unwrap()),
            1
        );
    }

    #[test]
    fn free_then_alloc_reuses() {
        let mut ms = ms();
        let mut a = SimAlloc::new();
        let x = a.alloc_data(&mut ms, 24).unwrap();
        a.free_data(x, 24);
        let y = a.alloc_data(&mut ms, 24).unwrap();
        assert_eq!(x, y);
        assert_eq!(a.data_live, 24);
    }

    #[test]
    fn large_allocation_spans_pages() {
        let mut ms = ms();
        let mut a = SimAlloc::new();
        let big = a.alloc_data(&mut ms, 3 * PAGE_SIZE).unwrap();
        // Touch first and last byte's words.
        let pa0 = ms.pt.translate_conventional(big).unwrap();
        let pa1 = ms
            .pt
            .translate_conventional(big + 3 * PAGE_SIZE - 4)
            .unwrap();
        ms.phys.write_u32(pa0, 1);
        ms.phys.write_u32(pa1, 2);
    }

    #[test]
    fn roots_come_from_versioned_pages() {
        let mut ms = ms();
        let mut a = SimAlloc::new();
        let r = a.alloc_root(&mut ms).unwrap();
        assert!(ms.pt.translate_versioned(r).is_ok());
        assert!(ms.pt.translate_conventional(r).is_err());
        let r2 = a.alloc_root(&mut ms).unwrap();
        assert_eq!(r2, r + 4);
        assert_eq!(a.roots_live, 2);
    }

    #[test]
    fn exhaustion_is_a_typed_error_not_an_abort() {
        // Two pages of RAM: the first 4-page carve already fails.
        let mut ms = MemSys::new(HierarchyCfg::paper(1), 2 * PAGE_SIZE as u64);
        let mut a = SimAlloc::new();
        assert_eq!(a.alloc_data(&mut ms, 64), Err(Fault::OutOfVersionBlocks));
        assert_eq!(a.alloc_root(&mut ms), Err(Fault::OutOfVersionBlocks));
        assert_eq!(a.data_live, 0, "failed allocation must not leak bytes");
    }

    #[test]
    fn heap_and_roots_do_not_overlap() {
        let mut ms = ms();
        let mut a = SimAlloc::new();
        let d = a.alloc_data(&mut ms, 64).unwrap();
        let r = a.alloc_root(&mut ms).unwrap();
        assert_ne!(d / PAGE_SIZE, r / PAGE_SIZE);
    }
}
