//! Runtime memory allocator over the simulated 32-bit address space.
//!
//! Two regions are managed:
//!
//! * a **conventional heap** of ordinary data pages (workload nodes, arrays,
//!   lock words), with size-class free lists so deleted nodes can be reused
//!   by unversioned baselines;
//! * a **versioned root region** of `VersionedRoot` pages, handed out one
//!   4-byte root word at a time. Root words are never recycled during a run,
//!   following §III-C ("the simplest solution is for programs to delay the
//!   recycling of memory ... until points of execution where no parallel
//!   tasks are executing").
//!
//! Allocator bookkeeping itself is functional (it models the runtime's
//! malloc metadata, whose cost the caller charges as instructions via
//! [`crate::TaskCtx::work`]).

use std::collections::HashMap;

use osim_mem::{MemSys, PageFlags, PAGE_SIZE};

/// The runtime allocator.
#[derive(Default)]
pub struct SimAlloc {
    data_cursor: u32,
    data_end: u32,
    root_cursor: u32,
    root_end: u32,
    /// Size-class free lists for the conventional heap.
    free: HashMap<u32, Vec<u32>>,
    /// Bytes handed out from the conventional heap (net of frees).
    pub data_live: u64,
    /// Root words handed out.
    pub roots_live: u64,
}

impl SimAlloc {
    /// Creates an empty allocator; regions grow on demand.
    pub fn new() -> Self {
        Self::default()
    }

    fn round(bytes: u32) -> u32 {
        bytes.max(4).next_multiple_of(8)
    }

    /// Allocates `bytes` of conventional data, 8-byte aligned.
    ///
    /// Panics if the simulated RAM is exhausted (workloads are sized well
    /// under the Table II 64 GB).
    pub fn alloc_data(&mut self, ms: &mut MemSys, bytes: u32) -> u32 {
        let size = Self::round(bytes);
        self.data_live += size as u64;
        if let Some(va) = self.free.get_mut(&size).and_then(Vec::pop) {
            return va;
        }
        if self.data_cursor + size > self.data_end || self.data_cursor == 0 {
            let pages = size.div_ceil(PAGE_SIZE).max(4);
            let base = ms
                .map_zeroed(pages, PageFlags::Conventional)
                .expect("simulated RAM exhausted");
            // Virtual pages are contiguous, so if the fresh block adjoins
            // the old region just extend it; otherwise restart the cursor.
            if base != self.data_end || self.data_cursor == 0 {
                self.data_cursor = base;
            }
            self.data_end = base + pages * PAGE_SIZE;
        }
        let va = self.data_cursor;
        self.data_cursor += size;
        va
    }

    /// Returns a conventional allocation of `bytes` to its size class.
    pub fn free_data(&mut self, va: u32, bytes: u32) {
        let size = Self::round(bytes);
        self.data_live = self.data_live.saturating_sub(size as u64);
        self.free.entry(size).or_default().push(va);
    }

    /// Allocates one zeroed O-structure root word.
    pub fn alloc_root(&mut self, ms: &mut MemSys) -> u32 {
        if self.root_cursor + 4 > self.root_end || self.root_cursor == 0 {
            let pages = 4;
            let base = ms
                .map_zeroed(pages, PageFlags::VersionedRoot)
                .expect("simulated RAM exhausted");
            if base != self.root_end || self.root_cursor == 0 {
                self.root_cursor = base;
            }
            self.root_end = base + pages * PAGE_SIZE;
        }
        let va = self.root_cursor;
        self.root_cursor += 4;
        self.roots_live += 1;
        va
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osim_mem::HierarchyCfg;

    fn ms() -> MemSys {
        MemSys::new(HierarchyCfg::paper(1), 64 << 20)
    }

    #[test]
    fn data_allocations_are_disjoint_and_aligned() {
        let mut ms = ms();
        let mut a = SimAlloc::new();
        let x = a.alloc_data(&mut ms, 12);
        let y = a.alloc_data(&mut ms, 12);
        assert_eq!(x % 8, 0);
        assert_eq!(y % 8, 0);
        assert!(y >= x + 16, "12 rounds to 16");
        ms.phys
            .write_u32(ms.pt.translate_conventional(x).unwrap(), 1);
        ms.phys
            .write_u32(ms.pt.translate_conventional(y).unwrap(), 2);
        assert_eq!(
            ms.phys.read_u32(ms.pt.translate_conventional(x).unwrap()),
            1
        );
    }

    #[test]
    fn free_then_alloc_reuses() {
        let mut ms = ms();
        let mut a = SimAlloc::new();
        let x = a.alloc_data(&mut ms, 24);
        a.free_data(x, 24);
        let y = a.alloc_data(&mut ms, 24);
        assert_eq!(x, y);
        assert_eq!(a.data_live, 24);
    }

    #[test]
    fn large_allocation_spans_pages() {
        let mut ms = ms();
        let mut a = SimAlloc::new();
        let big = a.alloc_data(&mut ms, 3 * PAGE_SIZE);
        // Touch first and last byte's words.
        let pa0 = ms.pt.translate_conventional(big).unwrap();
        let pa1 = ms
            .pt
            .translate_conventional(big + 3 * PAGE_SIZE - 4)
            .unwrap();
        ms.phys.write_u32(pa0, 1);
        ms.phys.write_u32(pa1, 2);
    }

    #[test]
    fn roots_come_from_versioned_pages() {
        let mut ms = ms();
        let mut a = SimAlloc::new();
        let r = a.alloc_root(&mut ms);
        assert!(ms.pt.translate_versioned(r).is_ok());
        assert!(ms.pt.translate_conventional(r).is_err());
        let r2 = a.alloc_root(&mut ms);
        assert_eq!(r2, r + 4);
        assert_eq!(a.roots_live, 2);
    }

    #[test]
    fn heap_and_roots_do_not_overlap() {
        let mut ms = ms();
        let mut a = SimAlloc::new();
        let d = a.alloc_data(&mut ms, 64);
        let r = a.alloc_root(&mut ms);
        assert_ne!(d / PAGE_SIZE, r / PAGE_SIZE);
    }
}
