//! Typed run errors and diagnostic reports.
//!
//! A simulated run can end three ways short of completion, and each carries
//! enough context to act on without re-running under a debugger:
//!
//! * [`SimError::Fault`] — an architectural fault (protection violation,
//!   version-block exhaustion after the graceful refill/GC path gave up)
//!   aborted the run; the report names the issuing task, its core, the
//!   virtual address and the cycle.
//! * [`SimError::Deadlock`] — the event queue drained with tasks still
//!   parked; the [`DeadlockReport`] names every blocked task's `(va,
//!   version)` wait target, the lock holder if any, and classifies each
//!   wait by following the wait-for graph (lock cycle vs. never-produced
//!   version vs. blocked behind one of those).
//! * [`SimError::Watchdog`] — the progress-based livelock watchdog saw no
//!   task retire work for a configured window and dumped the parked set.

use std::collections::HashMap;

use osim_engine::{BlockedTask, Cycle, TaskId as EngineTaskId};
use osim_mem::Fault;

use crate::capture::DepEdge;

/// An architectural fault annotated with the issuing task's coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskFault {
    /// Task id of the faulting task.
    pub tid: u32,
    /// Core the task was running on.
    pub core: usize,
    /// Virtual address of the faulting operation (0 for allocator faults
    /// that have no architectural address).
    pub va: u32,
    /// Simulated cycle of the fault.
    pub cycle: Cycle,
    /// The underlying fault.
    pub fault: Fault,
}

impl std::fmt::Display for TaskFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task {} on core {} faulted at cycle {}: {} (va {:#010x})",
            self.tid, self.core, self.cycle, self.fault, self.va
        )
    }
}

/// Why a task in a deadlock report can never run again, derived from the
/// wait-for graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitClass {
    /// Waiting for a version that no live task will ever produce.
    NeverProduced,
    /// Part of a lock cycle: following the lock-holder chain from this task
    /// leads back to it.
    LockCycle,
    /// Blocked behind another blocked task (transitively downstream of a
    /// never-produced version or a lock cycle it is not part of).
    Downstream,
    /// Waiting on a lock whose holder is no longer a live task — the holder
    /// exited without unlocking.
    AbandonedLock,
    /// The task registered no wait record (blocked on a bespoke gate).
    Unknown,
}

impl WaitClass {
    /// Short stable name (report field value).
    pub fn name(&self) -> &'static str {
        match self {
            WaitClass::NeverProduced => "never-produced",
            WaitClass::LockCycle => "lock-cycle",
            WaitClass::Downstream => "downstream",
            WaitClass::AbandonedLock => "abandoned-lock",
            WaitClass::Unknown => "unknown",
        }
    }
}

/// One blocked task of a [`DeadlockReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameEntry {
    /// Engine task id (slot in the executor).
    pub engine_task: EngineTaskId,
    /// Cpu-layer task id, when the task registered a wait record.
    pub tid: Option<u64>,
    /// Virtual address of the contended O-structure.
    pub va: Option<u64>,
    /// The awaited version.
    pub version: Option<u64>,
    /// Wait kind as registered (`missing-version`, `locked-version`,
    /// `coherence-inval`).
    pub kind: Option<&'static str>,
    /// Task holding the contended version, if any.
    pub holder: Option<u64>,
    /// Cycle the wait was registered at.
    pub since: Option<Cycle>,
    /// Wait-for-graph classification.
    pub class: WaitClass,
    /// Task and cycle of the last captured producer (store/unlock) on this
    /// entry's structure, when dependency-flow capture was armed — names
    /// the missing producer a `never-produced` waiter starved behind.
    pub last_producer: Option<(u64, Cycle)>,
}

impl std::fmt::Display for BlameEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match (self.tid, self.va, self.version) {
            (Some(tid), Some(va), Some(version)) => {
                write!(
                    f,
                    "task {tid} waiting for {} at va {va:#010x} version {version}",
                    self.kind.unwrap_or("blocked")
                )?;
                if let Some(h) = self.holder {
                    write!(f, " held by task {h}")?;
                }
            }
            _ => write!(f, "engine task {} (no wait record)", self.engine_task)?,
        }
        if let Some(at) = self.since {
            write!(f, " since cycle {at}")?;
        }
        if let Some((tid, at)) = self.last_producer {
            write!(f, " (last producer: task {tid} at cycle {at})")?;
        }
        write!(f, " [{}]", self.class.name())
    }
}

/// A deadlock blame report: every task that can never run again, with its
/// wait target and a wait-for-graph classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Cycle the deadlock was detected at.
    pub now: Cycle,
    /// One entry per blocked task.
    pub entries: Vec<BlameEntry>,
}

impl DeadlockReport {
    /// Builds the report from the executor's blocked-task snapshot by
    /// following each task's lock-holder chain. Each task waits on at most
    /// one resource (out-degree ≤ 1), so the wait-for graph is functional
    /// and chain-following finds every cycle.
    pub fn build(now: Cycle, blocked: Vec<BlockedTask>) -> Self {
        let by_label: HashMap<u64, usize> = blocked
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.info.as_ref().map(|w| (w.label, i)))
            .collect();
        let entries = blocked
            .iter()
            .map(|b| BlameEntry {
                engine_task: b.task,
                tid: b.info.as_ref().map(|w| w.label),
                va: b.info.as_ref().map(|w| w.resource),
                version: b.info.as_ref().map(|w| w.target),
                kind: b.info.as_ref().map(|w| w.kind),
                holder: b.info.as_ref().and_then(|w| w.holder),
                since: b.since,
                class: classify(&blocked, &by_label, b),
                last_producer: None,
            })
            .collect();
        DeadlockReport { now, entries }
    }

    /// Entries of a given class.
    pub fn of_class(&self, class: WaitClass) -> impl Iterator<Item = &BlameEntry> {
        self.entries.iter().filter(move |e| e.class == class)
    }

    /// Links each blamed waiter to the last captured producer on its
    /// structure (when dependency-flow capture was armed): for a
    /// `never-produced` wait this names who *last* advanced the structure —
    /// the task downstream of which the producer chain broke. A no-op when
    /// no edges were captured.
    pub fn link_producers(&mut self, deps: &[DepEdge]) {
        for e in &mut self.entries {
            let Some(va) = e.va else { continue };
            e.last_producer = deps
                .iter()
                .filter(|d| d.attributed() && u64::from(d.va) == va)
                .max_by_key(|d| d.produced_at)
                .map(|d| (u64::from(d.producer_tid), d.produced_at));
        }
    }
}

/// Classifies one blocked task by walking its lock-holder chain.
fn classify(blocked: &[BlockedTask], by_label: &HashMap<u64, usize>, b: &BlockedTask) -> WaitClass {
    let Some(info) = &b.info else {
        return WaitClass::Unknown;
    };
    let Some(first_holder) = info.holder else {
        // No holder: the version simply does not exist and, with the run
        // wedged, never will.
        return WaitClass::NeverProduced;
    };
    let start = info.label;
    let mut cur = first_holder;
    for _ in 0..=blocked.len() {
        if cur == start {
            return WaitClass::LockCycle;
        }
        let next = by_label.get(&cur).and_then(|&i| blocked[i].info.as_ref());
        match next {
            // The holder is not among the blocked tasks: it exited while
            // still holding the lock (or never registered a record).
            None => return WaitClass::AbandonedLock,
            Some(w) => match w.holder {
                // The chain ends at a task waiting for a missing version:
                // this task is collateral damage.
                None => return WaitClass::Downstream,
                Some(h) => cur = h,
            },
        }
    }
    // The chain looped without revisiting `start`: blocked behind a lock
    // cycle this task is not part of.
    WaitClass::Downstream
}

impl std::fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "deadlock at cycle {}: {} task(s) blocked forever",
            self.now,
            self.entries.len()
        )?;
        for e in &self.entries {
            write!(f, "\n  {e}")?;
        }
        Ok(())
    }
}

/// Diagnostic dump produced by the progress-based livelock watchdog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchdogReport {
    /// Cycle the watchdog fired at.
    pub now: Cycle,
    /// Length of the progress window that elapsed without any task
    /// retiring work.
    pub idle_cycles: Cycle,
    /// Snapshot of every parked task at firing time.
    pub parked: Vec<BlockedTask>,
}

impl std::fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "watchdog: no task retired work for {} cycles (at cycle {}); {} task(s) parked",
            self.idle_cycles,
            self.now,
            self.parked.len()
        )?;
        for p in &self.parked {
            match &p.info {
                Some(info) => write!(f, "\n  engine task {}: {info}", p.task)?,
                None => write!(f, "\n  engine task {}: no wait record", p.task)?,
            }
        }
        Ok(())
    }
}

/// Why [`crate::Machine::run_tasks`] stopped before all tasks completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// Every pending task is blocked forever; see the blame report.
    Deadlock(DeadlockReport),
    /// An architectural fault aborted the run.
    Fault(TaskFault),
    /// The livelock watchdog fired.
    Watchdog(WatchdogReport),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Deadlock(r) => r.fmt(f),
            SimError::Fault(t) => t.fmt(f),
            SimError::Watchdog(w) => w.fmt(f),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;
    use osim_engine::WaitInfo;

    fn blocked(task: usize, label: u64, target: u64, holder: Option<u64>) -> BlockedTask {
        BlockedTask {
            task,
            since: Some(5),
            info: Some(WaitInfo {
                label,
                resource: 0x1000 + label,
                target,
                kind: if holder.is_some() {
                    "locked-version"
                } else {
                    "missing-version"
                },
                holder,
            }),
        }
    }

    #[test]
    fn missing_version_is_never_produced() {
        let r = DeadlockReport::build(9, vec![blocked(0, 1, 7, None)]);
        assert_eq!(r.entries[0].class, WaitClass::NeverProduced);
        let msg = r.to_string();
        assert!(msg.contains("version 7"), "{msg}");
        assert!(msg.contains("never-produced"), "{msg}");
    }

    #[test]
    fn two_task_lock_cycle_is_flagged() {
        let r = DeadlockReport::build(
            0,
            vec![blocked(0, 1, 3, Some(2)), blocked(1, 2, 4, Some(1))],
        );
        assert!(r.entries.iter().all(|e| e.class == WaitClass::LockCycle));
    }

    #[test]
    fn waiter_behind_missing_version_is_downstream() {
        // Task 2 holds what task 1 wants, but task 2 itself waits on a
        // version nobody will produce.
        let r = DeadlockReport::build(0, vec![blocked(0, 1, 3, Some(2)), blocked(1, 2, 9, None)]);
        assert_eq!(r.entries[0].class, WaitClass::Downstream);
        assert_eq!(r.entries[1].class, WaitClass::NeverProduced);
    }

    #[test]
    fn waiter_behind_foreign_cycle_is_downstream() {
        let r = DeadlockReport::build(
            0,
            vec![
                blocked(0, 1, 3, Some(2)),
                blocked(1, 2, 4, Some(3)),
                blocked(2, 3, 5, Some(2)),
            ],
        );
        assert_eq!(r.entries[0].class, WaitClass::Downstream);
        assert_eq!(r.entries[1].class, WaitClass::LockCycle);
        assert_eq!(r.entries[2].class, WaitClass::LockCycle);
    }

    #[test]
    fn gone_holder_is_abandoned_lock() {
        let r = DeadlockReport::build(0, vec![blocked(0, 1, 3, Some(99))]);
        assert_eq!(r.entries[0].class, WaitClass::AbandonedLock);
    }

    #[test]
    fn blamed_waiter_names_its_missing_producer() {
        // Task 1 waits forever at va 0x1001 for version 7; the capture ring
        // saw task 3 store version 6 there at cycle 40 — the report should
        // name task 3 as the last producer the waiter starved behind.
        let mut r = DeadlockReport::build(99, vec![blocked(0, 1, 7, None)]);
        let edge = |va: u32, producer_tid: u32, produced_at: Cycle| DepEdge {
            va,
            awaited: 6,
            resolved: 6,
            cause: crate::stats::StallCause::MissingVersion,
            consumer_tid: 2,
            consumer_core: 0,
            producer_tid,
            producer_core: 1,
            produced_at,
            blocked_at: produced_at.saturating_sub(10),
            woken_at: produced_at + 1,
            waited: 11,
        };
        r.link_producers(&[
            edge(0x1001, 3, 20),
            edge(0x1001, 3, 40),
            edge(0x2000, 5, 80), // different structure: ignored
        ]);
        assert_eq!(r.entries[0].last_producer, Some((3, 40)));
        let msg = r.to_string();
        assert!(msg.contains("last producer: task 3 at cycle 40"), "{msg}");
    }

    #[test]
    fn no_record_is_unknown() {
        let r = DeadlockReport::build(
            0,
            vec![BlockedTask {
                task: 4,
                since: None,
                info: None,
            }],
        );
        assert_eq!(r.entries[0].class, WaitClass::Unknown);
        assert!(r.to_string().contains("no wait record"));
    }
}
