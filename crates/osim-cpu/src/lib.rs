//! Simulated multicore machine for the O-structures evaluation.
//!
//! This crate assembles the pieces: `osim-engine` provides deterministic
//! simulated time, `osim-mem` the cache hierarchy and `osim-uarch` the
//! O-structure manager. On top of those it models:
//!
//! * [`machine::Machine`] — one simulated machine per the paper's Table II:
//!   N two-way in-order cores at 2 GHz, each with an L1, sharing an L2 and
//!   DRAM, plus the O-structure manager and its free list.
//! * [`ctx::TaskCtx`] — the instruction interface a workload task programs
//!   against: `work` (instruction accounting), conventional `load`/`store`/
//!   `cas`, the six O-structure operations (blocking flavours retry on a
//!   per-structure [`osim_engine::Gate`]), `TASK-BEGIN`/`TASK-END`, and the
//!   runtime allocator services.
//! * [`runtime`] — the paper's software task scheduler: static assignment
//!   of a sequential task list onto cores (§IV-A).
//! * [`rwlock`] — a conventional-memory reader–writer lock built on
//!   simulated CAS, the baseline of the snapshot-isolation comparison
//!   (Figure 8).
//!
//! Workloads are `async` Rust functions; each memory operation suspends the
//! issuing core for exactly the modeled latency, so the final simulated
//! cycle counts play the role of the paper's gem5 measurements.

pub mod alloc;
pub mod capture;
pub mod ctx;
pub mod error;
pub mod machine;
pub mod runtime;
pub mod rwlock;
pub mod stats;
pub mod trace;

pub use capture::{CaptureCfg, DepEdge, Sample};
pub use ctx::{wake, TaskCtx};
pub use error::{BlameEntry, DeadlockReport, SimError, TaskFault, WaitClass, WatchdogReport};
pub use machine::{Machine, MachineCfg, MachineState, PhaseReport, WakeupPolicy};
pub use osim_engine::{EngineHists, EngineStats, SchedulerKind, ShakePolicy};
pub use runtime::{task, TaskFn};
pub use rwlock::SimRwLock;
pub use stats::{CoreStats, CpuStats, RunHists, StallCause};
pub use trace::{OpKind, Trace, TraceRecord, TraceSummary};
