//! A reader–writer lock over conventional simulated memory.
//!
//! The baseline of the paper's snapshot-isolation comparison (Figure 8,
//! §IV-C): "an unversioned binary tree using a read-write lock". The lock
//! word lives in ordinary simulated memory and is manipulated with the
//! simulated CAS, so its coherence traffic and serialization show up in the
//! measured cycle counts exactly as a real lock's would.
//!
//! Layout of the lock word: bit 31 = writer held, bits 0–30 = reader count.

use crate::ctx::TaskCtx;

const WRITER: u32 = 1 << 31;

/// Cycles a core backs off after a failed acquisition attempt.
const BACKOFF: u64 = 24;

/// A reader–writer lock at a fixed simulated address.
///
/// Writer-preferring is deliberately *not* implemented; like the paper's
/// baseline, readers and writers simply exclude each other, which is what
/// "separates reads and writes, eliminating synchronizations but also
/// concurrency".
#[derive(Clone, Copy, Debug)]
pub struct SimRwLock {
    /// Virtual address of the lock word (conventional page).
    pub va: u32,
}

impl SimRwLock {
    /// Wraps an existing zero-initialized word as a lock.
    pub fn at(va: u32) -> Self {
        SimRwLock { va }
    }

    /// Allocates a fresh lock word on the conventional heap.
    pub async fn alloc(ctx: &TaskCtx) -> Self {
        let va = ctx.malloc(4).await;
        ctx.store_u32(va, 0).await;
        SimRwLock { va }
    }

    /// Acquires the lock in shared (reader) mode.
    pub async fn read_lock(&self, ctx: &TaskCtx) {
        loop {
            let cur = ctx.load_u32(self.va).await;
            if cur & WRITER == 0 {
                let seen = ctx.cas_u32(self.va, cur, cur + 1).await;
                if seen == cur {
                    return;
                }
            }
            ctx.work(BACKOFF * 2).await; // spin backoff
        }
    }

    /// Releases a shared hold.
    pub async fn read_unlock(&self, ctx: &TaskCtx) {
        loop {
            let cur = ctx.load_u32(self.va).await;
            debug_assert!(cur & WRITER == 0 && cur > 0, "read_unlock without hold");
            let seen = ctx.cas_u32(self.va, cur, cur - 1).await;
            if seen == cur {
                return;
            }
        }
    }

    /// Acquires the lock exclusively (writer mode).
    pub async fn write_lock(&self, ctx: &TaskCtx) {
        loop {
            let seen = ctx.cas_u32(self.va, 0, WRITER).await;
            if seen == 0 {
                return;
            }
            ctx.work(BACKOFF * 2).await;
        }
    }

    /// Releases an exclusive hold.
    pub async fn write_unlock(&self, ctx: &TaskCtx) {
        let seen = ctx.cas_u32(self.va, WRITER, 0).await;
        debug_assert_eq!(seen, WRITER, "write_unlock without hold");
    }
}
