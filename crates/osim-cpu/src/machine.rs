//! A simulated multicore machine (Table II).

use std::cell::RefCell;
use std::rc::Rc;

use osim_engine::{
    Cycle, EngineHists, EngineStats, Gate, RunError, SchedulerKind, ShakePolicy, Sim, SimHandle,
};
use osim_mem::{EventLog, Fault, FxHashMap, HierarchyCfg, MemSys};
use osim_metrics::Histogram;
use osim_uarch::{OManager, OManagerCfg};

use crate::alloc::SimAlloc;
use crate::capture::{CaptureCfg, DepEdge, Sample, SampleBase, Sampler};
use crate::ctx::TaskCtx;
use crate::error::{DeadlockReport, SimError, TaskFault, WatchdogReport};
use crate::runtime::{self, TaskFn};
use crate::stats::{CpuStats, RunHists};
use crate::trace::Trace;

/// How a completed `STORE-VERSION` / `UNLOCK-VERSION` wakes the tasks
/// parked on its O-structure's gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WakeupPolicy {
    /// Wake every parked waiter; each re-checks its condition and re-parks
    /// if still unsatisfied (the paper's model, and the default). The
    /// failed re-checks are themselves modeled operations, so this policy
    /// defines the reference timing.
    #[default]
    Broadcast,
    /// Wake only waiters whose awaited version could have been satisfied
    /// by the publishing operation (an ablation): blocked loads register
    /// the version they await, and openers pass the version(s) they
    /// published. Skipped waiters never pay the wake/re-check round trip,
    /// so simulated timing can differ from broadcast wherever a failed
    /// re-check would have touched the caches.
    Targeted,
}

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineCfg {
    /// Number of cores.
    pub cores: usize,
    /// Cache hierarchy (Table II defaults via [`HierarchyCfg::paper`]).
    pub hier: HierarchyCfg,
    /// O-structure manager configuration.
    pub omgr: OManagerCfg,
    /// Simulated RAM budget in bytes.
    pub ram_bytes: u64,
    /// Superscalar issue width (Table II: 2-way in-order).
    pub issue_width: u64,
    /// Instruction cost charged for one runtime `malloc`/`free` call.
    pub malloc_instrs: u64,
    /// Progress-based livelock watchdog: if no task retires work for this
    /// many cycles, the run aborts with [`SimError::Watchdog`] and a
    /// diagnostic dump of every parked task. `None` disables it (the
    /// default — deterministic timing is unaffected).
    pub watchdog_cycles: Option<u64>,
    /// Gate wake-up delivery policy (default [`WakeupPolicy::Broadcast`]).
    pub wakeup: WakeupPolicy,
    /// Event-queue implementation for the engine (default
    /// [`SchedulerKind::CalendarQueue`]). Timing is identical under every
    /// kind; only host speed differs.
    pub scheduler: SchedulerKind,
    /// Same-cycle tie-break policy (default [`ShakePolicy::Off`]). Unlike
    /// `scheduler`, a seeded shake *does* change simulated interleavings —
    /// deterministically per seed — and is meant for the stress harness.
    pub shake: ShakePolicy,
    /// Causal-observability capture (dependency edges + interval
    /// telemetry). Default: everything off; capture is host-side
    /// observation only and never changes simulated timing.
    pub capture: CaptureCfg,
}

impl MachineCfg {
    /// The paper's platform with `cores` cores.
    pub fn paper(cores: usize) -> Self {
        MachineCfg {
            cores,
            hier: HierarchyCfg::paper(cores),
            omgr: OManagerCfg::default(),
            // The paper lists 64 GB; a 32-bit physical space caps at 4 GiB,
            // which every workload fits in comfortably.
            ram_bytes: 1 << 32,
            issue_width: 2,
            malloc_instrs: 40,
            watchdog_cycles: None,
            wakeup: WakeupPolicy::default(),
            scheduler: SchedulerKind::default(),
            shake: ShakePolicy::default(),
            capture: CaptureCfg::default(),
        }
    }
}

/// Mutable machine state shared by all cores.
pub struct MachineState {
    /// Memory system (caches, physical memory, page table).
    pub ms: MemSys,
    /// O-structure manager.
    pub omgr: OManager,
    /// Runtime allocator.
    pub alloc: SimAlloc,
    /// Core-side statistics.
    pub cpu: CpuStats,
    /// Per-O-structure wait gates (keyed by root virtual address).
    pub(crate) gates: FxHashMap<u32, Gate>,
    /// Optional per-operation execution trace.
    pub trace: Trace,
    /// Captured producer→consumer dependency edges (bounded ring;
    /// disabled unless [`MachineCfg::capture`] arms it).
    pub deps: EventLog<DepEdge>,
    /// Captured interval-telemetry samples (bounded ring).
    pub timeseries: EventLog<Sample>,
    /// Simulated cycles each task ran from `TASK-BEGIN` to completion (the
    /// static scheduler's run-quantum lengths); reset with the other stats.
    pub hist_run_quantum: Histogram,
    pub(crate) sampler: Sampler,
    pub(crate) issue_width: u64,
    pub(crate) malloc_instrs: u64,
    pub(crate) wakeup: WakeupPolicy,
    /// First architectural fault recorded by a task before it halted the
    /// engine; drained by [`Machine::run_tasks`].
    pub(crate) fault: Option<TaskFault>,
}

impl MachineState {
    /// Per-operation choke point: stamps the hierarchy and page-table
    /// clocks and advances interval telemetry. Host-side only — this runs
    /// inside machine-state borrows the issuing core already holds and
    /// never schedules simulation events.
    pub(crate) fn tick(&mut self, now: Cycle) {
        self.ms.hier.set_clock(now);
        self.ms.pt.set_clock(now);
        if self.sampler.every != 0 && now >= self.sampler.next_at {
            // Emit at the highest grid boundary ≤ now: a time step that
            // jumps several epochs yields one sample covering the jump.
            let boundary = (now / self.sampler.every) * self.sampler.every;
            self.push_sample(boundary);
            self.sampler.next_at = boundary + self.sampler.every;
        }
    }

    /// Running counter totals the sampler diffs against.
    fn sample_totals(&self) -> SampleBase {
        let m = &self.ms.hier.stats;
        SampleBase {
            instructions: self.cpu.instructions,
            stalls: self.cpu.stall_by_cause,
            l1_hits: m.l1_read_hits.iter().sum::<u64>() + m.l1_write_hits.iter().sum::<u64>(),
            l1_misses: m.l1_read_misses.iter().sum::<u64>() + m.l1_write_misses.iter().sum::<u64>(),
            l2_hits: m.l2_hits,
            l2_misses: m.l2_misses,
        }
    }

    fn push_sample(&mut self, at: Cycle) {
        let cur = self.sample_totals();
        let base = self.sampler.base;
        self.timeseries.push(Sample {
            at,
            instructions: cur.instructions - base.instructions,
            stalls: [
                cur.stalls[0] - base.stalls[0],
                cur.stalls[1] - base.stalls[1],
                cur.stalls[2] - base.stalls[2],
                cur.stalls[3] - base.stalls[3],
            ],
            free_blocks: u64::from(self.omgr.free_blocks()),
            l1_hits: cur.l1_hits - base.l1_hits,
            l1_misses: cur.l1_misses - base.l1_misses,
            l2_hits: cur.l2_hits - base.l2_hits,
            l2_misses: cur.l2_misses - base.l2_misses,
        });
        self.sampler.base = cur;
    }

    /// Flushes the final partial epoch at the end of a run phase, so the
    /// timeseries covers the whole run even when it does not end on a
    /// grid boundary. A no-op when nothing advanced since the last sample.
    pub(crate) fn flush_sample(&mut self, now: Cycle) {
        if self.sampler.every == 0 {
            return;
        }
        let cur = self.sample_totals();
        let base = self.sampler.base;
        let changed = cur.instructions != base.instructions
            || cur.stalls != base.stalls
            || cur.l1_hits != base.l1_hits
            || cur.l1_misses != base.l1_misses
            || cur.l2_hits != base.l2_hits
            || cur.l2_misses != base.l2_misses;
        if changed {
            self.push_sample(now);
            self.sampler.next_at = (now / self.sampler.every + 1) * self.sampler.every;
        }
    }
}

/// Timing report for one [`Machine::run_tasks`] phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseReport {
    /// Simulated cycle at which the phase started.
    pub start: Cycle,
    /// Simulated cycle at which the last task finished.
    pub end: Cycle,
}

impl PhaseReport {
    /// Cycles elapsed during the phase.
    pub fn cycles(&self) -> Cycle {
        self.end - self.start
    }
}

/// One simulated machine: engine + memory system + O-structure manager.
pub struct Machine {
    sim: Sim,
    state: Rc<RefCell<MachineState>>,
    cfg: MachineCfg,
    next_tid: u32,
}

impl Machine {
    /// Builds a machine; panics if the initial free-list carve fails.
    pub fn new(cfg: MachineCfg) -> Self {
        match Self::try_new(cfg) {
            Ok(m) => m,
            Err(f) => panic!("machine construction failed: {f}"),
        }
    }

    /// Builds a machine, surfacing an initial free-list carve failure
    /// (RAM too small for `initial_free_blocks`) as a typed error.
    pub fn try_new(cfg: MachineCfg) -> Result<Self, Fault> {
        let mut ms = MemSys::new(cfg.hier.clone(), cfg.ram_bytes);
        let omgr = OManager::new(cfg.omgr, &mut ms)?;
        let state = MachineState {
            ms,
            omgr,
            alloc: SimAlloc::new(),
            cpu: CpuStats::for_cores(cfg.cores),
            gates: FxHashMap::default(),
            trace: Trace::disabled(),
            deps: EventLog::with_capacity(cfg.capture.dep_edges),
            timeseries: if cfg.capture.sample_every > 0 {
                EventLog::with_capacity(cfg.capture.samples)
            } else {
                EventLog::disabled()
            },
            sampler: Sampler {
                every: if cfg.capture.samples > 0 {
                    cfg.capture.sample_every
                } else {
                    0
                },
                next_at: cfg.capture.sample_every.max(1),
                base: SampleBase::default(),
            },
            hist_run_quantum: Histogram::new(),
            issue_width: cfg.issue_width,
            malloc_instrs: cfg.malloc_instrs,
            wakeup: cfg.wakeup,
            fault: None,
        };
        Ok(Machine {
            sim: Sim::with_policy(cfg.scheduler, cfg.shake),
            state: Rc::new(RefCell::new(state)),
            cfg,
            next_tid: 1,
        })
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.cfg.cores
    }

    /// The configuration this machine was built with.
    pub fn cfg(&self) -> &MachineCfg {
        &self.cfg
    }

    /// Shared machine state (memory, manager, statistics).
    pub fn state(&self) -> Rc<RefCell<MachineState>> {
        Rc::clone(&self.state)
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycle {
        self.sim.now()
    }

    /// The task id that the next [`Machine::run_tasks`] phase will assign to
    /// its first task. Workload harnesses use this to precompute the entry
    /// versions of their in-order root protocol.
    pub fn next_tid(&self) -> u32 {
        self.next_tid
    }

    /// A context pinned to `core` with task id `tid` — for direct use in
    /// tests and single-task programs. Most code goes through
    /// [`Machine::run_tasks`] instead.
    pub fn ctx(&self, core: usize, tid: u32) -> TaskCtx {
        assert!(core < self.cfg.cores, "core {core} out of range");
        TaskCtx::new(core, tid, Rc::clone(&self.state), self.sim.handle())
    }

    /// Engine handle (for spawning bespoke simulation tasks).
    pub fn handle(&self) -> SimHandle {
        self.sim.handle()
    }

    /// Engine-side counters (events dispatched, stale wakes skipped).
    pub fn engine_stats(&self) -> EngineStats {
        self.sim.stats()
    }

    /// Engine-side gate wait/fan-out histograms.
    pub fn engine_hists(&self) -> EngineHists {
        self.sim.hists()
    }

    /// Every layer's latency histograms, gathered into one snapshot
    /// (engine gate waits, MVM walks/GC pauses, cache access latencies,
    /// and task run quanta). All simulated-cycle quantities.
    pub fn run_hists(&self) -> RunHists {
        let st = self.state.borrow();
        let eng = self.sim.hists();
        RunHists {
            gate_wait: eng.gate_wait,
            wake_fanout: eng.wake_fanout,
            version_walk: st.omgr.hists.version_walk.clone(),
            gc_pause: st.omgr.hists.gc_pause.clone(),
            l1_access: st.ms.hier.hists.l1_access.clone(),
            l2_access: st.ms.hier.hists.l2_access.clone(),
            coherence_delay: st.ms.hier.hists.coherence_delay.clone(),
            run_quantum: st.hist_run_quantum.clone(),
        }
    }

    /// Runs `tasks` to completion under the static scheduler: task `i` is
    /// assigned to core `i % cores`, tasks on one core run in order, and
    /// task ids continue from previous phases (so versions stay monotonic
    /// across population and measurement phases).
    ///
    /// Returns the phase timing, or a typed [`SimError`]: a deadlock blame
    /// report naming every blocked task's `(va, version)` wait target, an
    /// architectural fault with the issuing task's coordinates, or a
    /// watchdog dump when the configured progress window elapses without
    /// any task retiring work.
    pub fn run_tasks(&mut self, tasks: Vec<TaskFn>) -> Result<PhaseReport, SimError> {
        let first_tid = self.next_tid;
        self.next_tid += tasks.len() as u32;
        let start = self.sim.now();
        runtime::spawn_static(
            &self.sim,
            Rc::clone(&self.state),
            self.cfg.cores,
            first_tid,
            tasks,
        );
        let watchdog_fired: Rc<RefCell<Option<WatchdogReport>>> = Rc::default();
        if let Some(window) = self.cfg.watchdog_cycles {
            let h = self.sim.handle();
            let st = Rc::clone(&self.state);
            let fired = Rc::clone(&watchdog_fired);
            self.sim.spawn(async move {
                let mut last = progress_probe(&st);
                loop {
                    h.sleep(window).await;
                    if h.live_tasks() <= 1 {
                        return; // only the watchdog itself is left
                    }
                    let cur = progress_probe(&st);
                    if cur == last {
                        *fired.borrow_mut() = Some(WatchdogReport {
                            now: h.now(),
                            idle_cycles: window,
                            parked: h.parked_tasks(),
                        });
                        h.request_halt();
                        return;
                    }
                    last = cur;
                }
            });
        }
        match self.sim.run() {
            Ok(end) => {
                // Close out the interval telemetry for this phase.
                self.state.borrow_mut().flush_sample(end);
                Ok(PhaseReport { start, end })
            }
            Err(RunError::Deadlock { now, blocked }) => {
                let mut report = DeadlockReport::build(now, blocked);
                // When dependency capture is armed, name each blamed
                // waiter's missing producer from the captured edges.
                let deps = self.state.borrow().deps.records();
                report.link_producers(&deps);
                Err(SimError::Deadlock(report))
            }
            Err(RunError::Halted { now }) => {
                let fault = self.state.borrow_mut().fault.take();
                match (fault, watchdog_fired.borrow_mut().take()) {
                    (Some(f), _) => Err(SimError::Fault(f)),
                    (None, Some(w)) => Err(SimError::Watchdog(w)),
                    // Halt requested through the raw engine handle: report
                    // it as a watchdog-style dump with what we know.
                    (None, None) => Err(SimError::Watchdog(WatchdogReport {
                        now,
                        idle_cycles: 0,
                        parked: Vec::new(),
                    })),
                }
            }
        }
    }

    /// Enables cross-layer tracing with bounded buffers (records beyond
    /// `capacity` are counted but dropped): per-operation records at the
    /// core ([`crate::trace`]), demand-access and coherence events at the
    /// hierarchy, and free-list/GC events at the version manager.
    pub fn enable_trace(&self, capacity: usize) {
        let mut st = self.state.borrow_mut();
        st.trace = Trace::with_capacity(capacity);
        st.ms.hier.events = EventLog::with_capacity(capacity);
        st.omgr.events = EventLog::with_capacity(capacity);
        st.ms.pt.enable_walk_events(capacity);
    }

    /// Resets every statistics counter (cpu, memory, manager) — used
    /// between the warm-up and measurement phases of an experiment. Also
    /// clears the capture rings and re-bases the interval sampler, so a
    /// measurement phase starts with an empty causal record.
    pub fn reset_stats(&self) {
        let mut st = self.state.borrow_mut();
        st.cpu.reset();
        st.ms.hier.stats.reset();
        st.ms.hier.hists.reset();
        st.omgr.stats.reset();
        st.omgr.hists.reset();
        st.hist_run_quantum.reset();
        self.sim.handle().reset_engine_hists();
        let dep_cap = self.cfg.capture.dep_edges;
        st.deps = EventLog::with_capacity(dep_cap);
        if st.sampler.every > 0 {
            st.timeseries = EventLog::with_capacity(self.cfg.capture.samples);
            st.sampler.base = SampleBase::default();
        }
    }
}

/// Monotone work counter read by the livelock watchdog: any retired
/// instruction, versioned operation or task completion counts as progress.
/// Blocked retries bump none of these, so a wedged run reads as frozen.
fn progress_probe(st: &Rc<RefCell<MachineState>>) -> u64 {
    let st = st.borrow();
    st.cpu.instructions + st.cpu.versioned_ops + st.cpu.tasks_run
}
