//! Per-operation execution tracing.
//!
//! When enabled, every instruction-interface operation appends one record:
//! who issued it, what it touched, when it started and finished, and —
//! for operations that stalled — why ([`StallCause`]). Traces are how
//! simulator results stop being a single opaque cycle count: the analysis
//! half regenerates per-op latency distributions and stall breakdowns,
//! `to_csv` exports for external tooling, and `osim-report` turns them
//! into Chrome trace-event JSON.
//!
//! The buffer is a ring: the **most recent** `capacity` records are kept
//! and `dropped` counts how many older ones were overwritten — the end of
//! a run (where contention effects accumulate) is usually what matters.
//!
//! Tracing is off by default (zero overhead beyond a branch); enable it
//! with [`crate::Machine::enable_trace`].

use osim_engine::Cycle;

use crate::stats::StallCause;

/// What kind of operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Plain computation (`work`).
    Work,
    /// Conventional load.
    Load,
    /// Conventional store.
    Store,
    /// Atomic compare-and-swap.
    Cas,
    /// `LOAD-VERSION` / `LOAD-LATEST` (plain).
    VersionedLoad,
    /// `LOCK-LOAD-VERSION` / `LOCK-LOAD-LATEST`.
    VersionedLockLoad,
    /// `STORE-VERSION`.
    VersionedStore,
    /// `UNLOCK-VERSION`.
    Unlock,
}

impl OpKind {
    /// Short stable name (CSV column value).
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Work => "work",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::Cas => "cas",
            OpKind::VersionedLoad => "vload",
            OpKind::VersionedLockLoad => "vlockload",
            OpKind::VersionedStore => "vstore",
            OpKind::Unlock => "unlock",
        }
    }

    /// Parses [`OpKind::name`] output back into the kind.
    pub fn from_name(name: &str) -> Option<OpKind> {
        OpKind::ALL.into_iter().find(|k| k.name() == name)
    }

    /// All kinds, for summary iteration.
    pub const ALL: [OpKind; 8] = [
        OpKind::Work,
        OpKind::Load,
        OpKind::Store,
        OpKind::Cas,
        OpKind::VersionedLoad,
        OpKind::VersionedLockLoad,
        OpKind::VersionedStore,
        OpKind::Unlock,
    ];
}

/// One traced operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Issuing core.
    pub core: usize,
    /// Issuing task.
    pub tid: u32,
    /// Operation kind.
    pub kind: OpKind,
    /// Virtual address touched (0 for `Work`).
    pub va: u32,
    /// Version named by a versioned op (0 otherwise).
    pub version: u32,
    /// Issue cycle.
    pub start: Cycle,
    /// Completion cycle.
    pub end: Cycle,
    /// Why the op stalled (`None` if it never did). For multi-retry loads
    /// this is the cause of the **last** blocked attempt.
    pub stall: Option<StallCause>,
}

impl TraceRecord {
    /// True if the op stalled at least once.
    pub fn stalled(&self) -> bool {
        self.stall.is_some()
    }

    fn stall_name(&self) -> &'static str {
        self.stall.map_or("none", |c| c.name())
    }
}

/// A bounded in-memory trace (ring buffer: newest records win).
#[derive(Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    capacity: usize,
    /// Next slot to overwrite once the buffer is full.
    head: usize,
    /// Records overwritten after the buffer filled.
    pub dropped: u64,
}

impl Trace {
    pub(crate) fn disabled() -> Self {
        Trace::default()
    }

    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Trace {
            records: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    #[inline]
    pub(crate) fn push(&mut self, r: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(r);
        } else {
            self.records[self.head] = r;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The captured records in issue order (oldest surviving record
    /// first). Copies, because the ring's storage order differs from
    /// issue order once it has wrapped.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.records.len());
        out.extend_from_slice(&self.records[self.head..]);
        out.extend_from_slice(&self.records[..self.head]);
        out
    }

    /// Aggregates the trace per operation kind.
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        for r in &self.records {
            let idx = match OpKind::ALL.iter().position(|k| *k == r.kind) {
                Some(i) => i,
                None => unreachable!("known kind"),
            };
            let row = &mut s.per_kind[idx];
            row.count += 1;
            row.total_cycles += r.end - r.start;
            row.max_cycles = row.max_cycles.max(r.end - r.start);
            if let Some(cause) = r.stall {
                row.stalled += 1;
                s.stalls_by_cause[cause.index()] += 1;
            }
        }
        s
    }

    /// Writes the trace as CSV
    /// (`core,tid,kind,va,version,start,end,stall_cause`), in issue order.
    pub fn to_csv(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        writeln!(out, "core,tid,kind,va,version,start,end,stall_cause")?;
        for r in self.records() {
            writeln!(
                out,
                "{},{},{},{:#x},{},{},{},{}",
                r.core,
                r.tid,
                r.kind.name(),
                r.va,
                r.version,
                r.start,
                r.end,
                r.stall_name()
            )?;
        }
        Ok(())
    }

    /// Parses [`Trace::to_csv`] output back into records — the round-trip
    /// direction for external tooling and tests.
    pub fn parse_csv(text: &str) -> Result<Vec<TraceRecord>, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty CSV")?;
        if header != "core,tid,kind,va,version,start,end,stall_cause" {
            return Err(format!("unexpected header: {header}"));
        }
        let mut out = Vec::new();
        for (n, line) in lines.enumerate() {
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != 8 {
                return Err(format!("line {}: expected 8 fields", n + 2));
            }
            let parse_u64 = |s: &str, what: &str| -> Result<u64, String> {
                s.parse()
                    .map_err(|_| format!("line {}: bad {what}: {s}", n + 2))
            };
            let va = fields[3]
                .strip_prefix("0x")
                .ok_or_else(|| format!("line {}: va not hex: {}", n + 2, fields[3]))
                .and_then(|h| {
                    u32::from_str_radix(h, 16)
                        .map_err(|_| format!("line {}: bad va: {}", n + 2, fields[3]))
                })?;
            let stall = match fields[7] {
                "none" => None,
                name => Some(
                    StallCause::from_name(name)
                        .ok_or_else(|| format!("line {}: unknown stall cause: {name}", n + 2))?,
                ),
            };
            out.push(TraceRecord {
                core: parse_u64(fields[0], "core")? as usize,
                tid: parse_u64(fields[1], "tid")? as u32,
                kind: OpKind::from_name(fields[2])
                    .ok_or_else(|| format!("line {}: unknown kind: {}", n + 2, fields[2]))?,
                va,
                version: parse_u64(fields[4], "version")? as u32,
                start: parse_u64(fields[5], "start")?,
                end: parse_u64(fields[6], "end")?,
                stall,
            });
        }
        Ok(out)
    }
}

/// Aggregate statistics for one operation kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct KindStats {
    /// Operations recorded.
    pub count: u64,
    /// Sum of per-op latency.
    pub total_cycles: u64,
    /// Worst per-op latency.
    pub max_cycles: u64,
    /// Operations that stalled at least once.
    pub stalled: u64,
}

impl KindStats {
    /// Mean latency in cycles (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.count as f64
        }
    }
}

/// Per-kind aggregates, indexed in [`OpKind::ALL`] order.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceSummary {
    /// One row per [`OpKind::ALL`] entry.
    pub per_kind: [KindStats; 8],
    /// Stalled-record counts per cause, indexed by [`StallCause::index`].
    pub stalls_by_cause: [u64; 4],
}

impl TraceSummary {
    /// Stats for one kind.
    pub fn of(&self, kind: OpKind) -> KindStats {
        let idx = match OpKind::ALL.iter().position(|k| *k == kind) {
            Some(i) => i,
            None => unreachable!("known kind"),
        };
        self.per_kind[idx]
    }
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<10} {:>9} {:>10} {:>8} {:>9}",
            "op", "count", "mean cyc", "max", "stalled"
        )?;
        for kind in OpKind::ALL {
            let s = self.of(kind);
            if s.count == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<10} {:>9} {:>10.1} {:>8} {:>9}",
                kind.name(),
                s.count,
                s.mean(),
                s.max_cycles,
                s.stalled
            )?;
        }
        if self.stalls_by_cause.iter().any(|&n| n > 0) {
            write!(f, "stall causes:")?;
            for cause in StallCause::ALL {
                let n = self.stalls_by_cause[cause.index()];
                if n > 0 {
                    write!(f, " {}={}", cause.name(), n)?;
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: OpKind, start: Cycle, end: Cycle, stall: Option<StallCause>) -> TraceRecord {
        TraceRecord {
            core: 0,
            tid: 1,
            kind,
            va: 0x1000,
            version: 3,
            start,
            end,
            stall,
        }
    }

    #[test]
    fn summary_aggregates_per_kind() {
        let mut t = Trace::with_capacity(16);
        t.push(rec(OpKind::VersionedLoad, 0, 10, None));
        t.push(rec(
            OpKind::VersionedLoad,
            10,
            40,
            Some(StallCause::MissingVersion),
        ));
        t.push(rec(OpKind::Store, 40, 44, None));
        let s = t.summary();
        let v = s.of(OpKind::VersionedLoad);
        assert_eq!(v.count, 2);
        assert_eq!(v.total_cycles, 40);
        assert_eq!(v.max_cycles, 30);
        assert_eq!(v.stalled, 1);
        assert!((v.mean() - 20.0).abs() < 1e-9);
        assert_eq!(s.of(OpKind::Store).count, 1);
        assert_eq!(s.of(OpKind::Cas).count, 0);
        assert_eq!(s.stalls_by_cause[StallCause::MissingVersion.index()], 1);
        assert_eq!(s.stalls_by_cause[StallCause::FreeListGc.index()], 0);
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.push(rec(OpKind::Work, i, i + 1, None));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped, 3);
        // The last two pushed records survive, in issue order.
        let recs = t.records();
        assert_eq!(recs[0].start, 3);
        assert_eq!(recs[1].start, 4);
    }

    #[test]
    fn csv_round_trips_through_parse() {
        let mut t = Trace::with_capacity(4);
        t.push(rec(OpKind::Unlock, 5, 9, None));
        t.push(rec(
            OpKind::VersionedLockLoad,
            9,
            600,
            Some(StallCause::LockedVersion),
        ));
        let mut buf = Vec::new();
        t.to_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "core,tid,kind,va,version,start,end,stall_cause"
        );
        assert_eq!(lines.next().unwrap(), "0,1,unlock,0x1000,3,5,9,none");
        assert_eq!(
            lines.next().unwrap(),
            "0,1,vlockload,0x1000,3,9,600,locked_version"
        );
        let parsed = Trace::parse_csv(&text).unwrap();
        assert_eq!(parsed, t.records());
    }

    #[test]
    fn parse_csv_rejects_malformed() {
        assert!(Trace::parse_csv("").is_err());
        assert!(Trace::parse_csv("bad,header\n").is_err());
        let hdr = "core,tid,kind,va,version,start,end,stall_cause\n";
        assert!(Trace::parse_csv(&format!("{hdr}1,2,3\n")).is_err());
        assert!(Trace::parse_csv(&format!("{hdr}0,1,unlock,0x10,3,5,9,wat\n")).is_err());
        assert!(Trace::parse_csv(&format!("{hdr}0,1,nope,0x10,3,5,9,none\n")).is_err());
        assert!(Trace::parse_csv(&format!("{hdr}0,1,unlock,16,3,5,9,none\n")).is_err());
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        assert!(!t.enabled());
        assert!(t.records().is_empty());
    }
}
