//! Per-operation execution tracing.
//!
//! When enabled, every instruction-interface operation appends one record:
//! who issued it, what it touched, when it started and finished, and
//! whether it stalled. Traces are how simulator results stop being a
//! single opaque cycle count — the analysis half regenerates per-op
//! latency distributions and stall breakdowns, and `to_csv` exports for
//! external tooling.
//!
//! Tracing is off by default (zero overhead beyond a branch); enable it
//! with [`crate::Machine::enable_trace`].

use osim_engine::Cycle;

/// What kind of operation a record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Plain computation (`work`).
    Work,
    /// Conventional load.
    Load,
    /// Conventional store.
    Store,
    /// Atomic compare-and-swap.
    Cas,
    /// `LOAD-VERSION` / `LOAD-LATEST` (plain).
    VersionedLoad,
    /// `LOCK-LOAD-VERSION` / `LOCK-LOAD-LATEST`.
    VersionedLockLoad,
    /// `STORE-VERSION`.
    VersionedStore,
    /// `UNLOCK-VERSION`.
    Unlock,
}

impl OpKind {
    /// Short stable name (CSV column value).
    pub fn name(&self) -> &'static str {
        match self {
            OpKind::Work => "work",
            OpKind::Load => "load",
            OpKind::Store => "store",
            OpKind::Cas => "cas",
            OpKind::VersionedLoad => "vload",
            OpKind::VersionedLockLoad => "vlockload",
            OpKind::VersionedStore => "vstore",
            OpKind::Unlock => "unlock",
        }
    }

    /// All kinds, for summary iteration.
    pub const ALL: [OpKind; 8] = [
        OpKind::Work,
        OpKind::Load,
        OpKind::Store,
        OpKind::Cas,
        OpKind::VersionedLoad,
        OpKind::VersionedLockLoad,
        OpKind::VersionedStore,
        OpKind::Unlock,
    ];
}

/// One traced operation.
#[derive(Debug, Clone, Copy)]
pub struct TraceRecord {
    /// Issuing core.
    pub core: usize,
    /// Issuing task.
    pub tid: u32,
    /// Operation kind.
    pub kind: OpKind,
    /// Virtual address touched (0 for `Work`).
    pub va: u32,
    /// Version named by a versioned op (0 otherwise).
    pub version: u32,
    /// Issue cycle.
    pub start: Cycle,
    /// Completion cycle.
    pub end: Cycle,
    /// True if the op stalled (blocked versioned flavours only).
    pub stalled: bool,
}

/// A bounded in-memory trace.
#[derive(Default)]
pub struct Trace {
    records: Vec<TraceRecord>,
    capacity: usize,
    /// Records dropped after the buffer filled.
    pub dropped: u64,
}

impl Trace {
    pub(crate) fn disabled() -> Self {
        Trace::default()
    }

    pub(crate) fn with_capacity(capacity: usize) -> Self {
        Trace {
            records: Vec::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    #[inline]
    pub(crate) fn push(&mut self, r: TraceRecord) {
        if self.records.len() < self.capacity {
            self.records.push(r);
        } else {
            self.dropped += 1;
        }
    }

    /// The captured records, in issue order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Aggregates the trace per operation kind.
    pub fn summary(&self) -> TraceSummary {
        let mut s = TraceSummary::default();
        for r in &self.records {
            let idx = OpKind::ALL.iter().position(|k| *k == r.kind).expect("known kind");
            let row = &mut s.per_kind[idx];
            row.count += 1;
            row.total_cycles += r.end - r.start;
            row.max_cycles = row.max_cycles.max(r.end - r.start);
            if r.stalled {
                row.stalled += 1;
            }
        }
        s
    }

    /// Writes the trace as CSV (`core,tid,kind,va,version,start,end,stalled`).
    pub fn to_csv(&self, out: &mut impl std::io::Write) -> std::io::Result<()> {
        writeln!(out, "core,tid,kind,va,version,start,end,stalled")?;
        for r in &self.records {
            writeln!(
                out,
                "{},{},{},{:#x},{},{},{},{}",
                r.core,
                r.tid,
                r.kind.name(),
                r.va,
                r.version,
                r.start,
                r.end,
                u8::from(r.stalled)
            )?;
        }
        Ok(())
    }
}

/// Aggregate statistics for one operation kind.
#[derive(Debug, Clone, Copy, Default)]
pub struct KindStats {
    /// Operations recorded.
    pub count: u64,
    /// Sum of per-op latency.
    pub total_cycles: u64,
    /// Worst per-op latency.
    pub max_cycles: u64,
    /// Operations that stalled at least once.
    pub stalled: u64,
}

impl KindStats {
    /// Mean latency in cycles (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_cycles as f64 / self.count as f64
        }
    }
}

/// Per-kind aggregates, indexed in [`OpKind::ALL`] order.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceSummary {
    /// One row per [`OpKind::ALL`] entry.
    pub per_kind: [KindStats; 8],
}

impl TraceSummary {
    /// Stats for one kind.
    pub fn of(&self, kind: OpKind) -> KindStats {
        let idx = OpKind::ALL.iter().position(|k| *k == kind).expect("known kind");
        self.per_kind[idx]
    }
}

impl std::fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<10} {:>9} {:>10} {:>8} {:>9}", "op", "count", "mean cyc", "max", "stalled")?;
        for kind in OpKind::ALL {
            let s = self.of(kind);
            if s.count == 0 {
                continue;
            }
            writeln!(
                f,
                "{:<10} {:>9} {:>10.1} {:>8} {:>9}",
                kind.name(),
                s.count,
                s.mean(),
                s.max_cycles,
                s.stalled
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(kind: OpKind, start: Cycle, end: Cycle, stalled: bool) -> TraceRecord {
        TraceRecord {
            core: 0,
            tid: 1,
            kind,
            va: 0x1000,
            version: 3,
            start,
            end,
            stalled,
        }
    }

    #[test]
    fn summary_aggregates_per_kind() {
        let mut t = Trace::with_capacity(16);
        t.push(rec(OpKind::VersionedLoad, 0, 10, false));
        t.push(rec(OpKind::VersionedLoad, 10, 40, true));
        t.push(rec(OpKind::Store, 40, 44, false));
        let s = t.summary();
        let v = s.of(OpKind::VersionedLoad);
        assert_eq!(v.count, 2);
        assert_eq!(v.total_cycles, 40);
        assert_eq!(v.max_cycles, 30);
        assert_eq!(v.stalled, 1);
        assert!((v.mean() - 20.0).abs() < 1e-9);
        assert_eq!(s.of(OpKind::Store).count, 1);
        assert_eq!(s.of(OpKind::Cas).count, 0);
    }

    #[test]
    fn capacity_bounds_and_counts_drops() {
        let mut t = Trace::with_capacity(2);
        for i in 0..5 {
            t.push(rec(OpKind::Work, i, i + 1, false));
        }
        assert_eq!(t.records().len(), 2);
        assert_eq!(t.dropped, 3);
    }

    #[test]
    fn csv_roundtrip_shape() {
        let mut t = Trace::with_capacity(4);
        t.push(rec(OpKind::Unlock, 5, 9, false));
        let mut buf = Vec::new();
        t.to_csv(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next().unwrap(), "core,tid,kind,va,version,start,end,stalled");
        assert_eq!(lines.next().unwrap(), "0,1,unlock,0x1000,3,5,9,0");
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = Trace::disabled();
        assert!(!t.enabled());
        assert!(t.records().is_empty());
    }
}
