//! Execution statistics collected by the cores.

/// Counters accumulated across all cores of a machine.
///
/// Together with [`osim_mem::MemStats`] and [`osim_uarch::OStats`] these
/// regenerate every secondary number the paper quotes: stall fractions of
/// versioned loads (§IV-D), root-entry stall rates, and instruction mix.
#[derive(Debug, Clone, Default)]
pub struct CpuStats {
    /// Instructions issued (memory ops count as one instruction each).
    pub instructions: u64,
    /// Conventional loads performed.
    pub loads: u64,
    /// Conventional stores performed.
    pub stores: u64,
    /// Atomic compare-and-swap operations.
    pub cas_ops: u64,
    /// Versioned operations of any kind.
    pub versioned_ops: u64,
    /// Versioned loads (all four load flavours).
    pub versioned_loads: u64,
    /// Versioned loads that stalled at least once before completing.
    pub versioned_loads_stalled: u64,
    /// Versioned loads tagged as data-structure *root* entries.
    pub root_loads: u64,
    /// Tagged root loads that stalled at least once.
    pub root_loads_stalled: u64,
    /// Total cycles cores spent stalled on blocked versioned operations.
    pub stall_cycles: u64,
    /// Tasks executed to completion.
    pub tasks_run: u64,
}

impl CpuStats {
    /// Fraction of versioned loads that stalled, in [0, 1].
    pub fn versioned_stall_rate(&self) -> f64 {
        frac(self.versioned_loads_stalled, self.versioned_loads)
    }

    /// Fraction of root loads that stalled, in [0, 1].
    pub fn root_stall_rate(&self) -> f64 {
        frac(self.root_loads_stalled, self.root_loads)
    }

    /// Resets every counter.
    pub fn reset(&mut self) {
        *self = CpuStats::default();
    }
}

fn frac(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let mut s = CpuStats::default();
        assert_eq!(s.versioned_stall_rate(), 0.0);
        s.versioned_loads = 10;
        s.versioned_loads_stalled = 4;
        assert!((s.versioned_stall_rate() - 0.4).abs() < 1e-12);
        s.root_loads = 5;
        s.root_loads_stalled = 5;
        assert_eq!(s.root_stall_rate(), 1.0);
        s.reset();
        assert_eq!(s.versioned_loads, 0);
    }
}
