//! Execution statistics collected by the cores.

use osim_metrics::Histogram;

/// The full set of latency/shape histograms one run produces, gathered
/// across every simulator layer. All of them record **simulated-cycle**
/// quantities (never host wall time), so their contents are deterministic
/// and scheduler-invariant — safe to land in byte-compared reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunHists {
    /// Cycles tasks spent parked on gates before their wakeup fired.
    pub gate_wait: Histogram,
    /// Waiters released per gate-open event (0 when an open found no one).
    pub wake_fanout: Histogram,
    /// Cycles charged per version-list walk in the O-structure manager.
    pub version_walk: Histogram,
    /// Cycles per free-list refill trap, including forced-GC recovery.
    pub gc_pause: Histogram,
    /// L1 data-cache access latencies (hits and misses alike).
    pub l1_access: Histogram,
    /// Latencies of accesses serviced at or beyond the shared L2.
    pub l2_access: Histogram,
    /// Latencies of accesses whose service required a coherence action
    /// (S→M upgrade, dirty remote-L1 forward, cross-core invalidation).
    pub coherence_delay: Histogram,
    /// Run-quantum lengths: cycles from a task's `TASK-BEGIN` to its
    /// body's completion on its statically assigned core.
    pub run_quantum: Histogram,
}

impl RunHists {
    /// Stable field names, in serialization order.
    pub const NAMES: [&'static str; 8] = [
        "gate_wait",
        "wake_fanout",
        "version_walk",
        "gc_pause",
        "l1_access",
        "l2_access",
        "coherence_delay",
        "run_quantum",
    ];

    /// The histograms paired with their stable names, in [`RunHists::NAMES`]
    /// order.
    pub fn named(&self) -> [(&'static str, &Histogram); 8] {
        [
            ("gate_wait", &self.gate_wait),
            ("wake_fanout", &self.wake_fanout),
            ("version_walk", &self.version_walk),
            ("gc_pause", &self.gc_pause),
            ("l1_access", &self.l1_access),
            ("l2_access", &self.l2_access),
            ("coherence_delay", &self.coherence_delay),
            ("run_quantum", &self.run_quantum),
        ]
    }

    /// Mutable access by stable name (deserialization helper).
    pub fn by_name_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        match name {
            "gate_wait" => Some(&mut self.gate_wait),
            "wake_fanout" => Some(&mut self.wake_fanout),
            "version_walk" => Some(&mut self.version_walk),
            "gc_pause" => Some(&mut self.gc_pause),
            "l1_access" => Some(&mut self.l1_access),
            "l2_access" => Some(&mut self.l2_access),
            "coherence_delay" => Some(&mut self.coherence_delay),
            "run_quantum" => Some(&mut self.run_quantum),
            _ => None,
        }
    }
}

/// Why a core spent cycles stalled on a versioned operation.
///
/// Every stall cycle in [`CpuStats::stall_cycles`] is attributed to
/// exactly one cause, so `stall_by_cause` always sums to `stall_cycles`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// The requested version (or any version ≤ the cap) did not exist yet.
    MissingVersion,
    /// The target version existed but another task held its lock.
    LockedVersion,
    /// The block followed a coherence invalidation of this core's
    /// compressed line by another core's mutation of the same structure.
    CoherenceInval,
    /// Cycles spent in OS free-list refill traps (the allocation/GC path
    /// of `STORE-VERSION` / `UNLOCK-VERSION`).
    FreeListGc,
}

impl StallCause {
    /// Short stable name (CSV/JSON field value).
    pub fn name(&self) -> &'static str {
        match self {
            StallCause::MissingVersion => "missing_version",
            StallCause::LockedVersion => "locked_version",
            StallCause::CoherenceInval => "coherence_inval",
            StallCause::FreeListGc => "freelist_gc",
        }
    }

    /// Parses [`StallCause::name`] output back into the cause.
    pub fn from_name(name: &str) -> Option<StallCause> {
        StallCause::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Index into [`CpuStats::stall_by_cause`].
    pub fn index(&self) -> usize {
        match StallCause::ALL.iter().position(|c| c == self) {
            Some(i) => i,
            None => unreachable!("cause listed in ALL"),
        }
    }

    /// All causes, in `stall_by_cause` index order.
    pub const ALL: [StallCause; 4] = [
        StallCause::MissingVersion,
        StallCause::LockedVersion,
        StallCause::CoherenceInval,
        StallCause::FreeListGc,
    ];
}

/// Per-core slice of the counters (a subset of the aggregates that is
/// meaningful per core). Used for load-imbalance analysis.
#[derive(Debug, Clone, Copy, Default)]
pub struct CoreStats {
    /// Instructions issued by this core.
    pub instructions: u64,
    /// Versioned operations issued by this core.
    pub versioned_ops: u64,
    /// Stall cycles charged to this core.
    pub stall_cycles: u64,
    /// Tasks this core ran to completion.
    pub tasks_run: u64,
}

/// Counters accumulated across all cores of a machine.
///
/// Together with [`osim_mem::MemStats`] and [`osim_uarch::OStats`] these
/// regenerate every secondary number the paper quotes: stall fractions of
/// versioned loads (§IV-D), root-entry stall rates, and instruction mix.
/// `per_core` carries the same story per core for imbalance analysis.
#[derive(Debug, Clone, Default)]
pub struct CpuStats {
    /// Instructions issued (memory ops count as one instruction each).
    pub instructions: u64,
    /// Conventional loads performed.
    pub loads: u64,
    /// Conventional stores performed.
    pub stores: u64,
    /// Atomic compare-and-swap operations.
    pub cas_ops: u64,
    /// Versioned operations of any kind.
    pub versioned_ops: u64,
    /// Versioned loads (all four load flavours).
    pub versioned_loads: u64,
    /// Versioned loads that stalled at least once before completing.
    pub versioned_loads_stalled: u64,
    /// Versioned loads tagged as data-structure *root* entries.
    pub root_loads: u64,
    /// Tagged root loads that stalled at least once.
    pub root_loads_stalled: u64,
    /// Total cycles cores spent stalled on versioned operations (blocked
    /// waits plus OS free-list refill traps).
    pub stall_cycles: u64,
    /// `stall_cycles` split by cause, indexed by [`StallCause::index`].
    /// Invariant: the four entries sum to `stall_cycles` exactly.
    pub stall_by_cause: [u64; 4],
    /// Tasks executed to completion.
    pub tasks_run: u64,
    /// Per-core breakdowns (indexed by core id; present once the machine
    /// sizes it, empty for hand-built stats).
    pub per_core: Vec<CoreStats>,
}

impl CpuStats {
    /// Stats sized for a `cores`-core machine.
    pub fn for_cores(cores: usize) -> Self {
        CpuStats {
            per_core: vec![CoreStats::default(); cores],
            ..CpuStats::default()
        }
    }

    /// Fraction of versioned loads that stalled, in [0, 1].
    pub fn versioned_stall_rate(&self) -> f64 {
        frac(self.versioned_loads_stalled, self.versioned_loads)
    }

    /// Fraction of root loads that stalled, in [0, 1].
    pub fn root_stall_rate(&self) -> f64 {
        frac(self.root_loads_stalled, self.root_loads)
    }

    /// Stall cycles attributed to one cause.
    pub fn stall_cycles_for(&self, cause: StallCause) -> u64 {
        self.stall_by_cause[cause.index()]
    }

    /// Charges `cycles` of stall time to `cause`, on `core`, keeping the
    /// aggregate and the per-cause/per-core splits consistent.
    pub fn charge_stall(&mut self, core: usize, cause: StallCause, cycles: u64) {
        self.stall_cycles += cycles;
        self.stall_by_cause[cause.index()] += cycles;
        self.core_mut(core).stall_cycles += cycles;
    }

    /// The per-core row for `core`, growing the table on demand (contexts
    /// built outside [`crate::Machine`] may exceed the sized range).
    pub fn core_mut(&mut self, core: usize) -> &mut CoreStats {
        if core >= self.per_core.len() {
            self.per_core.resize(core + 1, CoreStats::default());
        }
        &mut self.per_core[core]
    }

    /// Ratio of the busiest core's stall cycles to the per-core mean
    /// (1.0 = perfectly balanced; 0 when nothing stalled).
    pub fn stall_imbalance(&self) -> f64 {
        imbalance(self.per_core.iter().map(|c| c.stall_cycles))
    }

    /// Ratio of the busiest core's instruction count to the per-core mean.
    pub fn work_imbalance(&self) -> f64 {
        imbalance(self.per_core.iter().map(|c| c.instructions))
    }

    /// Resets every counter, keeping the per-core table's size.
    pub fn reset(&mut self) {
        let cores = self.per_core.len();
        *self = CpuStats::for_cores(cores);
    }
}

fn frac(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// max/mean of a counter across cores; 0.0 for an empty or all-zero set.
fn imbalance(values: impl Iterator<Item = u64> + Clone) -> f64 {
    let n = values.clone().count();
    if n == 0 {
        return 0.0;
    }
    let total: u64 = values.clone().sum();
    if total == 0 {
        return 0.0;
    }
    let max = values.max().unwrap_or(0);
    max as f64 * n as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates() {
        let mut s = CpuStats::default();
        assert_eq!(s.versioned_stall_rate(), 0.0);
        s.versioned_loads = 10;
        s.versioned_loads_stalled = 4;
        assert!((s.versioned_stall_rate() - 0.4).abs() < 1e-12);
        s.root_loads = 5;
        s.root_loads_stalled = 5;
        assert_eq!(s.root_stall_rate(), 1.0);
        s.reset();
        assert_eq!(s.versioned_loads, 0);
    }

    #[test]
    fn cause_names_round_trip() {
        for cause in StallCause::ALL {
            assert_eq!(StallCause::from_name(cause.name()), Some(cause));
        }
        assert_eq!(StallCause::from_name("bogus"), None);
    }

    #[test]
    fn charge_stall_keeps_sum_invariant() {
        let mut s = CpuStats::for_cores(2);
        s.charge_stall(0, StallCause::MissingVersion, 10);
        s.charge_stall(1, StallCause::LockedVersion, 7);
        s.charge_stall(1, StallCause::FreeListGc, 500);
        s.charge_stall(0, StallCause::CoherenceInval, 3);
        assert_eq!(s.stall_cycles, 520);
        assert_eq!(s.stall_by_cause.iter().sum::<u64>(), s.stall_cycles);
        assert_eq!(s.stall_cycles_for(StallCause::FreeListGc), 500);
        assert_eq!(s.per_core[0].stall_cycles, 13);
        assert_eq!(s.per_core[1].stall_cycles, 507);
    }

    #[test]
    fn per_core_grows_and_reset_preserves_size() {
        let mut s = CpuStats::for_cores(2);
        s.core_mut(5).instructions += 1;
        assert_eq!(s.per_core.len(), 6);
        s.reset();
        assert_eq!(s.per_core.len(), 6);
        assert_eq!(s.per_core[5].instructions, 0);
    }

    #[test]
    fn imbalance_metrics() {
        let mut s = CpuStats::for_cores(4);
        assert_eq!(s.stall_imbalance(), 0.0);
        for c in 0..4 {
            s.core_mut(c).stall_cycles = 100;
        }
        assert!((s.stall_imbalance() - 1.0).abs() < 1e-12);
        s.core_mut(0).stall_cycles = 400;
        // total 700, mean 175, max 400 → 400/175
        assert!((s.stall_imbalance() - 400.0 / 175.0).abs() < 1e-12);
        s.core_mut(1).instructions = 10;
        assert!((s.work_imbalance() - 4.0).abs() < 1e-12);
    }
}
