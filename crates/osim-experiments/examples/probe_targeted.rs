use osim_cpu::{MachineCfg, WakeupPolicy};
use osim_workloads::harness::DsCfg;
use osim_workloads::{btree, hashtable, linked_list};

fn cfg(seed: u64) -> DsCfg {
    DsCfg {
        initial: 32,
        ops: 300,
        reads_per_write: 4,
        scan_range: 0,
        key_space: 64,
        seed,
        insert_only: false,
    }
}

fn main() {
    for seed in [1u64, 7, 42] {
        for cores in [4usize, 32] {
            let mut mb = MachineCfg::paper(cores);
            mb.wakeup = WakeupPolicy::Broadcast;
            let mut mt = MachineCfg::paper(cores);
            mt.wakeup = WakeupPolicy::Targeted;
            let b = linked_list::run_versioned_with(mb.clone(), &cfg(seed), true);
            let t = linked_list::run_versioned_with(mt.clone(), &cfg(seed), true);
            println!(
                "ll    seed={seed} cores={cores}: b={} t={} eq={} stats_eq={}",
                b.cycles,
                t.cycles,
                b.cycles == t.cycles,
                format!("{:?}{:?}{:?}", b.cpu, b.mem, b.ostats)
                    == format!("{:?}{:?}{:?}", t.cpu, t.mem, t.ostats)
            );
            let b = btree::run_versioned(mb.clone(), &cfg(seed));
            let t = btree::run_versioned(mt.clone(), &cfg(seed));
            println!(
                "btree seed={seed} cores={cores}: b={} t={} eq={}",
                b.cycles,
                t.cycles,
                b.cycles == t.cycles
            );
            let b = hashtable::run_versioned(mb.clone(), &cfg(seed));
            let t = hashtable::run_versioned(mt.clone(), &cfg(seed));
            println!(
                "hash  seed={seed} cores={cores}: b={} t={} eq={}",
                b.cycles,
                t.cycles,
                b.cycles == t.cycles
            );
        }
    }
}
