//! `perf --cache-bench`: measures what the run cache is worth.
//!
//! Three passes over the full figure sweep against a scratch cache
//! directory (cleared first so the measurement is honest):
//!
//! 1. **cold** — every job simulates and stores its entry;
//! 2. **warm (memory)** — every job hits the in-process tier;
//! 3. **warm (disk)** — the memory tier is dropped, so every job decodes
//!    its entry from disk — the cross-invocation case, and the number the
//!    headline speedup is computed from (the conservative one).
//!
//! Results are validated identically in all three passes — a cached run
//! that failed validation would be a codec bug, not a fast sweep — and
//! the document (`osim-bench-cache-v1`, written to `BENCH_cache.json`)
//! carries wall times, hit/miss counts, per-entry read-latency quantiles,
//! and the host stamp the CI guard needs.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use osim_jobq::TextStore;
use osim_report::json::{obj, Json};

use crate::common::Scale;
use crate::perf::{validate, FIGS};
use crate::runner;

/// One full figure sweep; returns (wall_ms, total runs, total cycles).
fn sweep_once(scale: &Scale, jobs: usize) -> (f64, usize, u64) {
    let t = Instant::now();
    let mut runs = 0usize;
    let mut cycles = 0u64;
    for (_, plan) in FIGS.iter() {
        let batch = runner::run_jobs(plan(scale), jobs);
        runs += batch.len();
        cycles += validate(&batch);
    }
    // Round to 1 µs so the committed JSON stays diff-friendly.
    (
        (t.elapsed().as_secs_f64() * 1e6).round() / 1e3,
        runs,
        cycles,
    )
}

fn round3(x: f64) -> f64 {
    (x * 1e3).round() / 1e3
}

/// Runs the benchmark and writes the document to `path`. The cache lives
/// under `dir`, which is cleared first.
pub fn run(scale: &Scale, scale_name: &str, jobs: usize, dir: &Path, path: &str) {
    let store = Arc::new(TextStore::at_dir(dir));
    store.clear();
    runner::set_cache(Some(Arc::clone(&store)));

    let (cold_ms, runs, cold_cycles) = sweep_once(scale, jobs);
    let after_cold = store.counts();
    eprintln!(
        "cache-bench cold: {cold_ms:.0} ms, {runs} runs, {} entries",
        after_cold.stores
    );

    let (warm_mem_ms, warm_runs, warm_cycles) = sweep_once(scale, jobs);
    let after_mem = store.counts();
    assert_eq!(warm_runs, runs, "warm sweep ran a different job count");
    assert_eq!(
        warm_cycles, cold_cycles,
        "cached results drifted from the cold run"
    );
    eprintln!("cache-bench warm (memory tier): {warm_mem_ms:.0} ms");

    store.drop_memory();
    let (warm_disk_ms, _, disk_cycles) = sweep_once(scale, jobs);
    let after_disk = store.counts();
    assert_eq!(
        disk_cycles, cold_cycles,
        "disk-decoded results drifted from the cold run"
    );
    eprintln!("cache-bench warm (disk tier): {warm_disk_ms:.0} ms");

    runner::set_cache(None);

    let entries = store.disk_entries();
    let disk_bytes: u64 = entries
        .iter()
        .filter_map(|p| std::fs::metadata(p).ok())
        .map(|m| m.len())
        .sum();
    let hist = store.read_hist();
    let read_ns = obj(vec![
        ("count", Json::from_u64(hist.count())),
        ("p50", Json::from_u64(hist.quantile(0.50))),
        ("p90", Json::from_u64(hist.quantile(0.90))),
        ("p99", Json::from_u64(hist.quantile(0.99))),
        ("max", Json::from_u64(hist.max())),
        ("mean", Json::Num(round3(hist.mean()))),
    ]);

    let phase = |wall_ms: f64, hits: u64, misses: u64| {
        obj(vec![
            ("wall_ms", Json::Num(wall_ms)),
            ("hits", Json::from_u64(hits)),
            ("misses", Json::from_u64(misses)),
        ])
    };
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The committed headline is cold vs warm-from-disk: the cross-
    // invocation case, and the slower of the two warm tiers.
    let speedup_disk = round3(cold_ms / warm_disk_ms.max(1e-9));
    let speedup_mem = round3(cold_ms / warm_mem_ms.max(1e-9));
    let doc = obj(vec![
        ("schema", Json::Str("osim-bench-cache-v1".to_string())),
        ("scale", Json::Str(scale_name.to_string())),
        ("jobs", Json::from_u64(jobs as u64)),
        ("runs", Json::from_u64(runs as u64)),
        ("host_cpus", Json::from_u64(host_cpus as u64)),
        ("host_os", Json::Str(std::env::consts::OS.to_string())),
        ("host_arch", Json::Str(std::env::consts::ARCH.to_string())),
        ("sim_cycles", Json::from_u64(cold_cycles)),
        ("entries", Json::from_u64(entries.len() as u64)),
        ("disk_bytes", Json::from_u64(disk_bytes)),
        ("cold", phase(cold_ms, after_cold.hits, after_cold.misses)),
        (
            "warm_mem",
            phase(
                warm_mem_ms,
                after_mem.hits - after_cold.hits,
                after_mem.misses - after_cold.misses,
            ),
        ),
        (
            "warm_disk",
            phase(
                warm_disk_ms,
                after_disk.hits - after_mem.hits,
                after_disk.misses - after_mem.misses,
            ),
        ),
        ("read_ns", read_ns),
        ("speedup_warm_mem", Json::Num(speedup_mem)),
        ("speedup_warm_disk", Json::Num(speedup_disk)),
        // The number the CI guard checks: conservative warm speedup.
        ("speedup_warm", Json::Num(speedup_disk)),
    ]);
    if let Err(e) = std::fs::write(path, doc.to_pretty()) {
        eprintln!("cannot write cache-bench output {path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "wrote {path}: cold {cold_ms:.0} ms, warm(mem) {warm_mem_ms:.1} ms ({speedup_mem}x), \
         warm(disk) {warm_disk_ms:.1} ms ({speedup_disk}x)"
    );
}
