//! Figure 10: sensitivity to versioned-operation latency.
//!
//! The paper cannot know the exact RTL latency of the extended L1 logic,
//! so it injects a fixed 2–10 cycle penalty into every versioned operation
//! and measures the slowdown: up to 16% at 10 cycles, much milder at
//! realistic 2–4 cycle penalties.

use osim_report::SimReport;

use crate::common::{checked_run, machine, report_run, Bench, Scale};
use crate::runner::{SweepJob, SweepRun};

const EXTRA: [u64; 5] = [2, 4, 6, 8, 10];

/// The variant rows, in figure order.
const VARIANTS: [(&str, usize); 2] = [("1T", 1), ("32T", 32)];

/// The sweep in [`render`] order: per benchmark and variant, the
/// no-injection baseline then each injected latency.
pub fn plan(scale: &Scale) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    let s = *scale;
    for bench in Bench::ALL {
        for (variant, cores) in VARIANTS {
            jobs.push(SweepJob::new(
                "fig10",
                bench.name(),
                format!("{variant}+0cy"),
                scale,
                machine(scale, cores, None, 0),
                move |m| bench.run_versioned(m, &s, true, 4),
            ));
            for &e in &EXTRA {
                jobs.push(SweepJob::new(
                    "fig10",
                    bench.name(),
                    format!("{variant}+{e}cy"),
                    scale,
                    machine(scale, cores, None, e),
                    move |m| bench.run_versioned(m, &s, true, 4),
                ));
            }
        }
    }
    jobs
}

/// Prints the latency-sensitivity table from completed runs (in [`plan`]
/// order).
pub fn render(scale: &Scale, runs: &[SweepRun], out: &mut Vec<SimReport>) {
    println!(
        "## Figure 10 — slowdown from injecting latency into versioned ops (vs no injection)\n"
    );
    println!("scale: {scale:?}\n");
    println!("| Benchmark | Variant | +2cy | +4cy | +6cy | +8cy | +10cy |");
    println!("|---|---|---|---|---|---|---|");

    let mut next = runs.iter();
    let mut take = || {
        let run = next.next().expect("plan and render agree on job count");
        checked_run(run);
        out.push(report_run(run, scale));
        run
    };

    for bench in Bench::ALL {
        for (variant, _) in VARIANTS {
            let base = take().result.cycles as f64;
            let mut row: Vec<String> = Vec::new();
            for _ in EXTRA {
                let c = take().result.cycles as f64;
                // Negative = slowdown, matching the paper's plot.
                row.push(format!("{:+.1}%", (base / c - 1.0) * 100.0));
            }
            println!(
                "| {} | {variant} | {} | {} | {} | {} | {} |",
                bench.name(),
                row[0],
                row[1],
                row[2],
                row[3],
                row[4]
            );
        }
    }
    println!();
}

pub fn run(scale: &Scale, jobs: usize, out: &mut Vec<SimReport>) {
    let runs = crate::runner::run_jobs(plan(scale), jobs);
    render(scale, &runs, out);
}
