//! Figure 10: sensitivity to versioned-operation latency.
//!
//! The paper cannot know the exact RTL latency of the extended L1 logic,
//! so it injects a fixed 2–10 cycle penalty into every versioned operation
//! and measures the slowdown: up to 16% at 10 cycles, much milder at
//! realistic 2–4 cycle penalties.

use osim_report::SimReport;

use crate::common::{checked, machine, report, Bench, Scale};

const EXTRA: [u64; 5] = [2, 4, 6, 8, 10];

pub fn run(scale: &Scale, out: &mut Vec<SimReport>) {
    println!(
        "## Figure 10 — slowdown from injecting latency into versioned ops (vs no injection)\n"
    );
    println!("scale: {scale:?}\n");
    println!("| Benchmark | Variant | +2cy | +4cy | +6cy | +8cy | +10cy |");
    println!("|---|---|---|---|---|---|---|");

    for bench in Bench::ALL {
        for (variant, cores) in [("1T", 1), ("32T", 32)] {
            let base_cfg = machine(scale, cores, None, 0);
            let base_r = checked(
                bench.run_versioned(base_cfg.clone(), scale, true, 4),
                bench.name(),
            );
            out.push(report(
                "fig10",
                bench.name(),
                &format!("{variant}+0cy"),
                &base_cfg,
                scale,
                &base_r,
            ));
            let base = base_r.cycles as f64;
            let mut row: Vec<String> = Vec::new();
            for &e in &EXTRA {
                let mcfg = machine(scale, cores, None, e);
                let r = checked(
                    bench.run_versioned(mcfg.clone(), scale, true, 4),
                    bench.name(),
                );
                out.push(report(
                    "fig10",
                    bench.name(),
                    &format!("{variant}+{e}cy"),
                    &mcfg,
                    scale,
                    &r,
                ));
                let c = r.cycles as f64;
                // Negative = slowdown, matching the paper's plot.
                row.push(format!("{:+.1}%", (base / c - 1.0) * 100.0));
            }
            println!(
                "| {} | {variant} | {} | {} | {} | {} | {} |",
                bench.name(),
                row[0],
                row[1],
                row[2],
                row[3],
                row[4]
            );
        }
    }
    println!();
}
