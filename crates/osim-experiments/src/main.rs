//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§IV) from the simulator.
//!
//! ```text
//! cargo run -p osim-experiments --release -- <experiment> [--full|--tiny]
//!     [--scale <quick|tiny|full>] [--jobs <n>] [--stats] [--json <path>]
//!     [--chrome <path>] [--scheduler <calendar|heap>] [--progress]
//!     [--sweep-json <path>] [--metrics-addr <host:port|off>]
//!     [--host-chrome <path>]
//! cargo run -p osim-experiments --release -- compare <a.json> <b.json>
//!     [--json <path>]
//! cargo run -p osim-experiments --release -- cache <stats|verify|clear>
//!     [--cache <dir>] [--json]
//!
//! experiments:
//!   config   Table II   — the simulated platform configuration
//!   fig6     Figure 6   — speedup of 32-core versioned over sequential unversioned
//!   fig7     Figure 7   — scalability (4..32 cores) over 1-core versioned
//!   fig8     Figure 8   — versioned BST vs read-write-lock BST (snapshot isolation)
//!   fig9     Figure 9   — L1 size sensitivity (8 kB .. 128 kB)
//!   fig10    Figure 10  — injected versioned-op latency (2..10 cycles)
//!   gc       §IV-F      — garbage collection and version-sorting overhead
//!   trace               — per-operation latency/stall breakdown (tracer demo)
//!   analyze             — causal analysis: dependency critical path and top
//!                         contenders of a figure workload (`--fig <6|7|9|10>`,
//!                         default 7; `--sample-every <cycles>` telemetry epoch)
//!   all      everything above
//!   perf                — host-speed benchmark; writes BENCH_sweep.json.
//!                         With `--ostructs`, benchmarks the concurrent
//!                         versioned store instead (committed-read fast
//!                         path vs the pre-sharding mutex baseline,
//!                         multi-thread throughput, zipf mix with a live
//!                         vacuum) and writes BENCH_ostructs.json
//!   compare             — diff two `--json` report files: counters, stall
//!                         causes, histograms, ranked regression attribution
//!   cache               — run-cache maintenance: `stats`, `verify` (decode
//!                         every entry with per-entry blame), `clear`
//!   stress              — schedule-shaking robustness harness: every quick
//!                         figure under `--seeds` seeded tie-break
//!                         perturbations with the invariant oracles armed
//!                         (`--shake-seed` pins the first seed, `--fig`
//!                         restricts the figure set; exit 0 = clean)
//! ```
//!
//! `--shake-seed <n>` arms [`osim_cpu::ShakePolicy::Seeded`] on every
//! machine of the invocation: same-cycle ready-queue tie-breaks are drawn
//! from splitmix64 stream `n` instead of FIFO order. A given seed is
//! byte-identical across `--jobs` counts and both schedulers, but its
//! numbers may legally differ from the committed (unshaken) references.
//!
//! `perf` additionally accepts `--reps <n>` (repetitions, default 3) and
//! `--baseline-ms <ms> [--baseline-ref <label>]` to embed the reference
//! sweep time (and the commit it came from) in the emitted document,
//! which then carries a computed `speedup_vs_baseline`.
//!
//! `--full` uses the paper's workload sizes (slow: gem5 took hours on
//! these too); the default is a proportionally scaled-down configuration
//! that preserves every qualitative effect, and `--tiny` shrinks further
//! for integration tests (`--scale <quick|tiny|full>` is the spelled-out
//! equivalent). `--stats` appends the §IV-D secondary statistics (hit
//! rates, stall rates) to fig6/fig7 rows.
//!
//! `--jobs <n>` runs the independent simulations of a sweep on `n` host
//! worker threads (default: the host's available parallelism). Each
//! simulated machine is deterministic and self-contained, so the output
//! — stdout tables, `--json` reports, every simulated cycle count — is
//! byte-identical for every `n`; only host wall-time changes. The trace
//! experiment is a single annotated run and always executes serially.
//!
//! `--json <path>` writes every run of the invocation as a JSON array of
//! [`SimReport`]s; `--chrome <path>` (trace experiment only) writes the
//! run's Chrome trace-event document, loadable in Perfetto or
//! `chrome://tracing`.
//!
//! `--scheduler <calendar|heap>` selects the engine's event-queue
//! implementation (default: calendar). Simulated timing and every byte of
//! output are identical under both; the binary heap is retained as the
//! reference implementation the equivalence tests compare against.
//!
//! `--progress` paints a live one-line sweep status (done/running/queued
//! counts, an ETA, and what each worker is on) to **stderr**, so stdout
//! and `--json` stay byte-identical with and without it. `--sweep-json
//! <path>` writes the host-side sweep telemetry after the run: per-job
//! queue wait and wall time, per-worker busy time and utilization, and
//! stale-event rates. Both are wall-clock observations of the host and
//! deliberately never enter the `SimReport` stream.
//!
//! `compare <a.json> <b.json>` loads two report files (as written by
//! `--json`), pairs runs by experiment/benchmark/variant, and prints a
//! per-pair diff: cycle delta with a ranked stall-cause attribution
//! table, changed counters, and histogram quantile shifts. Exit code 0
//! means byte-equivalent simulated results, 1 means deltas were found
//! (usage errors exit 2), so CI can assert either direction without
//! parsing; `--json` writes the machine-readable diff document.
//!
//! `--cache <dir>` arms the content-addressed run cache: every sweep job
//! is keyed by a stable hash of everything that can affect its simulated
//! result (figure/benchmark/variant, scale, machine geometry, `--inject`
//! spec, `--shake-seed`, capture configuration, and the engine-semantics
//! version), and completed results are stored under `<dir>` as one JSON
//! entry per key. A warm rerun skips simulation entirely and reproduces
//! stdout and `--json` byte-identically — host-only knobs (`--jobs`,
//! `--scheduler`, `--progress`) are deliberately *not* part of the key.
//! Corrupt or stale entries are detected, dropped, and re-run; a cache
//! can slow an invocation down but never change or fail it. `--cache off`
//! (the default) disables it. `perf --cache-bench` measures the cold
//! vs warm sweep and writes `BENCH_cache.json`.
//!
//! `--metrics-addr <host:port>` (default `off`) arms the live
//! observability plane for the invocation: a flight recorder sampling
//! every instrumented layer (jobq pool, concurrent store, vacuum, run
//! cache) on a fixed cadence, and a std-only HTTP endpoint serving
//! `GET /metrics` (Prometheus text), `GET /metrics.json` and
//! `GET /window` (recent per-window deltas). Port 0 binds an ephemeral
//! port; the bound address is announced on **stderr**, so stdout and
//! every compared artifact stay byte-identical with the plane armed. See
//! `EXPERIMENTS.md` § "Live observability".
//!
//! `--host-chrome <path>` records *host* wall-clock spans — worker jobs,
//! vacuum passes, cache probes — and writes them as a Chrome trace-event
//! document when the invocation ends (alongside the simulated-cycle
//! `--chrome` export, which is unchanged).
//!
//! `--inject <spec>` applies a deterministic fault-injection plan
//! ([`osim_uarch::FaultPlan::parse`]) to every machine the invocation
//! builds: version-block pool shrinks, transient OS-carve failures,
//! per-op latency jitter and coherence-invalidation delays, all driven
//! by a seeded PRNG so the same spec replays the same schedule. See
//! `EXPERIMENTS.md` § "Fault injection & resilience".

use std::env;
use std::fs;

use osim_report::json::Json;
use osim_report::SimReport;

mod analyze;
mod cache_bench;
mod cache_cmd;
mod common;
mod compare_cmd;
#[cfg(test)]
mod equivalence_tests;
mod fig10;
mod fig6;
mod fig7;
mod fig8;
mod fig9;
mod gc;
mod obsv;
mod ostructs_perf;
mod perf;
mod runcache;
mod runner;
mod stress;
mod trace_cmd;

use common::Scale;

/// Builds the `--sweep-json` document from the pool telemetry accumulated
/// over the invocation. Everything wall-clock in here is host-side and
/// nondeterministic — deliberately kept out of the `SimReport` stream.
fn sweep_telemetry_doc(jobs_flag: usize, scale: &Scale) -> Json {
    use osim_report::json::obj;
    let t = runner::drain_telemetry();
    let workers: Vec<Json> = t
        .busy_ms
        .iter()
        .zip(t.utilization())
        .enumerate()
        .map(|(i, (&busy, util))| {
            obj(vec![
                ("worker", Json::from_u64(i as u64)),
                ("busy_ms", Json::Num(busy)),
                ("utilization", Json::Num(util)),
            ])
        })
        .collect();
    let job_rows: Vec<Json> = t
        .jobs
        .iter()
        .map(|j| {
            obj(vec![
                ("label", Json::Str(j.label.clone())),
                ("queue_ms", Json::Num(j.queue_ms)),
                ("run_ms", Json::Num(j.run_ms)),
                ("worker", Json::from_u64(j.worker as u64)),
                ("cache_hit", Json::Bool(j.cache_hit)),
                ("events_dispatched", Json::from_u64(j.events_dispatched)),
                ("stale_events", Json::from_u64(j.stale_events)),
            ])
        })
        .collect();
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as u64;
    obj(vec![
        ("schema", Json::Str("osim-sweep-telemetry-v1".to_string())),
        ("host_cpus", Json::from_u64(host_cpus)),
        ("jobs_flag", Json::from_u64(jobs_flag as u64)),
        ("scheduler", Json::Str(scale.scheduler.name().to_string())),
        ("batches", Json::from_u64(t.batches)),
        ("wall_ms", Json::Num(t.wall_ms)),
        ("job_count", Json::from_u64(t.jobs.len() as u64)),
        ("cache_hits", Json::from_u64(t.cache_hits)),
        ("cache_misses", Json::from_u64(t.cache_misses)),
        ("stale_event_rate", Json::Num(t.stale_rate())),
        ("workers", Json::Arr(workers)),
        ("jobs", Json::Arr(job_rows)),
    ])
}

/// Removes `flag <value>` from `args`, returning the value.
fn take_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("{flag} requires a value");
        std::process::exit(2);
    }
    let v = args.remove(i + 1);
    args.remove(i);
    Some(v)
}

fn main() {
    let mut args: Vec<String> = env::args().skip(1).collect();

    // The `cache` subcommand is dispatched before general flag parsing:
    // its `--json` is a boolean (print the document to stdout), unlike the
    // experiments' `--json <path>`.
    if args.first().map(String::as_str) == Some("cache") {
        args.remove(0);
        let dir = take_value(&mut args, "--cache")
            .filter(|d| d != "off")
            .unwrap_or_else(|| ".osim-cache".to_string());
        let json = if let Some(i) = args.iter().position(|a| a == "--json") {
            args.remove(i);
            true
        } else {
            false
        };
        let action = args
            .iter()
            .find(|a| !a.starts_with("--"))
            .map(String::as_str)
            .unwrap_or("stats");
        let dir = std::path::PathBuf::from(dir);
        let code = match action {
            "stats" => cache_cmd::stats(&dir, json),
            "verify" => cache_cmd::verify(&dir, json),
            "clear" => cache_cmd::clear(&dir, json),
            other => {
                eprintln!("cache action must be stats, verify or clear, got {other:?}");
                2
            }
        };
        std::process::exit(code);
    }

    let json_path = take_value(&mut args, "--json");
    let chrome_path = take_value(&mut args, "--chrome");
    let sweep_json = take_value(&mut args, "--sweep-json");
    let metrics_addr = take_value(&mut args, "--metrics-addr").filter(|v| v != "off");
    let host_chrome = take_value(&mut args, "--host-chrome");
    let progress = if let Some(i) = args.iter().position(|a| a == "--progress") {
        args.remove(i);
        true
    } else {
        false
    };
    let ostructs = if let Some(i) = args.iter().position(|a| a == "--ostructs") {
        args.remove(i);
        true
    } else {
        false
    };
    let cache_bench = if let Some(i) = args.iter().position(|a| a == "--cache-bench") {
        args.remove(i);
        true
    } else {
        false
    };
    let cache_flag = take_value(&mut args, "--cache").filter(|v| v != "off");
    let inject =
        take_value(&mut args, "--inject").map(|spec| match osim_uarch::FaultPlan::parse(&spec) {
            Ok(plan) => plan,
            Err(e) => {
                eprintln!("--inject {spec}: {e}");
                std::process::exit(2);
            }
        });
    let scheduler =
        take_value(&mut args, "--scheduler").map(|v| match osim_cpu::SchedulerKind::parse(&v) {
            Some(kind) => kind,
            None => {
                eprintln!("--scheduler must be calendar or heap, got {v:?}");
                std::process::exit(2);
            }
        });
    let scale_flag = take_value(&mut args, "--scale");
    let jobs = match take_value(&mut args, "--jobs") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--jobs requires a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
        None => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    };
    let baseline_ms = take_value(&mut args, "--baseline-ms").map(|v| match v.parse::<f64>() {
        Ok(ms) if ms > 0.0 => ms,
        _ => {
            eprintln!("--baseline-ms requires a positive number, got {v:?}");
            std::process::exit(2);
        }
    });
    let baseline_ref = take_value(&mut args, "--baseline-ref");
    let baseline = baseline_ms.map(|ms| {
        (
            ms,
            baseline_ref
                .clone()
                .unwrap_or_else(|| "baseline".to_string()),
        )
    });
    let fig_flag = take_value(&mut args, "--fig");
    let shake_seed = take_value(&mut args, "--shake-seed").map(|v| match v.parse::<u64>() {
        Ok(n) => n,
        _ => {
            eprintln!("--shake-seed requires an unsigned integer, got {v:?}");
            std::process::exit(2);
        }
    });
    let seeds = match take_value(&mut args, "--seeds") {
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--seeds requires a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
        None => 25,
    };
    let sample_every = match take_value(&mut args, "--sample-every") {
        Some(v) => match v.parse::<u64>() {
            Ok(n) => n,
            _ => {
                eprintln!("--sample-every requires a cycle count, got {v:?}");
                std::process::exit(2);
            }
        },
        None => 2048,
    };
    let reps = match take_value(&mut args, "--reps") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--reps requires a positive integer, got {v:?}");
                std::process::exit(2);
            }
        },
        None => 3,
    };
    let full = args.iter().any(|a| a == "--full");
    let tiny = args.iter().any(|a| a == "--tiny");
    let stats = args.iter().any(|a| a == "--stats");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("help");
    let scale_name = match scale_flag.as_deref() {
        Some(s @ ("quick" | "tiny" | "full")) => s,
        Some(other) => {
            eprintln!("--scale must be quick, tiny or full, got {other:?}");
            std::process::exit(2);
        }
        None if full => "full",
        None if tiny => "tiny",
        None => "quick",
    };
    let mut scale = match scale_name {
        "full" => Scale::paper(),
        "tiny" => Scale::tiny(),
        _ => Scale::quick(),
    };
    scale.inject = inject;
    if let Some(kind) = scheduler {
        scale.scheduler = kind;
    }
    if let Some(seed) = shake_seed {
        // For the stress subcommand the seed pins the start of the seed
        // range instead; stress sets the per-run policy itself.
        scale.shake = osim_cpu::ShakePolicy::Seeded(seed);
    }

    runner::set_progress(progress);
    if let Some(dir) = &cache_flag {
        runner::set_cache(Some(std::sync::Arc::new(osim_jobq::TextStore::at_dir(dir))));
    }
    if let Some(path) = host_chrome {
        obsv::host_chrome_arm(path);
    }
    if let Some(spec) = &metrics_addr {
        obsv::arm(spec);
    }

    let mut reports: Vec<SimReport> = Vec::new();
    let mut chrome_doc: Option<Json> = None;

    if cmd == "compare" {
        let files: Vec<String> = args
            .iter()
            .filter(|a| !a.starts_with("--") && a.as_str() != "compare")
            .cloned()
            .collect();
        if files.len() != 2 {
            eprintln!(
                "compare requires exactly two report files, got {}",
                files.len()
            );
            std::process::exit(2);
        }
        let code = compare_cmd::run(&files[0], &files[1], json_path.as_deref());
        obsv::host_chrome_flush();
        std::process::exit(code);
    }

    match cmd {
        "config" => common::print_config(),
        "fig6" => fig6::run(&scale, stats, jobs, &mut reports),
        "fig7" => fig7::run(&scale, stats, jobs, &mut reports),
        "fig8" => fig8::run(&scale, jobs, &mut reports),
        "fig9" => fig9::run(&scale, jobs, &mut reports),
        "fig10" => fig10::run(&scale, jobs, &mut reports),
        "gc" => gc::run(&scale, jobs, &mut reports),
        "trace" => chrome_doc = Some(trace_cmd::run(&scale, &mut reports)),
        "analyze" => {
            let fig = match fig_flag.as_deref() {
                Some(v) => match v.trim_start_matches("fig").parse::<u32>() {
                    Ok(n @ (6 | 7 | 9 | 10)) => n,
                    _ => {
                        eprintln!("analyze --fig must be 6, 7, 9 or 10, got {v:?}");
                        std::process::exit(2);
                    }
                },
                None => 7,
            };
            analyze::run(&scale, fig, sample_every, jobs, &mut reports)
        }
        "stress" => {
            let fig_filter = fig_flag.as_deref().map(|v| {
                let name = if v.chars().all(|c| c.is_ascii_digit()) {
                    format!("fig{v}")
                } else {
                    v.to_string()
                };
                match stress::figure_names().iter().find(|f| **f == name) {
                    Some(f) => *f,
                    None => {
                        eprintln!(
                            "stress --fig must be one of {}, got {v:?}",
                            stress::figure_names().join(", ")
                        );
                        std::process::exit(2);
                    }
                }
            });
            let first_seed = shake_seed.unwrap_or(1);
            let code = stress::run(&scale, scale_name, first_seed, seeds, fig_filter, jobs);
            obsv::host_chrome_flush();
            std::process::exit(code);
        }
        "perf" if ostructs => ostructs_perf::run(scale_name, reps, "BENCH_ostructs.json"),
        "perf" if cache_bench => {
            // The benchmark owns its cache (cleared first, all three
            // passes measured); an armed session cache would taint the
            // cold pass, so `--cache <dir>` just redirects the scratch
            // directory.
            runner::set_cache(None);
            let dir = cache_flag
                .clone()
                .unwrap_or_else(|| ".osim-cache-bench".to_string());
            cache_bench::run(
                &scale,
                scale_name,
                jobs,
                std::path::Path::new(&dir),
                "BENCH_cache.json",
            );
        }
        "perf" => perf::run(&scale, scale_name, jobs, reps, baseline, "BENCH_sweep.json"),
        "all" => {
            common::print_config();
            fig6::run(&scale, stats, jobs, &mut reports);
            fig7::run(&scale, stats, jobs, &mut reports);
            fig8::run(&scale, jobs, &mut reports);
            fig9::run(&scale, jobs, &mut reports);
            fig10::run(&scale, jobs, &mut reports);
            gc::run(&scale, jobs, &mut reports);
            chrome_doc = Some(trace_cmd::run(&scale, &mut reports));
        }
        _ => {
            eprintln!(
                "usage: osim-experiments <config|fig6|fig7|fig8|fig9|fig10|gc|trace|analyze|all|perf|stress> \
                 [--full|--tiny] [--scale <quick|tiny|full>] [--jobs <n>] [--reps <n>] \
                 [--stats] [--json <path>] [--chrome <path>] \
                 [--scheduler <calendar|heap>] \
                 [--fig <6|7|9|10>] [--sample-every <cycles>] \
                 [--shake-seed <n>] [--seeds <n>] \
                 [--progress] [--sweep-json <path>] [--ostructs] [--cache-bench] \
                 [--cache <dir|off>] \
                 [--metrics-addr <host:port|off>] [--host-chrome <path>] \
                 [--inject <spec>] [--baseline-ms <ms> [--baseline-ref <label>]]\n\
                 \n\
                 osim-experiments compare <a.json> <b.json> [--json <path>]\n\
                 osim-experiments cache <stats|verify|clear> [--cache <dir>] [--json]\n\
                 \n\
                 --cache <dir>: content-addressed run cache. Completed sweep jobs\n\
                 are stored under <dir> keyed by everything that affects their\n\
                 simulated result; a warm rerun skips simulation and reproduces\n\
                 stdout and --json byte-identically. Host-only knobs (--jobs,\n\
                 --scheduler, --progress) do not affect the key. Corrupt entries\n\
                 are dropped and re-run. Default: off.\n\
                 \n\
                 cache: maintenance for such a directory (default .osim-cache):\n\
                 stats (entry counts, bytes), verify (decode every entry with\n\
                 per-entry blame; exit 1 if any is bad), clear. --json prints\n\
                 the machine-readable document instead.\n\
                 \n\
                 perf --cache-bench: cold vs warm sweep benchmark; writes\n\
                 BENCH_cache.json with hit/miss counts, per-entry read latency\n\
                 quantiles, and the warm speedup.\n\
                 \n\
                 stress: schedule-shaking robustness harness. Runs every quick\n\
                 figure under --seeds (default 25) seeded tie-break perturbations\n\
                 (--shake-seed pins the first seed), with the manager's invariant\n\
                 oracles armed, and cross-checks both event-queue implementations\n\
                 per seed. Prints a minimal repro line per violation; exit 0 =\n\
                 all invariants held, 1 = violations. --fig <6|7|8|9|10|gc>\n\
                 restricts the figure set.\n\
                 \n\
                 --shake-seed <n>: for the other experiments, perturb same-cycle\n\
                 dispatch order from splitmix64 stream n (byte-identical per seed;\n\
                 numbers may differ from the committed references).\n\
                 \n\
                 compare: pairs the runs of two --json report files by\n\
                 (experiment, benchmark, variant), diffs every counter, stall\n\
                 cause, and latency histogram, and prints a ranked regression\n\
                 attribution per pair. Exit code 0 = identical, 1 = deltas.\n\
                 \n\
                 --metrics-addr <host:port>: live scrape endpoint (GET /metrics\n\
                 in Prometheus text, /metrics.json, /window) over the flight\n\
                 recorder sampling every instrumented layer (jobq, store,\n\
                 vacuum, cache). Port 0 binds ephemeral; the bound address is\n\
                 announced on stderr. Default: off (nothing starts).\n\
                 --host-chrome <path>: host wall-clock spans (worker jobs,\n\
                 vacuum passes, cache probes) as a Chrome trace document.\n\
                 \n\
                 --progress: live sweep status line on stderr (jobs queued/\n\
                 running/done, ETA, per-worker state); stdout is untouched.\n\
                 --sweep-json <path>: host-side sweep telemetry (per-job wall\n\
                 time, queue wait, worker utilization, stale-event rates).\n\
                 Wall-clock numbers are nondeterministic, which is why they\n\
                 get their own document instead of the SimReport stream.\n\
                 \n\
                 analyze: runs the chosen figure's workload with dependency-flow\n\
                 capture and interval telemetry armed, then prints the critical\n\
                 path, its stall-cause split, and the top contended structures.\n\
                 \n\
                 --inject <spec>: deterministic fault injection. <spec> is a preset\n\
                 (pool-pressure, pool-exhaustion, latency-jitter, coherence-delay,\n\
                 chaos) and/or comma-separated key=value overrides (seed, shrink-at,\n\
                 shrink-keep, carve-fail-pct, max-carve-failures, refill-budget,\n\
                 jitter, coherence-delay). Same spec + same seed => identical run."
            );
            std::process::exit(2);
        }
    }

    obsv::host_chrome_flush();

    if let Some(path) = json_path {
        for r in &reports {
            if let Err(e) = r.validate() {
                panic!(
                    "invalid report {}/{}/{}: {e}",
                    r.experiment, r.benchmark, r.variant
                );
            }
        }
        let doc = Json::Arr(reports.iter().map(SimReport::to_json).collect());
        if let Err(e) = fs::write(&path, doc.to_pretty()) {
            eprintln!("cannot write --json output {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {} report(s) to {path}", reports.len());
    }
    if let Some(path) = sweep_json {
        let doc = sweep_telemetry_doc(jobs, &scale);
        if let Err(e) = fs::write(&path, doc.to_pretty()) {
            eprintln!("cannot write --sweep-json output {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote sweep telemetry to {path}");
    }
    if let Some(path) = chrome_path {
        match chrome_doc {
            Some(doc) => {
                if let Err(e) = fs::write(&path, doc.to_pretty()) {
                    eprintln!("cannot write --chrome output {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("wrote Chrome trace to {path}");
            }
            None => {
                eprintln!("--chrome only applies to the trace (or all) experiment");
                std::process::exit(2);
            }
        }
    }
}
