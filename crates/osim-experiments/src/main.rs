//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§IV) from the simulator.
//!
//! ```text
//! cargo run -p osim-experiments --release -- <experiment> [--full] [--stats]
//!
//! experiments:
//!   config   Table II   — the simulated platform configuration
//!   fig6     Figure 6   — speedup of 32-core versioned over sequential unversioned
//!   fig7     Figure 7   — scalability (4..32 cores) over 1-core versioned
//!   fig8     Figure 8   — versioned BST vs read-write-lock BST (snapshot isolation)
//!   fig9     Figure 9   — L1 size sensitivity (8 kB .. 128 kB)
//!   fig10    Figure 10  — injected versioned-op latency (2..10 cycles)
//!   gc       §IV-F      — garbage collection and version-sorting overhead
//!   trace               — per-operation latency/stall breakdown (tracer demo)
//!   all      everything above
//! ```
//!
//! `--full` uses the paper's workload sizes (slow: gem5 took hours on
//! these too); the default is a proportionally scaled-down configuration
//! that preserves every qualitative effect. `--stats` appends the §IV-D
//! secondary statistics (hit rates, stall rates) to fig6/fig7 rows.

use std::env;

mod common;
mod fig10;
mod fig6;
mod fig7;
mod fig8;
mod fig9;
mod gc;
mod trace_cmd;

use common::Scale;

fn main() {
    let args: Vec<String> = env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let stats = args.iter().any(|a| a == "--stats");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("help");
    let scale = if full { Scale::paper() } else { Scale::quick() };

    match cmd {
        "config" => common::print_config(),
        "fig6" => fig6::run(&scale, stats),
        "fig7" => fig7::run(&scale, stats),
        "fig8" => fig8::run(&scale),
        "fig9" => fig9::run(&scale),
        "fig10" => fig10::run(&scale),
        "gc" => gc::run(&scale),
        "trace" => trace_cmd::run(&scale),
        "all" => {
            common::print_config();
            fig6::run(&scale, stats);
            fig7::run(&scale, stats);
            fig8::run(&scale);
            fig9::run(&scale);
            fig10::run(&scale);
            gc::run(&scale);
        }
        _ => {
            eprintln!(
                "usage: osim-experiments <config|fig6|fig7|fig8|fig9|fig10|gc|trace|all> [--full] [--stats]"
            );
            std::process::exit(2);
        }
    }
}
