//! Figure 6: speedup of parallel versioned (32 cores) over sequential
//! unversioned execution.
//!
//! Paper shape: small benchmarks (1000 elements) and large (10000);
//! read-intensive (4R-1W) and write-intensive (1R-1W); irregular
//! pointer-heavy codes reach up to ~19x (the paper's headline), matmul and
//! Levenshtein scale almost linearly despite the fixed versioning
//! overhead.

use osim_report::SimReport;

use crate::common::{checked_run, f2, machine, pct, report_run, Bench, Scale};
use crate::runner::{SweepJob, SweepRun};

const CORES: usize = 32;

/// The four irregular configurations, in row order.
const CONFIGS: [(bool, u32); 4] = [(false, 4), (false, 1), (true, 4), (true, 1)];

/// The sweep, in the exact order [`render`] consumes it: every irregular
/// benchmark's four (unversioned, versioned) pairs, the two regular
/// benchmarks' single pairs, then the §IV-B matmul single-core pair.
pub fn plan(scale: &Scale) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    let s = *scale;
    for bench in Bench::IRREGULAR {
        for (large, rpw) in CONFIGS {
            let tag = format!("{}-{rpw}r1w", if large { "large" } else { "small" });
            jobs.push(SweepJob::new(
                "fig6",
                bench.name(),
                format!("unversioned-{tag}"),
                scale,
                machine(scale, 1, None, 0),
                move |m| bench.run_unversioned(m, &s, large, rpw),
            ));
            jobs.push(SweepJob::new(
                "fig6",
                bench.name(),
                format!("versioned-{tag}"),
                scale,
                machine(scale, CORES, None, 0),
                move |m| bench.run_versioned(m, &s, large, rpw),
            ));
        }
    }
    for bench in [Bench::Levenshtein, Bench::MatrixMul] {
        jobs.push(SweepJob::new(
            "fig6",
            bench.name(),
            "unversioned".to_string(),
            scale,
            machine(scale, 1, None, 0),
            move |m| bench.run_unversioned(m, &s, false, 4),
        ));
        jobs.push(SweepJob::new(
            "fig6",
            bench.name(),
            "versioned".to_string(),
            scale,
            machine(scale, CORES, None, 0),
            move |m| bench.run_versioned(m, &s, false, 4),
        ));
    }
    // The §IV-B single-thread overhead observation (matmul ~2.5x in the
    // paper): versioned sequential vs unversioned sequential.
    jobs.push(SweepJob::new(
        "fig6",
        Bench::MatrixMul.name(),
        "unversioned-1c".to_string(),
        scale,
        machine(scale, 1, None, 0),
        move |m| Bench::MatrixMul.run_unversioned(m, &s, false, 4),
    ));
    jobs.push(SweepJob::new(
        "fig6",
        Bench::MatrixMul.name(),
        "versioned-1c".to_string(),
        scale,
        machine(scale, 1, None, 0),
        move |m| Bench::MatrixMul.run_versioned(m, &s, false, 4),
    ));
    jobs
}

/// Prints the figure's tables from completed runs (in [`plan`] order) and
/// emits their reports.
pub fn render(scale: &Scale, stats: bool, runs: &[SweepRun], out: &mut Vec<SimReport>) {
    println!(
        "## Figure 6 — speedup of parallel versioned ({CORES} cores) over sequential unversioned\n"
    );
    println!("scale: {scale:?}\n");
    let mut header =
        "| Benchmark | Small 4R-1W | Small 1R-1W | Large 4R-1W | Large 1R-1W |".to_string();
    if stats {
        header.push_str(" L1 hit | vload stall | root stall |");
    }
    println!("{header}");
    println!(
        "|---|---|---|---|---|{}",
        if stats { "---|---|---|" } else { "" }
    );

    let mut next = runs.iter();
    let mut take = || {
        let run = next.next().expect("plan and render agree on job count");
        checked_run(run);
        out.push(report_run(run, scale));
        run
    };

    for bench in Bench::IRREGULAR {
        let mut cells = Vec::new();
        let mut last = None;
        for _ in CONFIGS {
            let seq = take();
            let par = take();
            cells.push(f2(seq.result.cycles as f64 / par.result.cycles as f64));
            last = Some(&par.result);
        }
        let mut row = format!(
            "| {} | {} | {} | {} | {} |",
            bench.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
        if stats {
            let par = last.expect("ran");
            row.push_str(&format!(
                " {} | {} | {} |",
                pct(par.mem.l1_hit_rate()),
                pct(par.cpu.versioned_stall_rate()),
                pct(par.cpu.root_stall_rate()),
            ));
        }
        println!("{row}");
    }

    // The regular benchmarks have a single configuration each.
    for bench in [Bench::Levenshtein, Bench::MatrixMul] {
        let seq = take();
        let par = take();
        let s = f2(seq.result.cycles as f64 / par.result.cycles as f64);
        let mut row = format!("| {} | {s} | {s} | {s} | {s} |", bench.name());
        if stats {
            row.push_str(&format!(
                " {} | {} | - |",
                pct(par.result.mem.l1_hit_rate()),
                pct(par.result.cpu.versioned_stall_rate()),
            ));
        }
        println!("{row}");
    }

    let unv = take();
    let ver = take();
    println!(
        "\nsingle-thread versioning overhead (matmul): {}x slower than unversioned (paper: ~2.5x)\n",
        f2(ver.result.cycles as f64 / unv.result.cycles as f64)
    );
}

pub fn run(scale: &Scale, stats: bool, jobs: usize, out: &mut Vec<SimReport>) {
    let runs = crate::runner::run_jobs(plan(scale), jobs);
    render(scale, stats, &runs, out);
}
