//! Figure 6: speedup of parallel versioned (32 cores) over sequential
//! unversioned execution.
//!
//! Paper shape: small benchmarks (1000 elements) and large (10000);
//! read-intensive (4R-1W) and write-intensive (1R-1W); irregular
//! pointer-heavy codes reach up to ~19x (the paper's headline), matmul and
//! Levenshtein scale almost linearly despite the fixed versioning
//! overhead.

use osim_report::SimReport;

use crate::common::{checked, f2, machine, pct, report, Bench, Scale};

pub fn run(scale: &Scale, stats: bool, out: &mut Vec<SimReport>) {
    const CORES: usize = 32;
    println!(
        "## Figure 6 — speedup of parallel versioned ({CORES} cores) over sequential unversioned\n"
    );
    println!("scale: {scale:?}\n");
    let mut header =
        "| Benchmark | Small 4R-1W | Small 1R-1W | Large 4R-1W | Large 1R-1W |".to_string();
    if stats {
        header.push_str(" L1 hit | vload stall | root stall |");
    }
    println!("{header}");
    println!(
        "|---|---|---|---|---|{}",
        if stats { "---|---|---|" } else { "" }
    );

    for bench in Bench::IRREGULAR {
        let mut cells = Vec::new();
        let mut last = None;
        for (large, rpw) in [(false, 4), (false, 1), (true, 4), (true, 1)] {
            let tag = format!("{}-{rpw}r1w", if large { "large" } else { "small" });
            let seq_cfg = machine(scale, 1, None, 0);
            let seq = checked(
                bench.run_unversioned(seq_cfg.clone(), scale, large, rpw),
                bench.name(),
            );
            out.push(report(
                "fig6",
                bench.name(),
                &format!("unversioned-{tag}"),
                &seq_cfg,
                scale,
                &seq,
            ));
            let par_cfg = machine(scale, CORES, None, 0);
            let par = checked(
                bench.run_versioned(par_cfg.clone(), scale, large, rpw),
                bench.name(),
            );
            out.push(report(
                "fig6",
                bench.name(),
                &format!("versioned-{tag}"),
                &par_cfg,
                scale,
                &par,
            ));
            cells.push(f2(seq.cycles as f64 / par.cycles as f64));
            last = Some(par);
        }
        let mut row = format!(
            "| {} | {} | {} | {} | {} |",
            bench.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
        if stats {
            let par = last.expect("ran");
            row.push_str(&format!(
                " {} | {} | {} |",
                pct(par.mem.l1_hit_rate()),
                pct(par.cpu.versioned_stall_rate()),
                pct(par.cpu.root_stall_rate()),
            ));
        }
        println!("{row}");
    }

    // The regular benchmarks have a single configuration each.
    for bench in [Bench::Levenshtein, Bench::MatrixMul] {
        let seq_cfg = machine(scale, 1, None, 0);
        let seq = checked(
            bench.run_unversioned(seq_cfg.clone(), scale, false, 4),
            bench.name(),
        );
        out.push(report(
            "fig6",
            bench.name(),
            "unversioned",
            &seq_cfg,
            scale,
            &seq,
        ));
        let par_cfg = machine(scale, CORES, None, 0);
        let par = checked(
            bench.run_versioned(par_cfg.clone(), scale, false, 4),
            bench.name(),
        );
        out.push(report(
            "fig6",
            bench.name(),
            "versioned",
            &par_cfg,
            scale,
            &par,
        ));
        let s = f2(seq.cycles as f64 / par.cycles as f64);
        let mut row = format!("| {} | {s} | {s} | {s} | {s} |", bench.name());
        if stats {
            row.push_str(&format!(
                " {} | {} | - |",
                pct(par.mem.l1_hit_rate()),
                pct(par.cpu.versioned_stall_rate()),
            ));
        }
        println!("{row}");
    }

    // The §IV-B single-thread overhead observation (matmul ~2.5x in the
    // paper): versioned sequential vs unversioned sequential.
    let seq_cfg = machine(scale, 1, None, 0);
    let unv = checked(
        Bench::MatrixMul.run_unversioned(seq_cfg.clone(), scale, false, 4),
        "matmul",
    );
    out.push(report(
        "fig6",
        "Matrix mul.",
        "unversioned-1c",
        &seq_cfg,
        scale,
        &unv,
    ));
    let ver = checked(
        Bench::MatrixMul.run_versioned(seq_cfg.clone(), scale, false, 4),
        "matmul",
    );
    out.push(report(
        "fig6",
        "Matrix mul.",
        "versioned-1c",
        &seq_cfg,
        scale,
        &ver,
    ));
    println!(
        "\nsingle-thread versioning overhead (matmul): {}x slower than unversioned (paper: ~2.5x)\n",
        f2(ver.cycles as f64 / unv.cycles as f64)
    );
}
