//! `perf`: the host-speed regression benchmark.
//!
//! Runs the fixed figure sweep at the requested scale `reps` times and
//! writes `BENCH_sweep.json`: host wall-time per figure and repetition,
//! total simulated cycles, and the worker count used. Committing one such
//! file per change gives the repository a wall-clock baseline that review
//! can diff — simulated results never vary (that is separately enforced by
//! the equivalence tests), so any movement in this file is host-side.
//!
//! The sweep executes the figures' *plans* without rendering their tables:
//! simulated work and validation are identical to the normal commands,
//! only the Markdown output is skipped (it would interleave meaninglessly
//! across repetitions).

use std::time::Instant;

use osim_report::json::{obj, Json};

use crate::common::Scale;
use crate::runner::{self, SweepRun};
use crate::{fig10, fig6, fig7, fig8, fig9, gc};

/// One figure of the sweep: name + plan entry point.
pub(crate) type Fig = (&'static str, fn(&Scale) -> Vec<runner::SweepJob>);

pub(crate) const FIGS: [Fig; 6] = [
    ("fig6", fig6::plan),
    ("fig7", fig7::plan),
    ("fig8", fig8::plan),
    ("fig9", fig9::plan),
    ("fig10", fig10::plan),
    ("gc", gc::plan),
];

pub(crate) fn validate(runs: &[SweepRun]) -> u64 {
    let mut cycles = 0;
    for run in runs {
        assert!(
            run.result.ok,
            "perf sweep {}/{}/{}: validation failed: {}",
            run.fig, run.bench, run.tag, run.result.detail
        );
        cycles += run.result.cycles;
    }
    cycles
}

/// Runs the sweep and writes the benchmark document to `path`.
///
/// `baseline` is the reference point the run is measured against — the
/// best serial sweep wall-time of some earlier commit (`--baseline-ms`)
/// and a label naming it (`--baseline-ref`, typically the commit hash).
/// When present, the document carries a `baseline` object and a
/// `speedup_vs_baseline` ratio so the committed file shows before/after
/// in one place.
pub fn run(
    scale: &Scale,
    scale_name: &str,
    jobs: usize,
    reps: usize,
    baseline: Option<(f64, String)>,
    path: &str,
) {
    let mut fig_wall: Vec<Vec<f64>> = vec![Vec::new(); FIGS.len()];
    let mut fig_cycles: Vec<u64> = vec![0; FIGS.len()];
    let mut fig_runs: Vec<usize> = vec![0; FIGS.len()];
    let mut rep_wall: Vec<f64> = Vec::new();

    for rep in 0..reps {
        let rep_start = Instant::now();
        for (i, (name, plan)) in FIGS.iter().enumerate() {
            let t = Instant::now();
            let runs = runner::run_jobs(plan(scale), jobs);
            // Round to 1 µs so the committed JSON stays diff-friendly.
            let wall_ms = (t.elapsed().as_secs_f64() * 1e6).round() / 1e3;
            let cycles = validate(&runs);
            if rep == 0 {
                fig_cycles[i] = cycles;
                fig_runs[i] = runs.len();
            } else {
                // Simulated work is deterministic; a drift between
                // repetitions means the simulator broke, not the host.
                assert_eq!(
                    cycles, fig_cycles[i],
                    "{name}: simulated cycles drifted between repetitions"
                );
            }
            fig_wall[i].push(wall_ms);
        }
        let total_ms = (rep_start.elapsed().as_secs_f64() * 1e6).round() / 1e3;
        eprintln!("perf rep {}/{reps}: {total_ms:.0} ms", rep + 1);
        rep_wall.push(total_ms);
    }

    let min = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let figs = FIGS
        .iter()
        .enumerate()
        .map(|(i, (name, _))| {
            obj(vec![
                ("fig", Json::Str(name.to_string())),
                ("runs", Json::from_u64(fig_runs[i] as u64)),
                ("sim_cycles", Json::from_u64(fig_cycles[i])),
                (
                    "wall_ms",
                    Json::Arr(fig_wall[i].iter().map(|&w| Json::Num(w)).collect()),
                ),
                ("best_wall_ms", Json::Num(min(&fig_wall[i]))),
            ])
        })
        .collect();

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let best_total = min(&rep_wall);
    let mut fields = vec![
        ("schema", Json::Str("osim-bench-sweep-v1".to_string())),
        ("scale", Json::Str(scale_name.to_string())),
        ("jobs", Json::from_u64(jobs as u64)),
        ("reps", Json::from_u64(reps as u64)),
        ("host_cpus", Json::from_u64(host_cpus as u64)),
        // Host environment stamp: what kind of machine produced these
        // wall-times. A committed baseline from a many-core host must not
        // be speed-compared against a 1-CPU CI runner; the CI guard reads
        // host_cpus from both sides before comparing.
        ("host_os", Json::Str(std::env::consts::OS.to_string())),
        ("host_arch", Json::Str(std::env::consts::ARCH.to_string())),
        ("scheduler", Json::Str(scale.scheduler.name().to_string())),
    ];
    if let Some((ms, ref_name)) = &baseline {
        fields.push((
            "baseline",
            obj(vec![
                ("ref", Json::Str(ref_name.clone())),
                ("best_wall_ms", Json::Num(*ms)),
            ]),
        ));
        fields.push((
            "speedup_vs_baseline",
            Json::Num((ms / best_total * 1e3).round() / 1e3),
        ));
    }
    fields.extend([
        ("figs", Json::Arr(figs)),
        (
            "total",
            obj(vec![
                (
                    "runs",
                    Json::from_u64(fig_runs.iter().sum::<usize>() as u64),
                ),
                ("sim_cycles", Json::from_u64(fig_cycles.iter().sum())),
                (
                    "wall_ms",
                    Json::Arr(rep_wall.iter().map(|&w| Json::Num(w)).collect()),
                ),
                ("best_wall_ms", Json::Num(min(&rep_wall))),
            ]),
        ),
    ]);

    let doc = obj(fields);
    if let Err(e) = std::fs::write(path, doc.to_pretty()) {
        eprintln!("cannot write perf output {path}: {e}");
        std::process::exit(1);
    }
    eprintln!(
        "wrote {path}: scale={scale_name} jobs={jobs} best sweep {:.0} ms",
        min(&rep_wall)
    );
}
