//! `analyze`: run a figure's workload with causal capture armed and print
//! the dependency critical-path / top-contender report.
//!
//! Capture (dependency edges + interval telemetry) is host-side
//! observation, so every simulated cycle count here matches the same
//! figure run without capture; what this command adds is the *why* —
//! which producer→consumer chain the run's length hides, which structure
//! everyone queued on, and how unevenly the waiting spread across cores.

use osim_cpu::{CaptureCfg, MachineCfg, StallCause};
use osim_report::{CritPath, SimReport, TraceCounts};

use crate::common::{checked_run, machine, pct, report_run, Bench, Scale};
use crate::runner::{SweepJob, SweepRun};

/// Dependency-edge ring capacity for analysis runs.
const DEP_RING: usize = 1 << 14;
/// Interval-sample ring capacity for analysis runs.
const SAMPLE_RING: usize = 1 << 12;

/// The machine configuration at the chosen figure's characteristic point
/// (32 cores; fig9 takes the smallest L1, fig10 the largest injected
/// versioned-op latency — the points where causality matters most).
fn fig_machine(scale: &Scale, fig: u32) -> MachineCfg {
    match fig {
        9 => machine(scale, 32, Some(8), 0),
        10 => machine(scale, 32, None, 10),
        _ => machine(scale, 32, None, 0), // fig 6 and 7 share the config
    }
}

/// The sweep in [`render`] order: one captured run per benchmark.
pub fn plan(scale: &Scale, fig: u32, sample_every: u64) -> Vec<SweepJob> {
    let s = *scale;
    Bench::ALL
        .iter()
        .map(|&bench| {
            let mut cfg = fig_machine(scale, fig);
            cfg.capture = CaptureCfg::armed(DEP_RING, sample_every, SAMPLE_RING);
            SweepJob::new(
                "analyze",
                bench.name(),
                format!("fig{fig}-capture"),
                scale,
                cfg,
                move |m| bench.run_versioned(m, &s, true, 4),
            )
        })
        .collect()
}

/// Prints the causal report from completed runs (in [`plan`] order).
pub fn render(scale: &Scale, fig: u32, runs: &[SweepRun], out: &mut Vec<SimReport>) {
    println!("## Causal analysis — dependency critical path (fig{fig} workload, capture armed)\n");
    println!("scale: {scale:?}\n");

    let analyzed: Vec<(&SweepRun, CritPath)> = runs
        .iter()
        .map(|run| {
            let r = checked_run(run);
            (run, CritPath::build(&r.deps, r.window))
        })
        .collect();

    println!("| Benchmark | cycles | path | path wait | missing | locked | coherence | gc |");
    println!("|---|---|---|---|---|---|---|---|");
    for (run, cp) in &analyzed {
        let mut by_cause = [0u64; 4];
        for seg in &cp.segments {
            if let Some(c) = seg.cause {
                by_cause[c.index()] += seg.cycles();
            }
        }
        println!(
            "| {} | {} | {} | {} ({}) | {} | {} | {} | {} |",
            run.bench,
            run.result.cycles,
            cp.length(),
            cp.wait_cycles(),
            pct(cp.wait_cycles() as f64 / cp.length().max(1) as f64),
            by_cause[StallCause::MissingVersion.index()],
            by_cause[StallCause::LockedVersion.index()],
            by_cause[StallCause::CoherenceInval.index()],
            by_cause[StallCause::FreeListGc.index()],
        );
    }

    println!("\n| Benchmark | hot structure | waited | edges | cause | core-wait imb | samples |");
    println!("|---|---|---|---|---|---|---|");
    for (run, cp) in &analyzed {
        let hot = cp.contenders.first();
        let imb = match cp.per_core.len() {
            0 => "-".to_string(),
            n => {
                let max = cp.per_core.iter().map(|c| c.waited).max().unwrap_or(0);
                let mean = cp.per_core.iter().map(|c| c.waited).sum::<u64>() as f64 / n as f64;
                if mean > 0.0 {
                    format!("{:.2}", max as f64 / mean)
                } else {
                    "-".to_string()
                }
            }
        };
        println!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            run.bench,
            hot.map_or("-".to_string(), |c| format!("{:#x}", c.va)),
            hot.map_or(0, |c| c.waited),
            hot.map_or(0, |c| c.edges),
            hot.map_or("-", |c| c.top_cause.name()),
            imb,
            run.result.timeseries.len(),
        );
    }
    println!();

    for (run, cp) in analyzed {
        let r = &run.result;
        let mut rep = report_run(run, scale);
        rep.critpath = Some(cp);
        rep.timeseries = r.timeseries.clone();
        rep.trace = Some(TraceCounts {
            dep_edges: r.deps.len() as u64,
            dep_dropped: r.deps_dropped,
            samples: r.timeseries.len() as u64,
            samples_dropped: r.samples_dropped,
            ..TraceCounts::default()
        });
        out.push(rep);
    }
}

pub fn run(scale: &Scale, fig: u32, sample_every: u64, jobs: usize, out: &mut Vec<SimReport>) {
    let runs = crate::runner::run_jobs(plan(scale, fig, sample_every), jobs);
    render(scale, fig, &runs, out);
}
