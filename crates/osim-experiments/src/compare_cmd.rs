//! The `compare` subcommand: cross-run regression attribution.
//!
//! Loads two report files (a single [`SimReport`] object or the JSON
//! array `--json` writes), pairs runs by `(experiment, benchmark,
//! variant)`, and prints one ranked attribution block per pair. With
//! `--json <path>` the structural diffs are also written as one
//! `osim-compare-v1` document.

use std::fs;

use osim_report::json::{obj, Json};
use osim_report::{compare, load_reports, ReportDiff, SimReport};

/// Loads every report in `path` (object or array form) through the shared
/// hardened loader — corrupt or truncated files exit 2 with a typed
/// message instead of panicking.
fn load(path: &str) -> Vec<SimReport> {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match load_reports(&text) {
        Ok(reports) => reports,
        Err(e) => {
            eprintln!("{path}: {e}");
            std::process::exit(2);
        }
    }
}

fn key(r: &SimReport) -> (String, String, String) {
    (r.experiment.clone(), r.benchmark.clone(), r.variant.clone())
}

/// Runs the subcommand. Returns the process exit code: 0 on a clean
/// zero-delta comparison, 1 when any pair differs (so CI can assert
/// byte-level equivalence without parsing the output), 2 on usage errors.
pub fn run(path_a: &str, path_b: &str, json_out: Option<&str>) -> i32 {
    let a = load(path_a);
    let b = load(path_b);
    let mut diffs: Vec<ReportDiff> = Vec::new();
    let mut matched_b = vec![false; b.len()];
    let mut unmatched_a: Vec<String> = Vec::new();
    for ra in &a {
        let ka = key(ra);
        match b
            .iter()
            .enumerate()
            .find(|(j, rb)| !matched_b[*j] && key(rb) == ka)
        {
            Some((j, rb)) => {
                matched_b[j] = true;
                diffs.push(compare(ra, rb));
            }
            None => unmatched_a.push(format!("{}/{}/{}", ka.0, ka.1, ka.2)),
        }
    }
    let unmatched_b: Vec<String> = b
        .iter()
        .zip(&matched_b)
        .filter(|(_, m)| !**m)
        .map(|(r, _)| format!("{}/{}/{}", r.experiment, r.benchmark, r.variant))
        .collect();

    let zero =
        diffs.iter().all(ReportDiff::is_zero) && unmatched_a.is_empty() && unmatched_b.is_empty();
    println!(
        "compared {} run pair(s): {}",
        diffs.len(),
        if zero { "identical" } else { "deltas found" }
    );
    for d in &diffs {
        print!("{}", d.render_text());
    }
    for k in &unmatched_a {
        println!("only in {path_a}: {k}");
    }
    for k in &unmatched_b {
        println!("only in {path_b}: {k}");
    }

    if let Some(path) = json_out {
        let doc = obj(vec![
            ("schema", Json::Str("osim-compare-v1".to_string())),
            ("a", Json::Str(path_a.to_string())),
            ("b", Json::Str(path_b.to_string())),
            (
                "pairs",
                Json::Arr(diffs.iter().map(ReportDiff::to_json).collect()),
            ),
            (
                "unmatched_a",
                Json::Arr(unmatched_a.iter().cloned().map(Json::Str).collect()),
            ),
            (
                "unmatched_b",
                Json::Arr(unmatched_b.iter().cloned().map(Json::Str).collect()),
            ),
            ("zero", Json::Bool(zero)),
        ]);
        if let Err(e) = fs::write(path, doc.to_pretty()) {
            eprintln!("cannot write --json output {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote comparison of {} pair(s) to {path}", diffs.len());
    }
    i32::from(!zero)
}
