//! Figure 7: scalability — speedup over the sequential *versioned* run
//! (self-speedup), large read-intensive configurations, 4–32 cores.
//!
//! Beyond the paper's speedup curve, each row reports the per-core work
//! imbalance at 32 cores (max core instructions ÷ mean): a value near 1
//! means the static scheduler kept the cores evenly loaded, and a high
//! value explains a sub-linear speedup that cache statistics would not.

use osim_report::SimReport;

use crate::common::{checked_run, f2, machine, pct, report_run, Bench, Scale};
use crate::runner::{SweepJob, SweepRun};

const CORE_COUNTS: [usize; 4] = [4, 8, 16, 32];

/// The sweep in [`render`] order: per benchmark, the 1-core baseline then
/// each core count.
pub fn plan(scale: &Scale) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    let s = *scale;
    for bench in Bench::ALL {
        jobs.push(SweepJob::new(
            "fig7",
            bench.name(),
            "versioned-1c".to_string(),
            scale,
            machine(scale, 1, None, 0),
            move |m| bench.run_versioned(m, &s, true, 4),
        ));
        for cores in CORE_COUNTS {
            jobs.push(SweepJob::new(
                "fig7",
                bench.name(),
                format!("versioned-{cores}c"),
                scale,
                machine(scale, cores, None, 0),
                move |m| bench.run_versioned(m, &s, true, 4),
            ));
        }
    }
    jobs
}

/// Prints the scalability table from completed runs (in [`plan`] order).
pub fn render(scale: &Scale, stats: bool, runs: &[SweepRun], out: &mut Vec<SimReport>) {
    println!(
        "## Figure 7 — scalability (speedup over sequential versioned; large, read-intensive)\n"
    );
    println!("scale: {scale:?}\n");
    let mut header = "| Benchmark | 4 | 8 | 16 | 32 | work imb @32 | stall imb @32 |".to_string();
    if stats {
        header.push_str(" L1 hit @32 | vload stall @32 |");
    }
    println!("{header}");
    println!(
        "|---|---|---|---|---|---|---|{}",
        if stats { "---|---|" } else { "" }
    );

    let mut next = runs.iter();
    let mut take = || {
        let run = next.next().expect("plan and render agree on job count");
        checked_run(run);
        out.push(report_run(run, scale));
        run
    };

    for bench in Bench::ALL {
        let base = take();
        let mut cells = Vec::new();
        let mut at32 = None;
        for cores in CORE_COUNTS {
            let par = take();
            cells.push(f2(base.result.cycles as f64 / par.result.cycles as f64));
            if cores == 32 {
                at32 = Some(&par.result);
            }
        }
        let par = at32.expect("ran 32");
        let mut row = format!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            bench.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            f2(par.cpu.work_imbalance()),
            f2(par.cpu.stall_imbalance()),
        );
        if stats {
            row.push_str(&format!(
                " {} | {} |",
                pct(par.mem.l1_hit_rate()),
                pct(par.cpu.versioned_stall_rate()),
            ));
        }
        println!("{row}");
    }
    println!();
}

pub fn run(scale: &Scale, stats: bool, jobs: usize, out: &mut Vec<SimReport>) {
    let runs = crate::runner::run_jobs(plan(scale), jobs);
    render(scale, stats, &runs, out);
}
