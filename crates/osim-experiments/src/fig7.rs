//! Figure 7: scalability — speedup over the sequential *versioned* run
//! (self-speedup), large read-intensive configurations, 4–32 cores.

use crate::common::{checked, f2, machine, pct, Bench, Scale};

const CORE_COUNTS: [usize; 4] = [4, 8, 16, 32];

pub fn run(scale: &Scale, stats: bool) {
    println!("## Figure 7 — scalability (speedup over sequential versioned; large, read-intensive)\n");
    println!("scale: {scale:?}\n");
    let mut header = "| Benchmark | 4 | 8 | 16 | 32 |".to_string();
    if stats {
        header.push_str(" L1 hit @32 | vload stall @32 |");
    }
    println!("{header}");
    println!("|---|---|---|---|---|{}", if stats { "---|---|" } else { "" });

    for bench in Bench::ALL {
        let large = true;
        let rpw = 4;
        let base = checked(
            bench.run_versioned(machine(1, None, 0), scale, large, rpw),
            bench.name(),
        );
        let mut cells = Vec::new();
        let mut at32 = None;
        for cores in CORE_COUNTS {
            let par = checked(
                bench.run_versioned(machine(cores, None, 0), scale, large, rpw),
                bench.name(),
            );
            cells.push(f2(base.cycles as f64 / par.cycles as f64));
            if cores == 32 {
                at32 = Some(par);
            }
        }
        let mut row = format!(
            "| {} | {} | {} | {} | {} |",
            bench.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3]
        );
        if stats {
            let par = at32.expect("ran 32");
            row.push_str(&format!(
                " {} | {} |",
                pct(par.mem.l1_hit_rate()),
                pct(par.cpu.versioned_stall_rate()),
            ));
        }
        println!("{row}");
    }
    println!();
}
