//! Figure 7: scalability — speedup over the sequential *versioned* run
//! (self-speedup), large read-intensive configurations, 4–32 cores.
//!
//! Beyond the paper's speedup curve, each row reports the per-core work
//! imbalance at 32 cores (max core instructions ÷ mean): a value near 1
//! means the static scheduler kept the cores evenly loaded, and a high
//! value explains a sub-linear speedup that cache statistics would not.

use osim_report::SimReport;

use crate::common::{checked, f2, machine, pct, report, Bench, Scale};

const CORE_COUNTS: [usize; 4] = [4, 8, 16, 32];

pub fn run(scale: &Scale, stats: bool, out: &mut Vec<SimReport>) {
    println!(
        "## Figure 7 — scalability (speedup over sequential versioned; large, read-intensive)\n"
    );
    println!("scale: {scale:?}\n");
    let mut header = "| Benchmark | 4 | 8 | 16 | 32 | work imb @32 | stall imb @32 |".to_string();
    if stats {
        header.push_str(" L1 hit @32 | vload stall @32 |");
    }
    println!("{header}");
    println!(
        "|---|---|---|---|---|---|---|{}",
        if stats { "---|---|" } else { "" }
    );

    for bench in Bench::ALL {
        let large = true;
        let rpw = 4;
        let base_cfg = machine(scale, 1, None, 0);
        let base = checked(
            bench.run_versioned(base_cfg.clone(), scale, large, rpw),
            bench.name(),
        );
        out.push(report(
            "fig7",
            bench.name(),
            "versioned-1c",
            &base_cfg,
            scale,
            &base,
        ));
        let mut cells = Vec::new();
        let mut at32 = None;
        for cores in CORE_COUNTS {
            let cfg = machine(scale, cores, None, 0);
            let par = checked(
                bench.run_versioned(cfg.clone(), scale, large, rpw),
                bench.name(),
            );
            out.push(report(
                "fig7",
                bench.name(),
                &format!("versioned-{cores}c"),
                &cfg,
                scale,
                &par,
            ));
            cells.push(f2(base.cycles as f64 / par.cycles as f64));
            if cores == 32 {
                at32 = Some(par);
            }
        }
        let par = at32.expect("ran 32");
        let mut row = format!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            bench.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            f2(par.cpu.work_imbalance()),
            f2(par.cpu.stall_imbalance()),
        );
        if stats {
            row.push_str(&format!(
                " {} | {} |",
                pct(par.mem.l1_hit_rate()),
                pct(par.cpu.versioned_stall_rate()),
            ));
        }
        println!("{row}");
    }
    println!();
}
