//! The invocation's live observability plane.
//!
//! `--metrics-addr <host:port>` arms three cooperating pieces for the
//! duration of the process:
//!
//! * a **shared collector** that folds every instrumented layer into one
//!   point-in-time [`Registry`]: the jobq pool (`osim_jobq_*`), the
//!   concurrent store's process-global hot-path counters (`osim_store_*`),
//!   the vacuum roll-up (`osim_vacuum_*`), and the run cache
//!   (`osim_cache_*` — the armed `--cache` store when present, always the
//!   heartbeat canary below);
//! * a [`FlightRecorder`] sampling that collector on a fixed cadence into
//!   a bounded ring of per-window deltas (served as `/window`);
//! * a [`MetricsServer`] — the std-only scrape endpoint (`/metrics`,
//!   `/metrics.json`, `/window`).
//!
//! **Heartbeat canary.** The figure workloads run on the *simulated*
//! machine; nothing in a sweep touches `ostructs-core` or a `TextStore`
//! unless `--cache` is armed. So that every scrape of a long-running
//! invocation shows all four layers *live* (non-zero and moving between
//! two scrapes), each collector tick drives one real operation through
//! each layer: a versioned store into a canary `OCell`, a pin/unpin and a
//! vacuum pass against a private `ReaderRegistry`, and a memory-tier
//! cache probe. These exercise the genuine instrumented code paths — the
//! numbers are real measurements of real (tiny) work, not synthetic
//! gauges — and the canary's registries are process-global, so workload
//! activity (when present) lands in the same families.
//!
//! Everything here lives in a process-wide [`OnceLock`] and is never torn
//! down: `stress` and `compare` leave via `std::process::exit`, and the
//! sampler/accept threads must stay scrape-able until the very end. With
//! the flag absent (`off`) nothing is constructed, no thread starts, and
//! no byte of output changes.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use osim_jobq::{CacheKey, TextStore};
use osim_metrics::flight::Collector;
use osim_metrics::{FlightCfg, FlightRecorder, Registry};
use osim_serve::{MetricsServer, WindowSource};
use ostructs_core::vacuum::{ReaderRegistry, Vacuum, VacuumCfg};
use ostructs_core::OCell;

/// Key of the canary cache entry (an arbitrary fixed tag; the canary
/// store is memory-only and private to the plane).
const CANARY_KEY: CacheKey = CacheKey(0x0b5e_4ab1_e000_ca11_ab1e_0000_0000_0001);

/// One real operation per layer per collector tick; see the module docs.
struct Heartbeat {
    registry: ReaderRegistry,
    vacuum: Vacuum,
    canary: OCell<u64>,
    cache: TextStore,
}

impl Heartbeat {
    fn new() -> Self {
        let registry = ReaderRegistry::new();
        // The plane drives passes from collector ticks; the background
        // cadence is parked far out so it never double-fires.
        let vacuum = Vacuum::start(
            registry.clone(),
            VacuumCfg {
                interval: Duration::from_secs(3600),
            },
        );
        let canary = OCell::with_initial(0, 0u64);
        vacuum.track(&canary);
        let cache = TextStore::memory();
        cache.put(&CANARY_KEY, "heartbeat");
        Heartbeat {
            registry,
            vacuum,
            canary,
            cache,
        }
    }

    fn tick(&self) {
        let v = self.registry.next_version();
        let _ = self.canary.store_version(v, v);
        drop(self.registry.pin());
        self.vacuum.run_pass();
        let _ = self.cache.get(&CANARY_KEY);
    }

    fn fill(&self, reg: &mut Registry) {
        self.vacuum.fill_registry(reg);
        self.cache.fill_registry(reg);
    }
}

/// The armed plane; held (never dropped) in a process-wide static. The
/// recorder handle is retained purely to keep the sampler alive — and
/// joinable by anyone who later grows a shutdown path.
struct Plane {
    _recorder: Arc<FlightRecorder>,
}

fn plane_slot() -> &'static OnceLock<Plane> {
    static PLANE: OnceLock<Plane> = OnceLock::new();
    &PLANE
}

/// The one collector every consumer (sampler, scrape routes) shares.
fn collector(hb: Arc<Heartbeat>) -> Collector {
    Arc::new(move |reg: &mut Registry| {
        hb.tick();
        osim_jobq::fill_live_registry(reg);
        ostructs_core::fill_store_registry(reg);
        ostructs_core::fill_vacuum_registry(reg);
        if let Some(store) = crate::runner::cache_store() {
            store.fill_registry(reg);
        }
        hb.fill(reg);
    })
}

/// Arms the plane on `spec` (a `host:port`; port 0 binds ephemeral).
/// Announces the bound address on stderr — stdout stays byte-identical.
/// Exits with code 2 when the address cannot be bound: a user who asked
/// for a scrape endpoint must not silently run without one.
pub fn arm(spec: &str) {
    let hb = Arc::new(Heartbeat::new());
    let collect = collector(hb);
    let recorder = match FlightRecorder::start(FlightCfg::default(), Arc::clone(&collect)) {
        Ok(r) => Arc::new(r),
        Err(e) => {
            eprintln!("--metrics-addr: cannot start flight recorder: {e}");
            std::process::exit(2);
        }
    };
    let window: WindowSource = {
        let recorder = Arc::clone(&recorder);
        Arc::new(move || recorder.window_json())
    };
    let server = match MetricsServer::start(spec, collect, window) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("--metrics-addr {spec}: cannot bind: {e}");
            std::process::exit(2);
        }
    };
    eprintln!("metrics: listening on http://{}/metrics", server.addr());
    // The server must outlive `main` (stress/compare exit the process
    // directly); parking it in the static disables its Drop-stop.
    std::mem::forget(server);
    let _ = plane_slot().set(Plane {
        _recorder: recorder,
    });
}

/// Where `--host-chrome` output goes, once armed.
fn host_chrome_slot() -> &'static Mutex<Option<String>> {
    static PATH: Mutex<Option<String>> = Mutex::new(None);
    &PATH
}

/// Arms host-thread span collection, to be written to `path` by
/// [`host_chrome_flush`].
pub fn host_chrome_arm(path: String) {
    *host_chrome_slot().lock().unwrap_or_else(|e| e.into_inner()) = Some(path);
    osim_metrics::host_trace_arm(true);
}

/// Drains collected host spans into the armed `--host-chrome` file. No-op
/// when the flag is absent. Called at the end of `main` and before every
/// `std::process::exit` a subcommand performs, whichever comes first.
pub fn host_chrome_flush() {
    let path = host_chrome_slot()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take();
    let Some(path) = path else {
        return;
    };
    osim_metrics::host_trace_arm(false);
    let spans = osim_metrics::host_trace_drain();
    let doc = osim_report::host_trace_doc(&spans);
    if let Err(e) = std::fs::write(&path, doc.to_pretty()) {
        eprintln!("cannot write --host-chrome output {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote host trace ({} span(s)) to {path}", spans.len());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heartbeat_moves_all_four_layers() {
        let hb = Heartbeat::new();
        let mut before = Registry::new();
        osim_jobq::fill_live_registry(&mut before);
        ostructs_core::fill_store_registry(&mut before);
        ostructs_core::fill_vacuum_registry(&mut before);
        hb.fill(&mut before);

        for _ in 0..3 {
            hb.tick();
        }

        let mut after = Registry::new();
        osim_jobq::fill_live_registry(&mut after);
        ostructs_core::fill_store_registry(&mut after);
        ostructs_core::fill_vacuum_registry(&mut after);
        hb.fill(&mut after);

        // Store, vacuum and cache counters all advanced. (The jobq family
        // is driven by real sweep jobs, not the heartbeat; other tests in
        // this binary exercise it.)
        assert!(
            after.counter("osim_store_snapshot_publish_total", &[])
                >= before.counter("osim_store_snapshot_publish_total", &[]) + 3
        );
        assert!(
            after.counter("osim_vacuum_passes_total", &[])
                >= before.counter("osim_vacuum_passes_total", &[]) + 3
        );
        assert!(
            after.counter("osim_cache_hits_total", &[])
                >= before.counter("osim_cache_hits_total", &[]) + 3
        );
        assert!(after.counter("ostructs_vacuum_passes_total", &[]) >= 3);
    }

    #[test]
    fn collector_is_shareable_and_fills_every_family() {
        let collect = collector(Arc::new(Heartbeat::new()));
        let mut reg = Registry::new();
        collect(&mut reg);
        let text = reg.to_prometheus();
        for family in ["osim_jobq_", "osim_store_", "osim_vacuum_", "osim_cache_"] {
            assert!(text.contains(family), "missing {family} in:\n{text}");
        }
    }
}
