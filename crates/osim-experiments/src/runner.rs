//! Sweep execution on the shared `osim-jobq` queue.
//!
//! The worker pool that used to live here (as `pool.rs`) is now the
//! generic [`osim_jobq`] crate; this module keeps the sweep-specific
//! surface: [`SweepJob`]s carry the figure/benchmark/tag labels and the
//! exact [`MachineCfg`] the renderer needs, and — new with the run cache —
//! a [`CacheKey`] derived from the fully-rendered job configuration (see
//! [`crate::runcache`]). When an invocation arms a cache directory via
//! `--cache`, [`run_jobs`] probes it before simulating: hits decode the
//! stored schema-v5 entry back into a [`DsResult`] that is
//! indistinguishable from a fresh run, so every rendered table and
//! `--json` byte stays identical; misses simulate and store.
//!
//! Ordering, determinism and telemetry semantics are unchanged from the
//! PR-3/PR-6 pool: results return in submission order whatever the worker
//! count, and `--progress`/`--sweep-json` observe wall-clock only on
//! stderr/side files.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use osim_cpu::MachineCfg;
use osim_jobq::{CacheKey, Job, ResultCache, RunCfg, TextStore};
use osim_workloads::harness::DsResult;

use crate::common::Scale;
use crate::runcache::{self, BatchCache, JobCtx};

pub use osim_jobq::{drain_telemetry, set_progress};

/// One simulator run of a sweep: the closure that performs it plus the
/// labels and machine configuration the renderer needs to report it.
pub struct SweepJob {
    /// Experiment the job belongs to (`"fig6"`, `"gc"`, …).
    pub fig: &'static str,
    /// Benchmark display name (the paper's figure labels).
    pub bench: &'static str,
    /// Variant tag, exactly as it appears in the emitted [`SimReport`]s.
    pub tag: String,
    /// The machine configuration the run is launched with.
    pub cfg: MachineCfg,
    /// Content hash of the fully-rendered job configuration; `None`
    /// bypasses the run cache even when one is armed.
    pub key: Option<CacheKey>,
    /// Report-form scale, needed to rebuild the embedded report on store.
    rscale: osim_report::ReportScale,
    /// Performs the run. Builds its machine from a clone of `cfg`.
    pub run: Box<dyn FnOnce() -> DsResult + Send>,
}

impl SweepJob {
    /// A job running `f` on (a clone of) `cfg`, cacheable under the key of
    /// its fully-rendered configuration.
    pub fn new(
        fig: &'static str,
        bench: &'static str,
        tag: String,
        scale: &Scale,
        cfg: MachineCfg,
        f: impl FnOnce(MachineCfg) -> DsResult + Send + 'static,
    ) -> Self {
        let job_cfg = cfg.clone();
        let key = Some(runcache::job_key(fig, bench, &tag, &cfg, scale));
        SweepJob {
            fig,
            bench,
            tag,
            cfg,
            key,
            rscale: scale.report(),
            run: Box::new(move || f(job_cfg)),
        }
    }

    /// Opts this job out of the run cache. Used where a cached answer
    /// would defeat the point — e.g. the stress harness's flipped-scheduler
    /// recheck, which must actually re-execute under the other scheduler
    /// (the scheduler is host-only and deliberately *not* part of the key).
    pub fn uncached(mut self) -> Self {
        self.key = None;
        self
    }

    fn label(&self) -> String {
        format!("{}/{}/{}", self.fig, self.bench, self.tag)
    }
}

/// A completed [`SweepJob`]: its labels and configuration plus the result.
pub struct SweepRun {
    /// Experiment the job belonged to.
    pub fig: &'static str,
    /// Benchmark display name.
    pub bench: &'static str,
    /// Variant tag.
    pub tag: String,
    /// The machine configuration the run was launched with.
    pub cfg: MachineCfg,
    /// The workload's result.
    pub result: DsResult,
    /// `true` when the result was decoded from the run cache.
    pub cache_hit: bool,
}

fn cache_slot() -> &'static Mutex<Option<Arc<TextStore>>> {
    static C: OnceLock<Mutex<Option<Arc<TextStore>>>> = OnceLock::new();
    C.get_or_init(|| Mutex::new(None))
}

/// Arms (or disarms, with `None`) the invocation-wide run cache used by
/// subsequent [`run_jobs`] batches.
pub fn set_cache(store: Option<Arc<TextStore>>) {
    *cache_slot().lock().expect("cache slot poisoned") = store;
}

/// The currently armed run-cache store, if any.
pub fn cache_store() -> Option<Arc<TextStore>> {
    cache_slot().lock().expect("cache slot poisoned").clone()
}

/// Deterministic engine counters surfaced in `--sweep-json`.
fn engine_counters(r: &DsResult) -> (u64, u64) {
    (r.engine.events_dispatched, r.engine.stale_events)
}

/// Runs `jobs` on up to `threads` workers, returning results in submission
/// order; see [`osim_jobq::run_jobs`] for the ordering/backpressure
/// contract and [`crate::runcache`] for what a cache hit means.
pub fn run_jobs(jobs: Vec<SweepJob>, threads: usize) -> Vec<SweepRun> {
    let store = cache_store();
    let mut metas: Vec<(&'static str, &'static str, String, MachineCfg)> =
        Vec::with_capacity(jobs.len());
    let mut queue_jobs: Vec<Job<DsResult>> = Vec::with_capacity(jobs.len());
    let mut ctx: HashMap<CacheKey, JobCtx> = HashMap::new();
    for job in jobs {
        let label = job.label();
        let SweepJob {
            fig,
            bench,
            tag,
            cfg,
            key,
            rscale,
            run,
        } = job;
        let key = if store.is_some() { key } else { None };
        if let Some(k) = key {
            ctx.insert(
                k,
                JobCtx {
                    fig,
                    bench,
                    tag: tag.clone(),
                    cfg: cfg.clone(),
                    rscale,
                },
            );
        }
        metas.push((fig, bench, tag, cfg));
        queue_jobs.push(Job { label, key, run });
    }
    let cache: Option<Arc<dyn ResultCache<DsResult>>> =
        store.map(|s| Arc::new(BatchCache::new(s, ctx)) as Arc<dyn ResultCache<DsResult>>);
    let outcomes = osim_jobq::run_jobs(
        queue_jobs,
        RunCfg {
            threads,
            cache,
            counters: engine_counters,
        },
    );
    metas
        .into_iter()
        .zip(outcomes)
        .map(|((fig, bench, tag, cfg), o)| SweepRun {
            fig,
            bench,
            tag,
            cfg,
            result: o.result,
            cache_hit: o.cache_hit,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use osim_cpu::MachineCfg;
    use osim_workloads::harness::DsCfg;
    use osim_workloads::linked_list;

    fn tiny_jobs(n: usize) -> Vec<SweepJob> {
        let scale = Scale::tiny();
        (0..n)
            .map(|i| {
                let cfg = MachineCfg::paper(1 + i % 2);
                let ds = DsCfg {
                    initial: 8,
                    ops: 8,
                    reads_per_write: 1,
                    scan_range: 0,
                    key_space: 32,
                    seed: 7 + i as u64,
                    insert_only: false,
                };
                SweepJob::new(
                    "test",
                    "Linked list",
                    format!("job{i}"),
                    &scale,
                    cfg,
                    move |m| linked_list::run_versioned(m, &ds),
                )
            })
            .collect()
    }

    #[test]
    fn parallel_results_match_serial_in_order_and_value() {
        let serial = run_jobs(tiny_jobs(5), 1);
        let parallel = run_jobs(tiny_jobs(5), 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.tag, p.tag);
            assert_eq!(s.result.cycles, p.result.cycles, "{}", s.tag);
            assert_eq!(s.result.ok, p.result.ok);
        }
    }

    #[test]
    fn zero_and_one_thread_run_inline() {
        assert_eq!(run_jobs(tiny_jobs(2), 0).len(), 2);
        assert_eq!(run_jobs(Vec::new(), 8).len(), 0);
    }

    #[test]
    fn telemetry_records_every_job() {
        let n = 4;
        let runs = run_jobs(tiny_jobs(n), 2);
        assert_eq!(runs.len(), n);
        // The accumulator is process-global and other tests run
        // concurrently in this binary, so assert on lower bounds and on
        // this test's own labels rather than exact totals.
        let t = drain_telemetry();
        assert!(t.batches >= 1);
        assert!(t.wall_ms >= 0.0);
        let mine: Vec<&osim_jobq::JobTiming> = t
            .jobs
            .iter()
            .filter(|j| j.label.starts_with("test/Linked list/job"))
            .collect();
        assert!(mine.len() >= n, "{} timed jobs", mine.len());
        for j in mine {
            assert!(j.run_ms >= 0.0 && j.queue_ms >= 0.0, "{}", j.label);
            assert!(j.events_dispatched > 0, "{}", j.label);
        }
        assert!(!t.utilization().is_empty());
        assert!((0.0..=1.0).contains(&t.stale_rate()));
    }
}
