//! Deterministic parallel execution of sweep jobs.
//!
//! Every experiment module first *plans* its sweep — a flat, ordered list
//! of [`SweepJob`]s — and only then *renders* its tables from the results.
//! The split lets the runs execute on a worker pool: each simulated machine
//! is built, run and torn down entirely inside one worker thread (a
//! `Machine` is `Rc`-based and never crosses threads), while results land
//! in slots indexed by submission order. Rendering consumes the slots in
//! that order, so stdout and the `--json` report stream are byte-identical
//! to a serial run regardless of worker count or completion order.
//!
//! The pool is additionally *instrumented*: every batch records per-job
//! queue wait and run wall time, the worker that executed it, and its
//! engine stale-event counters into a process-wide [`SweepTelemetry`]
//! accumulator (drained by `--sweep-json`). With [`set_progress`] armed a
//! live status line — jobs queued/running/done, ETA, per-worker state —
//! is maintained on **stderr**, so stdout and the `--json` stream stay
//! byte-identical whatever the host timing does.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use osim_cpu::MachineCfg;
use osim_workloads::harness::DsResult;

/// One simulator run of a sweep: the closure that performs it plus the
/// labels and machine configuration the renderer needs to report it.
pub struct SweepJob {
    /// Experiment the job belongs to (`"fig6"`, `"gc"`, …).
    pub fig: &'static str,
    /// Benchmark display name (the paper's figure labels).
    pub bench: &'static str,
    /// Variant tag, exactly as it appears in the emitted [`SimReport`]s.
    pub tag: String,
    /// The machine configuration the run is launched with.
    pub cfg: MachineCfg,
    /// Performs the run. Builds its machine from a clone of `cfg`.
    pub run: Box<dyn FnOnce() -> DsResult + Send>,
}

impl SweepJob {
    /// A job running `f` on (a clone of) `cfg`.
    pub fn new(
        fig: &'static str,
        bench: &'static str,
        tag: String,
        cfg: MachineCfg,
        f: impl FnOnce(MachineCfg) -> DsResult + Send + 'static,
    ) -> Self {
        let job_cfg = cfg.clone();
        SweepJob {
            fig,
            bench,
            tag,
            cfg,
            run: Box::new(move || f(job_cfg)),
        }
    }
}

/// A completed [`SweepJob`]: its labels and configuration plus the result.
pub struct SweepRun {
    /// Experiment the job belonged to.
    pub fig: &'static str,
    /// Benchmark display name.
    pub bench: &'static str,
    /// Variant tag.
    pub tag: String,
    /// The machine configuration the run was launched with.
    pub cfg: MachineCfg,
    /// The workload's result.
    pub result: DsResult,
}

/// Host-side timing of one executed job. Everything in here is wall-clock
/// and therefore nondeterministic — it must never leak into a
/// [`osim_report::SimReport`]; it is only surfaced through `--sweep-json`.
#[derive(Debug, Clone)]
pub struct JobTiming {
    /// `fig/bench/tag` label of the job.
    pub label: String,
    /// Milliseconds between batch submission and the job starting.
    pub queue_ms: f64,
    /// Milliseconds the job ran for.
    pub run_ms: f64,
    /// Worker index (0 for the inline path).
    pub worker: usize,
    /// Engine events the run dispatched (simulated-side, deterministic).
    pub events_dispatched: u64,
    /// Stale wakeups the engine skipped.
    pub stale_events: u64,
}

/// Accumulated pool telemetry for the whole process: one entry per job
/// across every `run_jobs` batch the invocation executed.
#[derive(Debug, Clone, Default)]
pub struct SweepTelemetry {
    /// `run_jobs` batches executed.
    pub batches: u64,
    /// Sum of batch wall times, in milliseconds.
    pub wall_ms: f64,
    /// Per-worker busy time (ms), indexed by worker id.
    pub busy_ms: Vec<f64>,
    /// Per-job host-side timings, in completion-recording order.
    pub jobs: Vec<JobTiming>,
}

impl SweepTelemetry {
    /// Total stale-event rate across every job (0 when nothing dispatched).
    pub fn stale_rate(&self) -> f64 {
        let dispatched: u64 = self.jobs.iter().map(|j| j.events_dispatched).sum();
        let stale: u64 = self.jobs.iter().map(|j| j.stale_events).sum();
        if dispatched == 0 {
            0.0
        } else {
            stale as f64 / dispatched as f64
        }
    }

    /// Per-worker utilization: busy time over accumulated batch wall time.
    pub fn utilization(&self) -> Vec<f64> {
        self.busy_ms
            .iter()
            .map(|&b| {
                if self.wall_ms > 0.0 {
                    b / self.wall_ms
                } else {
                    0.0
                }
            })
            .collect()
    }
}

static PROGRESS: AtomicBool = AtomicBool::new(false);

fn telemetry() -> &'static Mutex<SweepTelemetry> {
    static T: OnceLock<Mutex<SweepTelemetry>> = OnceLock::new();
    T.get_or_init(|| Mutex::new(SweepTelemetry::default()))
}

/// Arms (or disarms) the live stderr progress line for subsequent batches.
pub fn set_progress(on: bool) {
    PROGRESS.store(on, Ordering::Relaxed);
}

/// Takes the telemetry accumulated so far, leaving the accumulator empty.
pub fn drain_telemetry() -> SweepTelemetry {
    std::mem::take(&mut *telemetry().lock().expect("telemetry mutex poisoned"))
}

/// Shared progress state of one in-flight batch.
struct Progress {
    started: Instant,
    total: usize,
    done: AtomicUsize,
    /// What each worker is currently running (`None` = idle).
    current: Vec<Mutex<Option<String>>>,
}

impl Progress {
    fn new(total: usize, workers: usize) -> Self {
        Progress {
            started: Instant::now(),
            total,
            done: AtomicUsize::new(0),
            current: (0..workers).map(|_| Mutex::new(None)).collect(),
        }
    }

    fn begin(&self, worker: usize, label: &str) {
        *self.current[worker]
            .lock()
            .expect("progress mutex poisoned") = Some(label.to_string());
        self.render();
    }

    fn finish(&self, worker: usize) {
        self.done.fetch_add(1, Ordering::Relaxed);
        *self.current[worker]
            .lock()
            .expect("progress mutex poisoned") = None;
        self.render();
    }

    fn render(&self) {
        if !PROGRESS.load(Ordering::Relaxed) {
            return;
        }
        let done = self.done.load(Ordering::Relaxed);
        let mut running = 0usize;
        let mut states = String::new();
        for (i, slot) in self.current.iter().enumerate() {
            let cur = slot.lock().expect("progress mutex poisoned");
            match cur.as_deref() {
                Some(label) => {
                    running += 1;
                    states.push_str(&format!(" w{i}:{label}"));
                }
                None => states.push_str(&format!(" w{i}:idle")),
            }
        }
        let queued = self.total - done - running;
        let elapsed = self.started.elapsed().as_secs_f64();
        let eta = if done > 0 {
            format!("{:.1}s", elapsed / done as f64 * (self.total - done) as f64)
        } else {
            "?".to_string()
        };
        // \r keeps it a single live line; \x1b[K clears the tail of a
        // longer previous render.
        eprint!(
            "\r[sweep] {done}/{} done, {running} running, {queued} queued, eta {eta} |{states}\x1b[K",
            self.total
        );
    }

    fn close(&self) {
        if PROGRESS.load(Ordering::Relaxed) {
            eprintln!();
        }
    }
}

fn exec(job: SweepJob) -> SweepRun {
    let SweepJob {
        fig,
        bench,
        tag,
        cfg,
        run,
    } = job;
    SweepRun {
        fig,
        bench,
        tag,
        cfg,
        result: run(),
    }
}

/// Runs one job under the batch's progress/telemetry instrumentation.
fn exec_timed(job: SweepJob, worker: usize, batch_start: Instant, progress: &Progress) -> SweepRun {
    let label = format!("{}/{}/{}", job.fig, job.bench, job.tag);
    progress.begin(worker, &label);
    let queue_ms = batch_start.elapsed().as_secs_f64() * 1e3;
    let started = Instant::now();
    let run = exec(job);
    let run_ms = started.elapsed().as_secs_f64() * 1e3;
    progress.finish(worker);
    let mut t = telemetry().lock().expect("telemetry mutex poisoned");
    if t.busy_ms.len() <= worker {
        t.busy_ms.resize(worker + 1, 0.0);
    }
    t.busy_ms[worker] += run_ms;
    t.jobs.push(JobTiming {
        label,
        queue_ms,
        run_ms,
        worker,
        events_dispatched: run.result.engine.events_dispatched,
        stale_events: run.result.engine.stale_events,
    });
    run
}

/// Runs `jobs` on up to `threads` workers, returning results in submission
/// order. `threads <= 1` executes inline on the calling thread (the serial
/// reference behaviour); either way the returned order — and therefore
/// everything rendered from it — is identical.
pub fn run_jobs(jobs: Vec<SweepJob>, threads: usize) -> Vec<SweepRun> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let batch_start = Instant::now();
    let out = if threads <= 1 || n <= 1 {
        let progress = Progress::new(n, 1);
        let runs = jobs
            .into_iter()
            .map(|j| exec_timed(j, 0, batch_start, &progress))
            .collect();
        progress.close();
        runs
    } else {
        // Hand-rolled fan-out: a shared cursor deals jobs to workers in index
        // order; each finished run is stored in its own slot. No job or result
        // is ever shared between two threads, and slot `i` always holds job
        // `i`'s result, whatever the completion order was.
        let workers = threads.min(n);
        let progress = Progress::new(n, workers);
        let cursor = AtomicUsize::new(0);
        let pending: Vec<Mutex<Option<SweepJob>>> =
            jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
        let slots: Vec<Mutex<Option<SweepRun>>> = (0..n).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for w in 0..workers {
                let progress = &progress;
                let cursor = &cursor;
                let pending = &pending;
                let slots = &slots;
                s.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let job = pending[i]
                        .lock()
                        .expect("job mutex poisoned")
                        .take()
                        .expect("each job index is claimed exactly once");
                    let done = exec_timed(job, w, batch_start, progress);
                    *slots[i].lock().expect("slot mutex poisoned") = Some(done);
                });
            }
        });
        progress.close();
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot mutex poisoned")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    };
    let mut t = telemetry().lock().expect("telemetry mutex poisoned");
    t.batches += 1;
    t.wall_ms += batch_start.elapsed().as_secs_f64() * 1e3;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use osim_cpu::MachineCfg;
    use osim_workloads::harness::DsCfg;
    use osim_workloads::linked_list;

    fn tiny_jobs(n: usize) -> Vec<SweepJob> {
        (0..n)
            .map(|i| {
                let cfg = MachineCfg::paper(1 + i % 2);
                let ds = DsCfg {
                    initial: 8,
                    ops: 8,
                    reads_per_write: 1,
                    scan_range: 0,
                    key_space: 32,
                    seed: 7 + i as u64,
                    insert_only: false,
                };
                SweepJob::new("test", "Linked list", format!("job{i}"), cfg, move |m| {
                    linked_list::run_versioned(m, &ds)
                })
            })
            .collect()
    }

    #[test]
    fn parallel_results_match_serial_in_order_and_value() {
        let serial = run_jobs(tiny_jobs(5), 1);
        let parallel = run_jobs(tiny_jobs(5), 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.tag, p.tag);
            assert_eq!(s.result.cycles, p.result.cycles, "{}", s.tag);
            assert_eq!(s.result.ok, p.result.ok);
        }
    }

    #[test]
    fn zero_and_one_thread_run_inline() {
        assert_eq!(run_jobs(tiny_jobs(2), 0).len(), 2);
        assert_eq!(run_jobs(Vec::new(), 8).len(), 0);
    }

    #[test]
    fn telemetry_records_every_job() {
        let n = 4;
        let runs = run_jobs(tiny_jobs(n), 2);
        assert_eq!(runs.len(), n);
        // The accumulator is process-global and other tests run
        // concurrently in this binary, so assert on lower bounds and on
        // this test's own labels rather than exact totals.
        let t = drain_telemetry();
        assert!(t.batches >= 1);
        assert!(t.wall_ms >= 0.0);
        let mine: Vec<&JobTiming> = t
            .jobs
            .iter()
            .filter(|j| j.label.starts_with("test/Linked list/job"))
            .collect();
        assert!(mine.len() >= n, "{} timed jobs", mine.len());
        for j in mine {
            assert!(j.run_ms >= 0.0 && j.queue_ms >= 0.0, "{}", j.label);
            assert!(j.events_dispatched > 0, "{}", j.label);
        }
        assert!(!t.utilization().is_empty());
        assert!((0.0..=1.0).contains(&t.stale_rate()));
    }
}
