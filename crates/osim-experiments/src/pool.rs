//! Deterministic parallel execution of sweep jobs.
//!
//! Every experiment module first *plans* its sweep — a flat, ordered list
//! of [`SweepJob`]s — and only then *renders* its tables from the results.
//! The split lets the runs execute on a worker pool: each simulated machine
//! is built, run and torn down entirely inside one worker thread (a
//! `Machine` is `Rc`-based and never crosses threads), while results land
//! in slots indexed by submission order. Rendering consumes the slots in
//! that order, so stdout and the `--json` report stream are byte-identical
//! to a serial run regardless of worker count or completion order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use osim_cpu::MachineCfg;
use osim_workloads::harness::DsResult;

/// One simulator run of a sweep: the closure that performs it plus the
/// labels and machine configuration the renderer needs to report it.
pub struct SweepJob {
    /// Experiment the job belongs to (`"fig6"`, `"gc"`, …).
    pub fig: &'static str,
    /// Benchmark display name (the paper's figure labels).
    pub bench: &'static str,
    /// Variant tag, exactly as it appears in the emitted [`SimReport`]s.
    pub tag: String,
    /// The machine configuration the run is launched with.
    pub cfg: MachineCfg,
    /// Performs the run. Builds its machine from a clone of `cfg`.
    pub run: Box<dyn FnOnce() -> DsResult + Send>,
}

impl SweepJob {
    /// A job running `f` on (a clone of) `cfg`.
    pub fn new(
        fig: &'static str,
        bench: &'static str,
        tag: String,
        cfg: MachineCfg,
        f: impl FnOnce(MachineCfg) -> DsResult + Send + 'static,
    ) -> Self {
        let job_cfg = cfg.clone();
        SweepJob {
            fig,
            bench,
            tag,
            cfg,
            run: Box::new(move || f(job_cfg)),
        }
    }
}

/// A completed [`SweepJob`]: its labels and configuration plus the result.
pub struct SweepRun {
    /// Experiment the job belonged to.
    pub fig: &'static str,
    /// Benchmark display name.
    pub bench: &'static str,
    /// Variant tag.
    pub tag: String,
    /// The machine configuration the run was launched with.
    pub cfg: MachineCfg,
    /// The workload's result.
    pub result: DsResult,
}

fn exec(job: SweepJob) -> SweepRun {
    let SweepJob {
        fig,
        bench,
        tag,
        cfg,
        run,
    } = job;
    SweepRun {
        fig,
        bench,
        tag,
        cfg,
        result: run(),
    }
}

/// Runs `jobs` on up to `threads` workers, returning results in submission
/// order. `threads <= 1` executes inline on the calling thread (the serial
/// reference behaviour); either way the returned order — and therefore
/// everything rendered from it — is identical.
pub fn run_jobs(jobs: Vec<SweepJob>, threads: usize) -> Vec<SweepRun> {
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(exec).collect();
    }
    // Hand-rolled fan-out: a shared cursor deals jobs to workers in index
    // order; each finished run is stored in its own slot. No job or result
    // is ever shared between two threads, and slot `i` always holds job
    // `i`'s result, whatever the completion order was.
    let cursor = AtomicUsize::new(0);
    let pending: Vec<Mutex<Option<SweepJob>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<SweepRun>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = pending[i]
                    .lock()
                    .expect("job mutex poisoned")
                    .take()
                    .expect("each job index is claimed exactly once");
                let done = exec(job);
                *slots[i].lock().expect("slot mutex poisoned") = Some(done);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("slot mutex poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use osim_cpu::MachineCfg;
    use osim_workloads::harness::DsCfg;
    use osim_workloads::linked_list;

    fn tiny_jobs(n: usize) -> Vec<SweepJob> {
        (0..n)
            .map(|i| {
                let cfg = MachineCfg::paper(1 + i % 2);
                let ds = DsCfg {
                    initial: 8,
                    ops: 8,
                    reads_per_write: 1,
                    scan_range: 0,
                    key_space: 32,
                    seed: 7 + i as u64,
                    insert_only: false,
                };
                SweepJob::new("test", "Linked list", format!("job{i}"), cfg, move |m| {
                    linked_list::run_versioned(m, &ds)
                })
            })
            .collect()
    }

    #[test]
    fn parallel_results_match_serial_in_order_and_value() {
        let serial = run_jobs(tiny_jobs(5), 1);
        let parallel = run_jobs(tiny_jobs(5), 4);
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.tag, p.tag);
            assert_eq!(s.result.cycles, p.result.cycles, "{}", s.tag);
            assert_eq!(s.result.ok, p.result.ok);
        }
    }

    #[test]
    fn zero_and_one_thread_run_inline() {
        assert_eq!(run_jobs(tiny_jobs(2), 0).len(), 2);
        assert_eq!(run_jobs(Vec::new(), 8).len(), 0);
    }
}
