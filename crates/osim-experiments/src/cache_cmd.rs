//! `cache` subcommand: inspect and maintain the on-disk run cache.
//!
//! * `cache stats`  — entry count, total bytes, labels by figure, and the
//!   engine-semantics version entries must match to be usable;
//! * `cache verify` — decode every entry through the same hardened codec
//!   lookups use (schema/semantics checks, `SimReport::validate`
//!   invariants, key-vs-filename match) and print per-entry blame;
//! * `cache clear`  — remove every entry file, leaving foreign files in
//!   the directory untouched.
//!
//! All three take `--json`; `verify` exits 1 when any entry is bad (the
//! bad entries would also just be re-run as misses — `verify` exists so
//! bit rot is *visible*, not because it is dangerous).

use std::collections::BTreeMap;
use std::path::Path;

use osim_jobq::{CacheKey, TextStore};
use osim_report::json::{obj, Json};

use crate::runcache::{decode_entry, ENGINE_SEMANTICS_VERSION};

/// One bad entry: which file, and why the codec rejected it.
struct Blame {
    path: String,
    reason: String,
}

fn file_name(p: &Path) -> String {
    p.file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| p.display().to_string())
}

/// Walks every entry under `dir`, decoding each one. Returns
/// (good entry labels, total bytes, blames).
fn scan(store: &TextStore) -> (Vec<String>, u64, Vec<Blame>) {
    let mut labels = Vec::new();
    let mut bytes = 0u64;
    let mut blames = Vec::new();
    for path in store.disk_entries() {
        let name = file_name(&path);
        // Entries whose stem parses as a key are read through the store
        // itself — the same timed path lookups use — so `stats` can report
        // real read-latency quantiles from the store's histogram. The raw
        // filesystem read stays as the fallback (and as the blame source:
        // `get` collapses every failure to a miss).
        let stem = name.strip_suffix(".json").unwrap_or(&name);
        let via_store = CacheKey::from_hex(stem).and_then(|k| store.get(&k));
        let text = match via_store {
            Some(t) => t.to_string(),
            None => match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    blames.push(Blame {
                        path: name,
                        reason: format!("unreadable: {e}"),
                    });
                    continue;
                }
            },
        };
        bytes += text.len() as u64;
        match decode_entry(&text) {
            Ok(entry) => {
                let stem = name.strip_suffix(".json").unwrap_or(&name);
                if entry.key_hex != stem {
                    blames.push(Blame {
                        path: name,
                        reason: format!("embedded key {} does not match file name", entry.key_hex),
                    });
                } else {
                    labels.push(entry.label);
                }
            }
            Err(reason) => blames.push(Blame { path: name, reason }),
        }
    }
    (labels, bytes, blames)
}

/// Label counts grouped by figure (the `fig/` prefix of each label).
fn by_figure(labels: &[String]) -> BTreeMap<String, u64> {
    let mut m = BTreeMap::new();
    for l in labels {
        let fig = l.split('/').next().unwrap_or("?").to_string();
        *m.entry(fig).or_insert(0u64) += 1;
    }
    m
}

pub fn stats(dir: &Path, json: bool) -> i32 {
    let store = TextStore::at_dir(dir);
    let (labels, bytes, blames) = scan(&store);
    let figs = by_figure(&labels);
    if json {
        // Entry reads above went through the store's timed path; surface
        // the same quantile shape BENCH_cache.json uses.
        let h = store.read_hist();
        let doc = obj(vec![
            ("schema", Json::Str("osim-cache-stats-v1".to_string())),
            ("dir", Json::Str(dir.display().to_string())),
            ("semantics", Json::from_u64(ENGINE_SEMANTICS_VERSION)),
            ("entries", Json::from_u64(labels.len() as u64)),
            ("bad_entries", Json::from_u64(blames.len() as u64)),
            ("bytes", Json::from_u64(bytes)),
            (
                "by_figure",
                Json::Obj(
                    figs.iter()
                        .map(|(k, &v)| (k.clone(), Json::from_u64(v)))
                        .collect(),
                ),
            ),
            (
                "read_ns",
                obj(vec![
                    ("count", Json::from_u64(h.count())),
                    ("p50", Json::from_u64(h.quantile(0.50))),
                    ("p90", Json::from_u64(h.quantile(0.90))),
                    ("p99", Json::from_u64(h.quantile(0.99))),
                ]),
            ),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!(
            "cache {}: {} entries, {} bytes",
            dir.display(),
            labels.len(),
            bytes
        );
        println!("engine semantics version: {ENGINE_SEMANTICS_VERSION}");
        for (fig, n) in &figs {
            println!("  {fig:<8} {n} entries");
        }
        if !blames.is_empty() {
            println!(
                "  {} bad entries (run `cache verify` for blame)",
                blames.len()
            );
        }
    }
    0
}

pub fn verify(dir: &Path, json: bool) -> i32 {
    let store = TextStore::at_dir(dir);
    let (labels, _, blames) = scan(&store);
    if json {
        let doc = obj(vec![
            ("schema", Json::Str("osim-cache-verify-v1".to_string())),
            ("dir", Json::Str(dir.display().to_string())),
            ("good", Json::from_u64(labels.len() as u64)),
            ("bad", Json::from_u64(blames.len() as u64)),
            (
                "blames",
                Json::Arr(
                    blames
                        .iter()
                        .map(|b| {
                            obj(vec![
                                ("path", Json::Str(b.path.clone())),
                                ("reason", Json::Str(b.reason.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", doc.to_pretty());
    } else if blames.is_empty() {
        println!(
            "cache {}: all {} entries decode and validate",
            dir.display(),
            labels.len()
        );
    } else {
        println!(
            "cache {}: {} good, {} BAD",
            dir.display(),
            labels.len(),
            blames.len()
        );
        for b in &blames {
            println!("  BAD {}: {}", b.path, b.reason);
        }
    }
    i32::from(!blames.is_empty())
}

pub fn clear(dir: &Path, json: bool) -> i32 {
    let store = TextStore::at_dir(dir);
    let removed = store.clear();
    if json {
        let doc = obj(vec![
            ("schema", Json::Str("osim-cache-clear-v1".to_string())),
            ("dir", Json::Str(dir.display().to_string())),
            ("removed", Json::from_u64(removed as u64)),
        ]);
        println!("{}", doc.to_pretty());
    } else {
        println!("cache {}: removed {removed} entries", dir.display());
    }
    0
}
