//! Figure 8: snapshot isolation — versioned binary tree vs an unversioned
//! tree protected by a read-write lock.
//!
//! Paper setup: initial tree of 10000, scans and inserts 3:1, scan ranges
//! 1/8/64, 4–32 cores. Expected shape: the versioned tree loses at low
//! core counts (fixed versioning overhead) and wins as cores grow because
//! scans overlap inserts; the paper reports average self-speedups of 12.2
//! (versioned) vs 7.9 (rwlock) and an average versioned advantage of 16%.

use osim_report::SimReport;
use osim_workloads::btree;
use osim_workloads::harness::DsCfg;

use crate::common::{checked, f2, machine, report, Scale};

const CORE_COUNTS: [usize; 4] = [4, 8, 16, 32];
const SCAN_RANGES: [u32; 3] = [1, 8, 64];

fn cfg(scale: &Scale, scan_range: u32) -> DsCfg {
    DsCfg {
        initial: scale.large,
        ops: scale.ops,
        reads_per_write: 3, // 3 scans per insert
        scan_range,
        key_space: scale.large as u32 * 4,
        seed: 0x0f18,
        insert_only: true,
    }
}

pub fn run(scale: &Scale, out: &mut Vec<SimReport>) {
    println!(
        "## Figure 8 — versioned BST vs read-write-lock BST (ratio > 1 means versioned faster)\n"
    );
    println!(
        "scale: {scale:?}; mix: 3 scans : 1 insert, initial {} elements\n",
        scale.large
    );
    println!(
        "| Scan range | 4 | 8 | 16 | 32 | versioned self-speedup @32 | rwlock self-speedup @32 |"
    );
    println!("|---|---|---|---|---|---|---|");

    for range in SCAN_RANGES {
        let c = cfg(scale, range);
        let seq_cfg = machine(scale, 1, None, 0);
        let vseq = checked(btree::run_versioned(seq_cfg.clone(), &c), "bst v1");
        let rseq = checked(btree::run_rwlock(seq_cfg.clone(), &c), "bst rw1");
        out.push(report(
            "fig8",
            "Binary tree",
            &format!("versioned-r{range}-1c"),
            &seq_cfg,
            scale,
            &vseq,
        ));
        out.push(report(
            "fig8",
            "Binary tree",
            &format!("rwlock-r{range}-1c"),
            &seq_cfg,
            scale,
            &rseq,
        ));
        let mut cells = Vec::new();
        let mut self_v = 0.0;
        let mut self_r = 0.0;
        for cores in CORE_COUNTS {
            let mcfg = machine(scale, cores, None, 0);
            let v = checked(btree::run_versioned(mcfg.clone(), &c), "bst v");
            let r = checked(btree::run_rwlock(mcfg.clone(), &c), "bst rw");
            out.push(report(
                "fig8",
                "Binary tree",
                &format!("versioned-r{range}-{cores}c"),
                &mcfg,
                scale,
                &v,
            ));
            out.push(report(
                "fig8",
                "Binary tree",
                &format!("rwlock-r{range}-{cores}c"),
                &mcfg,
                scale,
                &r,
            ));
            cells.push(f2(r.cycles as f64 / v.cycles as f64));
            if cores == 32 {
                self_v = vseq.cycles as f64 / v.cycles as f64;
                self_r = rseq.cycles as f64 / r.cycles as f64;
            }
        }
        println!(
            "| {range} | {} | {} | {} | {} | {} | {} |",
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            f2(self_v),
            f2(self_r)
        );
    }
    println!();
}
