//! Figure 8: snapshot isolation — versioned binary tree vs an unversioned
//! tree protected by a read-write lock.
//!
//! Paper setup: initial tree of 10000, scans and inserts 3:1, scan ranges
//! 1/8/64, 4–32 cores. Expected shape: the versioned tree loses at low
//! core counts (fixed versioning overhead) and wins as cores grow because
//! scans overlap inserts; the paper reports average self-speedups of 12.2
//! (versioned) vs 7.9 (rwlock) and an average versioned advantage of 16%.

use osim_report::SimReport;
use osim_workloads::btree;
use osim_workloads::harness::DsCfg;

use crate::common::{checked_run, f2, machine, report_run, Scale};
use crate::runner::{SweepJob, SweepRun};

const CORE_COUNTS: [usize; 4] = [4, 8, 16, 32];
const SCAN_RANGES: [u32; 3] = [1, 8, 64];

fn cfg(scale: &Scale, scan_range: u32) -> DsCfg {
    DsCfg {
        initial: scale.large,
        ops: scale.ops,
        reads_per_write: 3, // 3 scans per insert
        scan_range,
        key_space: scale.large as u32 * 4,
        seed: 0x0f18,
        insert_only: true,
    }
}

/// The sweep in [`render`] order: per scan range, the single-core
/// (versioned, rwlock) pair, then the same pair at each core count.
pub fn plan(scale: &Scale) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    for range in SCAN_RANGES {
        let c = cfg(scale, range);
        let cv = c.clone();
        jobs.push(SweepJob::new(
            "fig8",
            "Binary tree",
            format!("versioned-r{range}-1c"),
            scale,
            machine(scale, 1, None, 0),
            move |m| btree::run_versioned(m, &cv),
        ));
        let cr = c.clone();
        jobs.push(SweepJob::new(
            "fig8",
            "Binary tree",
            format!("rwlock-r{range}-1c"),
            scale,
            machine(scale, 1, None, 0),
            move |m| btree::run_rwlock(m, &cr),
        ));
        for cores in CORE_COUNTS {
            let cv = c.clone();
            jobs.push(SweepJob::new(
                "fig8",
                "Binary tree",
                format!("versioned-r{range}-{cores}c"),
                scale,
                machine(scale, cores, None, 0),
                move |m| btree::run_versioned(m, &cv),
            ));
            let cr = c.clone();
            jobs.push(SweepJob::new(
                "fig8",
                "Binary tree",
                format!("rwlock-r{range}-{cores}c"),
                scale,
                machine(scale, cores, None, 0),
                move |m| btree::run_rwlock(m, &cr),
            ));
        }
    }
    jobs
}

/// Prints the snapshot-isolation table from completed runs (in [`plan`]
/// order).
pub fn render(scale: &Scale, runs: &[SweepRun], out: &mut Vec<SimReport>) {
    println!(
        "## Figure 8 — versioned BST vs read-write-lock BST (ratio > 1 means versioned faster)\n"
    );
    println!(
        "scale: {scale:?}; mix: 3 scans : 1 insert, initial {} elements\n",
        scale.large
    );
    println!(
        "| Scan range | 4 | 8 | 16 | 32 | versioned self-speedup @32 | rwlock self-speedup @32 |"
    );
    println!("|---|---|---|---|---|---|---|");

    let mut next = runs.iter();
    let mut take = || {
        let run = next.next().expect("plan and render agree on job count");
        checked_run(run);
        out.push(report_run(run, scale));
        run
    };

    for range in SCAN_RANGES {
        let vseq = take();
        let rseq = take();
        let mut cells = Vec::new();
        let mut self_v = 0.0;
        let mut self_r = 0.0;
        for cores in CORE_COUNTS {
            let v = take();
            let r = take();
            cells.push(f2(r.result.cycles as f64 / v.result.cycles as f64));
            if cores == 32 {
                self_v = vseq.result.cycles as f64 / v.result.cycles as f64;
                self_r = rseq.result.cycles as f64 / r.result.cycles as f64;
            }
        }
        println!(
            "| {range} | {} | {} | {} | {} | {} | {} |",
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            f2(self_v),
            f2(self_r)
        );
    }
    println!();
}

pub fn run(scale: &Scale, jobs: usize, out: &mut Vec<SimReport>) {
    let runs = crate::runner::run_jobs(plan(scale), jobs);
    render(scale, &runs, out);
}
