//! Shared experiment plumbing: workload scales, benchmark dispatch, and
//! table formatting.

use osim_cpu::{MachineCfg, SchedulerKind, ShakePolicy};
use osim_mem::CacheCfg;
use osim_report::{ReportScale, SimReport};
use osim_uarch::FaultPlan;
use osim_workloads::harness::{DsCfg, DsResult};

use crate::runner::SweepRun;
use osim_workloads::levenshtein::LevCfg;
use osim_workloads::matmul::MatmulCfg;
use osim_workloads::{btree, hashtable, levenshtein, linked_list, matmul, rbtree};

/// Workload sizes for one harness invocation.
#[derive(Clone, Copy)]
pub struct Scale {
    /// Initial elements of the "small" irregular configurations.
    pub small: usize,
    /// Initial elements of the "large" irregular configurations.
    pub large: usize,
    /// Measured operations per irregular run.
    pub ops: usize,
    /// Matrix dimension.
    pub mat_n: usize,
    /// Levenshtein string length.
    pub lev_len: usize,
    /// Deterministic fault-injection plan applied to every machine the
    /// invocation builds (`--inject <spec>`); `None` injects nothing.
    pub inject: Option<FaultPlan>,
    /// Engine event-queue implementation (`--scheduler <kind>`); purely a
    /// host-speed knob, simulated timing is identical under every kind.
    pub scheduler: SchedulerKind,
    /// Same-cycle tie-break perturbation (`--shake-seed <n>`). Off by
    /// default; a seeded shake deterministically permutes same-cycle
    /// dispatch order, so simulated numbers may differ from the committed
    /// references (the point of the stress harness).
    pub shake: ShakePolicy,
    /// Arm the manager's runtime invariant oracles (the `stress`
    /// subcommand turns this on; adds host-side checking cost only).
    pub oracles: bool,
}

/// Hand-rolled so host-only knobs — the scheduler, the shake policy and
/// the oracle arm bit — stay out of rendered sweep headers, keeping them
/// byte-identical across schedulers and with pre-existing baselines.
/// (Shaken runs may still differ in the *numbers*; the header format is
/// what stays fixed.)
impl std::fmt::Debug for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Scale")
            .field("small", &self.small)
            .field("large", &self.large)
            .field("ops", &self.ops)
            .field("mat_n", &self.mat_n)
            .field("lev_len", &self.lev_len)
            .field("inject", &self.inject)
            .finish()
    }
}

impl Scale {
    /// The paper's sizes (Table/figure captions): slow but faithful.
    pub fn paper() -> Self {
        Scale {
            small: 1000,
            large: 10_000,
            ops: 1024,
            mat_n: 100,
            lev_len: 1000,
            inject: None,
            scheduler: SchedulerKind::default(),
            shake: ShakePolicy::Off,
            oracles: false,
        }
    }

    /// Scaled-down sizes preserving every qualitative effect.
    pub fn quick() -> Self {
        Scale {
            small: 200,
            large: 1000,
            ops: 256,
            mat_n: 28,
            lev_len: 96,
            inject: None,
            scheduler: SchedulerKind::default(),
            shake: ShakePolicy::Off,
            oracles: false,
        }
    }

    /// Minimal sizes for integration tests — every experiment still runs
    /// end-to-end (and validates), but in seconds rather than minutes.
    pub fn tiny() -> Self {
        Scale {
            small: 64,
            large: 128,
            ops: 64,
            mat_n: 8,
            lev_len: 24,
            inject: None,
            scheduler: SchedulerKind::default(),
            shake: ShakePolicy::Off,
            oracles: false,
        }
    }

    /// This scale in report form.
    pub fn report(&self) -> ReportScale {
        ReportScale {
            small: self.small as u64,
            large: self.large as u64,
            ops: self.ops as u64,
            mat_n: self.mat_n as u64,
            lev_len: self.lev_len as u64,
        }
    }

    /// A DsCfg for an irregular benchmark.
    pub fn ds(&self, large: bool, reads_per_write: u32) -> DsCfg {
        let initial = if large { self.large } else { self.small };
        DsCfg {
            initial,
            ops: self.ops,
            reads_per_write,
            scan_range: 0,
            key_space: initial as u32 * 4,
            seed: 0x0511,
            insert_only: false,
        }
    }
}

/// The six benchmarks of the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bench {
    LinkedList,
    BinaryTree,
    HashTable,
    RbTree,
    Levenshtein,
    MatrixMul,
}

impl Bench {
    /// The irregular (data-structure) benchmarks.
    pub const IRREGULAR: [Bench; 4] = [
        Bench::LinkedList,
        Bench::BinaryTree,
        Bench::HashTable,
        Bench::RbTree,
    ];

    /// All six.
    pub const ALL: [Bench; 6] = [
        Bench::LinkedList,
        Bench::BinaryTree,
        Bench::HashTable,
        Bench::RbTree,
        Bench::Levenshtein,
        Bench::MatrixMul,
    ];

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Bench::LinkedList => "Linked list",
            Bench::BinaryTree => "Binary tree",
            Bench::HashTable => "Hash table",
            Bench::RbTree => "R-B tree",
            Bench::Levenshtein => "Levenshtein",
            Bench::MatrixMul => "Matrix mul.",
        }
    }

    /// Runs the versioned variant.
    pub fn run_versioned(
        &self,
        mcfg: MachineCfg,
        scale: &Scale,
        large: bool,
        rpw: u32,
    ) -> DsResult {
        match self {
            Bench::LinkedList => linked_list::run_versioned(mcfg, &scale.ds(large, rpw)),
            Bench::BinaryTree => btree::run_versioned(mcfg, &scale.ds(large, rpw)),
            Bench::HashTable => hashtable::run_versioned(mcfg, &scale.ds(large, rpw)),
            Bench::RbTree => rbtree::run_versioned(mcfg, &scale.ds(large, rpw)),
            Bench::Levenshtein => levenshtein::run_versioned(
                mcfg,
                &LevCfg {
                    len: scale.lev_len,
                    seed: 2,
                },
            ),
            Bench::MatrixMul => matmul::run_versioned(
                mcfg,
                &MatmulCfg {
                    n: scale.mat_n,
                    seed: 1,
                },
            ),
        }
    }

    /// Runs the unversioned sequential baseline.
    pub fn run_unversioned(
        &self,
        mcfg: MachineCfg,
        scale: &Scale,
        large: bool,
        rpw: u32,
    ) -> DsResult {
        match self {
            Bench::LinkedList => linked_list::run_unversioned(mcfg, &scale.ds(large, rpw)),
            Bench::BinaryTree => btree::run_unversioned(mcfg, &scale.ds(large, rpw)),
            Bench::HashTable => hashtable::run_unversioned(mcfg, &scale.ds(large, rpw)),
            Bench::RbTree => rbtree::run_unversioned(mcfg, &scale.ds(large, rpw)),
            Bench::Levenshtein => levenshtein::run_unversioned(
                mcfg,
                &LevCfg {
                    len: scale.lev_len,
                    seed: 2,
                },
            ),
            Bench::MatrixMul => matmul::run_unversioned(
                mcfg,
                &MatmulCfg {
                    n: scale.mat_n,
                    seed: 1,
                },
            ),
        }
    }
}

/// A machine configuration derived from the paper's, with experiment knobs
/// and the invocation's fault-injection plan applied.
pub fn machine(scale: &Scale, cores: usize, l1_kb: Option<u32>, extra_latency: u64) -> MachineCfg {
    let mut cfg = MachineCfg::paper(cores);
    if let Some(kb) = l1_kb {
        cfg.hier.l1 = CacheCfg::l1_sized(kb);
    }
    cfg.omgr.versioned_extra_latency = extra_latency;
    cfg.omgr.fault_plan = scale.inject;
    cfg.omgr.oracles = scale.oracles;
    cfg.scheduler = scale.scheduler;
    cfg.shake = scale.shake;
    cfg
}

/// Prints Table II.
pub fn print_config() {
    println!("## Table II — the experimental platform\n");
    let cfg = MachineCfg::paper(32);
    println!("| Parameter | Value |");
    println!("|---|---|");
    println!(
        "| Processor | {}-way in-order, 2 GHz ({} cores max in these runs) |",
        cfg.issue_width, cfg.cores
    );
    println!(
        "| L1 D-cache | {} KB, {}-way, 64 B lines, {} cycles hit |",
        cfg.hier.l1.size_bytes / 1024,
        cfg.hier.l1.assoc,
        cfg.hier.l1.hit_latency
    );
    println!(
        "| L2 cache | 1.5 MB x cores shared, {}-way, 64 B lines, {} cycles hit |",
        cfg.hier.l2.assoc, cfg.hier.l2.hit_latency
    );
    println!(
        "| Memory | {} cycle latency (60 ns at 2 GHz) |",
        cfg.hier.dram_latency
    );
    println!();
}

/// Builds the [`SimReport`] for one completed sweep run — the job carries
/// the exact machine configuration it was launched with.
pub fn report_run(run: &SweepRun, scale: &Scale) -> SimReport {
    let r = &run.result;
    SimReport::new(
        run.fig,
        run.bench,
        &run.tag,
        &run.cfg,
        scale.report(),
        r.cycles,
        r.cpu.clone(),
        r.mem.clone(),
        r.ostats.clone(),
        r.engine,
        r.hists.clone(),
    )
}

/// Asserts a sweep run validated and returns its result (experiments must
/// never report numbers from an incorrect execution).
pub fn checked_run(run: &SweepRun) -> &DsResult {
    assert!(
        run.result.ok,
        "{}: validation failed: {}",
        run.bench, run.result.detail
    );
    &run.result
}

/// Formats a ratio to two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Percentage formatting.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}
