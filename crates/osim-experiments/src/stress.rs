//! `stress` subcommand: the schedule-shaking robustness harness.
//!
//! The engine's [`osim_cpu::ShakePolicy`] perturbs same-cycle ready-queue
//! tie-breaks from a seeded splitmix64 stream, deterministically exploring
//! event interleavings the default FIFO tie-break never produces. This
//! module fans N such seeds over every figure sweep and checks, for each
//! perturbed run:
//!
//! - the workload's own end-state validation (`DsResult::ok`),
//! - the manager's runtime invariant oracles (lock exclusion, version
//!   monotonicity, GC liveness) armed via [`Scale::oracles`],
//! - report well-formedness (`SimReport::validate`, which includes the
//!   stall-sum exactness invariant),
//! - a cycle-count envelope against the unshaken baseline of the same job
//!   (shaking may legally move timing, but not by integer factors), and
//! - per-seed scheduler equivalence: one job per figure is re-run under
//!   the flipped event-queue implementation and must reproduce the exact
//!   simulated numbers.
//!
//! Every failure prints a one-line *minimal repro* — the exact `stress
//! --fig … --shake-seed … --seeds 1` invocation — plus a blame report, so
//! a CI hit is reproducible locally without rerunning the whole fan-out.
//! Stdout carries no wall-clock quantities; a given seed set prints
//! byte-identically on every host.

use osim_cpu::{SchedulerKind, ShakePolicy};

use crate::common::{report_run, Scale};
use crate::runner::{run_jobs, SweepJob, SweepRun};
use crate::{fig10, fig6, fig7, fig8, fig9, gc};

/// One figure sweep the harness shakes: its name (also the `--fig` filter
/// key) and its plan function.
struct Figure {
    name: &'static str,
    plan: fn(&Scale) -> Vec<SweepJob>,
}

/// Every quick figure of the evaluation. `trace` and `analyze` are
/// excluded: both are single annotated runs whose capture buffers are
/// exercised elsewhere, and neither renders a sweep.
const FIGURES: &[Figure] = &[
    Figure {
        name: "fig6",
        plan: fig6::plan,
    },
    Figure {
        name: "fig7",
        plan: fig7::plan,
    },
    Figure {
        name: "fig8",
        plan: fig8::plan,
    },
    Figure {
        name: "fig9",
        plan: fig9::plan,
    },
    Figure {
        name: "fig10",
        plan: fig10::plan,
    },
    Figure {
        name: "gc",
        plan: gc::plan,
    },
];

/// Returns the figure names the `--fig` filter accepts.
pub fn figure_names() -> Vec<&'static str> {
    FIGURES.iter().map(|f| f.name).collect()
}

/// One detected invariant violation, with everything needed to reproduce
/// and assign blame.
struct Failure {
    fig: &'static str,
    bench: &'static str,
    tag: String,
    /// Shake seed of the failing run; `None` = the unshaken baseline.
    seed: Option<u64>,
    what: String,
}

/// Checks one shaken run against every oracle; returns the failure
/// descriptions (empty = clean).
fn check_run(run: &SweepRun, scale: &Scale, baseline_cycles: u64) -> Vec<String> {
    let mut bad = Vec::new();
    let r = &run.result;
    if !r.ok {
        bad.push(format!("workload validation failed: {}", r.detail));
    }
    match &r.oracle {
        None => bad.push("oracle report missing (oracles were armed)".to_string()),
        Some(o) if !o.ok() => bad.push(format!("invariant oracle: {}", o.summary())),
        Some(_) => {}
    }
    if let Err(e) = report_run(run, scale).validate() {
        bad.push(format!("report validation failed: {e}"));
    }
    // Tie-break perturbation may move contention stalls around, but a
    // shaken run drifting past 2x (either way) from the FIFO baseline
    // means timing went structurally wrong, not just "a different legal
    // interleaving".
    let (lo, hi) = (baseline_cycles / 2, baseline_cycles.saturating_mul(2));
    if r.cycles < lo || r.cycles > hi {
        bad.push(format!(
            "cycles {} outside envelope [{lo}, {hi}] of unshaken baseline {baseline_cycles}",
            r.cycles
        ));
    }
    bad
}

/// Compares the simulated numbers of the same job run under both event
/// queues with the same shake seed (the per-seed scheduler-equivalence
/// guarantee). Host-side quantities are deliberately not compared.
fn check_flip(a: &SweepRun, b: &SweepRun) -> Vec<String> {
    let (x, y) = (&a.result, &b.result);
    let mut bad = Vec::new();
    if x.cycles != y.cycles {
        bad.push(format!(
            "scheduler flip changed cycles: {} vs {}",
            x.cycles, y.cycles
        ));
    }
    if x.engine != y.engine {
        bad.push(format!(
            "scheduler flip changed engine stats: {:?} vs {:?}",
            x.engine, y.engine
        ));
    }
    if x.cpu.instructions != y.cpu.instructions {
        bad.push(format!(
            "scheduler flip changed instruction count: {} vs {}",
            x.cpu.instructions, y.cpu.instructions
        ));
    }
    if (x.ostats.direct_hits, x.ostats.full_lookups)
        != (y.ostats.direct_hits, y.ostats.full_lookups)
    {
        bad.push("scheduler flip changed O-structure lookup counts".to_string());
    }
    bad
}

/// Runs the stress harness: `seeds` shake seeds starting at `first_seed`
/// across every figure matching `fig_filter` (None = all), on `jobs`
/// worker threads. Returns the process exit code (0 clean, 1 violations).
pub fn run(
    scale_in: &Scale,
    scale_name: &str,
    first_seed: u64,
    seeds: u64,
    fig_filter: Option<&str>,
    jobs: usize,
) -> i32 {
    let figures: Vec<&Figure> = FIGURES
        .iter()
        .filter(|f| fig_filter.is_none_or(|want| want == f.name))
        .collect();
    let last_seed = first_seed + seeds.saturating_sub(1);
    println!("## Stress — seeded schedule shaking\n");
    println!(
        "scale {scale_name}, seeds {first_seed}..={last_seed}, figures: {}",
        figures.iter().map(|f| f.name).collect::<Vec<_>>().join(" ")
    );
    println!();

    // Oracles stay armed for baselines too: the unshaken FIFO schedule is
    // one more interleaving the invariants must hold under.
    let mut base_scale = *scale_in;
    base_scale.shake = ShakePolicy::Off;
    base_scale.oracles = true;

    let mut failures: Vec<Failure> = Vec::new();
    let mut total_runs: u64 = 0;
    let mut total_checks: u64 = 0;

    for figure in &figures {
        // Unshaken baseline: supplies the per-job cycle envelope.
        let baseline = run_jobs((figure.plan)(&base_scale), jobs);
        for run in &baseline {
            total_runs += 1;
            if let Some(o) = &run.result.oracle {
                total_checks += o.checks();
            }
            for what in check_run(run, &base_scale, run.result.cycles) {
                failures.push(Failure {
                    fig: figure.name,
                    bench: run.bench,
                    tag: run.tag.clone(),
                    seed: None,
                    what: format!("[unshaken baseline] {what}"),
                });
            }
        }

        let mut fig_failures = 0usize;
        for seed in first_seed..=last_seed {
            let mut shaken_scale = base_scale;
            shaken_scale.shake = ShakePolicy::Seeded(seed);
            let shaken = run_jobs((figure.plan)(&shaken_scale), jobs);
            for (run, base) in shaken.iter().zip(&baseline) {
                total_runs += 1;
                if let Some(o) = &run.result.oracle {
                    total_checks += o.checks();
                }
                for what in check_run(run, &shaken_scale, base.result.cycles) {
                    fig_failures += 1;
                    failures.push(Failure {
                        fig: figure.name,
                        bench: run.bench,
                        tag: run.tag.clone(),
                        seed: Some(seed),
                        what,
                    });
                }
            }
            // Per-seed scheduler equivalence: re-run the sweep's first job
            // under the flipped event queue; the simulated numbers must
            // reproduce exactly.
            let mut flipped_scale = shaken_scale;
            flipped_scale.scheduler = match shaken_scale.scheduler {
                SchedulerKind::CalendarQueue => SchedulerKind::BinaryHeap,
                SchedulerKind::BinaryHeap => SchedulerKind::CalendarQueue,
            };
            let mut flip_plan = (figure.plan)(&flipped_scale);
            if !flip_plan.is_empty() {
                // The flip job must bypass the run cache: the scheduler is
                // host-only and deliberately not part of the cache key, so
                // a cached answer would be the *same entry* the shaken run
                // stored — trivially equal, checking nothing. Equivalence
                // is only meaningful if the flipped queue actually runs.
                let flip = run_jobs(vec![flip_plan.remove(0).uncached()], 1);
                assert!(
                    !flip[0].cache_hit,
                    "flip run must simulate, not hit the run cache"
                );
                total_runs += 1;
                for what in check_flip(&shaken[0], &flip[0]) {
                    fig_failures += 1;
                    failures.push(Failure {
                        fig: figure.name,
                        bench: flip[0].bench,
                        tag: flip[0].tag.clone(),
                        seed: Some(seed),
                        what,
                    });
                }
            }
        }
        let verdict = if fig_failures == 0 {
            "ok".to_string()
        } else {
            format!("{fig_failures} FAILURE(S)")
        };
        println!(
            "  {:<6} {:>3} jobs x {} seed(s) + flip checks: {verdict}",
            figure.name,
            baseline.len(),
            seeds
        );
    }

    println!();
    if failures.is_empty() {
        println!(
            "stress: {} figure(s), {} seed(s), {total_runs} runs, \
             {total_checks} oracle checks — all invariants held",
            figures.len(),
            seeds
        );
        0
    } else {
        println!(
            "stress: {} violation(s) across {total_runs} runs:\n",
            failures.len()
        );
        for f in &failures {
            let seed_label = f
                .seed
                .map_or_else(|| "baseline".to_string(), |s| s.to_string());
            println!(
                "  FAIL {}/{}/{} seed {}: {}",
                f.fig, f.bench, f.tag, seed_label, f.what
            );
            let repro = match f.seed {
                Some(s) => format!(
                    "stress --scale {scale_name} --fig {} --shake-seed {s} --seeds 1",
                    f.fig
                ),
                None => format!("{} --scale {scale_name}", f.fig),
            };
            println!("       repro: cargo run -p osim-experiments --release -- {repro}");
        }
        1
    }
}
