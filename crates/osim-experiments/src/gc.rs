//! §IV-F: garbage-collection and version-sorting overhead.
//!
//! The paper runs a sequential workload of 1000 operations on a sorted
//! linked list of 10 elements (small on purpose, to magnify version
//! allocation):
//!
//! * a *tight* configuration whose free list forces frequent collection
//!   phases (135 in the paper) is only ~0.1% slower than
//! * a *plentiful* configuration that never collects, which in turn is
//!   ~0.1% slower than
//! * a configuration with *no version sorting* (versions created mostly in
//!   order are already sorted, so maintaining the order costs almost
//!   nothing).

use osim_cpu::MachineCfg;
use osim_report::SimReport;
use osim_uarch::GcConfig;
use osim_workloads::harness::DsCfg;
use osim_workloads::linked_list;

use crate::common::{checked_run, report_run, Scale};
use crate::runner::{SweepJob, SweepRun};

fn ds_cfg(scale: &Scale) -> DsCfg {
    DsCfg {
        initial: 10,
        ops: scale.ops.max(1000), // the paper's 1000 ops are cheap here
        reads_per_write: 1,
        scan_range: 0,
        key_space: 64,
        seed: 0x6c,
        insert_only: false,
    }
}

fn job(scale: &Scale, name: &'static str, tweak: impl Fn(&mut MachineCfg)) -> SweepJob {
    let mut m = MachineCfg::paper(1);
    m.omgr.fault_plan = scale.inject;
    m.omgr.oracles = scale.oracles;
    m.scheduler = scale.scheduler;
    m.shake = scale.shake;
    tweak(&mut m);
    let cfg = ds_cfg(scale);
    // The Fig. 1-faithful protocol (renaming every passed cell) supplies
    // the version churn this experiment is about.
    SweepJob::new("gc", "Linked list", name.to_string(), scale, m, move |mc| {
        linked_list::run_versioned_with(mc, &cfg, true)
    })
}

/// The three configurations, in [`render`] order: tight, plentiful,
/// unsorted.
pub fn plan(scale: &Scale) -> Vec<SweepJob> {
    vec![
        job(scale, "tight", |m| {
            // Small enough to keep the collector busy, large enough that
            // reclamation outruns allocation (no OS refill traps — the
            // paper's tight configuration collects, it does not thrash).
            m.omgr.initial_free_blocks = 2048;
            m.omgr.refill_blocks = 256;
            m.omgr.gc = GcConfig { watermark: 1792 };
        }),
        job(scale, "plentiful", |m| {
            m.omgr.initial_free_blocks = 1 << 17;
            m.omgr.gc = GcConfig { watermark: 0 };
        }),
        job(scale, "unsorted", |m| {
            m.omgr.initial_free_blocks = 1 << 17;
            m.omgr.gc = GcConfig { watermark: 0 };
            m.omgr.sorted_insertion = false;
        }),
    ]
}

/// Prints the GC-overhead table from completed runs (in [`plan`] order).
pub fn render(scale: &Scale, runs: &[SweepRun], out: &mut Vec<SimReport>) {
    let ops = ds_cfg(scale).ops;
    println!("## §IV-F — GC overhead (sequential, {ops} ops on a 10-element sorted list)\n");

    let mut next = runs.iter();
    let mut take = || {
        let run = next.next().expect("plan and render agree on job count");
        checked_run(run);
        out.push(report_run(run, scale));
        &run.result
    };

    let tight = take();
    let (tight_cy, tight_phases, tight_reclaimed) = (
        tight.cycles,
        tight.ostats.gc_phases,
        tight.ostats.reclaimed_blocks,
    );
    let plenty = take();
    let (plenty_cy, plenty_phases) = (plenty.cycles, plenty.ostats.gc_phases);
    let unsorted_cy = take().cycles;

    println!("| Configuration | Cycles | GC phases | Blocks reclaimed |");
    println!("|---|---|---|---|");
    println!("| Tight (collecting) | {tight_cy} | {tight_phases} | {tight_reclaimed} |");
    println!("| Plentiful (no GC) | {plenty_cy} | {plenty_phases} | 0 |");
    println!("| Plentiful, unsorted lists | {unsorted_cy} | 0 | 0 |");
    println!();
    println!(
        "GC overhead: {:+.2}% (paper: ~0.1%); sorting overhead: {:+.2}% (paper: ~0.1%)\n",
        (tight_cy as f64 / plenty_cy as f64 - 1.0) * 100.0,
        (plenty_cy as f64 / unsorted_cy as f64 - 1.0) * 100.0,
    );
}

pub fn run(scale: &Scale, jobs: usize, out: &mut Vec<SimReport>) {
    let runs = crate::runner::run_jobs(plan(scale), jobs);
    render(scale, &runs, out);
}
