//! In-process equivalence properties for the parallel sweep runner.
//!
//! The pool contract is that worker count is invisible: `run_jobs(plan, n)`
//! returns the same results in the same order for every `n`, so the
//! rendered tables and `SimReport` JSON are byte-identical. These
//! properties drive that with randomized worker counts and fault-injection
//! specs; the CLI-level byte comparison lives in
//! `tests/jobs_byte_identical.rs`.

use proptest::prelude::*;

use osim_uarch::FaultPlan;

use crate::common::{report_run, Scale};
use crate::runner::{run_jobs, SweepJob};
use crate::{fig6, fig8, gc};

/// Serializes completed runs exactly as `--json` would: the pretty-printed
/// `SimReport` array, in plan order.
fn report_json(scale: &Scale, runs: &[crate::runner::SweepRun]) -> String {
    runs.iter()
        .map(|r| report_run(r, scale).to_json().to_pretty())
        .collect::<Vec<_>>()
        .join(",\n")
}

fn tiny_scale(inject: Option<&str>) -> Scale {
    let mut scale = Scale::tiny();
    scale.inject = inject.map(|spec| FaultPlan::parse(spec).expect("valid spec"));
    scale
}

fn plan_for(which: usize, scale: &Scale) -> Vec<SweepJob> {
    match which {
        0 => fig6::plan(scale),
        1 => fig8::plan(scale),
        _ => gc::plan(scale),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The worker count never leaks into the results: any `--jobs n`
    /// produces the serial run's SimReport JSON, byte for byte, under any
    /// fault-injection spec.
    #[test]
    fn parallel_sweep_json_matches_serial(
        jobs in 2usize..=8,
        which in 0usize..3,
        inject in prop_oneof![
            Just(None),
            Just(Some("pool-pressure")),
            Just(Some("latency-jitter")),
            Just(Some("chaos")),
        ],
    ) {
        let scale = tiny_scale(inject);
        let serial = run_jobs(plan_for(which, &scale), 1);
        let parallel = run_jobs(plan_for(which, &scale), jobs);
        prop_assert_eq!(serial.len(), parallel.len());
        prop_assert_eq!(
            report_json(&scale, &serial),
            report_json(&scale, &parallel),
            "jobs={} plan={} inject={:?}", jobs, which, inject
        );
    }
}
