//! Content-addressed run cache: key derivation and the entry codec.
//!
//! Every sweep job is a pure function of its *fully-rendered*
//! configuration — the figure/benchmark/tag triple (which fixes the
//! workload program and its `DsCfg`), the exact [`MachineCfg`] it launches
//! with, and the invocation [`Scale`] — because the simulator has been
//! byte-deterministic across `--jobs` and schedulers since PR 3. That
//! makes results perfectly cacheable: [`job_key`] hashes exactly the
//! semantic inputs (and *provably not* the host-only knobs: scheduler
//! kind, worker count, progress — see the fingerprint tests below), and
//! [`BatchCache`] maps hits back into [`DsResult`]s that are
//! indistinguishable from a fresh run.
//!
//! Entries are single JSON documents (`osim-cache-entry-v1`): the run's
//! schema-v5 [`SimReport`] — reusing `osim-report`'s serialization, whose
//! `to_json` recomputes every derived float from counters so a decode →
//! re-render round trip is byte-exact — plus the few result fields a
//! report does not carry (validation ok/detail, capture window, dep
//! edges, drop counts, oracle findings) — and a trailing whole-body
//! checksum. Decoding verifies the checksum, then goes through the
//! PR-7-hardened JSON parser and `SimReport::validate`; any failure
//! invalidates the entry and counts as a miss, never an error.

use std::collections::HashMap;
use std::sync::Arc;

use osim_cpu::{DepEdge, MachineCfg, ShakePolicy, StallCause, WakeupPolicy};
use osim_jobq::{CacheKey, KeyBuilder, ResultCache, TextStore};
use osim_report::json::{self, obj, Json};
use osim_report::{ReportScale, SimReport};
use osim_uarch::OracleReport;
use osim_workloads::harness::DsResult;

use crate::common::Scale;

/// Engine-semantics version: bump this whenever a change can alter
/// *simulated* timing or results, so stale cache entries can never be
/// served. The constant participates in every [`job_key`], so bumping it
/// invalidates the whole cache by construction (old entries keep their
/// old keys and are simply never looked up again).
///
/// Bump-when checklist — any of these invalidates every cached run:
/// - [ ] timing/latency model changes in `osim-engine`, `osim-mem`,
///   `osim-uarch`, or `osim-cpu` (cycle accounting, cache geometry
///   defaults, trap costs, wakeup/coherence modeling)
/// - [ ] workload program changes in `osim-workloads` (op generation,
///   reference replay, per-benchmark task bodies) — the programs are
///   compiled into this binary, so this constant stands in for hashing
///   their bytes
/// - [ ] report semantics: `SCHEMA_VERSION` bumps, counter meaning
///   changes, new fields derived from simulation
/// - [ ] key derivation or entry codec changes in this module
///
/// Host-only changes (scheduler implementations, `--jobs`, progress
/// rendering, telemetry sinks) must NOT bump it: they are excluded from
/// the key precisely because they cannot affect simulated output.
pub const ENGINE_SEMANTICS_VERSION: u64 = 1;

/// Entry document schema tag.
pub const ENTRY_SCHEMA: &str = "osim-cache-entry-v1";

const KEY_DOMAIN: &str = "osim-run-v1";

/// The cache key of one sweep job: a stable hash over everything that
/// determines its simulated output, and nothing that doesn't.
pub fn job_key(fig: &str, bench: &str, tag: &str, cfg: &MachineCfg, scale: &Scale) -> CacheKey {
    let mut kb = KeyBuilder::new(KEY_DOMAIN, ENGINE_SEMANTICS_VERSION)
        // Identity: fixes the workload program and its data-structure
        // config (each plan derives those deterministically from
        // fig/tag/scale).
        .str_field("fig", fig)
        .str_field("bench", bench)
        .str_field("tag", tag)
        // Workload sizes.
        .u64_field("scale.small", scale.small as u64)
        .u64_field("scale.large", scale.large as u64)
        .u64_field("scale.ops", scale.ops as u64)
        .u64_field("scale.mat_n", scale.mat_n as u64)
        .u64_field("scale.lev_len", scale.lev_len as u64)
        // Machine geometry and latencies.
        .u64_field("cfg.cores", cfg.cores as u64)
        .u64_field("hier.l1.size_bytes", cfg.hier.l1.size_bytes as u64)
        .u64_field("hier.l1.assoc", cfg.hier.l1.assoc as u64)
        .u64_field("hier.l1.hit_latency", cfg.hier.l1.hit_latency)
        .u64_field("hier.l2.size_bytes", cfg.hier.l2.size_bytes as u64)
        .u64_field("hier.l2.assoc", cfg.hier.l2.assoc as u64)
        .u64_field("hier.l2.hit_latency", cfg.hier.l2.hit_latency)
        .u64_field("hier.dram_latency", cfg.hier.dram_latency)
        .u64_field("cfg.ram_bytes", cfg.ram_bytes)
        .u64_field("cfg.issue_width", cfg.issue_width)
        .u64_field("cfg.malloc_instrs", cfg.malloc_instrs)
        .opt_u64_field("cfg.watchdog_cycles", cfg.watchdog_cycles)
        .str_field(
            "cfg.wakeup",
            match cfg.wakeup {
                WakeupPolicy::Broadcast => "broadcast",
                WakeupPolicy::Targeted => "targeted",
            },
        )
        // Same-cycle tie-break perturbation: a seeded shake changes
        // simulated interleavings, so it is semantic.
        .opt_u64_field(
            "cfg.shake_seed",
            match cfg.shake {
                ShakePolicy::Off => None,
                ShakePolicy::Seeded(s) => Some(s),
            },
        )
        // Capture arms extra observation output (dep edges, samples)
        // that lands in reports, so it is part of the rendered config.
        .u64_field("capture.dep_edges", cfg.capture.dep_edges as u64)
        .u64_field("capture.sample_every", cfg.capture.sample_every)
        .u64_field("capture.samples", cfg.capture.samples as u64)
        // O-structure manager.
        .u64_field(
            "omgr.initial_free_blocks",
            cfg.omgr.initial_free_blocks as u64,
        )
        .u64_field("omgr.refill_blocks", cfg.omgr.refill_blocks as u64)
        .u64_field("omgr.trap_latency", cfg.omgr.trap_latency)
        .u64_field(
            "omgr.versioned_extra_latency",
            cfg.omgr.versioned_extra_latency,
        )
        .bool_field("omgr.sorted_insertion", cfg.omgr.sorted_insertion)
        .u64_field("omgr.gc_watermark", cfg.omgr.gc.watermark as u64)
        .u64_field(
            "omgr.refill_retry_limit",
            cfg.omgr.refill_retry_limit as u64,
        )
        .bool_field("omgr.oracles", cfg.omgr.oracles);
    // Fault injection, via its canonical round-tripping spec string.
    let spec = cfg.omgr.fault_plan.map(|p| p.to_spec());
    kb = kb.opt_str_field("omgr.inject", spec.as_deref());
    // Deliberately excluded — host-only, proven by the fingerprint tests:
    // cfg.scheduler (event-queue implementation), the --jobs worker
    // count, --progress/--sweep-json sinks.
    kb.finish()
}

/// Per-batch context the codec needs to rebuild the embedded report when
/// storing a fresh result.
pub struct JobCtx {
    pub fig: &'static str,
    pub bench: &'static str,
    pub tag: String,
    pub cfg: MachineCfg,
    pub rscale: ReportScale,
}

/// Serializes one run into an `osim-cache-entry-v1` document.
pub fn encode_entry(key: &CacheKey, ctx: &JobCtx, r: &DsResult) -> String {
    let mut rep = SimReport::new(
        ctx.fig,
        ctx.bench,
        &ctx.tag,
        &ctx.cfg,
        ctx.rscale,
        r.cycles,
        r.cpu.clone(),
        r.mem.clone(),
        r.ostats.clone(),
        r.engine,
        r.hists.clone(),
    );
    rep.timeseries = r.timeseries.clone();
    let deps: Vec<Json> = r
        .deps
        .iter()
        .map(|d| {
            Json::Arr(vec![
                Json::from_u64(d.va as u64),
                Json::from_u64(d.awaited as u64),
                Json::from_u64(d.resolved as u64),
                Json::from_u64(d.cause.index() as u64),
                Json::from_u64(d.consumer_tid as u64),
                Json::from_u64(d.consumer_core as u64),
                Json::from_u64(d.producer_tid as u64),
                Json::from_u64(d.producer_core as u64),
                Json::from_u64(d.produced_at),
                Json::from_u64(d.blocked_at),
                Json::from_u64(d.woken_at),
                Json::from_u64(d.waited),
            ])
        })
        .collect();
    let oracle = match &r.oracle {
        None => Json::Null,
        Some(o) => obj(vec![
            ("lock_checks", Json::from_u64(o.lock_checks)),
            ("order_checks", Json::from_u64(o.order_checks)),
            ("gc_checks", Json::from_u64(o.gc_checks)),
            ("violations", Json::from_u64(o.violations)),
            (
                "details",
                Json::Arr(o.details.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
        ]),
    };
    let doc = obj(vec![
        ("schema", Json::Str(ENTRY_SCHEMA.to_string())),
        ("key", Json::Str(key.hex())),
        ("semantics", Json::from_u64(ENGINE_SEMANTICS_VERSION)),
        (
            "label",
            Json::Str(format!("{}/{}/{}", ctx.fig, ctx.bench, ctx.tag)),
        ),
        ("ok", Json::Bool(r.ok)),
        ("detail", Json::Str(r.detail.clone())),
        (
            "window",
            Json::Arr(vec![Json::from_u64(r.window.0), Json::from_u64(r.window.1)]),
        ),
        ("deps_dropped", Json::from_u64(r.deps_dropped)),
        ("samples_dropped", Json::from_u64(r.samples_dropped)),
        ("oracle", oracle),
        ("deps", Json::Arr(deps)),
        ("report", rep.to_json()),
    ]);
    // Whole-body checksum, appended last so decode can pop it off and
    // re-render the exact hashed text. `validate()` alone cannot catch a
    // flipped digit that still yields a *consistent* report; the checksum
    // catches any byte of rot anywhere in the entry.
    let body = doc.to_pretty();
    let sum = body_checksum(&body);
    let Json::Obj(mut fields) = doc else {
        unreachable!("entry document is an object")
    };
    fields.push(("checksum".to_string(), Json::Str(sum)));
    Json::Obj(fields).to_pretty()
}

/// Content checksum over the rendered entry body (the document minus its
/// trailing `checksum` field), reusing the cache's stable hash.
fn body_checksum(body: &str) -> String {
    KeyBuilder::new("osim-entry-body", ENGINE_SEMANTICS_VERSION)
        .str_field("body", body)
        .finish()
        .hex()
}

/// A decoded entry: the key and label it was stored under plus the
/// reconstructed result.
pub struct DecodedEntry {
    /// The key recorded *inside* the entry — `cache verify` checks it
    /// against the file name, catching renamed/cross-copied entries.
    pub key_hex: String,
    pub label: String,
    pub result: DsResult,
}

fn get_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing or non-integer `{key}`"))
}

fn dep_from_json(row: &Json) -> Result<DepEdge, String> {
    let arr = row.as_arr().ok_or("dep row is not an array")?;
    if arr.len() != 12 {
        return Err(format!("dep row has {} fields, want 12", arr.len()));
    }
    let n = |i: usize| -> Result<u64, String> {
        arr[i]
            .as_u64()
            .ok_or_else(|| format!("dep field {i} is not an integer"))
    };
    let cause_idx = n(3)? as usize;
    let cause = *StallCause::ALL
        .get(cause_idx)
        .ok_or_else(|| format!("dep cause index {cause_idx} out of range"))?;
    Ok(DepEdge {
        va: n(0)? as u32,
        awaited: n(1)? as u32,
        resolved: n(2)? as u32,
        cause,
        consumer_tid: n(4)? as u32,
        consumer_core: n(5)? as u32,
        producer_tid: n(6)? as u32,
        producer_core: n(7)? as u32,
        produced_at: n(8)?,
        blocked_at: n(9)?,
        woken_at: n(10)?,
        waited: n(11)?,
    })
}

/// Decodes and validates an `osim-cache-entry-v1` document. Every failure
/// mode — truncation, bit rot, schema drift, invariant violations — comes
/// back as `Err` with a reason; callers treat that as a cache miss (or,
/// in `cache verify`, as per-entry blame).
pub fn decode_entry(text: &str) -> Result<DecodedEntry, String> {
    let mut v = json::parse(text).map_err(|e| format!("parse: {e:?}"))?;
    // Pop the trailing checksum and verify it against the re-rendered
    // remainder before trusting any field.
    let stored_sum = {
        let Json::Obj(fields) = &mut v else {
            return Err("entry is not an object".to_string());
        };
        match fields.last() {
            Some((name, Json::Str(s))) if name == "checksum" => {
                let s = s.clone();
                fields.pop();
                s
            }
            _ => return Err("missing trailing `checksum`".to_string()),
        }
    };
    if body_checksum(&v.to_pretty()) != stored_sum {
        return Err("checksum mismatch (bit rot?)".to_string());
    }
    let schema = v
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema`")?;
    if schema != ENTRY_SCHEMA {
        return Err(format!("schema {schema:?}, want {ENTRY_SCHEMA:?}"));
    }
    let semantics = get_u64(&v, "semantics")?;
    if semantics != ENGINE_SEMANTICS_VERSION {
        // Unreachable through lookups (the version is part of the key),
        // but `cache verify` walks entry files directly.
        return Err(format!(
            "engine semantics {semantics}, current {ENGINE_SEMANTICS_VERSION}"
        ));
    }
    let key_hex = v
        .get("key")
        .and_then(Json::as_str)
        .ok_or("missing `key`")?
        .to_string();
    let label = v
        .get("label")
        .and_then(Json::as_str)
        .ok_or("missing `label`")?
        .to_string();
    let ok = v.get("ok").and_then(Json::as_bool).ok_or("missing `ok`")?;
    let detail = v
        .get("detail")
        .and_then(Json::as_str)
        .ok_or("missing `detail`")?
        .to_string();
    let window = {
        let arr = v
            .get("window")
            .and_then(Json::as_arr)
            .ok_or("missing `window`")?;
        if arr.len() != 2 {
            return Err("`window` is not a 2-array".to_string());
        }
        let lo = arr[0].as_u64().ok_or("window[0] not an integer")?;
        let hi = arr[1].as_u64().ok_or("window[1] not an integer")?;
        (lo, hi)
    };
    let deps_dropped = get_u64(&v, "deps_dropped")?;
    let samples_dropped = get_u64(&v, "samples_dropped")?;
    let oracle = match v.get("oracle") {
        None | Some(Json::Null) => None,
        Some(o) => {
            let details = o
                .get("details")
                .and_then(Json::as_arr)
                .ok_or("oracle missing `details`")?
                .iter()
                .map(|d| {
                    d.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "oracle detail is not a string".to_string())
                })
                .collect::<Result<Vec<String>, String>>()?;
            Some(OracleReport {
                lock_checks: get_u64(o, "lock_checks")?,
                order_checks: get_u64(o, "order_checks")?,
                gc_checks: get_u64(o, "gc_checks")?,
                violations: get_u64(o, "violations")?,
                details,
            })
        }
    };
    let deps = v
        .get("deps")
        .and_then(Json::as_arr)
        .ok_or("missing `deps`")?
        .iter()
        .map(dep_from_json)
        .collect::<Result<Vec<DepEdge>, String>>()?;
    let rep_json = v.get("report").ok_or("missing `report`")?;
    let rep = SimReport::from_json(rep_json).map_err(|e| format!("report: {e}"))?;
    rep.validate()
        .map_err(|e| format!("report invariants: {e}"))?;
    Ok(DecodedEntry {
        key_hex,
        label,
        result: DsResult {
            cycles: rep.cycles,
            cpu: rep.cpu,
            mem: rep.mem,
            ostats: rep.ostats,
            engine: rep.engine,
            hists: rep.hists,
            ok,
            detail,
            deps,
            deps_dropped,
            timeseries: rep.timeseries,
            samples_dropped,
            window,
            oracle,
        },
    })
}

/// The per-batch [`ResultCache`]: wraps the invocation's [`TextStore`]
/// with this batch's key → job-context map (needed to rebuild the
/// embedded report when storing) and the entry codec.
pub struct BatchCache {
    store: Arc<TextStore>,
    ctx: HashMap<CacheKey, JobCtx>,
}

impl BatchCache {
    pub fn new(store: Arc<TextStore>, ctx: HashMap<CacheKey, JobCtx>) -> Self {
        BatchCache { store, ctx }
    }
}

impl ResultCache<DsResult> for BatchCache {
    fn lookup(&self, key: &CacheKey, label: &str) -> Option<DsResult> {
        let text = self.store.get(key)?;
        match decode_entry(&text) {
            Ok(entry) => Some(entry.result),
            Err(reason) => {
                // Corrupt/stale entries are dropped and re-run — a cache
                // must never fail a sweep. Stderr only: stdout and --json
                // stay byte-identical.
                eprintln!("[cache] dropping bad entry for {label}: {reason}");
                self.store.note_corrupt(key);
                None
            }
        }
    }

    fn store(&self, key: &CacheKey, label: &str, result: &DsResult) {
        let Some(ctx) = self.ctx.get(key) else {
            debug_assert!(false, "store for unknown key ({label})");
            return;
        };
        self.store.put(key, &encode_entry(key, ctx, result));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use osim_cpu::SchedulerKind;
    use proptest::prelude::*;

    use crate::common::{machine, Scale};

    fn base_key(scale: &Scale) -> CacheKey {
        let cfg = machine(scale, 4, None, 0);
        job_key("fig6", "Linked list", "versioned", &cfg, scale)
    }

    /// Fingerprint soundness, output-affecting side: every semantic knob
    /// flips the key.
    #[test]
    fn semantic_knobs_flip_the_key() {
        let scale = Scale::tiny();
        let k0 = base_key(&scale);
        // Identity fields.
        let cfg = machine(&scale, 4, None, 0);
        assert_ne!(
            k0,
            job_key("fig7", "Linked list", "versioned", &cfg, &scale)
        );
        assert_ne!(
            k0,
            job_key("fig6", "Binary tree", "versioned", &cfg, &scale)
        );
        assert_ne!(
            k0,
            job_key("fig6", "Linked list", "versioned-1c", &cfg, &scale)
        );
        // Scale fields.
        for f in [
            |s: &mut Scale| s.small += 1,
            |s: &mut Scale| s.large += 1,
            |s: &mut Scale| s.ops += 1,
            |s: &mut Scale| s.mat_n += 1,
            |s: &mut Scale| s.lev_len += 1,
        ] {
            let mut s2 = scale;
            f(&mut s2);
            assert_ne!(k0, base_key(&s2), "scale knob must flip the key");
        }
        // Inject spec (parsed plan lands in cfg.omgr.fault_plan).
        let mut s2 = scale;
        s2.inject = Some(osim_uarch::FaultPlan::parse("latency-jitter").expect("preset"));
        assert_ne!(k0, base_key(&s2), "--inject must flip the key");
        // Two different specs differ from each other too.
        let mut s3 = scale;
        s3.inject = Some(osim_uarch::FaultPlan::parse("chaos").expect("preset"));
        assert_ne!(base_key(&s2), base_key(&s3));
        // Shake seed.
        let mut s4 = scale;
        s4.shake = ShakePolicy::Seeded(7);
        assert_ne!(k0, base_key(&s4), "--shake-seed must flip the key");
        let mut s5 = scale;
        s5.shake = ShakePolicy::Seeded(8);
        assert_ne!(base_key(&s4), base_key(&s5), "distinct seeds must differ");
        // Oracle arming (stress) changes what a run reports.
        let mut s6 = scale;
        s6.oracles = true;
        assert_ne!(k0, base_key(&s6));
        // Machine knobs the plans vary: cores, L1 size, extra latency.
        assert_ne!(
            k0,
            job_key(
                "fig6",
                "Linked list",
                "versioned",
                &machine(&scale, 8, None, 0),
                &scale
            )
        );
        assert_ne!(
            k0,
            job_key(
                "fig6",
                "Linked list",
                "versioned",
                &machine(&scale, 4, Some(8), 0),
                &scale
            )
        );
        assert_ne!(
            k0,
            job_key(
                "fig6",
                "Linked list",
                "versioned",
                &machine(&scale, 4, None, 6),
                &scale
            )
        );
        // Capture / sampling config (analyze).
        let mut cfg2 = machine(&scale, 4, None, 0);
        cfg2.capture = osim_cpu::CaptureCfg::armed(1 << 10, 512, 1 << 8);
        let kc = job_key("fig6", "Linked list", "versioned", &cfg2, &scale);
        assert_ne!(k0, kc);
        let mut cfg3 = cfg2.clone();
        cfg3.capture.sample_every = 1024;
        assert_ne!(
            kc,
            job_key("fig6", "Linked list", "versioned", &cfg3, &scale),
            "--sample-every must flip the key"
        );
        // Manager knobs the gc experiment tweaks.
        let mut cfg4 = machine(&scale, 4, None, 0);
        cfg4.omgr.initial_free_blocks = 10;
        assert_ne!(
            k0,
            job_key("fig6", "Linked list", "versioned", &cfg4, &scale)
        );
        let mut cfg5 = machine(&scale, 4, None, 0);
        cfg5.omgr.sorted_insertion = !cfg5.omgr.sorted_insertion;
        assert_ne!(
            k0,
            job_key("fig6", "Linked list", "versioned", &cfg5, &scale)
        );
        let mut cfg6 = machine(&scale, 4, None, 0);
        cfg6.omgr.gc.watermark += 1;
        assert_ne!(
            k0,
            job_key("fig6", "Linked list", "versioned", &cfg6, &scale)
        );
        // Wakeup policy ablation.
        let mut cfg7 = machine(&scale, 4, None, 0);
        cfg7.wakeup = WakeupPolicy::Targeted;
        assert_ne!(
            k0,
            job_key("fig6", "Linked list", "versioned", &cfg7, &scale)
        );
    }

    /// Fingerprint soundness, host-only side: the scheduler kind — the
    /// PR-7-class trap, since it lives right next to `shake` in
    /// `MachineCfg` — provably does not move the key. (`--jobs` and
    /// `--progress` never reach the key function at all: it has no
    /// parameter they could arrive through.)
    #[test]
    fn host_only_knobs_do_not_flip_the_key() {
        let mut scale = Scale::tiny();
        let k0 = base_key(&scale);
        scale.scheduler = SchedulerKind::BinaryHeap;
        assert_eq!(k0, base_key(&scale), "--scheduler must not flip the key");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Randomized fingerprint check: whatever semantic configuration a
        /// job has, flipping the scheduler never moves its key, and
        /// bumping any scale/seed knob always does.
        #[test]
        fn fingerprint_soundness_randomized(
            ops in 1usize..4096,
            cores in 1usize..64,
            extra in 0u64..16,
            seed in proptest::option::of(0u64..1_000_000),
            l1 in proptest::option::of(prop_oneof![Just(8u32), Just(32), Just(128)]),
        ) {
            let mut scale = Scale::tiny();
            scale.ops = ops;
            scale.shake = match seed {
                None => ShakePolicy::Off,
                Some(s) => ShakePolicy::Seeded(s),
            };
            let cfg = machine(&scale, cores, l1, extra);
            let k = job_key("fig6", "Linked list", "versioned", &cfg, &scale);
            // Host-only: scheduler flip keeps the key.
            let mut flipped = scale;
            flipped.scheduler = SchedulerKind::BinaryHeap;
            let cfg_f = machine(&flipped, cores, l1, extra);
            prop_assert_eq!(k, job_key("fig6", "Linked list", "versioned", &cfg_f, &flipped));
            // Semantic: ops bump flips the key.
            let mut bumped = scale;
            bumped.ops += 1;
            let cfg_b = machine(&bumped, cores, l1, extra);
            prop_assert_ne!(k, job_key("fig6", "Linked list", "versioned", &cfg_b, &bumped));
            // Semantic: shake-seed bump flips the key.
            let mut shaken = scale;
            shaken.shake = match seed {
                None => ShakePolicy::Seeded(0),
                Some(s) => ShakePolicy::Seeded(s + 1),
            };
            let cfg_s = machine(&shaken, cores, l1, extra);
            prop_assert_ne!(k, job_key("fig6", "Linked list", "versioned", &cfg_s, &shaken));
        }
    }

    fn sample_result(scale: &Scale, cfg: MachineCfg) -> DsResult {
        let ds = scale.ds(false, 4);
        osim_workloads::linked_list::run_versioned(cfg, &ds)
    }

    /// The codec round-trips a real run exactly: decode(encode(r)) == r in
    /// every field a report or renderer can observe.
    #[test]
    fn entry_codec_round_trips_a_real_run() {
        let scale = Scale::tiny();
        let mut cfg = machine(&scale, 2, None, 0);
        cfg.capture = osim_cpu::CaptureCfg::armed(1 << 8, 256, 1 << 6);
        let r = sample_result(&scale, cfg.clone());
        let ctx = JobCtx {
            fig: "fig6",
            bench: "Linked list",
            tag: "versioned".to_string(),
            cfg: cfg.clone(),
            rscale: scale.report(),
        };
        let key = job_key(ctx.fig, ctx.bench, &ctx.tag, &cfg, &scale);
        let text = encode_entry(&key, &ctx, &r);
        let decoded = decode_entry(&text).expect("decode");
        assert_eq!(decoded.label, "fig6/Linked list/versioned");
        let d = &decoded.result;
        assert_eq!(d.cycles, r.cycles);
        assert_eq!(d.ok, r.ok);
        assert_eq!(d.detail, r.detail);
        assert_eq!(d.window, r.window);
        assert_eq!(d.deps_dropped, r.deps_dropped);
        assert_eq!(d.samples_dropped, r.samples_dropped);
        assert_eq!(d.deps.len(), r.deps.len());
        for (a, b) in d.deps.iter().zip(&r.deps) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        assert_eq!(d.timeseries.len(), r.timeseries.len());
        assert_eq!(d.oracle, r.oracle);
        // The rendered report — what tables and --json are built from —
        // must be byte-identical.
        let rep_fresh = SimReport::new(
            ctx.fig,
            ctx.bench,
            &ctx.tag,
            &cfg,
            scale.report(),
            r.cycles,
            r.cpu.clone(),
            r.mem.clone(),
            r.ostats.clone(),
            r.engine,
            r.hists.clone(),
        );
        let rep_cached = SimReport::new(
            ctx.fig,
            ctx.bench,
            &ctx.tag,
            &cfg,
            scale.report(),
            d.cycles,
            d.cpu.clone(),
            d.mem.clone(),
            d.ostats.clone(),
            d.engine,
            d.hists.clone(),
        );
        assert_eq!(
            rep_fresh.to_json().to_pretty(),
            rep_cached.to_json().to_pretty()
        );
    }

    /// Truncation and byte-flips are detected and reported as misses.
    #[test]
    fn corrupt_entries_fail_to_decode() {
        let scale = Scale::tiny();
        let cfg = machine(&scale, 1, None, 0);
        let r = sample_result(&scale, cfg.clone());
        let ctx = JobCtx {
            fig: "fig6",
            bench: "Linked list",
            tag: "versioned".to_string(),
            cfg,
            rscale: scale.report(),
        };
        let key = CacheKey(1);
        let text = encode_entry(&key, &ctx, &r);
        assert!(decode_entry(&text).is_ok());
        // Truncation at any prefix fails (never panics).
        for cut in [0, 1, text.len() / 2, text.len() - 1] {
            assert!(decode_entry(&text[..cut]).is_err(), "cut at {cut}");
        }
        // Schema / semantics tampering fails.
        assert!(decode_entry(&text.replace(ENTRY_SCHEMA, "osim-cache-entry-v0")).is_err());
        assert!(decode_entry("{}").is_err());
        assert!(decode_entry("not json at all").is_err());
        // A byte flip inside a key name fails (missing field).
        let tampered = text.replacen("\"cycles\":", "\"cyc1es\":", 1);
        assert!(decode_entry(&tampered).is_err());
        // A byte flip inside a *value* can still yield a consistent
        // document; the whole-body checksum catches it anyway.
        let pos = text.find("\"cycles\": ").expect("cycles field") + "\"cycles\": ".len();
        let mut flipped = text.as_bytes().to_vec();
        flipped[pos] = if flipped[pos] == b'9' { b'8' } else { b'9' };
        let flipped = String::from_utf8(flipped).expect("still utf-8");
        assert_ne!(flipped, text);
        assert!(
            decode_entry(&flipped)
                .err()
                .expect("value flip must fail decode")
                .contains("checksum"),
            "value flip must be caught by the checksum"
        );
        // Tampering with the checksum itself fails too.
        let retagged = text.replacen("\"checksum\": \"", "\"checksum\": \"0", 1);
        assert!(decode_entry(&retagged).is_err());
    }

    /// BatchCache: corrupt stored entries surface as misses and are
    /// invalidated, then re-stored on the next run.
    #[test]
    fn batch_cache_treats_corruption_as_miss() {
        let scale = Scale::tiny();
        let cfg = machine(&scale, 1, None, 0);
        let key = job_key("fig6", "Linked list", "t", &cfg, &scale);
        let store = Arc::new(TextStore::memory());
        store.put(&key, "garbage {{{");
        let mut ctx = HashMap::new();
        ctx.insert(
            key,
            JobCtx {
                fig: "fig6",
                bench: "Linked list",
                tag: "t".to_string(),
                cfg: cfg.clone(),
                rscale: scale.report(),
            },
        );
        let cache = BatchCache::new(Arc::clone(&store), ctx);
        assert!(cache.lookup(&key, "fig6/Linked list/t").is_none());
        assert_eq!(store.counts().corrupt, 1);
        // Store a real run; the next lookup hits.
        let r = sample_result(&scale, cfg);
        cache.store(&key, "fig6/Linked list/t", &r);
        let hit = cache.lookup(&key, "fig6/Linked list/t").expect("hit");
        assert_eq!(hit.cycles, r.cycles);
    }
}
