//! `perf --ostructs`: the host-speed benchmark of the concurrent
//! versioned store (sharded `OMap` + committed-read fast-path `OCell` +
//! epoch-watermark `Vacuum`).
//!
//! Writes `BENCH_ostructs.json`: per-op nanoseconds and ops/sec for the
//! store's hot paths — single-thread committed reads against a faithful
//! replica of the pre-sharding one-big-mutex cell (so the fast path's
//! speedup is a committed, reviewable number), multi-thread uncontended
//! and hot-key reads, and a zipf-skewed 90/10 read/write mix running over
//! a live `ReaderRegistry` + `Vacuum` whose osim-metrics counters and
//! pause histogram are merged into the document.
//!
//! Like `BENCH_sweep.json`, every number here is host wall-clock: the
//! committed file is a baseline for review to diff, stamped with the host
//! shape (`host_cpus`/`host_os`/`host_arch`) so CI never speed-compares
//! across machine classes.

use std::thread;
use std::time::{Duration, Instant};

use osim_report::json::{obj, Json};
use ostructs_core::map::OMap;
use ostructs_core::vacuum::{ReaderRegistry, Vacuum, VacuumCfg};
use ostructs_core::OCell;

/// Versions preloaded per cell. Matches the published snapshot window so
/// committed reads measure the fast path, not the fallback.
const PRELOAD: u64 = 32;

/// History depth for the single-thread comparison: both stores carry this
/// many committed versions while reads target the newest [`PRELOAD`]. The
/// mutex design searches the whole map under its lock on every read; the
/// fast path answers from the published window regardless of depth —
/// which is exactly the design difference worth a committed number.
const HISTORY: u64 = 1024;

/// Total operations per measurement (all threads combined).
fn ops_for(scale_name: &str) -> u64 {
    match scale_name {
        "tiny" => 50_000,
        "full" => 5_000_000,
        _ => 1_000_000,
    }
}

fn thread_counts() -> Vec<usize> {
    let max = thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1];
    for t in [2, 4, 8] {
        if t <= max {
            counts.push(t);
        }
    }
    counts
}

/// splitmix64: the repo's standard deterministic stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A zipf(s≈1) sampler over `n` keys via an inverse-CDF table.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize) -> Self {
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / k as f64).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        Zipf { cdf: weights }
    }

    fn sample(&self, rng: &mut u64) -> usize {
        let u = (splitmix64(rng) >> 11) as f64 / (1u64 << 53) as f64;
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The pre-sharding cell design, replicated faithfully: every operation —
/// committed reads included — takes one mutex over the version map (the
/// vendored parking_lot Mutex wraps std's, so std's is the honest stand-in).
/// Kept here so the committed speedup number regenerates from one binary
/// without checking out an old commit.
mod mutex_replica {
    use std::collections::{BTreeMap, HashMap};
    use std::sync::Mutex;

    struct Slot {
        value: u64,
        locked_by: Option<u64>,
    }

    struct State {
        versions: BTreeMap<u64, Slot>,
        #[allow(dead_code)]
        held: HashMap<u64, u64>,
    }

    pub struct MutexCell {
        state: Mutex<State>,
    }

    impl MutexCell {
        pub fn new() -> Self {
            MutexCell {
                state: Mutex::new(State {
                    versions: BTreeMap::new(),
                    held: HashMap::new(),
                }),
            }
        }

        pub fn store_version(&self, v: u64, val: u64) {
            self.state.lock().unwrap().versions.insert(
                v,
                Slot {
                    value: val,
                    locked_by: None,
                },
            );
        }

        pub fn try_load_latest(&self, cap: u64) -> Option<(u64, u64)> {
            self.state
                .lock()
                .unwrap()
                .versions
                .range(..=cap)
                .next_back()
                .filter(|(_, s)| s.locked_by.is_none())
                .map(|(&v, s)| (v, s.value))
        }
    }
}

/// Runs `body` on `threads` threads, each performing `per_thread` ops.
fn fan_out(threads: usize, per_thread: u64, body: impl Fn(usize, u64) + Sync) {
    if threads == 1 {
        body(0, per_thread);
        return;
    }
    thread::scope(|scope| {
        for t in 0..threads {
            let body = &body;
            scope.spawn(move || body(t, per_thread));
        }
    });
}

/// Best-of-`reps` wall time for `f`, in nanoseconds.
fn best_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64() * 1e9);
    }
    best
}

fn round3(v: f64) -> f64 {
    (v * 1e3).round() / 1e3
}

/// One scenario row: per-op cost and throughput at a thread count.
fn row(scenario: &str, threads: usize, ops: u64, wall_ns: f64) -> Json {
    let ns_per_op = wall_ns / ops as f64;
    obj(vec![
        ("scenario", Json::Str(scenario.to_string())),
        ("threads", Json::from_u64(threads as u64)),
        ("ops", Json::from_u64(ops)),
        ("ns_per_op", Json::Num(round3(ns_per_op))),
        ("mops_per_sec", Json::Num(round3(1e3 / ns_per_op))),
    ])
}

fn preloaded_cell() -> OCell<u64> {
    let cell = OCell::new();
    for v in 1..=PRELOAD {
        cell.store_version(v, v).unwrap();
    }
    cell
}

/// Runs the store benchmark and writes the document to `path`.
pub fn run(scale_name: &str, reps: usize, path: &str) {
    let ops = ops_for(scale_name);
    let host_cpus = thread::available_parallelism().map_or(1, |n| n.get());

    // --- Single-thread committed reads: fast path vs the mutex replica.
    // Both stores get the identical HISTORY-deep version sequence; reads
    // target the newest PRELOAD versions (the lag a vacuumed store keeps).
    let cell = OCell::new();
    for v in 1..=HISTORY {
        cell.store_version(v, v).unwrap();
    }
    let fast_ns = best_ns(reps, || {
        for i in 0..ops {
            std::hint::black_box(cell.try_load_latest(std::hint::black_box(HISTORY - i % PRELOAD)));
        }
    }) / ops as f64;
    let replica = mutex_replica::MutexCell::new();
    for v in 1..=HISTORY {
        replica.store_version(v, v);
    }
    let mutex_ns = best_ns(reps, || {
        for i in 0..ops {
            std::hint::black_box(
                replica.try_load_latest(std::hint::black_box(HISTORY - i % PRELOAD)),
            );
        }
    }) / ops as f64;
    let speedup = mutex_ns / fast_ns;
    eprintln!(
        "ostructs perf: single-thread committed read {fast_ns:.1} ns/op \
         vs mutex baseline {mutex_ns:.1} ns/op ({speedup:.2}x)"
    );

    // --- Multi-thread scenarios.
    let mut scenarios = Vec::new();
    for threads in thread_counts() {
        let per_thread = ops / threads as u64;
        let total = per_thread * threads as u64;

        // Uncontended: one private preloaded cell per thread.
        let cells: Vec<OCell<u64>> = (0..threads).map(|_| preloaded_cell()).collect();
        let ns = best_ns(reps, || {
            fan_out(threads, per_thread, |t, n| {
                let cell = &cells[t];
                for i in 0..n {
                    std::hint::black_box(
                        cell.try_load_latest(std::hint::black_box(1 + i % PRELOAD)),
                    );
                }
            });
        });
        scenarios.push(row("uncontended_load_latest", threads, total, ns));

        // Hot key: every thread reads the one shared cell.
        let shared = preloaded_cell();
        let ns = best_ns(reps, || {
            fan_out(threads, per_thread, |_, n| {
                for i in 0..n {
                    std::hint::black_box(
                        shared.try_load_latest(std::hint::black_box(1 + i % PRELOAD)),
                    );
                }
            });
        });
        scenarios.push(row("hot_key_load_latest", threads, total, ns));
    }

    // --- Zipf-skewed 90/10 mix over a sharded map with a live vacuum.
    let mix_ops = ops / 5; // writes grow history; keep the mix bounded
    let keys = 256;
    let zipf = Zipf::new(keys);
    let mut metrics = osim_metrics::Registry::new();
    for threads in thread_counts() {
        let per_thread = mix_ops / threads as u64;
        let total = per_thread * threads as u64;
        let reg = ReaderRegistry::new();
        let vac = Vacuum::start(
            reg.clone(),
            VacuumCfg {
                interval: Duration::from_millis(5),
            },
        );
        let m: OMap<u32, u64> = OMap::new();
        vac.track(&m);
        for k in 0..keys as u32 {
            let v = reg.next_version();
            m.insert(k, v, u64::from(k)).unwrap();
        }
        let ns = best_ns(reps, || {
            fan_out(threads, per_thread, |t, n| {
                let mut rng = 0x5eed_0000 + t as u64;
                for _ in 0..n {
                    let k = zipf.sample(&mut rng) as u32;
                    if splitmix64(&mut rng).is_multiple_of(10) {
                        let v = reg.next_version();
                        m.insert(k, v, v).unwrap();
                    } else {
                        let pin = reg.pin();
                        std::hint::black_box(m.get_arc(&k, pin.cap()));
                    }
                }
            });
        });
        scenarios.push(row("zipf_get90_put10", threads, total, ns));
        // Merge this run's vacuum counters + pause histogram into the doc.
        vac.fill_registry(&mut metrics);
    }

    let doc = obj(vec![
        ("schema", Json::Str("osim-bench-ostructs-v1".to_string())),
        ("scale", Json::Str(scale_name.to_string())),
        ("reps", Json::from_u64(reps as u64)),
        ("ops", Json::from_u64(ops)),
        ("host_cpus", Json::from_u64(host_cpus as u64)),
        ("host_os", Json::Str(std::env::consts::OS.to_string())),
        ("host_arch", Json::Str(std::env::consts::ARCH.to_string())),
        (
            "single_thread",
            obj(vec![
                ("ops", Json::from_u64(ops)),
                ("fastpath_ns_per_op", Json::Num(round3(fast_ns))),
                ("mutex_baseline_ns_per_op", Json::Num(round3(mutex_ns))),
                ("fastpath_speedup", Json::Num(round3(speedup))),
            ]),
        ),
        ("scenarios", Json::Arr(scenarios)),
        ("metrics", metrics.to_json()),
    ]);
    if let Err(e) = std::fs::write(path, doc.to_pretty()) {
        eprintln!("cannot write ostructs perf output {path}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {path}: scale={scale_name} host_cpus={host_cpus} speedup={speedup:.2}x");
}
