//! `trace`: run one workload with per-operation tracing and print the
//! latency/stall breakdown — the observability view behind the figures.

use std::cell::RefCell;
use std::rc::Rc;

use osim_cpu::{task, Machine, MachineCfg};

use crate::common::Scale;

pub fn run(scale: &Scale) {
    println!("## Execution trace — producer/consumer chain + pipelined list segment\n");
    let mut m = Machine::new(MachineCfg::paper(4));
    m.enable_trace(1 << 20);
    let root = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc.alloc_root(&mut s.ms)
    };
    let n = (scale.ops as u32).clamp(16, 512);
    let sum = Rc::new(RefCell::new(0u64));
    let mut tasks = vec![task(move |ctx| async move {
        ctx.store_version(root, 16, 1).await;
    })];
    for _ in 0..n {
        let sum = Rc::clone(&sum);
        tasks.push(task(move |ctx| async move {
            let tid = ctx.tid();
            let (vl, v) = ctx.lock_load_latest(root, tid * 16 + 15).await;
            ctx.work(v as u64 % 31 + 8).await;
            ctx.unlock_version(root, vl, Some(tid * 16 + 15)).await;
            *sum.borrow_mut() += v as u64;
        }));
    }
    let report = m.run_tasks(tasks).expect("no deadlock");
    let st = m.state();
    let st = st.borrow();
    println!("{} tasks, {} cycles, {} records ({} dropped)\n",
        n + 1, report.cycles(), st.trace.records().len(), st.trace.dropped);
    println!("{}", st.trace.summary());
}
