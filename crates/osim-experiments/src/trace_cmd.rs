//! `trace`: run one workload with per-operation tracing and print the
//! latency/stall breakdown — the observability view behind the figures.
//!
//! Returns the run's Chrome trace-event document (built from the
//! per-operation, memory-hierarchy, and version-manager capture streams)
//! so the driver can write it out under `--chrome`.

use std::cell::RefCell;
use std::rc::Rc;

use osim_cpu::{task, CaptureCfg, Machine, MachineCfg};
use osim_report::json::Json;
use osim_report::{chrome_trace, SimReport, TraceCounts};

use crate::common::Scale;

pub fn run(scale: &Scale, out: &mut Vec<SimReport>) -> Json {
    println!("## Execution trace — producer/consumer chain + pipelined list segment\n");
    let mut mcfg = MachineCfg::paper(4);
    mcfg.omgr.fault_plan = scale.inject;
    mcfg.omgr.oracles = scale.oracles;
    mcfg.scheduler = scale.scheduler;
    mcfg.shake = scale.shake;
    // Arm causal capture too: flows/counters in the Chrome export, ring
    // occupancy in the report. Observation only — timing is unchanged.
    mcfg.capture = CaptureCfg::armed(1 << 14, 256, 1 << 12);
    let mut m = Machine::new(mcfg.clone());
    m.enable_trace(1 << 20);
    let root = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc
            .alloc_root(&mut s.ms)
            .expect("simulated RAM exhausted")
    };
    let n = (scale.ops as u32).clamp(16, 512);
    let sum = Rc::new(RefCell::new(0u64));
    let mut tasks = vec![task(move |ctx| async move {
        ctx.store_version(root, 16, 1).await;
    })];
    for _ in 0..n {
        let sum = Rc::clone(&sum);
        tasks.push(task(move |ctx| async move {
            let tid = ctx.tid();
            let (vl, v) = ctx.lock_load_latest(root, tid * 16 + 15).await;
            ctx.work(v as u64 % 31 + 8).await;
            ctx.unlock_version(root, vl, Some(tid * 16 + 15)).await;
            *sum.borrow_mut() += v as u64;
        }));
    }
    let phase = m.run_tasks(tasks).expect("no deadlock");
    let engine = m.engine_stats();
    let st = m.state();
    let st = st.borrow();
    let records = st.trace.records();
    let mem_events = st.ms.hier.events.records();
    let mvm_events = st.omgr.events.records();
    println!(
        "{} tasks, {} cycles, {} records ({} dropped)\n",
        n + 1,
        phase.cycles(),
        records.len(),
        st.trace.dropped
    );
    println!("{}", st.trace.summary());

    let mut rep = SimReport::new(
        "trace",
        "producer-consumer chain",
        "versioned",
        &mcfg,
        scale.report(),
        phase.cycles(),
        st.cpu.clone(),
        st.ms.hier.stats.clone(),
        st.omgr.stats.clone(),
        engine,
        m.run_hists(),
    );
    rep.trace = Some(TraceCounts {
        records: records.len() as u64,
        dropped: st.trace.dropped,
        mem_events: mem_events.len() as u64,
        mem_dropped: st.ms.hier.events.dropped,
        mvm_events: mvm_events.len() as u64,
        mvm_dropped: st.omgr.events.dropped,
        pt_walks: st.ms.pt.walk_event_len() as u64,
        pt_dropped: st.ms.pt.walk_dropped(),
        dep_edges: st.deps.len() as u64,
        dep_dropped: st.deps.dropped,
        samples: st.timeseries.len() as u64,
        samples_dropped: st.timeseries.dropped,
    });
    out.push(rep);

    chrome_trace(
        &records,
        &mem_events,
        &mvm_events,
        &st.deps.records(),
        &st.timeseries.records(),
    )
}
