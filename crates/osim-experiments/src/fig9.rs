//! Figure 9: L1 size sensitivity.
//!
//! The paper varies the L1 from 8 kB to 128 kB (32 kB baseline) for the
//! unversioned sequential (U), versioned single-core (1T) and versioned
//! 32-core (32T) runs of the large read-intensive benchmarks, and finds
//! effects of at most ~1.23x — pointer-heavy codes are cache-size
//! insensitive.

use osim_report::SimReport;

use crate::common::{checked_run, f2, machine, report_run, Bench, Scale};
use crate::runner::{SweepJob, SweepRun};

const SIZES_KB: [u32; 5] = [8, 16, 32, 64, 128];

/// The variant rows, in figure order.
const VARIANTS: [(&str, usize, bool); 3] = [("U", 1, false), ("1T", 1, true), ("32T", 32, true)];

/// The sweep in [`render`] order: per benchmark and variant, each L1 size.
pub fn plan(scale: &Scale) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    let s = *scale;
    for bench in Bench::ALL {
        for (variant, cores, versioned) in VARIANTS {
            for &kb in &SIZES_KB {
                jobs.push(SweepJob::new(
                    "fig9",
                    bench.name(),
                    format!("{variant}-{kb}kB"),
                    scale,
                    machine(scale, cores, Some(kb), 0),
                    move |m| {
                        if versioned {
                            bench.run_versioned(m, &s, true, 4)
                        } else {
                            bench.run_unversioned(m, &s, true, 4)
                        }
                    },
                ));
            }
        }
    }
    jobs
}

/// Prints the L1-sensitivity table from completed runs (in [`plan`] order).
pub fn render(scale: &Scale, runs: &[SweepRun], out: &mut Vec<SimReport>) {
    println!("## Figure 9 — speedup vs the 32 kB L1 baseline (U / 1T / 32T)\n");
    println!("scale: {scale:?}\n");
    println!("| Benchmark | Variant | 8kB | 16kB | 32kB | 64kB | 128kB |");
    println!("|---|---|---|---|---|---|---|");

    let mut next = runs.iter();
    let mut take = || {
        let run = next.next().expect("plan and render agree on job count");
        checked_run(run);
        out.push(report_run(run, scale));
        run
    };

    for bench in Bench::ALL {
        for (variant, _, _) in VARIANTS {
            let mut cycles: Vec<u64> = Vec::new();
            for _ in SIZES_KB {
                cycles.push(take().result.cycles);
            }
            let base = cycles[2] as f64; // 32 kB
            let row: Vec<String> = cycles.iter().map(|&c| f2(base / c as f64)).collect();
            println!(
                "| {} | {variant} | {} | {} | {} | {} | {} |",
                bench.name(),
                row[0],
                row[1],
                row[2],
                row[3],
                row[4]
            );
        }
    }
    println!();
}

pub fn run(scale: &Scale, jobs: usize, out: &mut Vec<SimReport>) {
    let runs = crate::runner::run_jobs(plan(scale), jobs);
    render(scale, &runs, out);
}
