//! Figure 9: L1 size sensitivity.
//!
//! The paper varies the L1 from 8 kB to 128 kB (32 kB baseline) for the
//! unversioned sequential (U), versioned single-core (1T) and versioned
//! 32-core (32T) runs of the large read-intensive benchmarks, and finds
//! effects of at most ~1.23x — pointer-heavy codes are cache-size
//! insensitive.

use osim_report::SimReport;

use crate::common::{checked, f2, machine, report, Bench, Scale};

const SIZES_KB: [u32; 5] = [8, 16, 32, 64, 128];

pub fn run(scale: &Scale, out: &mut Vec<SimReport>) {
    println!("## Figure 9 — speedup vs the 32 kB L1 baseline (U / 1T / 32T)\n");
    println!("scale: {scale:?}\n");
    println!("| Benchmark | Variant | 8kB | 16kB | 32kB | 64kB | 128kB |");
    println!("|---|---|---|---|---|---|---|");

    for bench in Bench::ALL {
        for (variant, cores, versioned) in [("U", 1, false), ("1T", 1, true), ("32T", 32, true)] {
            let mut cycles: Vec<u64> = Vec::new();
            for &kb in &SIZES_KB {
                let m = machine(scale, cores, Some(kb), 0);
                let r = if versioned {
                    bench.run_versioned(m.clone(), scale, true, 4)
                } else {
                    bench.run_unversioned(m.clone(), scale, true, 4)
                };
                let r = checked(r, bench.name());
                out.push(report(
                    "fig9",
                    bench.name(),
                    &format!("{variant}-{kb}kB"),
                    &m,
                    scale,
                    &r,
                ));
                cycles.push(r.cycles);
            }
            let base = cycles[2] as f64; // 32 kB
            let row: Vec<String> = cycles.iter().map(|&c| f2(base / c as f64)).collect();
            println!(
                "| {} | {variant} | {} | {} | {} | {} | {} |",
                bench.name(),
                row[0],
                row[1],
                row[2],
                row[3],
                row[4]
            );
        }
    }
    println!();
}
