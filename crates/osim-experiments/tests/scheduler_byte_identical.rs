//! End-to-end check that `--scheduler <kind>` is invisible in the binary's
//! output: the calendar queue and the reference binary heap must produce
//! byte-identical stdout tables and `--json` report documents.
//!
//! The in-process property (`osim-engine/tests/scheduler_equivalence.rs`)
//! proves identical dispatch order; this closes the remaining gap — the
//! full machine, every workload's gate traffic, report serialization —
//! by running the real binary once per scheduler and comparing raw bytes
//! (mirrors `jobs_byte_identical.rs`).

use std::path::PathBuf;
use std::process::Command;

/// Runs the experiments binary, returning (stdout bytes, `--json` bytes).
fn sweep(args: &[&str], scheduler: &str) -> (Vec<u8>, Vec<u8>) {
    let json_path: PathBuf = std::env::temp_dir().join(format!(
        "osim-sched-eq-{}-{scheduler}.json",
        std::process::id()
    ));
    let out = Command::new(env!("CARGO_BIN_EXE_osim-experiments"))
        .args(args)
        .args(["--jobs", "1", "--scheduler", scheduler, "--json"])
        .arg(&json_path)
        .output()
        .expect("experiments binary runs");
    assert!(
        out.status.success(),
        "exit {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read(&json_path).expect("--json file written");
    let _ = std::fs::remove_file(&json_path);
    (out.stdout, json)
}

fn assert_scheduler_invisible(args: &[&str]) {
    let (stdout_cal, json_cal) = sweep(args, "calendar");
    let (stdout_heap, json_heap) = sweep(args, "heap");
    assert_eq!(
        stdout_cal, stdout_heap,
        "stdout diverged between schedulers for {args:?}"
    );
    assert_eq!(
        json_cal, json_heap,
        "--json diverged between schedulers for {args:?}"
    );
    assert!(!json_cal.is_empty(), "--json produced no reports");
}

#[test]
fn fig8_tiny_output_is_byte_identical_across_schedulers() {
    assert_scheduler_invisible(&["fig8", "--tiny"]);
}

#[test]
fn gc_tiny_output_is_byte_identical_across_schedulers() {
    assert_scheduler_invisible(&["gc", "--tiny"]);
}

#[test]
fn fig6_tiny_with_stats_and_faults_is_byte_identical_across_schedulers() {
    assert_scheduler_invisible(&["fig6", "--tiny", "--stats", "--inject", "chaos"]);
}
