//! End-to-end checks of the content-addressed run cache through the real
//! binary: a warm rerun must be byte-identical to the cold run (stdout
//! and `--json`), corrupted entries must be silently re-run rather than
//! fail anything, and `cache verify`/`cache clear` must see what the
//! sweeps left behind.

use std::path::PathBuf;
use std::process::Command;

/// A unique scratch path under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("osim-cachetest-{}-{tag}", std::process::id()))
}

/// Runs the experiments binary, returning (stdout bytes, `--json` bytes).
fn sweep(args: &[&str], cache: &str, json_tag: &str) -> (Vec<u8>, Vec<u8>) {
    let json_path = scratch(&format!("{json_tag}.json"));
    let out = Command::new(env!("CARGO_BIN_EXE_osim-experiments"))
        .args(args)
        .args(["--cache", cache, "--json"])
        .arg(&json_path)
        .output()
        .expect("experiments binary runs");
    assert!(
        out.status.success(),
        "exit {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read(&json_path).expect("--json file written");
    let _ = std::fs::remove_file(&json_path);
    (out.stdout, json)
}

/// Runs a `cache <action>` maintenance command, returning (exit code,
/// stdout text).
fn cache_cmd(action: &str, dir: &std::path::Path, json: bool) -> (i32, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_osim-experiments"));
    cmd.arg("cache").arg(action).arg("--cache").arg(dir);
    if json {
        cmd.arg("--json");
    }
    let out = cmd.output().expect("experiments binary runs");
    (
        out.status.code().expect("exit code"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

fn entry_files(dir: &std::path::Path) -> Vec<PathBuf> {
    let mut v: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("cache dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    v.sort();
    v
}

#[test]
fn warm_rerun_is_byte_identical_and_entries_verify() {
    let dir = scratch("warm");
    let _ = std::fs::remove_dir_all(&dir);
    let dirs = dir.to_str().expect("utf-8 temp path");

    let (cold_out, cold_json) = sweep(&["gc", "--tiny"], dirs, "cold");
    let entries = entry_files(&dir);
    assert!(!entries.is_empty(), "cold run populated the cache");

    // Warm rerun: same bytes, no new entries. A different --jobs count is
    // used on purpose: host-only knobs must not miss the cache.
    let (warm_out, warm_json) = sweep(&["gc", "--tiny", "--jobs", "3"], dirs, "warm");
    assert_eq!(cold_out, warm_out, "stdout diverged between cold and warm");
    assert_eq!(
        cold_json, warm_json,
        "--json diverged between cold and warm"
    );
    assert_eq!(entry_files(&dir), entries, "warm run changed the cache");

    // Cache off: still the same bytes.
    let (off_out, off_json) = sweep(&["gc", "--tiny"], "off", "off");
    assert_eq!(cold_out, off_out, "stdout diverged between cached and off");
    assert_eq!(
        cold_json, off_json,
        "--json diverged between cached and off"
    );

    // Every entry decodes and validates.
    let (code, text) = cache_cmd("verify", &dir, false);
    assert_eq!(code, 0, "cache verify failed:\n{text}");

    // `cache clear` empties it (and only it).
    let foreign = dir.join("README");
    std::fs::write(&foreign, "not an entry").expect("write foreign file");
    let (code, _) = cache_cmd("clear", &dir, true);
    assert_eq!(code, 0);
    assert!(entry_files(&dir).is_empty(), "clear left entries behind");
    assert!(foreign.exists(), "clear removed a foreign file");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_entries_are_rerun_not_fatal() {
    let dir = scratch("corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    let dirs = dir.to_str().expect("utf-8 temp path");

    let (cold_out, cold_json) = sweep(&["gc", "--tiny"], dirs, "c-cold");
    let entries = entry_files(&dir);
    assert!(entries.len() >= 2, "want at least two entries to corrupt");

    // Corrupt one entry by truncation, another by flipping a byte inside
    // the report body (which must trip either the parser or the report
    // invariants).
    let text = std::fs::read_to_string(&entries[0]).expect("read entry");
    std::fs::write(&entries[0], &text[..text.len() / 2]).expect("truncate entry");
    let text = std::fs::read_to_string(&entries[1]).expect("read entry");
    let pos = text.find("\"cycles\":").expect("report body present") + "\"cycles\":".len() + 1;
    let mut bytes = text.into_bytes();
    bytes[pos] = if bytes[pos] == b'9' { b'8' } else { b'9' };
    std::fs::write(&entries[1], &bytes).expect("flip entry byte");

    // `cache verify` blames exactly the two tampered files.
    let (code, report) = cache_cmd("verify", &dir, false);
    assert_eq!(code, 1, "verify must fail on corrupted entries:\n{report}");
    assert_eq!(report.matches("BAD").count(), 1 + 2, "two blamed entries");

    // The sweep recovers: bad entries re-run, output unchanged, cache
    // healed.
    let (warm_out, warm_json) = sweep(&["gc", "--tiny"], dirs, "c-warm");
    assert_eq!(cold_out, warm_out, "stdout changed after corruption");
    assert_eq!(cold_json, warm_json, "--json changed after corruption");
    let (code, report) = cache_cmd("verify", &dir, false);
    assert_eq!(code, 0, "cache did not heal:\n{report}");

    let _ = std::fs::remove_dir_all(&dir);
}
