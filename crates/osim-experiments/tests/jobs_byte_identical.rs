//! End-to-end check that `--jobs <n>` is invisible in the binary's output.
//!
//! The in-process properties (`src/equivalence_tests.rs`) already prove the
//! pool returns identical results for any worker count; this test closes
//! the remaining gap — argument parsing, rendering and `--json` serialization
//! — by running the real binary twice and comparing raw bytes.

use std::path::PathBuf;
use std::process::Command;

/// Runs the experiments binary, returning (stdout bytes, `--json` bytes).
fn sweep(args: &[&str], jobs: &str, json_name: &str) -> (Vec<u8>, Vec<u8>) {
    let json_path: PathBuf = std::env::temp_dir().join(format!(
        "osim-jobs-eq-{}-{json_name}.json",
        std::process::id()
    ));
    let out = Command::new(env!("CARGO_BIN_EXE_osim-experiments"))
        .args(args)
        .args(["--jobs", jobs, "--json"])
        .arg(&json_path)
        .output()
        .expect("experiments binary runs");
    assert!(
        out.status.success(),
        "exit {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read(&json_path).expect("--json file written");
    let _ = std::fs::remove_file(&json_path);
    (out.stdout, json)
}

fn assert_jobs_invisible(args: &[&str]) {
    let (stdout_serial, json_serial) = sweep(args, "1", "serial");
    let (stdout_par, json_par) = sweep(args, "4", "par");
    assert_eq!(
        stdout_serial, stdout_par,
        "stdout diverged between --jobs 1 and --jobs 4 for {args:?}"
    );
    assert_eq!(
        json_serial, json_par,
        "--json diverged between --jobs 1 and --jobs 4 for {args:?}"
    );
    assert!(!json_serial.is_empty(), "--json produced no reports");
}

#[test]
fn fig8_tiny_output_is_byte_identical_across_jobs() {
    assert_jobs_invisible(&["fig8", "--tiny"]);
}

#[test]
fn gc_tiny_output_is_byte_identical_across_jobs() {
    assert_jobs_invisible(&["gc", "--tiny"]);
}

#[test]
fn fig6_tiny_with_stats_and_faults_is_byte_identical_across_jobs() {
    assert_jobs_invisible(&["fig6", "--tiny", "--stats", "--inject", "chaos"]);
}
