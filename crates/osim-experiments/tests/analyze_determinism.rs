//! End-to-end check on the `analyze` command: its causal report is
//! deterministic — byte-identical stdout and `--json` documents across
//! `--jobs` worker counts and across `--scheduler` implementations — and
//! the emitted schema-v4 document satisfies the critical-path invariants
//! (non-empty path on the contended figure workloads, segment cycles
//! summing exactly to the path length, path no longer than the run).

use std::path::PathBuf;
use std::process::Command;

use osim_report::json::{parse, Json};
use osim_report::{SimReport, SCHEMA_VERSION};

/// Runs `analyze --tiny` with the given extra flags, returning
/// (stdout bytes, `--json` bytes).
fn analyze(extra: &[&str], tag: &str) -> (Vec<u8>, Vec<u8>) {
    let json_path: PathBuf =
        std::env::temp_dir().join(format!("osim-analyze-eq-{}-{tag}.json", std::process::id()));
    let out = Command::new(env!("CARGO_BIN_EXE_osim-experiments"))
        .args(["analyze", "--tiny", "--json"])
        .arg(&json_path)
        .args(extra)
        .output()
        .expect("experiments binary runs");
    assert!(
        out.status.success(),
        "exit {:?}: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read(&json_path).expect("--json file written");
    let _ = std::fs::remove_file(&json_path);
    (out.stdout, json)
}

#[test]
fn analyze_output_is_byte_identical_across_jobs() {
    let (stdout_serial, json_serial) = analyze(&["--jobs", "1"], "jobs1");
    let (stdout_par, json_par) = analyze(&["--jobs", "4"], "jobs4");
    assert_eq!(
        stdout_serial, stdout_par,
        "analyze stdout diverged between --jobs 1 and --jobs 4"
    );
    assert_eq!(
        json_serial, json_par,
        "analyze --json diverged between --jobs 1 and --jobs 4"
    );
    assert!(!json_serial.is_empty(), "--json produced no reports");
}

#[test]
fn analyze_output_is_byte_identical_across_schedulers() {
    let (stdout_cal, json_cal) = analyze(&["--jobs", "1", "--scheduler", "calendar"], "cal");
    let (stdout_heap, json_heap) = analyze(&["--jobs", "1", "--scheduler", "heap"], "heap");
    assert_eq!(
        stdout_cal, stdout_heap,
        "analyze stdout diverged between schedulers"
    );
    assert_eq!(
        json_cal, json_heap,
        "analyze --json diverged between schedulers"
    );
}

#[test]
fn analyze_json_is_schema_v4_and_satisfies_path_invariants() {
    let (_, json) = analyze(&["--jobs", "2", "--fig", "7"], "shape");
    let doc = parse(&String::from_utf8(json).expect("utf-8 json")).expect("well-formed json");
    let arr = doc.as_arr().expect("top level is a report array");
    assert!(!arr.is_empty(), "analyze emitted no reports");
    let mut contended = 0usize;
    for j in arr {
        assert_eq!(
            j.get("schema").and_then(Json::as_u64),
            Some(SCHEMA_VERSION),
            "analyze reports must carry schema v4"
        );
        let r = SimReport::from_json(j).expect("report round-trips");
        let cp = r.critpath.as_ref().expect("analyze always attaches a path");
        cp.validate().expect("segment tiling invariants");
        assert!(
            cp.length() <= r.cycles,
            "{}: path {} exceeds run cycles {}",
            r.benchmark,
            cp.length(),
            r.cycles
        );
        assert_eq!(
            cp.segments.iter().map(|s| s.cycles()).sum::<u64>(),
            cp.length(),
            "{}: segment cycles must sum to the path length",
            r.benchmark
        );
        let trace = r.trace.expect("analyze records capture-ring occupancy");
        assert!(
            !r.timeseries.is_empty(),
            "{}: sampler produced no epochs",
            r.benchmark
        );
        if !cp.is_empty() {
            contended += 1;
            assert!(
                trace.dep_edges > 0,
                "{}: a non-empty path implies captured edges",
                r.benchmark
            );
            assert!(
                !cp.contenders.is_empty(),
                "{}: non-empty path but no contenders",
                r.benchmark
            );
        }
    }
    assert!(
        contended >= 1,
        "at least one fig7 workload must show a dependency critical path"
    );
}
