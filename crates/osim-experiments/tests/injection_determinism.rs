//! Determinism property of the fault-injection layer: the same workload
//! under the same `FaultPlan` (same seed, same knobs) produces a
//! byte-identical `SimReport` JSON document, every time. This is the
//! contract the `--inject` flag relies on: a failure schedule can be
//! replayed exactly from its spec string.

use osim_cpu::MachineCfg;
use osim_report::{ReportScale, SimReport};
use osim_uarch::{FaultPlan, PoolShrink};
use osim_workloads::harness::DsCfg;
use osim_workloads::linked_list;
use proptest::prelude::*;

/// One pressured run under `plan`, rendered to the exact JSON text the
/// `--json` flag would write for it.
fn run_to_json(plan: FaultPlan) -> String {
    let mut cfg = MachineCfg::paper(2);
    // A small pool with a low watermark keeps the refill/GC paths busy so
    // the injected faults actually land on exercised code.
    cfg.omgr.initial_free_blocks = 512;
    cfg.omgr.refill_blocks = 256;
    cfg.omgr.gc.watermark = 256;
    cfg.omgr.fault_plan = Some(plan);
    let ds = DsCfg {
        initial: 48,
        ops: 48,
        reads_per_write: 2,
        scan_range: 0,
        key_space: 192,
        seed: 7,
        insert_only: false,
    };
    let r = linked_list::run_versioned(cfg.clone(), &ds);
    assert!(r.ok, "injected run must still validate: {}", r.detail);
    let report = SimReport::new(
        "prop",
        "Linked list",
        "versioned",
        &cfg,
        ReportScale {
            small: 48,
            large: 48,
            ops: 48,
            mat_n: 0,
            lev_len: 0,
        },
        r.cycles,
        r.cpu.clone(),
        r.mem.clone(),
        r.ostats.clone(),
        r.engine,
        r.hists.clone(),
    );
    report.validate().expect("report invariants hold");
    report.to_json().to_pretty()
}

fn plan_strategy() -> impl Strategy<Value = FaultPlan> {
    (
        any::<u64>(),
        0u64..8,
        0u64..64,
        0u8..=100,
        0u32..4,
        proptest::option::of((16u64..256, 0u32..64)),
    )
        .prop_map(
            |(seed, jitter, coherence_delay, pct, max_fail, shrink)| FaultPlan {
                seed,
                pool_shrink: shrink.map(|(at_alloc, keep_blocks)| PoolShrink {
                    at_alloc,
                    keep_blocks,
                }),
                carve_fail_pct: pct,
                max_carve_failures: max_fail,
                refill_budget: None,
                latency_jitter: jitter,
                coherence_delay,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Two runs of the same seeded plan emit byte-identical report JSON.
    #[test]
    fn same_seed_same_report(plan in plan_strategy()) {
        prop_assert_eq!(run_to_json(plan), run_to_json(plan));
    }

    /// A plan survives the spec-string round trip, so `--inject <spec>`
    /// reconstructs exactly the plan that produced a report.
    #[test]
    fn spec_round_trips(plan in plan_strategy()) {
        let spec = plan.to_spec();
        let back = FaultPlan::parse(&spec)
            .unwrap_or_else(|e| panic!("reparse {spec}: {e}"));
        prop_assert_eq!(back, plan);
    }
}
