//! End-to-end checks of the experiment driver's machine-readable outputs:
//! the `--json` SimReport array and the `--chrome` trace-event document.

use std::path::PathBuf;
use std::process::Command;

use osim_report::json::{parse, Json};
use osim_report::SimReport;

fn out_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("osim_cli_{name}_{}", std::process::id()))
}

fn run_bin(args: &[&str]) {
    let out = Command::new(env!("CARGO_BIN_EXE_osim-experiments"))
        .args(args)
        .output()
        .expect("spawn osim-experiments");
    assert!(
        out.status.success(),
        "osim-experiments {args:?} failed ({:?}):\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn fig6_json_is_a_valid_simreport_array() {
    let path = out_path("fig6.json");
    run_bin(&["fig6", "--tiny", "--json", path.to_str().unwrap()]);
    let text = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let doc = parse(&text).expect("valid JSON");
    let rows = doc.as_arr().expect("top-level array");
    assert!(!rows.is_empty());
    let mut variants = Vec::new();
    for row in rows {
        let r = SimReport::from_json(row).expect("schema-conforming report");
        r.validate().expect("internally consistent report");
        assert_eq!(r.experiment, "fig6");
        assert!(r.cycles > 0);
        variants.push(r.variant);
    }
    // Both sides of every speedup cell are present.
    assert!(variants.iter().any(|v| v.starts_with("versioned")));
    assert!(variants.iter().any(|v| v.starts_with("unversioned")));
}

#[test]
fn trace_chrome_export_is_loadable() {
    let json = out_path("trace.json");
    let chrome = out_path("trace_chrome.json");
    run_bin(&[
        "trace",
        "--tiny",
        "--json",
        json.to_str().unwrap(),
        "--chrome",
        chrome.to_str().unwrap(),
    ]);
    let report_text = std::fs::read_to_string(&json).unwrap();
    let chrome_text = std::fs::read_to_string(&chrome).unwrap();
    std::fs::remove_file(&json).ok();
    std::fs::remove_file(&chrome).ok();

    // The report records the capture-buffer occupancy.
    let rows = parse(&report_text).unwrap();
    let r = SimReport::from_json(&rows.as_arr().unwrap()[0]).unwrap();
    let counts = r.trace.expect("traced run reports its buffers");
    assert!(counts.records > 0);
    assert!(counts.mem_events > 0);
    assert!(counts.mvm_events > 0);

    // The Chrome document has the trace-event shape.
    let doc = parse(&chrome_text).expect("valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut phases = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph");
        assert!(e.get("pid").and_then(Json::as_u64).is_some(), "pid");
        assert!(e.get("tid").and_then(Json::as_u64).is_some(), "tid");
        if ph != "M" {
            assert!(e.get("ts").and_then(Json::as_u64).is_some(), "ts");
        }
        phases.push(ph.to_string());
    }
    // Metadata, spans, and instants all appear.
    assert!(phases.iter().any(|p| p == "M"));
    assert!(phases.iter().any(|p| p == "X"));
    assert!(phases.iter().any(|p| p == "i"));
    // The record count in the report matches the op spans on the core
    // tracks (task spans are also "X" but live on pid 1).
    let op_spans = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("pid").and_then(Json::as_u64) == Some(0)
        })
        .count() as u64;
    assert_eq!(op_spans, counts.records);
}
