//! End-to-end smoke of the live observability plane: launch a real
//! long-running invocation with `--metrics-addr 127.0.0.1:0`, parse the
//! bound address off stderr, scrape `/metrics` over a plain
//! `std::net::TcpStream` (no curl), and assert the exposition is valid
//! Prometheus text with live families from all four instrumented layers.
//! A second test pins the non-perturbation contract: stdout with the
//! plane armed is byte-identical to stdout without it.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_osim-experiments");

/// Reads the child's stderr until the plane announces its bound address.
fn bound_addr(child: &mut Child) -> String {
    let stderr = child.stderr.take().expect("stderr piped");
    let mut lines = BufReader::new(stderr).lines();
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        assert!(Instant::now() < deadline, "no listening line within 60s");
        let line = lines
            .next()
            .expect("stderr closed before the listening line")
            .expect("stderr readable");
        if let Some(rest) = line.strip_prefix("metrics: listening on http://") {
            // Drain the rest of stderr on a background thread so the
            // child can never block on a full pipe.
            std::thread::spawn(move || for _ in lines {});
            return rest
                .strip_suffix("/metrics")
                .expect("address line shape")
                .to_string();
        }
    }
}

/// One `GET /metrics` scrape; asserts the HTTP envelope and returns the
/// body.
fn scrape(addr: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to metrics endpoint");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(
        head.contains("text/plain; version=0.0.4"),
        "prometheus content type: {head}"
    );
    body.to_string()
}

/// Every non-comment line must be `series[{labels}] value`: the value
/// parses as a finite float and label blocks are brace-balanced.
fn assert_valid_exposition(body: &str) {
    assert!(body.contains("# TYPE "), "no TYPE comments:\n{body}");
    for line in body.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("sample line without value: {line:?}");
        });
        let v: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
        assert!(v.is_finite(), "non-finite value in {line:?}");
        assert_eq!(
            series.contains('{'),
            series.ends_with('}'),
            "unbalanced label block in {line:?}"
        );
    }
}

/// Sum of all samples of one family prefix (folds labeled series).
fn family_total(body: &str, prefix: &str) -> f64 {
    body.lines()
        .filter(|l| l.starts_with(prefix) && !l.starts_with('#'))
        .filter_map(|l| l.rsplit_once(' '))
        .filter_map(|(_, v)| v.parse::<f64>().ok())
        .sum()
}

/// Value of one exact (unlabeled) series.
fn series_value(body: &str, name: &str) -> f64 {
    body.lines()
        .find(|l| l.split([' ', '{']).next() == Some(name))
        .and_then(|l| l.rsplit_once(' '))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or_else(|| panic!("series {name} absent"))
}

#[test]
fn stress_serves_live_metrics_from_all_four_layers() {
    let mut child = Command::new(BIN)
        .args([
            "stress",
            "--seeds",
            "2",
            "--scale",
            "tiny",
            "--jobs",
            "2",
            "--metrics-addr",
            "127.0.0.1:0",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn stress");
    let addr = bound_addr(&mut child);

    // The first jobq samples appear once the first sweep job completes;
    // poll until every layer reports activity (the heartbeat layers are
    // live from the first tick).
    let deadline = Instant::now() + Duration::from_secs(60);
    let first = loop {
        let body = scrape(&addr);
        let live = ["osim_jobq_", "osim_store_", "osim_vacuum_", "osim_cache_"]
            .iter()
            .all(|f| family_total(&body, f) > 0.0);
        if live {
            break body;
        }
        assert!(
            Instant::now() < deadline,
            "not all families went live within 60s:\n{body}"
        );
        std::thread::sleep(Duration::from_millis(100));
    };
    // Let the workload and the flight recorder make progress between the
    // two scrapes (each scrape also drives one heartbeat tick itself).
    std::thread::sleep(Duration::from_millis(400));
    let second = scrape(&addr);

    // The child has served its purpose; reap it before asserting so a
    // failure can't leak a running stress process.
    let _ = child.kill();
    let _ = child.wait();

    for body in [&first, &second] {
        assert_valid_exposition(body);
        for family in ["osim_jobq_", "osim_store_", "osim_vacuum_", "osim_cache_"] {
            assert!(
                family_total(body, family) > 0.0,
                "family {family} not live:\n{body}"
            );
        }
    }
    // Counters move between two scrapes of a running invocation: the
    // store/vacuum/cache layers advance at least once per collector tick.
    for name in [
        "osim_store_snapshot_publish_total",
        "osim_vacuum_passes_total",
        "osim_cache_hits_total",
    ] {
        assert!(
            series_value(&second, name) > series_value(&first, name),
            "{name} did not increase across scrapes"
        );
    }
    assert!(
        family_total(&second, "osim_jobq_jobs_total")
            >= family_total(&first, "osim_jobq_jobs_total")
    );
}

#[test]
fn armed_plane_leaves_stdout_byte_identical() {
    let run = |extra: &[&str]| -> Vec<u8> {
        let mut args = vec!["fig6", "--stats", "--scale", "tiny", "--jobs", "1"];
        args.extend_from_slice(extra);
        let out = Command::new(BIN).args(&args).output().expect("run fig6");
        assert!(out.status.success(), "fig6 failed: {:?}", out.status);
        out.stdout
    };
    let plain = run(&[]);
    let armed = run(&["--metrics-addr", "127.0.0.1:0"]);
    assert_eq!(
        plain, armed,
        "stdout must not change when the metrics endpoint is armed"
    );
}
