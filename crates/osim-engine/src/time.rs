//! Simulated time.

/// Simulated time, measured in processor clock cycles.
///
/// The paper's platform runs at 2 GHz (Table II), so one cycle is 0.5 ns and
/// the 60 ns DRAM latency is 120 cycles. All latencies in the simulator are
/// expressed in this unit.
pub type Cycle = u64;
