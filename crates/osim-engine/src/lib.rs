//! Deterministic discrete-event simulation engine.
//!
//! This crate provides the execution substrate for the O-structures
//! microarchitectural simulator: a single-threaded, time-ordered async
//! executor. Simulated hardware contexts (cores) are ordinary Rust futures
//! that advance simulated time with [`SimHandle::sleep`] and block on shared
//! conditions with [`Gate`]s. The executor always resumes the pending event
//! with the smallest `(time, tie, sequence)` key, so a given program produces
//! an identical event interleaving on every run — the property the paper's
//! deterministic-output claims rest on. By default the tie word equals the
//! sequence number (FIFO ties); [`ShakePolicy::Seeded`] replaces it with a
//! seeded splitmix64 stream that perturbs same-cycle dispatch order while
//! keeping per-seed determinism, which is what the stress harness uses to
//! explore many legal interleavings.
//!
//! The engine deliberately knows nothing about memory, caches or
//! O-structures; those live in `osim-mem`, `osim-uarch` and `osim-cpu`.
//!
//! # Example
//!
//! ```
//! use osim_engine::Sim;
//!
//! let sim = Sim::new();
//! let h = sim.handle();
//! sim.spawn(async move {
//!     h.sleep(10).await;
//!     assert_eq!(h.now(), 10);
//! });
//! let end = sim.run().expect("no deadlock");
//! assert_eq!(end, 10);
//! ```

mod executor;
mod gate;
mod time;

pub use executor::{
    BlockedTask, EngineHists, EngineStats, RunError, SchedulerKind, ShakePolicy, Sim, SimHandle,
    TaskId, WaitInfo,
};
pub use gate::{Gate, Wake, WakeFilter, WakeOrigin, WakeTag, WAKE_GENERIC};
pub use time::Cycle;
