//! The time-ordered single-threaded executor.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use osim_metrics::Histogram;

use crate::time::Cycle;

/// Identifier of a spawned simulation task (a hardware context, usually).
pub type TaskId = usize;

type BoxedTask = Pin<Box<dyn Future<Output = ()>>>;

/// Which event-queue implementation a [`Sim`] dispatches from.
///
/// Both produce the exact same dispatch order — the total order on
/// `(cycle, tie, seq)` (see [`ShakePolicy`]) — so simulated results are
/// bit-identical under either; the equivalence is enforced by property
/// tests and a CLI byte-comparison. The calendar queue is the default
/// because its push/pop are O(1) in the common case; the binary heap is
/// kept as the reference implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Hierarchical calendar queue (time wheel): near-future events live in
    /// per-cycle buckets, far-future events in an overflow heap.
    #[default]
    CalendarQueue,
    /// `BinaryHeap<Reverse<(Cycle, u64, u64, TaskId)>>` — the reference
    /// implementation the calendar queue is checked against.
    BinaryHeap,
}

impl SchedulerKind {
    /// Stable lower-case name, used by CLI flags and reports.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerKind::CalendarQueue => "calendar",
            SchedulerKind::BinaryHeap => "heap",
        }
    }

    /// Parses the names produced by [`SchedulerKind::name`].
    pub fn parse(s: &str) -> Option<SchedulerKind> {
        match s {
            "calendar" => Some(SchedulerKind::CalendarQueue),
            "heap" => Some(SchedulerKind::BinaryHeap),
            _ => None,
        }
    }
}

/// How the executor breaks ties between events scheduled for the same
/// cycle.
///
/// Every event carries an ordering key `(cycle, tie, seq)` where `seq` is
/// the global schedule sequence number. With the default [`Off`] policy the
/// tie word *is* `seq`, so ties resolve in schedule (FIFO) order — the
/// order every committed reference output was produced under. With
/// [`Seeded`] each event instead draws its tie word from a splitmix64
/// stream, which permutes same-cycle dispatch order while leaving the time
/// order untouched. The stream is consumed once per [`Inner::schedule`]
/// call, in schedule order, so a given seed produces one exact schedule:
/// same seed ⇒ byte-identical run, on either [`SchedulerKind`], regardless
/// of host parallelism. The stress harness fans many seeds to exercise
/// invariants across interleavings; see `osim-experiments stress`.
///
/// [`Off`]: ShakePolicy::Off
/// [`Seeded`]: ShakePolicy::Seeded
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShakePolicy {
    /// FIFO tie-breaks (`tie == seq`). The deterministic default.
    #[default]
    Off,
    /// Randomized tie-breaks drawn from a splitmix64 stream with this
    /// seed. Still fully deterministic per seed.
    Seeded(u64),
}

impl ShakePolicy {
    /// The seed when shaking is on.
    pub fn seed(&self) -> Option<u64> {
        match self {
            ShakePolicy::Off => None,
            ShakePolicy::Seeded(s) => Some(*s),
        }
    }

    /// Initial RNG state for the tie-break stream (`None` when off).
    fn rng_state(self) -> Option<u64> {
        self.seed()
    }
}

/// One step of the splitmix64 sequence (same generator the fault injector
/// uses); advances `state` and returns the output word.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Host-side counters describing what the engine's dispatch loop did.
///
/// Identical under both [`SchedulerKind`]s (the queues hold the same event
/// multiset and pop it in the same order), so exposing these in reports
/// keeps output byte-identical across schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Events popped that resumed a live task (one per task poll).
    pub events_dispatched: u64,
    /// Events that referenced an already-completed task when they were
    /// removed — popped-and-skipped or dropped by a queue sweep. Each one
    /// is queue space a dead task was still holding.
    pub stale_events: u64,
}

/// Latency distributions recorded by the engine's wait/notify layer.
///
/// Like [`EngineStats`], the contents are functions of the simulated
/// event multiset only — park and wake cycles are identical under both
/// [`SchedulerKind`]s — so the histograms are scheduler-invariant and safe
/// to embed in byte-compared reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineHists {
    /// Simulated cycles each gate waiter spent parked before its wake.
    pub gate_wait: Histogram,
    /// Waiters released per gate open (0 when a targeted open matched
    /// nobody; empty-queue opens are not recorded).
    pub wake_fanout: Histogram,
}

impl EngineHists {
    /// Clears both histograms.
    pub fn reset(&mut self) {
        self.gate_wait.reset();
        self.wake_fanout.reset();
    }
}

/// What a blocked task is waiting for, as reported by the layer that parked
/// it (the engine only stores and returns these records). The fields are
/// deliberately plain integers so the engine stays ignorant of addresses,
/// versions and task-id vocabularies defined above it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitInfo {
    /// Upper-layer label of the waiting task (e.g. the cpu-layer task id),
    /// distinct from the engine [`TaskId`].
    pub label: u64,
    /// The contended resource (e.g. a virtual address).
    pub resource: u64,
    /// The awaited state of the resource (e.g. a version number).
    pub target: u64,
    /// Short stable wait-kind name (e.g. `missing-version`).
    pub kind: &'static str,
    /// Label of the task holding the resource, when known.
    pub holder: Option<u64>,
}

impl std::fmt::Display for WaitInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task {} waiting for {} at va {:#010x} version {}",
            self.label, self.kind, self.resource, self.target
        )?;
        if let Some(h) = self.holder {
            write!(f, " held by task {h}")?;
        }
        Ok(())
    }
}

/// One entry of a deadlock report: a task that can never run again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedTask {
    /// Engine task id.
    pub task: TaskId,
    /// Cycle at which the wait record was registered (None if the task
    /// never registered one).
    pub since: Option<Cycle>,
    /// The wait record, when the parking layer registered one via
    /// [`SimHandle::set_wait_info`].
    pub info: Option<WaitInfo>,
}

/// Why [`Sim::run`] stopped before all tasks completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The event queue drained while tasks were still pending: every pending
    /// task is blocked on a [`crate::Gate`] that nobody will open. For the
    /// O-structures simulator this means a versioned load is waiting for a
    /// version that no remaining task will ever create.
    Deadlock {
        /// Simulated time at which the deadlock was detected.
        now: Cycle,
        /// Every task still blocked, with its wait record when one was
        /// registered.
        blocked: Vec<BlockedTask>,
    },
    /// A task asked the simulation to stop via [`SimHandle::request_halt`]
    /// (the cpu layer does this to surface an architectural fault as a
    /// typed error instead of a panic).
    Halted {
        /// Simulated time at which the halt took effect.
        now: Cycle,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Deadlock { now, blocked } => {
                write!(
                    f,
                    "simulation deadlock at cycle {now}: {} task(s) blocked forever",
                    blocked.len()
                )?;
                for b in blocked {
                    match &b.info {
                        Some(info) => write!(f, "\n  engine task {}: {info}", b.task)?,
                        None => write!(f, "\n  engine task {}: no wait record", b.task)?,
                    }
                }
                Ok(())
            }
            RunError::Halted { now } => {
                write!(f, "simulation halted at cycle {now} by request")
            }
        }
    }
}

impl std::error::Error for RunError {}

/// Cycles per calendar epoch: one bucket per cycle, `WHEEL_SLOTS` cycles
/// per wheel turn. Sized so typical memory/pipeline latencies (1–200
/// cycles) land in the near wheel and only long watchdog/DRAM-refresh-style
/// sleeps overflow to the heap.
const WHEEL_BITS: u32 = 8;
const WHEEL_SLOTS: usize = 1 << WHEEL_BITS;
const WHEEL_MASK: u64 = WHEEL_SLOTS as u64 - 1;
const WHEEL_WORDS: usize = WHEEL_SLOTS / 64;

/// One calendar bucket: all events for a single cycle, in `(tie, seq)`
/// order. `head` marks how many have been consumed; the `Vec` keeps its
/// capacity across wheel turns, so steady-state pushes are allocation-free.
#[derive(Default)]
struct Bucket {
    head: usize,
    events: Vec<(u64, u64, TaskId)>,
}

/// Hierarchical calendar queue over `(cycle, tie, seq, task)` events.
///
/// Invariants that make the pop order identical to the reference heap:
///
/// * `epoch` only moves forward, and bucket `i` holds events for exactly
///   cycle `epoch * WHEEL_SLOTS + i`. Because `schedule` clamps times to
///   `>= now`, a push targeting the current epoch can only land at or after
///   the cursor. With shaking off (`tie == seq`, monotone) appends within a
///   bucket already arrive sorted; with shaking on, `push` binary-searches
///   the un-consumed tail so the bucket stays in `(tie, seq)` order.
/// * The overflow heap only ever holds events of epochs *after* `epoch`
///   (current-epoch events go straight to their bucket), so near events
///   always sort before every overflow event and the two stores never have
///   to be merged for a single cycle.
/// * When the near wheel drains, the queue jumps to the earliest overflow
///   epoch and migrates that whole epoch into the (empty) buckets; the heap
///   pops in `(cycle, tie, seq)` order, so each bucket is filled sorted.
struct CalendarQueue {
    epoch: u64,
    /// Next bucket index to inspect; trails `now & WHEEL_MASK`.
    cursor: usize,
    /// Events currently in the near wheel.
    near_len: usize,
    /// Total events (near wheel + overflow).
    len: usize,
    /// Whether tie words may be non-monotone (shaking on); gates the
    /// sorted-insert path in `push` so the common case stays a plain append.
    shaken: bool,
    /// One bit per bucket with at least one un-consumed event.
    occupied: [u64; WHEEL_WORDS],
    buckets: Vec<Bucket>,
    overflow: BinaryHeap<Reverse<(Cycle, u64, u64, TaskId)>>,
}

impl CalendarQueue {
    fn new(shaken: bool) -> Self {
        let mut buckets = Vec::with_capacity(WHEEL_SLOTS);
        buckets.resize_with(WHEEL_SLOTS, Bucket::default);
        CalendarQueue {
            epoch: 0,
            cursor: 0,
            near_len: 0,
            len: 0,
            shaken,
            occupied: [0; WHEEL_WORDS],
            buckets,
            overflow: BinaryHeap::new(),
        }
    }

    #[inline]
    fn push(&mut self, at: Cycle, tie: u64, seq: u64, task: TaskId) {
        self.len += 1;
        if at >> WHEEL_BITS == self.epoch {
            let idx = (at & WHEEL_MASK) as usize;
            let b = &mut self.buckets[idx];
            if self.shaken {
                // Keep the un-consumed tail sorted by (tie, seq); already-
                // dispatched entries before `head` must not move.
                let pos =
                    b.head + b.events[b.head..].partition_point(|&(t, s, _)| (t, s) < (tie, seq));
                b.events.insert(pos, (tie, seq, task));
            } else {
                b.events.push((tie, seq, task));
            }
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.near_len += 1;
        } else {
            self.overflow.push(Reverse((at, tie, seq, task)));
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(Cycle, TaskId)> {
        if self.len == 0 {
            return None;
        }
        if self.near_len == 0 {
            self.advance_epoch();
        }
        let idx = self.next_occupied(self.cursor);
        self.cursor = idx;
        let b = &mut self.buckets[idx];
        let (_, _, task) = b.events[b.head];
        b.head += 1;
        if b.head == b.events.len() {
            b.events.clear();
            b.head = 0;
            self.occupied[idx / 64] &= !(1 << (idx % 64));
        }
        self.near_len -= 1;
        self.len -= 1;
        Some(((self.epoch << WHEEL_BITS) | idx as u64, task))
    }

    /// Jumps the wheel to the earliest overflow epoch and unloads that
    /// epoch's events into the (drained) buckets. Only called when the
    /// near wheel is empty and the overflow is not.
    fn advance_epoch(&mut self) {
        let next = match self.overflow.peek() {
            Some(&Reverse((c, _, _, _))) => c >> WHEEL_BITS,
            None => unreachable!("non-empty queue with empty wheel and empty overflow"),
        };
        debug_assert!(next > self.epoch, "epoch went backwards");
        self.epoch = next;
        self.cursor = 0;
        while let Some(&Reverse((c, _, _, _))) = self.overflow.peek() {
            if c >> WHEEL_BITS != self.epoch {
                break;
            }
            let Some(Reverse((c, tie, seq, task))) = self.overflow.pop() else {
                unreachable!("peeked entry vanished")
            };
            let idx = (c & WHEEL_MASK) as usize;
            self.buckets[idx].events.push((tie, seq, task));
            self.occupied[idx / 64] |= 1 << (idx % 64);
            self.near_len += 1;
        }
    }

    /// Index of the first occupied bucket at or after `from`. Callers
    /// guarantee the wheel is non-empty.
    #[inline]
    fn next_occupied(&self, from: usize) -> usize {
        let word = from / 64;
        let masked = self.occupied[word] & (!0u64 << (from % 64));
        if masked != 0 {
            return word * 64 + masked.trailing_zeros() as usize;
        }
        for w in word + 1..WHEEL_WORDS {
            if self.occupied[w] != 0 {
                return w * 64 + self.occupied[w].trailing_zeros() as usize;
            }
        }
        unreachable!("occupancy bitmap empty with near_len > 0")
    }

    /// Drops every event whose task is dead, preserving the order of the
    /// survivors. Returns how many events were removed.
    fn retain_live(&mut self, mut live: impl FnMut(TaskId) -> bool) -> u64 {
        let mut removed = 0u64;
        for idx in 0..WHEEL_SLOTS {
            let b = &mut self.buckets[idx];
            if b.events.is_empty() {
                continue;
            }
            let mut w = 0;
            for r in b.head..b.events.len() {
                let ev = b.events[r];
                if live(ev.2) {
                    b.events[w] = ev;
                    w += 1;
                } else {
                    removed += 1;
                }
            }
            b.events.truncate(w);
            b.head = 0;
            if w == 0 {
                self.occupied[idx / 64] &= !(1 << (idx % 64));
            }
        }
        self.near_len -= removed as usize;
        let before = self.overflow.len();
        if before > 0 {
            let kept: Vec<_> = self
                .overflow
                .drain()
                .filter(|&Reverse((_, _, _, t))| live(t))
                .collect();
            removed += (before - kept.len()) as u64;
            self.overflow = BinaryHeap::from(kept);
        }
        self.len -= removed as usize;
        removed
    }

    fn clear(&mut self) {
        for b in &mut self.buckets {
            b.events.clear();
            b.head = 0;
        }
        self.occupied = [0; WHEEL_WORDS];
        self.near_len = 0;
        self.len = 0;
        self.overflow.clear();
    }
}

/// The event store behind a [`Sim`], selected by [`SchedulerKind`]. Both
/// variants implement the same `(cycle, tie, seq)` total order.
enum EventQueue {
    Heap(BinaryHeap<Reverse<(Cycle, u64, u64, TaskId)>>),
    Calendar(CalendarQueue),
}

impl EventQueue {
    fn new(kind: SchedulerKind, shaken: bool) -> Self {
        match kind {
            SchedulerKind::BinaryHeap => EventQueue::Heap(BinaryHeap::new()),
            SchedulerKind::CalendarQueue => EventQueue::Calendar(CalendarQueue::new(shaken)),
        }
    }

    #[inline]
    fn push(&mut self, at: Cycle, tie: u64, seq: u64, task: TaskId) {
        match self {
            EventQueue::Heap(h) => h.push(Reverse((at, tie, seq, task))),
            EventQueue::Calendar(c) => c.push(at, tie, seq, task),
        }
    }

    #[inline]
    fn pop(&mut self) -> Option<(Cycle, TaskId)> {
        match self {
            EventQueue::Heap(h) => h.pop().map(|Reverse((at, _, _, task))| (at, task)),
            EventQueue::Calendar(c) => c.pop(),
        }
    }

    #[inline]
    fn len(&self) -> usize {
        match self {
            EventQueue::Heap(h) => h.len(),
            EventQueue::Calendar(c) => c.len,
        }
    }

    fn retain_live(&mut self, mut live: impl FnMut(TaskId) -> bool) -> u64 {
        match self {
            EventQueue::Heap(h) => {
                let before = h.len();
                let kept: Vec<_> = h.drain().filter(|&Reverse((_, _, _, t))| live(t)).collect();
                let removed = (before - kept.len()) as u64;
                *h = BinaryHeap::from(kept);
                removed
            }
            EventQueue::Calendar(c) => c.retain_live(live),
        }
    }

    fn clear(&mut self) {
        match self {
            EventQueue::Heap(h) => h.clear(),
            EventQueue::Calendar(c) => c.clear(),
        }
    }
}

/// Sweep dead-task events only once at least this many have accumulated
/// (and they make up at least half the queue) — keeps the amortized cost of
/// eager cleanup near zero while still bounding queue growth.
const SWEEP_MIN_DEAD: u64 = 64;

pub(crate) struct Inner {
    now: Cycle,
    next_seq: u64,
    /// splitmix64 state for shaken tie-breaks; `None` when the policy is
    /// [`ShakePolicy::Off`] (ties then fall back to `seq`).
    shake_rng: Option<u64>,
    /// Pending `(wake_time, tie, sequence, task)` events. The sequence
    /// number makes the pop order a total order, which makes runs
    /// deterministic — including shaken runs, where the tie word comes
    /// from a seeded stream consumed in schedule order.
    queue: EventQueue,
    tasks: Vec<Option<BoxedTask>>,
    live: usize,
    /// Task currently being polled; leaf futures read this to learn who they
    /// belong to.
    current: Option<TaskId>,
    /// Queued-event count per task (indexed like `tasks`); lets task
    /// completion account its still-queued events as dead without touching
    /// the queue.
    pending: Vec<u32>,
    /// Events in the queue whose task has already completed. Once enough
    /// accumulate, the run loop sweeps them out (see [`SWEEP_MIN_DEAD`]).
    dead_events: u64,
    stats: EngineStats,
    /// Gate wait/fan-out distributions (recorded by `gate.rs`).
    hists: EngineHists,
    /// Wait records registered by parked tasks (indexed like `tasks`),
    /// paired with the registration cycle.
    wait_info: Vec<Option<(Cycle, WaitInfo)>>,
    /// Set by [`SimHandle::request_halt`]; the run loop stops before the
    /// next event once it is raised.
    halt: bool,
}

impl Inner {
    #[inline]
    pub(crate) fn schedule(&mut self, at: Cycle, task: TaskId) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let tie = match &mut self.shake_rng {
            Some(state) => splitmix64(state),
            None => seq,
        };
        let at = at.max(self.now);
        self.pending[task] += 1;
        self.queue.push(at, tie, seq, task);
    }

    pub(crate) fn now(&self) -> Cycle {
        self.now
    }

    /// Records one waiter's parked duration (allocation-free).
    #[inline]
    pub(crate) fn record_gate_wait(&mut self, cycles: Cycle) {
        self.hists.gate_wait.record(cycles);
    }

    /// Records how many waiters one gate open released (allocation-free).
    #[inline]
    pub(crate) fn record_wake_fanout(&mut self, n: u64) {
        self.hists.wake_fanout.record(n);
    }

    pub(crate) fn current_task(&self) -> TaskId {
        match self.current {
            Some(t) => t,
            None => unreachable!("engine primitive used outside of a simulation task poll"),
        }
    }

    /// Drops every queued event that belongs to a completed task. Called
    /// from the run loop between polls, when no task is checked out, so
    /// `tasks[t].is_none()` means exactly "completed".
    fn sweep_dead(&mut self) {
        let tasks = &self.tasks;
        let pending = &mut self.pending;
        let removed = self.queue.retain_live(|t| {
            if tasks[t].is_some() {
                true
            } else {
                pending[t] -= 1;
                false
            }
        });
        self.stats.stale_events += removed;
        self.dead_events -= removed;
    }

    fn blocked_snapshot(&self) -> Vec<BlockedTask> {
        let mut out = Vec::new();
        self.visit_blocked(|task, since, info| {
            out.push(BlockedTask {
                task,
                since,
                info: info.cloned(),
            })
        });
        out
    }

    fn visit_blocked(&self, mut f: impl FnMut(TaskId, Option<Cycle>, Option<&WaitInfo>)) {
        for (task, t) in self.tasks.iter().enumerate() {
            if t.is_some() {
                let (since, info) = match &self.wait_info[task] {
                    Some((at, w)) => (Some(*at), Some(w)),
                    None => (None, None),
                };
                f(task, since, info);
            }
        }
    }
}

/// A deterministic discrete-event simulation.
///
/// Create one, [`spawn`](Sim::spawn) the hardware contexts, then [`run`](Sim::run).
pub struct Sim {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulation at cycle 0 with the default scheduler.
    pub fn new() -> Self {
        Self::with_scheduler(SchedulerKind::default())
    }

    /// Creates an empty simulation at cycle 0 dispatching from the given
    /// event-queue implementation, with shaking off.
    pub fn with_scheduler(kind: SchedulerKind) -> Self {
        Self::with_policy(kind, ShakePolicy::Off)
    }

    /// Creates an empty simulation at cycle 0 with an explicit event-queue
    /// implementation and same-cycle tie-break policy.
    pub fn with_policy(kind: SchedulerKind, shake: ShakePolicy) -> Self {
        Sim {
            inner: Rc::new(RefCell::new(Inner {
                now: 0,
                next_seq: 0,
                shake_rng: shake.rng_state(),
                queue: EventQueue::new(kind, shake != ShakePolicy::Off),
                tasks: Vec::new(),
                live: 0,
                current: None,
                pending: Vec::new(),
                dead_events: 0,
                stats: EngineStats::default(),
                hists: EngineHists::default(),
                wait_info: Vec::new(),
                halt: false,
            })),
        }
    }

    /// Returns a cloneable handle used by tasks to interact with simulated
    /// time (sleep, spawn, gates).
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            inner: Rc::clone(&self.inner),
        }
    }

    /// Spawns a task; it becomes runnable at the current simulated time.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        self.handle().spawn(fut)
    }

    /// Runs until every task has completed.
    ///
    /// Returns the final simulated time, or a [`RunError::Deadlock`] if some
    /// tasks can never make progress again.
    pub fn run(&self) -> Result<Cycle, RunError> {
        loop {
            // One borrow covers pop-event plus check-out-task: this loop runs
            // once per task resumption, so the borrow bookkeeping is hot.
            let (task, mut fut) = {
                let mut inner = self.inner.borrow_mut();
                if inner.halt {
                    let now = inner.now;
                    // Break the task<->handle Rc cycle so dropped Sims
                    // release their task closures even on halt.
                    inner.tasks.clear();
                    inner.queue.clear();
                    return Err(RunError::Halted { now });
                }
                if inner.dead_events >= SWEEP_MIN_DEAD
                    && inner.dead_events >= (inner.queue.len() as u64) / 2
                {
                    inner.sweep_dead();
                }
                let (at, task) = match inner.queue.pop() {
                    Some(ev) => ev,
                    None => {
                        let now = inner.now;
                        if inner.live > 0 {
                            let blocked = inner.blocked_snapshot();
                            // Break the task<->handle Rc cycle so dropped Sims
                            // release their task closures even on deadlock.
                            inner.tasks.clear();
                            return Err(RunError::Deadlock { now, blocked });
                        }
                        return Ok(now);
                    }
                };
                debug_assert!(at >= inner.now, "time went backwards");
                inner.now = at;
                inner.pending[task] -= 1;
                match inner.tasks[task].take() {
                    Some(f) => {
                        inner.current = Some(task);
                        inner.stats.events_dispatched += 1;
                        (task, f)
                    }
                    // Stale event for a task that already finished.
                    None => {
                        inner.stats.stale_events += 1;
                        inner.dead_events -= 1;
                        continue;
                    }
                }
            };
            let waker = Waker::noop();
            let mut cx = Context::from_waker(waker);
            let done = fut.as_mut().poll(&mut cx).is_ready();
            let mut inner = self.inner.borrow_mut();
            inner.current = None;
            if done {
                inner.live -= 1;
                inner.wait_info[task] = None;
                // Any events the finished task still has queued are dead;
                // account them so the sweep can reclaim the space.
                inner.dead_events += inner.pending[task] as u64;
            } else {
                inner.tasks[task] = Some(fut);
            }
        }
    }

    /// Current simulated time in cycles.
    pub fn now(&self) -> Cycle {
        self.inner.borrow().now
    }

    /// Dispatch-loop counters accumulated so far (also available after
    /// [`Sim::run`] returns).
    pub fn stats(&self) -> EngineStats {
        self.inner.borrow().stats
    }

    /// Snapshot of the gate wait/fan-out histograms accumulated so far.
    pub fn hists(&self) -> EngineHists {
        self.inner.borrow().hists.clone()
    }
}

/// A cloneable handle to the simulation, usable from inside tasks.
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) inner: Rc<RefCell<Inner>>,
}

impl SimHandle {
    /// Current simulated time in cycles.
    pub fn now(&self) -> Cycle {
        self.inner.borrow().now
    }

    /// Number of tasks that have been spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.borrow().live
    }

    /// Dispatch-loop counters accumulated so far.
    pub fn engine_stats(&self) -> EngineStats {
        self.inner.borrow().stats
    }

    /// Snapshot of the gate wait/fan-out histograms accumulated so far.
    pub fn engine_hists(&self) -> EngineHists {
        self.inner.borrow().hists.clone()
    }

    /// Clears the gate wait/fan-out histograms (used when a measurement
    /// window starts after a warm-up phase).
    pub fn reset_engine_hists(&self) {
        self.inner.borrow_mut().hists.reset();
    }

    /// Spawns a new task, runnable at the current simulated time.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let mut inner = self.inner.borrow_mut();
        let id = inner.tasks.len();
        inner.tasks.push(Some(Box::pin(fut)));
        inner.wait_info.push(None);
        inner.pending.push(0);
        inner.live += 1;
        let now = inner.now;
        inner.schedule(now, id);
        id
    }

    /// Suspends the calling task for `cycles` simulated cycles.
    ///
    /// `sleep(0)` yields: the task is rescheduled at the current time behind
    /// every event already queued for this cycle.
    pub fn sleep(&self, cycles: Cycle) -> Sleep {
        Sleep {
            inner: Rc::clone(&self.inner),
            until: None,
            duration: cycles,
            armed: false,
        }
    }

    /// Suspends the calling task until the given absolute cycle (no-op if it
    /// is already in the past).
    pub fn sleep_until(&self, at: Cycle) -> Sleep {
        Sleep {
            inner: Rc::clone(&self.inner),
            until: Some(at),
            duration: 0,
            armed: false,
        }
    }

    /// Creates a new [`crate::Gate`] bound to this simulation.
    pub fn gate(&self) -> crate::Gate {
        crate::Gate::new(Rc::clone(&self.inner))
    }

    /// Registers what the *current* task is about to block on, so that a
    /// later deadlock or watchdog report can name the wait target. Call
    /// [`clear_wait_info`](Self::clear_wait_info) after waking.
    pub fn set_wait_info(&self, info: WaitInfo) {
        let mut inner = self.inner.borrow_mut();
        let task = inner.current_task();
        let now = inner.now;
        inner.wait_info[task] = Some((now, info));
    }

    /// Clears the current task's wait record (the wait completed).
    pub fn clear_wait_info(&self) {
        let mut inner = self.inner.borrow_mut();
        let task = inner.current_task();
        inner.wait_info[task] = None;
    }

    /// Asks the run loop to stop before dispatching the next event;
    /// [`Sim::run`] then returns [`RunError::Halted`]. Used by upper layers
    /// to abort the simulation on an unrecoverable modeled fault.
    pub fn request_halt(&self) {
        self.inner.borrow_mut().halt = true;
    }

    /// Visits every live-but-parked task and its wait record *by
    /// reference* — the allocation-free counterpart of
    /// [`parked_tasks`](Self::parked_tasks), for periodic monitors
    /// (watchdog ticks) that only inspect the records.
    pub fn visit_parked(&self, f: impl FnMut(TaskId, Option<Cycle>, Option<&WaitInfo>)) {
        self.inner.borrow().visit_blocked(f);
    }

    /// Number of live-but-parked tasks (excluding the currently-polled
    /// task, if any).
    pub fn parked_count(&self) -> usize {
        let mut n = 0;
        self.visit_parked(|_, _, _| n += 1);
        n
    }

    /// Snapshot of every live-but-parked task and its wait record, cloning
    /// each [`WaitInfo`]. Meant for *terminal* diagnostics (a watchdog that
    /// decided to fire, a deadlock dump); periodic monitors should use
    /// [`visit_parked`](Self::visit_parked) instead.
    pub fn parked_tasks(&self) -> Vec<BlockedTask> {
        self.inner.borrow().blocked_snapshot()
    }
}

/// Future returned by [`SimHandle::sleep`] / [`SimHandle::sleep_until`].
pub struct Sleep {
    inner: Rc<RefCell<Inner>>,
    /// Absolute deadline; `None` means "relative `duration` from first poll".
    until: Option<Cycle>,
    duration: Cycle,
    armed: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let mut inner = this.inner.borrow_mut();
        if this.armed {
            // Even `sleep(0)` goes through the queue once so a yield is a
            // real scheduling point; by then `now >= deadline` always holds.
            let deadline = match this.until {
                Some(at) => at,
                None => unreachable!("armed sleep has deadline"),
            };
            return if inner.now >= deadline {
                Poll::Ready(())
            } else {
                Poll::Pending // spurious poll before the deadline
            };
        }
        let deadline = match this.until {
            Some(at) => at,
            None => inner.now + this.duration,
        };
        this.until = Some(deadline);
        this.armed = true;
        let task = inner.current_task();
        inner.schedule(deadline, task);
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn empty_sim_finishes_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.run(), Ok(0));
    }

    #[test]
    fn sleep_advances_time() {
        let sim = Sim::new();
        let h = sim.handle();
        sim.spawn(async move {
            assert_eq!(h.now(), 0);
            h.sleep(7).await;
            assert_eq!(h.now(), 7);
            h.sleep(3).await;
            assert_eq!(h.now(), 10);
        });
        assert_eq!(sim.run(), Ok(10));
    }

    #[test]
    fn sleep_until_past_is_noop() {
        let sim = Sim::new();
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(5).await;
            h.sleep_until(3).await;
            assert_eq!(h.now(), 5);
            h.sleep_until(9).await;
            assert_eq!(h.now(), 9);
        });
        assert_eq!(sim.run(), Ok(9));
    }

    #[test]
    fn tasks_interleave_in_time_order() {
        for kind in [SchedulerKind::CalendarQueue, SchedulerKind::BinaryHeap] {
            let sim = Sim::with_scheduler(kind);
            let log: Rc<RefCell<Vec<(u32, Cycle)>>> = Rc::default();
            for (id, period) in [(0u32, 3u64), (1, 5)] {
                let h = sim.handle();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    for _ in 0..3 {
                        h.sleep(period).await;
                        log.borrow_mut().push((id, h.now()));
                    }
                });
            }
            sim.run().unwrap();
            assert_eq!(
                *log.borrow(),
                vec![(0, 3), (1, 5), (0, 6), (0, 9), (1, 10), (1, 15)]
            );
        }
    }

    #[test]
    fn same_cycle_ties_break_by_schedule_order() {
        for kind in [SchedulerKind::CalendarQueue, SchedulerKind::BinaryHeap] {
            let sim = Sim::with_scheduler(kind);
            let log: Rc<RefCell<Vec<u32>>> = Rc::default();
            for id in 0..4u32 {
                let h = sim.handle();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    h.sleep(10).await;
                    log.borrow_mut().push(id);
                });
            }
            sim.run().unwrap();
            assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
        }
    }

    #[test]
    fn zero_sleep_is_a_yield_point() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        {
            let log = Rc::clone(&log);
            let h = sim.handle();
            sim.spawn(async move {
                log.borrow_mut().push(1);
                h.sleep(0).await;
                log.borrow_mut().push(3);
            });
        }
        {
            let log = Rc::clone(&log);
            sim.spawn(async move {
                log.borrow_mut().push(2);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn dynamic_spawn_runs_at_current_time() {
        let sim = Sim::new();
        let h = sim.handle();
        let hit = Rc::new(Cell::new(0u64));
        let hit2 = Rc::clone(&hit);
        sim.spawn(async move {
            h.sleep(12).await;
            let h2 = h.clone();
            let hit3 = Rc::clone(&hit2);
            h.spawn(async move {
                h2.sleep(5).await;
                hit3.set(h2.now());
            });
        });
        assert_eq!(sim.run(), Ok(17));
        assert_eq!(hit.get(), 17);
    }

    #[test]
    fn long_sleeps_cross_epochs_in_order() {
        // Exercises the overflow heap and epoch migration: deadlines far
        // beyond one wheel turn, plus a short sleeper interleaved.
        for kind in [SchedulerKind::CalendarQueue, SchedulerKind::BinaryHeap] {
            let sim = Sim::with_scheduler(kind);
            let log: Rc<RefCell<Vec<(u32, Cycle)>>> = Rc::default();
            for (id, period) in [(0u32, 7u64), (1, 300), (2, 70_000)] {
                let h = sim.handle();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    for _ in 0..3 {
                        h.sleep(period).await;
                        log.borrow_mut().push((id, h.now()));
                    }
                });
            }
            sim.run().unwrap();
            let mut sorted = log.borrow().clone();
            sorted.sort_by_key(|&(_, at)| at);
            assert_eq!(*log.borrow(), sorted, "dispatch must follow time order");
            assert_eq!(log.borrow().len(), 9);
            assert_eq!(log.borrow().last(), Some(&(2, 210_000)));
        }
    }

    #[test]
    fn deadlock_is_reported() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        sim.spawn(async move {
            gate.wait().await; // nobody will ever open this
        });
        assert_eq!(
            sim.run(),
            Err(RunError::Deadlock {
                now: 0,
                blocked: vec![BlockedTask {
                    task: 0,
                    since: None,
                    info: None,
                }],
            })
        );
    }

    #[test]
    fn deadlock_report_carries_wait_info() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        sim.spawn(async move {
            h.sleep(4).await;
            h.set_wait_info(WaitInfo {
                label: 17,
                resource: 0x1000,
                target: 3,
                kind: "missing-version",
                holder: Some(9),
            });
            gate.wait().await; // nobody will ever open this
        });
        let err = sim.run().unwrap_err();
        let RunError::Deadlock { now, blocked } = err.clone() else {
            panic!("expected deadlock, got {err:?}");
        };
        assert_eq!(now, 4);
        assert_eq!(blocked.len(), 1);
        assert_eq!(blocked[0].since, Some(4));
        let info = blocked[0].info.as_ref().unwrap();
        assert_eq!((info.label, info.resource, info.target), (17, 0x1000, 3));
        assert_eq!(info.kind, "missing-version");
        assert_eq!(info.holder, Some(9));
        let msg = err.to_string();
        assert!(msg.contains("task 17"), "{msg}");
        assert!(msg.contains("missing-version"), "{msg}");
        assert!(msg.contains("version 3"), "{msg}");
        assert!(msg.contains("held by task 9"), "{msg}");
    }

    #[test]
    fn wait_info_cleared_on_completion_and_clear() {
        let sim = Sim::new();
        let h = sim.handle();
        let h2 = h.clone();
        let gate = h.gate();
        let gate2 = gate.clone();
        sim.spawn(async move {
            h.set_wait_info(WaitInfo {
                label: 1,
                resource: 0,
                target: 0,
                kind: "test",
                holder: None,
            });
            gate.wait().await;
            h.clear_wait_info();
            h.sleep(1).await;
        });
        sim.spawn(async move {
            h2.sleep(2).await;
            gate2.open();
        });
        assert_eq!(sim.run(), Ok(3));
    }

    #[test]
    fn halt_request_stops_the_run() {
        let sim = Sim::new();
        let h = sim.handle();
        let h2 = sim.handle();
        sim.spawn(async move {
            h.sleep(5).await;
            h.request_halt();
            h.sleep(100).await; // never resumed
        });
        sim.spawn(async move {
            h2.sleep(1_000).await; // never reached either
        });
        assert_eq!(sim.run(), Err(RunError::Halted { now: 5 }));
    }

    #[test]
    fn determinism_across_runs() {
        fn one_run(kind: SchedulerKind) -> Vec<(u32, Cycle)> {
            let sim = Sim::with_scheduler(kind);
            let log: Rc<RefCell<Vec<(u32, Cycle)>>> = Rc::default();
            for id in 0..8u32 {
                let h = sim.handle();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    for k in 0..20u64 {
                        h.sleep((id as u64 * 7 + k * 3) % 11 + 1).await;
                        log.borrow_mut().push((id, h.now()));
                    }
                });
            }
            sim.run().unwrap();
            Rc::try_unwrap(log).unwrap().into_inner()
        }
        assert_eq!(
            one_run(SchedulerKind::CalendarQueue),
            one_run(SchedulerKind::CalendarQueue)
        );
        // ...and both schedulers agree with each other.
        assert_eq!(
            one_run(SchedulerKind::CalendarQueue),
            one_run(SchedulerKind::BinaryHeap)
        );
    }

    #[test]
    fn stale_events_are_counted_and_swept() {
        const WAITERS: u64 = 200;
        for kind in [SchedulerKind::CalendarQueue, SchedulerKind::BinaryHeap] {
            let sim = Sim::with_scheduler(kind);
            let h = sim.handle();
            let gate = h.gate();
            // Each waiter takes a ticket, then leaves by another path (its
            // sleep) before the far-future wake fires: every wake event is
            // queued behind a task that completes long before it pops.
            for _ in 0..WAITERS {
                let gate = gate.clone();
                let h = h.clone();
                sim.spawn(async move {
                    let ticket = gate.ticket();
                    h.sleep(1).await;
                    drop(ticket); // abandoned: the task exits early
                });
            }
            {
                let h = h.clone();
                sim.spawn(async move {
                    // Wakes every parked ticket at a far-future cycle.
                    gate.open_at(h.now() + 10_000);
                    h.sleep(2).await;
                });
            }
            sim.run().unwrap();
            let stats = sim.stats();
            assert_eq!(
                stats.stale_events, WAITERS,
                "every post-completion wake is stale ({kind:?})"
            );
            assert!(stats.events_dispatched > 0);
        }
    }

    /// Order in which same-cycle ties dispatch for one (kind, shake) pair.
    fn tie_order(kind: SchedulerKind, shake: ShakePolicy, tasks: u32) -> Vec<u32> {
        let sim = Sim::with_policy(kind, shake);
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for id in 0..tasks {
            let h = sim.handle();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                h.sleep(10).await;
                log.borrow_mut().push(id);
            });
        }
        sim.run().unwrap();
        Rc::try_unwrap(log).unwrap().into_inner()
    }

    #[test]
    fn shake_off_keeps_fifo_tie_order() {
        for kind in [SchedulerKind::CalendarQueue, SchedulerKind::BinaryHeap] {
            assert_eq!(
                tie_order(kind, ShakePolicy::Off, 8),
                (0..8).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn shaken_ties_are_deterministic_per_seed_and_scheduler_equivalent() {
        let mut permuted = false;
        for seed in 1..=16u64 {
            let shake = ShakePolicy::Seeded(seed);
            let cal = tie_order(SchedulerKind::CalendarQueue, shake, 8);
            // Same seed ⇒ identical order on a re-run and on the
            // reference heap.
            assert_eq!(cal, tie_order(SchedulerKind::CalendarQueue, shake, 8));
            assert_eq!(cal, tie_order(SchedulerKind::BinaryHeap, shake, 8));
            // It is still a permutation of the same event multiset.
            let mut sorted = cal.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..8).collect::<Vec<_>>());
            permuted |= cal != (0..8).collect::<Vec<_>>();
        }
        assert!(permuted, "16 seeds never permuted an 8-way tie");
    }

    #[test]
    fn shaken_runs_preserve_time_order_across_epochs() {
        // Shaking permutes same-cycle ties only; events at distinct cycles
        // (including overflow-heap epochs) must still dispatch in time
        // order, and per-seed determinism must hold across schedulers.
        for seed in [3u64, 41] {
            let mut runs = Vec::new();
            for kind in [SchedulerKind::CalendarQueue, SchedulerKind::BinaryHeap] {
                let sim = Sim::with_policy(kind, ShakePolicy::Seeded(seed));
                let log: Rc<RefCell<Vec<(u32, Cycle)>>> = Rc::default();
                for (id, period) in [(0u32, 7u64), (1, 300), (2, 70_000)] {
                    let h = sim.handle();
                    let log = Rc::clone(&log);
                    sim.spawn(async move {
                        for _ in 0..3 {
                            h.sleep(period).await;
                            log.borrow_mut().push((id, h.now()));
                        }
                    });
                }
                sim.run().unwrap();
                let log = Rc::try_unwrap(log).unwrap().into_inner();
                let mut sorted = log.clone();
                sorted.sort_by_key(|&(_, at)| at);
                assert_eq!(log, sorted, "dispatch must follow time order");
                runs.push(log);
            }
            assert_eq!(runs[0], runs[1], "seed {seed} differs across schedulers");
        }
    }

    #[test]
    fn shake_policy_seed_accessor() {
        assert_eq!(ShakePolicy::Off.seed(), None);
        assert_eq!(ShakePolicy::Seeded(9).seed(), Some(9));
        assert_eq!(ShakePolicy::default(), ShakePolicy::Off);
    }

    #[test]
    fn scheduler_kind_name_roundtrip() {
        for kind in [SchedulerKind::CalendarQueue, SchedulerKind::BinaryHeap] {
            assert_eq!(SchedulerKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SchedulerKind::parse("fifo"), None);
        assert_eq!(SchedulerKind::default(), SchedulerKind::CalendarQueue);
    }

    #[test]
    fn visit_parked_matches_snapshot() {
        let sim = Sim::new();
        let h = sim.handle();
        let probe = h.clone();
        let gate = h.gate();
        type ParkedRow = (TaskId, Option<Cycle>, Option<WaitInfo>);
        let seen: Rc<RefCell<Vec<ParkedRow>>> = Rc::default();
        let seen2 = Rc::clone(&seen);
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(3).await;
                h.set_wait_info(WaitInfo {
                    label: 5,
                    resource: 0x40,
                    target: 1,
                    kind: "missing-version",
                    holder: None,
                });
                gate.wait().await;
            });
        }
        sim.spawn(async move {
            probe.sleep(10).await;
            // Borrowed visit sees the parked task (the prober itself is
            // checked out while being polled, so it is not reported).
            assert_eq!(probe.parked_count(), 1);
            probe.visit_parked(|task, since, info| {
                seen2.borrow_mut().push((task, since, info.cloned()));
            });
            let snap = probe.parked_tasks();
            assert_eq!(snap.len(), 1);
            assert_eq!(snap[0].task, seen2.borrow()[0].0);
            assert_eq!(snap[0].since, seen2.borrow()[0].1);
            assert_eq!(snap[0].info, seen2.borrow()[0].2);
            gate.open();
        });
        sim.run().unwrap();
        let seen = seen.borrow();
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].1, Some(3));
        assert_eq!(seen[0].2.as_ref().map(|w| w.label), Some(5));
    }
}
