//! The time-ordered single-threaded executor.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use crate::time::Cycle;

/// Identifier of a spawned simulation task (a hardware context, usually).
pub type TaskId = usize;

type BoxedTask = Pin<Box<dyn Future<Output = ()>>>;

/// What a blocked task is waiting for, as reported by the layer that parked
/// it (the engine only stores and returns these records). The fields are
/// deliberately plain integers so the engine stays ignorant of addresses,
/// versions and task-id vocabularies defined above it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaitInfo {
    /// Upper-layer label of the waiting task (e.g. the cpu-layer task id),
    /// distinct from the engine [`TaskId`].
    pub label: u64,
    /// The contended resource (e.g. a virtual address).
    pub resource: u64,
    /// The awaited state of the resource (e.g. a version number).
    pub target: u64,
    /// Short stable wait-kind name (e.g. `missing-version`).
    pub kind: &'static str,
    /// Label of the task holding the resource, when known.
    pub holder: Option<u64>,
}

impl std::fmt::Display for WaitInfo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "task {} waiting for {} at va {:#010x} version {}",
            self.label, self.kind, self.resource, self.target
        )?;
        if let Some(h) = self.holder {
            write!(f, " held by task {h}")?;
        }
        Ok(())
    }
}

/// One entry of a deadlock report: a task that can never run again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockedTask {
    /// Engine task id.
    pub task: TaskId,
    /// Cycle at which the wait record was registered (None if the task
    /// never registered one).
    pub since: Option<Cycle>,
    /// The wait record, when the parking layer registered one via
    /// [`SimHandle::set_wait_info`].
    pub info: Option<WaitInfo>,
}

/// Why [`Sim::run`] stopped before all tasks completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// The event queue drained while tasks were still pending: every pending
    /// task is blocked on a [`crate::Gate`] that nobody will open. For the
    /// O-structures simulator this means a versioned load is waiting for a
    /// version that no remaining task will ever create.
    Deadlock {
        /// Simulated time at which the deadlock was detected.
        now: Cycle,
        /// Every task still blocked, with its wait record when one was
        /// registered.
        blocked: Vec<BlockedTask>,
    },
    /// A task asked the simulation to stop via [`SimHandle::request_halt`]
    /// (the cpu layer does this to surface an architectural fault as a
    /// typed error instead of a panic).
    Halted {
        /// Simulated time at which the halt took effect.
        now: Cycle,
    },
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Deadlock { now, blocked } => {
                write!(
                    f,
                    "simulation deadlock at cycle {now}: {} task(s) blocked forever",
                    blocked.len()
                )?;
                for b in blocked {
                    match &b.info {
                        Some(info) => write!(f, "\n  engine task {}: {info}", b.task)?,
                        None => write!(f, "\n  engine task {}: no wait record", b.task)?,
                    }
                }
                Ok(())
            }
            RunError::Halted { now } => {
                write!(f, "simulation halted at cycle {now} by request")
            }
        }
    }
}

impl std::error::Error for RunError {}

pub(crate) struct Inner {
    now: Cycle,
    next_seq: u64,
    /// Min-heap of `(wake_time, sequence, task)`. The sequence number makes
    /// the pop order a total order, which makes runs deterministic.
    heap: BinaryHeap<Reverse<(Cycle, u64, TaskId)>>,
    tasks: Vec<Option<BoxedTask>>,
    live: usize,
    /// Task currently being polled; leaf futures read this to learn who they
    /// belong to.
    current: Option<TaskId>,
    /// Wait records registered by parked tasks (indexed like `tasks`),
    /// paired with the registration cycle.
    wait_info: Vec<Option<(Cycle, WaitInfo)>>,
    /// Set by [`SimHandle::request_halt`]; the run loop stops before the
    /// next event once it is raised.
    halt: bool,
}

impl Inner {
    pub(crate) fn schedule(&mut self, at: Cycle, task: TaskId) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let at = at.max(self.now);
        self.heap.push(Reverse((at, seq, task)));
    }

    pub(crate) fn now(&self) -> Cycle {
        self.now
    }

    pub(crate) fn current_task(&self) -> TaskId {
        match self.current {
            Some(t) => t,
            None => unreachable!("engine primitive used outside of a simulation task poll"),
        }
    }

    fn blocked_snapshot(&self) -> Vec<BlockedTask> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.is_some())
            .map(|(task, _)| BlockedTask {
                task,
                since: self.wait_info[task].as_ref().map(|(at, _)| *at),
                info: self.wait_info[task].as_ref().map(|(_, w)| w.clone()),
            })
            .collect()
    }
}

/// A deterministic discrete-event simulation.
///
/// Create one, [`spawn`](Sim::spawn) the hardware contexts, then [`run`](Sim::run).
pub struct Sim {
    inner: Rc<RefCell<Inner>>,
}

impl Default for Sim {
    fn default() -> Self {
        Self::new()
    }
}

impl Sim {
    /// Creates an empty simulation at cycle 0.
    pub fn new() -> Self {
        Sim {
            inner: Rc::new(RefCell::new(Inner {
                now: 0,
                next_seq: 0,
                heap: BinaryHeap::new(),
                tasks: Vec::new(),
                live: 0,
                current: None,
                wait_info: Vec::new(),
                halt: false,
            })),
        }
    }

    /// Returns a cloneable handle used by tasks to interact with simulated
    /// time (sleep, spawn, gates).
    pub fn handle(&self) -> SimHandle {
        SimHandle {
            inner: Rc::clone(&self.inner),
        }
    }

    /// Spawns a task; it becomes runnable at the current simulated time.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        self.handle().spawn(fut)
    }

    /// Runs until every task has completed.
    ///
    /// Returns the final simulated time, or a [`RunError::Deadlock`] if some
    /// tasks can never make progress again.
    pub fn run(&self) -> Result<Cycle, RunError> {
        loop {
            // One borrow covers pop-event plus check-out-task: this loop runs
            // once per task resumption, so the borrow bookkeeping is hot.
            let (task, mut fut) = {
                let mut inner = self.inner.borrow_mut();
                if inner.halt {
                    let now = inner.now;
                    // Break the task<->handle Rc cycle so dropped Sims
                    // release their task closures even on halt.
                    inner.tasks.clear();
                    inner.heap.clear();
                    return Err(RunError::Halted { now });
                }
                let (at, task) = match inner.heap.pop() {
                    Some(Reverse((at, _, task))) => (at, task),
                    None => {
                        let now = inner.now;
                        if inner.live > 0 {
                            let blocked = inner.blocked_snapshot();
                            // Break the task<->handle Rc cycle so dropped Sims
                            // release their task closures even on deadlock.
                            inner.tasks.clear();
                            return Err(RunError::Deadlock { now, blocked });
                        }
                        return Ok(now);
                    }
                };
                debug_assert!(at >= inner.now, "time went backwards");
                inner.now = at;
                match inner.tasks[task].take() {
                    Some(f) => {
                        inner.current = Some(task);
                        (task, f)
                    }
                    // Stale event for a task that already finished.
                    None => continue,
                }
            };
            let waker = Waker::noop();
            let mut cx = Context::from_waker(waker);
            let done = fut.as_mut().poll(&mut cx).is_ready();
            let mut inner = self.inner.borrow_mut();
            inner.current = None;
            if done {
                inner.live -= 1;
                inner.wait_info[task] = None;
            } else {
                inner.tasks[task] = Some(fut);
            }
        }
    }

    /// Current simulated time in cycles.
    pub fn now(&self) -> Cycle {
        self.inner.borrow().now
    }
}

/// A cloneable handle to the simulation, usable from inside tasks.
#[derive(Clone)]
pub struct SimHandle {
    pub(crate) inner: Rc<RefCell<Inner>>,
}

impl SimHandle {
    /// Current simulated time in cycles.
    pub fn now(&self) -> Cycle {
        self.inner.borrow().now
    }

    /// Number of tasks that have been spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.borrow().live
    }

    /// Spawns a new task, runnable at the current simulated time.
    pub fn spawn(&self, fut: impl Future<Output = ()> + 'static) -> TaskId {
        let mut inner = self.inner.borrow_mut();
        let id = inner.tasks.len();
        inner.tasks.push(Some(Box::pin(fut)));
        inner.wait_info.push(None);
        inner.live += 1;
        let now = inner.now;
        inner.schedule(now, id);
        id
    }

    /// Suspends the calling task for `cycles` simulated cycles.
    ///
    /// `sleep(0)` yields: the task is rescheduled at the current time behind
    /// every event already queued for this cycle.
    pub fn sleep(&self, cycles: Cycle) -> Sleep {
        Sleep {
            inner: Rc::clone(&self.inner),
            until: None,
            duration: cycles,
            armed: false,
        }
    }

    /// Suspends the calling task until the given absolute cycle (no-op if it
    /// is already in the past).
    pub fn sleep_until(&self, at: Cycle) -> Sleep {
        Sleep {
            inner: Rc::clone(&self.inner),
            until: Some(at),
            duration: 0,
            armed: false,
        }
    }

    /// Creates a new [`crate::Gate`] bound to this simulation.
    pub fn gate(&self) -> crate::Gate {
        crate::Gate::new(Rc::clone(&self.inner))
    }

    /// Registers what the *current* task is about to block on, so that a
    /// later deadlock or watchdog report can name the wait target. Call
    /// [`clear_wait_info`](Self::clear_wait_info) after waking.
    pub fn set_wait_info(&self, info: WaitInfo) {
        let mut inner = self.inner.borrow_mut();
        let task = inner.current_task();
        let now = inner.now;
        inner.wait_info[task] = Some((now, info));
    }

    /// Clears the current task's wait record (the wait completed).
    pub fn clear_wait_info(&self) {
        let mut inner = self.inner.borrow_mut();
        let task = inner.current_task();
        inner.wait_info[task] = None;
    }

    /// Asks the run loop to stop before dispatching the next event;
    /// [`Sim::run`] then returns [`RunError::Halted`]. Used by upper layers
    /// to abort the simulation on an unrecoverable modeled fault.
    pub fn request_halt(&self) {
        self.inner.borrow_mut().halt = true;
    }

    /// Snapshot of every live-but-parked task and its wait record. Used by
    /// watchdog monitors to build a diagnostic dump while the simulation is
    /// still running.
    pub fn parked_tasks(&self) -> Vec<BlockedTask> {
        self.inner.borrow().blocked_snapshot()
    }
}

/// Future returned by [`SimHandle::sleep`] / [`SimHandle::sleep_until`].
pub struct Sleep {
    inner: Rc<RefCell<Inner>>,
    /// Absolute deadline; `None` means "relative `duration` from first poll".
    until: Option<Cycle>,
    duration: Cycle,
    armed: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        let mut inner = this.inner.borrow_mut();
        if this.armed {
            // Even `sleep(0)` goes through the queue once so a yield is a
            // real scheduling point; by then `now >= deadline` always holds.
            let deadline = match this.until {
                Some(at) => at,
                None => unreachable!("armed sleep has deadline"),
            };
            return if inner.now >= deadline {
                Poll::Ready(())
            } else {
                Poll::Pending // spurious poll before the deadline
            };
        }
        let deadline = match this.until {
            Some(at) => at,
            None => inner.now + this.duration,
        };
        this.until = Some(deadline);
        this.armed = true;
        let task = inner.current_task();
        inner.schedule(deadline, task);
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    #[test]
    fn empty_sim_finishes_at_zero() {
        let sim = Sim::new();
        assert_eq!(sim.run(), Ok(0));
    }

    #[test]
    fn sleep_advances_time() {
        let sim = Sim::new();
        let h = sim.handle();
        sim.spawn(async move {
            assert_eq!(h.now(), 0);
            h.sleep(7).await;
            assert_eq!(h.now(), 7);
            h.sleep(3).await;
            assert_eq!(h.now(), 10);
        });
        assert_eq!(sim.run(), Ok(10));
    }

    #[test]
    fn sleep_until_past_is_noop() {
        let sim = Sim::new();
        let h = sim.handle();
        sim.spawn(async move {
            h.sleep(5).await;
            h.sleep_until(3).await;
            assert_eq!(h.now(), 5);
            h.sleep_until(9).await;
            assert_eq!(h.now(), 9);
        });
        assert_eq!(sim.run(), Ok(9));
    }

    #[test]
    fn tasks_interleave_in_time_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<(u32, Cycle)>>> = Rc::default();
        for (id, period) in [(0u32, 3u64), (1, 5)] {
            let h = sim.handle();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                for _ in 0..3 {
                    h.sleep(period).await;
                    log.borrow_mut().push((id, h.now()));
                }
            });
        }
        sim.run().unwrap();
        assert_eq!(
            *log.borrow(),
            vec![(0, 3), (1, 5), (0, 6), (0, 9), (1, 10), (1, 15)]
        );
    }

    #[test]
    fn same_cycle_ties_break_by_schedule_order() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        for id in 0..4u32 {
            let h = sim.handle();
            let log = Rc::clone(&log);
            sim.spawn(async move {
                h.sleep(10).await;
                log.borrow_mut().push(id);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.borrow(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_sleep_is_a_yield_point() {
        let sim = Sim::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::default();
        {
            let log = Rc::clone(&log);
            let h = sim.handle();
            sim.spawn(async move {
                log.borrow_mut().push(1);
                h.sleep(0).await;
                log.borrow_mut().push(3);
            });
        }
        {
            let log = Rc::clone(&log);
            sim.spawn(async move {
                log.borrow_mut().push(2);
            });
        }
        sim.run().unwrap();
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn dynamic_spawn_runs_at_current_time() {
        let sim = Sim::new();
        let h = sim.handle();
        let hit = Rc::new(Cell::new(0u64));
        let hit2 = Rc::clone(&hit);
        sim.spawn(async move {
            h.sleep(12).await;
            let h2 = h.clone();
            let hit3 = Rc::clone(&hit2);
            h.spawn(async move {
                h2.sleep(5).await;
                hit3.set(h2.now());
            });
        });
        assert_eq!(sim.run(), Ok(17));
        assert_eq!(hit.get(), 17);
    }

    #[test]
    fn deadlock_is_reported() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        sim.spawn(async move {
            gate.wait().await; // nobody will ever open this
        });
        assert_eq!(
            sim.run(),
            Err(RunError::Deadlock {
                now: 0,
                blocked: vec![BlockedTask {
                    task: 0,
                    since: None,
                    info: None,
                }],
            })
        );
    }

    #[test]
    fn deadlock_report_carries_wait_info() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        sim.spawn(async move {
            h.sleep(4).await;
            h.set_wait_info(WaitInfo {
                label: 17,
                resource: 0x1000,
                target: 3,
                kind: "missing-version",
                holder: Some(9),
            });
            gate.wait().await; // nobody will ever open this
        });
        let err = sim.run().unwrap_err();
        let RunError::Deadlock { now, blocked } = err.clone() else {
            panic!("expected deadlock, got {err:?}");
        };
        assert_eq!(now, 4);
        assert_eq!(blocked.len(), 1);
        assert_eq!(blocked[0].since, Some(4));
        let info = blocked[0].info.as_ref().unwrap();
        assert_eq!((info.label, info.resource, info.target), (17, 0x1000, 3));
        assert_eq!(info.kind, "missing-version");
        assert_eq!(info.holder, Some(9));
        let msg = err.to_string();
        assert!(msg.contains("task 17"), "{msg}");
        assert!(msg.contains("missing-version"), "{msg}");
        assert!(msg.contains("version 3"), "{msg}");
        assert!(msg.contains("held by task 9"), "{msg}");
    }

    #[test]
    fn wait_info_cleared_on_completion_and_clear() {
        let sim = Sim::new();
        let h = sim.handle();
        let h2 = h.clone();
        let gate = h.gate();
        let gate2 = gate.clone();
        sim.spawn(async move {
            h.set_wait_info(WaitInfo {
                label: 1,
                resource: 0,
                target: 0,
                kind: "test",
                holder: None,
            });
            gate.wait().await;
            h.clear_wait_info();
            h.sleep(1).await;
        });
        sim.spawn(async move {
            h2.sleep(2).await;
            gate2.open();
        });
        assert_eq!(sim.run(), Ok(3));
    }

    #[test]
    fn halt_request_stops_the_run() {
        let sim = Sim::new();
        let h = sim.handle();
        let h2 = sim.handle();
        sim.spawn(async move {
            h.sleep(5).await;
            h.request_halt();
            h.sleep(100).await; // never resumed
        });
        sim.spawn(async move {
            h2.sleep(1_000).await; // never reached either
        });
        assert_eq!(sim.run(), Err(RunError::Halted { now: 5 }));
    }

    #[test]
    fn determinism_across_runs() {
        fn one_run() -> Vec<(u32, Cycle)> {
            let sim = Sim::new();
            let log: Rc<RefCell<Vec<(u32, Cycle)>>> = Rc::default();
            for id in 0..8u32 {
                let h = sim.handle();
                let log = Rc::clone(&log);
                sim.spawn(async move {
                    for k in 0..20u64 {
                        h.sleep((id as u64 * 7 + k * 3) % 11 + 1).await;
                        log.borrow_mut().push((id, h.now()));
                    }
                });
            }
            sim.run().unwrap();
            Rc::try_unwrap(log).unwrap().into_inner()
        }
        assert_eq!(one_run(), one_run());
    }
}
