//! Wait/notify primitive for simulation tasks.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::executor::{Inner, TaskId};
use crate::time::Cycle;

/// Identifies what kind of event opened a gate. The engine assigns no
/// meaning to tags beyond [`WAKE_GENERIC`]; upper layers (e.g. the cpu
/// crate's stall-cause attribution) define their own vocabulary.
pub type WakeTag = u32;

/// Tag used by the untagged [`Gate::open`] / [`Gate::open_at`].
pub const WAKE_GENERIC: WakeTag = 0;

#[derive(Default)]
struct GateState {
    /// `(task, wake-slot)` for every task currently parked on this gate;
    /// the slot is `None` while parked and `Some(tag)` once woken.
    waiters: Vec<(TaskId, Rc<RefCell<Option<WakeTag>>>)>,
}

/// A broadcast wait/notify point.
///
/// Tasks park on a gate with [`Gate::wait`]; another task releases all of
/// them with [`Gate::open`] (wake at the current cycle) or
/// [`Gate::open_at`] (wake at a later cycle, e.g. when the store that
/// satisfies a blocked versioned load completes).
///
/// Gates implement the *stall* behaviour of O-structure operations: a blocked
/// `LOAD-VERSION` parks on the gate of its O-structure's address and re-checks
/// its condition each time a `STORE-VERSION` / `UNLOCK-VERSION` to that
/// address opens the gate. Spurious wake-ups are therefore part of the
/// contract — callers must re-check and re-wait in a loop.
#[derive(Clone)]
pub struct Gate {
    engine: Rc<RefCell<Inner>>,
    state: Rc<RefCell<GateState>>,
}

impl Gate {
    pub(crate) fn new(engine: Rc<RefCell<Inner>>) -> Self {
        Gate {
            engine,
            state: Rc::default(),
        }
    }

    /// Parks the calling task until the next [`Gate::open`].
    pub fn wait(&self) -> Wait {
        Wait {
            gate: self.clone(),
            woken: None,
        }
    }

    /// Registers the calling task on the gate *immediately* and returns a
    /// future that resolves once the gate opens.
    ///
    /// Unlike [`Gate::wait`] (which registers at first poll), a ticket
    /// taken synchronously right after checking a condition cannot miss a
    /// wake-up that lands before the task actually suspends — the
    /// check-then-park race that blocked versioned operations would
    /// otherwise have while they sleep off their attempt latency.
    pub fn ticket(&self) -> Wait {
        let slot = Rc::new(RefCell::new(None));
        let task = self.engine.borrow().current_task();
        self.state
            .borrow_mut()
            .waiters
            .push((task, Rc::clone(&slot)));
        Wait {
            gate: self.clone(),
            woken: Some(slot),
        }
    }

    /// Wakes every task currently parked on this gate at the current cycle.
    pub fn open(&self) {
        self.open_tagged(WAKE_GENERIC);
    }

    /// [`Gate::open`] carrying a tag that every woken waiter receives from
    /// its `Wait` future — how wake-ups tell blocked tasks *what* happened
    /// (a store vs. an unlock, say) without re-reading shared state.
    pub fn open_tagged(&self, tag: WakeTag) {
        let now = self.engine.borrow().now();
        self.open_at_tagged(now, tag);
    }

    /// Wakes every task currently parked on this gate at cycle `at`
    /// (clamped to the present).
    pub fn open_at(&self, at: Cycle) {
        self.open_at_tagged(at, WAKE_GENERIC);
    }

    /// [`Gate::open_at`] with a wake tag.
    pub fn open_at_tagged(&self, at: Cycle, tag: WakeTag) {
        let mut st = self.state.borrow_mut();
        if st.waiters.is_empty() {
            return;
        }
        let mut engine = self.engine.borrow_mut();
        for (task, slot) in st.waiters.drain(..) {
            *slot.borrow_mut() = Some(tag);
            engine.schedule(at, task);
        }
    }

    /// Number of tasks currently parked.
    pub fn waiting(&self) -> usize {
        self.state.borrow().waiters.len()
    }
}

/// Future returned by [`Gate::wait`] / [`Gate::ticket`]; resolves to the
/// [`WakeTag`] of the `open` that released it.
pub struct Wait {
    gate: Gate,
    woken: Option<Rc<RefCell<Option<WakeTag>>>>,
}

impl Future for Wait {
    type Output = WakeTag;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<WakeTag> {
        let this = self.get_mut();
        match &this.woken {
            Some(slot) => match *slot.borrow() {
                Some(tag) => Poll::Ready(tag),
                None => Poll::Pending,
            },
            None => {
                let slot = Rc::new(RefCell::new(None));
                let task = this.gate.engine.borrow().current_task();
                this.gate
                    .state
                    .borrow_mut()
                    .waiters
                    .push((task, Rc::clone(&slot)));
                this.woken = Some(slot);
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;
    use std::cell::Cell;

    #[test]
    fn open_wakes_all_waiters_at_given_time() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        let woken = Rc::new(RefCell::new(Vec::new()));
        for id in 0..3u32 {
            let h = sim.handle();
            let gate = gate.clone();
            let woken = Rc::clone(&woken);
            sim.spawn(async move {
                gate.wait().await;
                woken.borrow_mut().push((id, h.now()));
            });
        }
        {
            let h = sim.handle();
            let gate = gate.clone();
            sim.spawn(async move {
                h.sleep(50).await;
                gate.open_at(h.now() + 4);
            });
        }
        assert_eq!(sim.run(), Ok(54));
        assert_eq!(*woken.borrow(), vec![(0, 54), (1, 54), (2, 54)]);
    }

    #[test]
    fn open_with_no_waiters_is_noop() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        sim.spawn(async move {
            gate.open();
            assert_eq!(gate.waiting(), 0);
        });
        assert_eq!(sim.run(), Ok(0));
    }

    #[test]
    fn wait_loop_recheck_pattern() {
        // The canonical blocked-versioned-load shape: re-check a condition
        // after every wake until it holds.
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        let value = Rc::new(Cell::new(0u32));
        {
            let h = sim.handle();
            let gate = gate.clone();
            let value = Rc::clone(&value);
            sim.spawn(async move {
                while value.get() < 3 {
                    gate.wait().await;
                }
                assert_eq!(h.now(), 30);
            });
        }
        {
            let h = sim.handle();
            let gate = gate.clone();
            let value = Rc::clone(&value);
            sim.spawn(async move {
                for _ in 0..3 {
                    h.sleep(10).await;
                    value.set(value.get() + 1);
                    gate.open();
                }
            });
        }
        assert_eq!(sim.run(), Ok(30));
    }

    #[test]
    fn ticket_taken_before_open_survives_a_sleep() {
        // The lost-wakeup regression: check state, take a ticket, sleep,
        // then await the ticket. An open() landing during the sleep must
        // still wake the waiter.
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                let ticket = gate.ticket();
                h.sleep(100).await; // opener fires at t=10, mid-sleep
                ticket.await;
                assert_eq!(h.now(), 100);
            });
        }
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(10).await;
                gate.open();
            });
        }
        assert_eq!(sim.run(), Ok(100));
    }

    #[test]
    fn wake_tags_reach_waiters() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        let tags = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let gate = gate.clone();
            let tags = Rc::clone(&tags);
            sim.spawn(async move {
                let tag = gate.wait().await;
                tags.borrow_mut().push(tag);
            });
        }
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(3).await;
                gate.open_tagged(7);
                // A second waiter parked later gets a different tag.
                h.sleep(3).await;
                gate.open(); // no waiters: no-op
            });
        }
        assert_eq!(sim.run(), Ok(6));
        assert_eq!(*tags.borrow(), vec![7, 7]);
    }

    #[test]
    fn untagged_open_delivers_generic_tag() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        {
            let gate = gate.clone();
            sim.spawn(async move {
                assert_eq!(gate.wait().await, crate::WAKE_GENERIC);
            });
        }
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(1).await;
                gate.open();
            });
        }
        assert!(sim.run().is_ok());
    }

    #[test]
    fn waiters_parked_after_open_are_not_woken_by_it() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(5).await;
                gate.open();
            });
        }
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(10).await;
                h.set_wait_info(crate::WaitInfo {
                    label: 42,
                    resource: 0xbeef,
                    target: 7,
                    kind: "missing-version",
                    holder: None,
                });
                gate.wait().await; // parked after the only open() — deadlock
            });
        }
        let err = sim.run().unwrap_err();
        let crate::RunError::Deadlock { now, blocked } = &err else {
            panic!("expected deadlock, got {err:?}");
        };
        assert_eq!(*now, 10);
        assert_eq!(blocked.len(), 1);
        assert_eq!(blocked[0].task, 1);
        assert_eq!(blocked[0].since, Some(10));
        let info = blocked[0].info.as_ref().expect("wait record registered");
        assert_eq!(info.label, 42);
        assert_eq!(info.resource, 0xbeef);
        assert_eq!(info.target, 7);
        assert_eq!(info.kind, "missing-version");
        assert_eq!(info.holder, None);
        // The Display form names the wait target, not just a count.
        let msg = err.to_string();
        assert!(msg.contains("task 42"), "{msg}");
        assert!(msg.contains("version 7"), "{msg}");
    }
}
