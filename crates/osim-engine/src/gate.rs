//! Wait/notify primitive for simulation tasks.

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::executor::{Inner, TaskId};
use crate::time::Cycle;

/// Identifies what kind of event opened a gate. The engine assigns no
/// meaning to tags beyond [`WAKE_GENERIC`]; upper layers (e.g. the cpu
/// crate's stall-cause attribution) define their own vocabulary.
pub type WakeTag = u32;

/// Tag used by the untagged [`Gate::open`] / [`Gate::open_at`].
pub const WAKE_GENERIC: WakeTag = 0;

/// Who caused a wake-up, as reported by the opener.
///
/// The engine treats the origin as an opaque payload delivered verbatim to
/// every waiter the open releases: `label` identifies the producing actor
/// in whatever encoding the upper layer chooses (the cpu crate packs
/// `tid << 32 | core`), and `at` is the cycle the producing event
/// completed. The default origin (`label == 0`) means "unattributed" —
/// exactly what the plain `open*` family delivers — so dependency-edge
/// capture can distinguish attributed wake-ups without a side channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WakeOrigin {
    /// Opener-defined producer identity; 0 = unattributed.
    pub label: u64,
    /// Cycle at which the producing event completed.
    pub at: Cycle,
}

/// What a resolved [`Wait`] yields: the tag of the open that released the
/// waiter plus the opener-reported [`WakeOrigin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wake {
    pub tag: WakeTag,
    pub origin: WakeOrigin,
}

/// What a parked waiter is prepared to be woken by, evaluated against the
/// payload words an [`Gate::open_targeted`] carries.
///
/// Broadcast opens ([`Gate::open`] and friends) ignore filters entirely —
/// every waiter wakes, filtered or not — so registering a filter never
/// changes behaviour until an opener opts into targeted delivery. The
/// engine assigns no meaning to the payload values; upper layers decide
/// what they encode (the cpu crate passes version numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WakeFilter {
    /// Wake on any open (the only behaviour before targeted delivery).
    #[default]
    Any,
    /// Wake when some payload word equals this value.
    Exact(u64),
    /// Wake when some payload word is `<=` this value.
    AtMost(u64),
}

impl WakeFilter {
    /// Whether an open carrying `payloads` releases a waiter with this
    /// filter.
    pub fn matches(&self, payloads: &[u64]) -> bool {
        match *self {
            WakeFilter::Any => true,
            WakeFilter::Exact(v) => payloads.contains(&v),
            WakeFilter::AtMost(v) => payloads.iter().any(|&p| p <= v),
        }
    }
}

/// Sentinel for "no slot" in the arena free list.
const NO_SLOT: u32 = u32::MAX;

/// Handle to one waiter slot: index plus the generation the slot had when
/// the waiter parked. A stale handle (the slot was released and recycled,
/// bumping the generation) simply stops matching, which makes release and
/// drop idempotent without any shared ownership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WaiterKey {
    idx: u32,
    gen: u32,
}

/// What one arena slot currently holds.
enum SlotState {
    /// Recycled: next free slot index (or [`NO_SLOT`]).
    Free { next_free: u32 },
    /// A parked task, what it is prepared to be woken by, and the cycle
    /// it parked at (for the engine's gate-wait histogram).
    Parked {
        task: TaskId,
        filter: WakeFilter,
        since: Cycle,
    },
    /// Woken; the owning [`Wait`] collects the payload at next poll.
    Woken { wake: Wake },
}

struct Slot {
    gen: u32,
    state: SlotState,
}

/// Slab arena for waiter slots: slots are recycled through an intrusive
/// free list and identified by generation-tagged indices, so steady-state
/// `wait()`/`open()` traffic never touches the heap (the slot vector and
/// the park-order queue grow to their high-water mark once and are then
/// reused).
struct WaiterArena {
    slots: Vec<Slot>,
    free_head: u32,
}

impl Default for WaiterArena {
    fn default() -> Self {
        WaiterArena {
            slots: Vec::new(),
            free_head: NO_SLOT,
        }
    }
}

impl WaiterArena {
    /// Claims a slot for a parked task, recycling a free one when possible.
    fn park(&mut self, task: TaskId, filter: WakeFilter, since: Cycle) -> WaiterKey {
        let state = SlotState::Parked {
            task,
            filter,
            since,
        };
        let idx = if self.free_head != NO_SLOT {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            match slot.state {
                SlotState::Free { next_free } => self.free_head = next_free,
                _ => unreachable!("free list points at a live slot"),
            }
            slot.state = state;
            idx
        } else {
            self.slots.push(Slot { gen: 0, state });
            self.slots.len() as u32 - 1
        };
        WaiterKey {
            idx,
            gen: self.slots[idx as usize].gen,
        }
    }

    /// The slot's state, if `key` is still current.
    fn state(&self, key: WaiterKey) -> Option<&SlotState> {
        let slot = &self.slots[key.idx as usize];
        (slot.gen == key.gen).then_some(&slot.state)
    }

    /// Marks a parked slot woken and returns its task plus the cycle it
    /// parked at. Callers pass only keys they just took from the
    /// park-order queue, which holds exactly the currently-parked waiters.
    fn wake(&mut self, key: WaiterKey, wake: Wake) -> (TaskId, Cycle) {
        let slot = &mut self.slots[key.idx as usize];
        debug_assert_eq!(slot.gen, key.gen, "queue entry went stale");
        match slot.state {
            SlotState::Parked { task, since, .. } => {
                slot.state = SlotState::Woken { wake };
                (task, since)
            }
            _ => unreachable!("queued waiter is not parked"),
        }
    }

    /// Returns the slot to the free list (no-op when `key` is stale).
    fn release(&mut self, key: WaiterKey) {
        let slot = &mut self.slots[key.idx as usize];
        if slot.gen != key.gen {
            return;
        }
        slot.gen = slot.gen.wrapping_add(1);
        slot.state = SlotState::Free {
            next_free: self.free_head,
        };
        self.free_head = key.idx;
    }
}

#[derive(Default)]
struct GateState {
    arena: WaiterArena,
    /// Every task currently parked on this gate, in park order.
    queue: Vec<WaiterKey>,
}

/// A broadcast wait/notify point.
///
/// Tasks park on a gate with [`Gate::wait`]; another task releases all of
/// them with [`Gate::open`] (wake at the current cycle) or
/// [`Gate::open_at`] (wake at a later cycle, e.g. when the store that
/// satisfies a blocked versioned load completes).
///
/// Gates implement the *stall* behaviour of O-structure operations: a blocked
/// `LOAD-VERSION` parks on the gate of its O-structure's address and re-checks
/// its condition each time a `STORE-VERSION` / `UNLOCK-VERSION` to that
/// address opens the gate. Spurious wake-ups are therefore part of the
/// contract — callers must re-check and re-wait in a loop.
#[derive(Clone)]
pub struct Gate {
    engine: Rc<RefCell<Inner>>,
    state: Rc<RefCell<GateState>>,
}

impl Gate {
    pub(crate) fn new(engine: Rc<RefCell<Inner>>) -> Self {
        Gate {
            engine,
            state: Rc::default(),
        }
    }

    /// Parks the calling task until the next [`Gate::open`].
    pub fn wait(&self) -> Wait {
        Wait {
            gate: self.clone(),
            key: None,
            filter: WakeFilter::Any,
        }
    }

    /// Registers the calling task on the gate *immediately* and returns a
    /// future that resolves once the gate opens.
    ///
    /// Unlike [`Gate::wait`] (which registers at first poll), a ticket
    /// taken synchronously right after checking a condition cannot miss a
    /// wake-up that lands before the task actually suspends — the
    /// check-then-park race that blocked versioned operations would
    /// otherwise have while they sleep off their attempt latency.
    pub fn ticket(&self) -> Wait {
        self.ticket_filtered(WakeFilter::Any)
    }

    /// [`Gate::ticket`] with a [`WakeFilter`]: broadcast opens still wake
    /// this waiter, but [`Gate::open_targeted`] skips it unless some
    /// payload word matches the filter.
    pub fn ticket_filtered(&self, filter: WakeFilter) -> Wait {
        let (task, now) = {
            let engine = self.engine.borrow();
            (engine.current_task(), engine.now())
        };
        let mut st = self.state.borrow_mut();
        let key = st.arena.park(task, filter, now);
        st.queue.push(key);
        Wait {
            gate: self.clone(),
            key: Some(key),
            filter,
        }
    }

    /// Wakes every task currently parked on this gate at the current cycle.
    pub fn open(&self) {
        self.open_tagged(WAKE_GENERIC);
    }

    /// [`Gate::open`] carrying a tag that every woken waiter receives from
    /// its `Wait` future — how wake-ups tell blocked tasks *what* happened
    /// (a store vs. an unlock, say) without re-reading shared state.
    pub fn open_tagged(&self, tag: WakeTag) {
        self.open_tagged_from(tag, WakeOrigin::default());
    }

    /// [`Gate::open_tagged`] carrying a [`WakeOrigin`] identifying the
    /// producing actor, so waiters can record *who* released them.
    pub fn open_tagged_from(&self, tag: WakeTag, origin: WakeOrigin) {
        let now = self.engine.borrow().now();
        self.open_at_tagged_from(now, tag, origin);
    }

    /// Wakes every task currently parked on this gate at cycle `at`
    /// (clamped to the present).
    pub fn open_at(&self, at: Cycle) {
        self.open_at_tagged(at, WAKE_GENERIC);
    }

    /// [`Gate::open_at`] with a wake tag.
    pub fn open_at_tagged(&self, at: Cycle, tag: WakeTag) {
        self.open_at_tagged_from(at, tag, WakeOrigin::default());
    }

    /// [`Gate::open_at_tagged`] with a [`WakeOrigin`].
    pub fn open_at_tagged_from(&self, at: Cycle, tag: WakeTag, origin: WakeOrigin) {
        let st = &mut *self.state.borrow_mut();
        if st.queue.is_empty() {
            return;
        }
        let wake = Wake { tag, origin };
        let mut engine = self.engine.borrow_mut();
        let eff_at = at.max(engine.now());
        let fanout = st.queue.len() as u64;
        for key in st.queue.drain(..) {
            let (task, since) = st.arena.wake(key, wake);
            engine.record_gate_wait(eff_at.saturating_sub(since));
            engine.schedule(at, task);
        }
        engine.record_wake_fanout(fanout);
    }

    /// Wakes — at the current cycle — only the waiters whose [`WakeFilter`]
    /// matches one of `payloads`; the rest stay parked. Matching waiters
    /// wake in park order, exactly the relative order a broadcast open
    /// would give them.
    ///
    /// This is the targeted-delivery ablation: an opener that knows *what*
    /// it published (say, which version a store created) can skip waiters
    /// that provably cannot be satisfied by it, saving their wake/re-check
    /// round trips. A waiter registered without a filter
    /// ([`WakeFilter::Any`]) always wakes.
    pub fn open_targeted(&self, tag: WakeTag, payloads: &[u64]) {
        self.open_targeted_from(tag, payloads, WakeOrigin::default());
    }

    /// [`Gate::open_targeted`] with a [`WakeOrigin`].
    pub fn open_targeted_from(&self, tag: WakeTag, payloads: &[u64], origin: WakeOrigin) {
        let now = self.engine.borrow().now();
        self.open_targeted_at_from(now, tag, payloads, origin);
    }

    /// [`Gate::open_targeted`] at cycle `at` (clamped to the present).
    pub fn open_targeted_at(&self, at: Cycle, tag: WakeTag, payloads: &[u64]) {
        self.open_targeted_at_from(at, tag, payloads, WakeOrigin::default());
    }

    /// [`Gate::open_targeted_at`] with a [`WakeOrigin`].
    pub fn open_targeted_at_from(
        &self,
        at: Cycle,
        tag: WakeTag,
        payloads: &[u64],
        origin: WakeOrigin,
    ) {
        let st = &mut *self.state.borrow_mut();
        if st.queue.is_empty() {
            return;
        }
        let wake = Wake { tag, origin };
        let mut engine = self.engine.borrow_mut();
        let eff_at = at.max(engine.now());
        let arena = &mut st.arena;
        let mut fanout = 0u64;
        st.queue.retain(|&key| {
            let matches = match arena.state(key) {
                Some(SlotState::Parked { filter, .. }) => filter.matches(payloads),
                _ => unreachable!("queued waiter is not parked"),
            };
            if !matches {
                return true;
            }
            let (task, since) = arena.wake(key, wake);
            engine.record_gate_wait(eff_at.saturating_sub(since));
            engine.schedule(at, task);
            fanout += 1;
            false
        });
        engine.record_wake_fanout(fanout);
    }

    /// Number of tasks currently parked.
    pub fn waiting(&self) -> usize {
        self.state.borrow().queue.len()
    }
}

/// Future returned by [`Gate::wait`] / [`Gate::ticket`]; resolves to the
/// [`Wake`] (tag plus origin) of the `open` that released it.
pub struct Wait {
    gate: Gate,
    key: Option<WaiterKey>,
    filter: WakeFilter,
}

impl Future for Wait {
    type Output = Wake;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Wake> {
        let this = self.get_mut();
        match this.key {
            Some(key) => {
                let mut st = this.gate.state.borrow_mut();
                match st.arena.state(key) {
                    Some(&SlotState::Woken { wake }) => {
                        st.arena.release(key);
                        // The slot is recycled; forget the key so Drop
                        // cannot release a future occupant.
                        this.key = None;
                        Poll::Ready(wake)
                    }
                    Some(SlotState::Parked { .. }) => Poll::Pending,
                    _ => unreachable!("waiter slot recycled while the Wait was live"),
                }
            }
            None => {
                let (task, now) = {
                    let engine = this.gate.engine.borrow();
                    (engine.current_task(), engine.now())
                };
                let mut st = this.gate.state.borrow_mut();
                let key = st.arena.park(task, this.filter, now);
                st.queue.push(key);
                this.key = Some(key);
                Poll::Pending
            }
        }
    }
}

impl Drop for Wait {
    /// Deregisters a waiter that was parked but never woken, and returns
    /// its slot to the arena's free list.
    ///
    /// Without the deregistration, a ticket taken and then abandoned (its
    /// task finished another way, or the whole simulation was torn down
    /// mid-wait) would leave a dead entry in the gate's park queue; the
    /// next `open` would "wake" it — scheduling a spurious event for a
    /// task that is no longer parked here. A woken-but-never-collected
    /// slot only needs releasing; its queue entry was consumed by the
    /// open that woke it.
    fn drop(&mut self) {
        let Some(key) = self.key else { return };
        let mut st = self.gate.state.borrow_mut();
        if matches!(st.arena.state(key), Some(SlotState::Parked { .. })) {
            st.queue.retain(|&k| k != key);
        }
        st.arena.release(key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sim;
    use std::cell::Cell;

    #[test]
    fn open_wakes_all_waiters_at_given_time() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        let woken = Rc::new(RefCell::new(Vec::new()));
        for id in 0..3u32 {
            let h = sim.handle();
            let gate = gate.clone();
            let woken = Rc::clone(&woken);
            sim.spawn(async move {
                gate.wait().await;
                woken.borrow_mut().push((id, h.now()));
            });
        }
        {
            let h = sim.handle();
            let gate = gate.clone();
            sim.spawn(async move {
                h.sleep(50).await;
                gate.open_at(h.now() + 4);
            });
        }
        assert_eq!(sim.run(), Ok(54));
        assert_eq!(*woken.borrow(), vec![(0, 54), (1, 54), (2, 54)]);
    }

    #[test]
    fn open_with_no_waiters_is_noop() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        sim.spawn(async move {
            gate.open();
            assert_eq!(gate.waiting(), 0);
        });
        assert_eq!(sim.run(), Ok(0));
    }

    #[test]
    fn wait_loop_recheck_pattern() {
        // The canonical blocked-versioned-load shape: re-check a condition
        // after every wake until it holds.
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        let value = Rc::new(Cell::new(0u32));
        {
            let h = sim.handle();
            let gate = gate.clone();
            let value = Rc::clone(&value);
            sim.spawn(async move {
                while value.get() < 3 {
                    gate.wait().await;
                }
                assert_eq!(h.now(), 30);
            });
        }
        {
            let h = sim.handle();
            let gate = gate.clone();
            let value = Rc::clone(&value);
            sim.spawn(async move {
                for _ in 0..3 {
                    h.sleep(10).await;
                    value.set(value.get() + 1);
                    gate.open();
                }
            });
        }
        assert_eq!(sim.run(), Ok(30));
    }

    #[test]
    fn ticket_taken_before_open_survives_a_sleep() {
        // The lost-wakeup regression: check state, take a ticket, sleep,
        // then await the ticket. An open() landing during the sleep must
        // still wake the waiter.
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                let ticket = gate.ticket();
                h.sleep(100).await; // opener fires at t=10, mid-sleep
                ticket.await;
                assert_eq!(h.now(), 100);
            });
        }
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(10).await;
                gate.open();
            });
        }
        assert_eq!(sim.run(), Ok(100));
    }

    #[test]
    fn wake_tags_reach_waiters() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        let tags = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..2 {
            let gate = gate.clone();
            let tags = Rc::clone(&tags);
            sim.spawn(async move {
                let wake = gate.wait().await;
                tags.borrow_mut().push(wake.tag);
            });
        }
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(3).await;
                gate.open_tagged(7);
                // A second waiter parked later gets a different tag.
                h.sleep(3).await;
                gate.open(); // no waiters: no-op
            });
        }
        assert_eq!(sim.run(), Ok(6));
        assert_eq!(*tags.borrow(), vec![7, 7]);
    }

    #[test]
    fn untagged_open_delivers_generic_tag() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        {
            let gate = gate.clone();
            sim.spawn(async move {
                let wake = gate.wait().await;
                assert_eq!(wake.tag, crate::WAKE_GENERIC);
                assert_eq!(wake.origin, WakeOrigin::default());
            });
        }
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(1).await;
                gate.open();
            });
        }
        assert!(sim.run().is_ok());
    }

    #[test]
    fn wake_origins_reach_waiters() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        let got = Rc::new(RefCell::new(Vec::new()));
        for filter in [WakeFilter::Any, WakeFilter::Exact(9)] {
            let gate = gate.clone();
            let got = Rc::clone(&got);
            sim.spawn(async move {
                let wake = gate.ticket_filtered(filter).await;
                got.borrow_mut().push(wake);
            });
        }
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(4).await;
                let origin = WakeOrigin {
                    label: 0xabcd,
                    at: 3,
                };
                // Targeted open reaches both (Any + the matching Exact).
                gate.open_targeted_from(5, &[9], origin);
            });
        }
        assert!(sim.run().is_ok());
        let expect = Wake {
            tag: 5,
            origin: WakeOrigin {
                label: 0xabcd,
                at: 3,
            },
        };
        assert_eq!(*got.borrow(), vec![expect, expect]);
    }

    #[test]
    fn targeted_open_wakes_only_matching_waiters() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        let woken = Rc::new(RefCell::new(Vec::new()));
        // Three waiters: exact-7, at-most-3, unfiltered.
        for (id, filter) in [
            (0u32, WakeFilter::Exact(7)),
            (1, WakeFilter::AtMost(3)),
            (2, WakeFilter::Any),
        ] {
            let gate = gate.clone();
            let woken = Rc::clone(&woken);
            sim.spawn(async move {
                gate.ticket_filtered(filter).await;
                woken.borrow_mut().push(id);
            });
        }
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(5).await;
                // Payload 7: wakes exact-7 and the unfiltered waiter, in
                // park order; at-most-3 stays parked.
                gate.open_targeted(WAKE_GENERIC, &[7]);
                assert_eq!(gate.waiting(), 1);
                h.sleep(5).await;
                gate.open_targeted(WAKE_GENERIC, &[2]);
            });
        }
        assert!(sim.run().is_ok());
        assert_eq!(*woken.borrow(), vec![0, 2, 1]);
    }

    #[test]
    fn broadcast_open_ignores_filters() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        let woken = Rc::new(Cell::new(0u32));
        {
            let gate = gate.clone();
            let woken = Rc::clone(&woken);
            sim.spawn(async move {
                // A filter that no payload will ever match still wakes on
                // a plain (broadcast) open.
                gate.ticket_filtered(WakeFilter::Exact(u64::MAX)).await;
                woken.set(woken.get() + 1);
            });
        }
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(1).await;
                gate.open();
            });
        }
        assert!(sim.run().is_ok());
        assert_eq!(woken.get(), 1);
    }

    #[test]
    fn dropped_ticket_leaves_no_waiter_behind() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                let ticket = gate.ticket();
                assert_eq!(gate.waiting(), 1);
                drop(ticket); // abandoned without being awaited
                assert_eq!(gate.waiting(), 0, "dropped ticket must deregister");
                h.sleep(1).await;
            });
        }
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(2).await;
                gate.open(); // nothing left to wake
                assert_eq!(gate.waiting(), 0);
            });
        }
        assert!(sim.run().is_ok());
    }

    #[test]
    fn woken_ticket_drop_does_not_disturb_other_waiters() {
        // A ticket that was woken and then dropped (after resolving) must
        // not remove a *different* waiter's slot.
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        let woken = Rc::new(Cell::new(0u32));
        for _ in 0..2 {
            let gate = gate.clone();
            let woken = Rc::clone(&woken);
            sim.spawn(async move {
                gate.ticket().await;
                woken.set(woken.get() + 1);
            });
        }
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(1).await;
                gate.open();
            });
        }
        assert!(sim.run().is_ok());
        assert_eq!(woken.get(), 2);
    }

    #[test]
    fn waiters_parked_after_open_are_not_woken_by_it() {
        let sim = Sim::new();
        let h = sim.handle();
        let gate = h.gate();
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(5).await;
                gate.open();
            });
        }
        {
            let gate = gate.clone();
            let h = h.clone();
            sim.spawn(async move {
                h.sleep(10).await;
                h.set_wait_info(crate::WaitInfo {
                    label: 42,
                    resource: 0xbeef,
                    target: 7,
                    kind: "missing-version",
                    holder: None,
                });
                gate.wait().await; // parked after the only open() — deadlock
            });
        }
        let err = sim.run().unwrap_err();
        let crate::RunError::Deadlock { now, blocked } = &err else {
            panic!("expected deadlock, got {err:?}");
        };
        assert_eq!(*now, 10);
        assert_eq!(blocked.len(), 1);
        assert_eq!(blocked[0].task, 1);
        assert_eq!(blocked[0].since, Some(10));
        let info = blocked[0].info.as_ref().expect("wait record registered");
        assert_eq!(info.label, 42);
        assert_eq!(info.resource, 0xbeef);
        assert_eq!(info.target, 7);
        assert_eq!(info.kind, "missing-version");
        assert_eq!(info.holder, None);
        // The Display form names the wait target, not just a count.
        let msg = err.to_string();
        assert!(msg.contains("task 42"), "{msg}");
        assert!(msg.contains("version 7"), "{msg}");
    }
}
