//! Property-based tests of the simulation engine: determinism and timing
//! laws over arbitrary task programs.

use std::cell::RefCell;
use std::rc::Rc;

use proptest::prelude::*;

use osim_engine::{Cycle, Sim};

/// A little task program: alternate sleeps and gate interactions.
#[derive(Debug, Clone)]
enum Step {
    Sleep(u8),
    OpenGate(u8),
    WaitGate(u8),
}

fn program_strategy() -> impl Strategy<Value = Vec<Vec<Step>>> {
    let step = prop_oneof![
        (1u8..20).prop_map(Step::Sleep),
        (0u8..3).prop_map(Step::OpenGate),
        (0u8..3).prop_map(Step::WaitGate),
    ];
    proptest::collection::vec(proptest::collection::vec(step, 0..12), 1..6)
}

/// Runs a program, returning `(end_time, per-task event log)`. Waits that
/// would deadlock are bounded by a janitor task that opens all gates at a
/// late time.
fn execute(programs: &[Vec<Step>]) -> (Cycle, Vec<(usize, Cycle)>) {
    let sim = Sim::new();
    let h = sim.handle();
    let gates: Vec<_> = (0..3).map(|_| h.gate()).collect();
    let log: Rc<RefCell<Vec<(usize, Cycle)>>> = Rc::default();
    for (id, prog) in programs.iter().enumerate() {
        let h = sim.handle();
        let gates = gates.clone();
        let prog = prog.clone();
        let log = Rc::clone(&log);
        sim.spawn(async move {
            for step in prog {
                match step {
                    Step::Sleep(n) => h.sleep(n as u64).await,
                    Step::OpenGate(g) => gates[g as usize].open(),
                    Step::WaitGate(g) => {
                        gates[g as usize].wait().await;
                    }
                }
                log.borrow_mut().push((id, h.now()));
            }
        });
    }
    // Janitor: periodically open every gate so no wait is forever.
    {
        let h = sim.handle();
        let gates = gates.clone();
        sim.spawn(async move {
            for _ in 0..64 {
                h.sleep(50).await;
                for g in &gates {
                    g.open();
                }
            }
        });
    }
    let end = sim.run().expect("janitor prevents deadlock");
    let log = Rc::try_unwrap(log).unwrap().into_inner();
    (end, log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Identical programs produce identical event interleavings.
    #[test]
    fn runs_are_deterministic(programs in program_strategy()) {
        prop_assert_eq!(execute(&programs), execute(&programs));
    }

    /// Per-task event times never go backwards, and no event happens after
    /// the simulation reports its end time.
    #[test]
    fn time_is_monotonic_per_task(programs in program_strategy()) {
        let (end, log) = execute(&programs);
        let mut last = vec![0u64; programs.len()];
        for (id, at) in log {
            prop_assert!(at >= last[id], "task {} went back in time", id);
            prop_assert!(at <= end);
            last[id] = at;
        }
    }

    /// A task's sleeps alone lower-bound the end time.
    #[test]
    fn sleep_sums_lower_bound_the_end(programs in program_strategy()) {
        let (end, _) = execute(&programs);
        for prog in &programs {
            let sum: u64 = prog
                .iter()
                .map(|s| match s {
                    Step::Sleep(n) => *n as u64,
                    _ => 0,
                })
                .sum();
            prop_assert!(end >= sum);
        }
    }
}
