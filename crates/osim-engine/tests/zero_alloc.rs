//! Proof of the zero-allocation claim: once warm, steady-state gate
//! `wait()`/`open_at()` traffic and event dispatch perform no heap
//! allocations under either scheduler — including with dependency-flow
//! capture armed (every open carrying a tagged [`WakeOrigin`]) and with
//! metrics recording live: the engine's gate-wait/fan-out histograms are
//! fed inline by every open, and `osim_metrics::Histogram` record/merge
//! is additionally hammered directly inside the armed window — as is the
//! observability plane's recording side (a running [`FlightRecorder`]
//! with its sampler parked, relaxed counter bumps, a shared pre-allocated
//! histogram, and the disarmed host-trace fast path).
//!
//! A counting `#[global_allocator]` is armed from inside the simulation
//! after a warm-up window (slab slots claimed, wheel buckets and queues at
//! capacity) and disarmed before teardown; the count of allocations inside
//! the window must be exactly zero. This file holds a single test so no
//! concurrent test thread can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use std::cell::RefCell;
use std::rc::Rc;

use osim_engine::{SchedulerKind, Sim, WakeOrigin};
use osim_metrics::{FlightCfg, FlightRecorder, Histogram, Registry};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_gate_and_dispatch_are_allocation_free() {
    const ROUNDS: u64 = 1_000;
    const ARM_AT: u64 = 300;
    const DISARM_AT: u64 = 900;
    const WAITERS: usize = 16;

    // Records what the hot loop does on the observability recording side:
    // the same primitives the instrumented layers use (relaxed counter,
    // pre-allocated histogram behind a mutex).
    static TICKS: AtomicU64 = AtomicU64::new(0);

    for kind in [SchedulerKind::CalendarQueue, SchedulerKind::BinaryHeap] {
        ARMED.store(false, Ordering::SeqCst);
        ALLOCS.store(0, Ordering::SeqCst);
        TICKS.store(0, Ordering::SeqCst);

        // Flight recorder armed across the window. Its sampler thread
        // parks far beyond the test (collection allocates by design and is
        // driven via `sample_now` strictly outside the counted window), so
        // what stays inside the window is exactly the recording side.
        let wait_hist = Arc::new(Mutex::new(Histogram::new()));
        let collect_hist = Arc::clone(&wait_hist);
        let recorder = FlightRecorder::start(
            FlightCfg {
                interval: Duration::from_secs(3600),
                capacity: 8,
            },
            Arc::new(move |reg: &mut Registry| {
                reg.counter_add("osim_test_ticks_total", &[], TICKS.load(Ordering::Relaxed));
                reg.hist_mut("osim_test_wait_us", &[])
                    .merge(&collect_hist.lock().expect("hist lock"));
            }),
        )
        .expect("start recorder");
        recorder.sample_now();
        // Warm the recording-side mutex and the disarmed host-trace path.
        wait_hist.lock().expect("hist lock").record(1);
        let trace_t0 = std::time::Instant::now();

        let sim = Sim::with_scheduler(kind);
        let h = sim.handle();
        let gate = h.gate();
        for _ in 0..WAITERS {
            let gate = gate.clone();
            sim.spawn(async move {
                for _ in 0..ROUNDS {
                    gate.wait().await;
                }
            });
        }
        // Allocated before the window arms: `Histogram` itself is a flat
        // fixed-size value, so record()/merge() inside the loop must not
        // touch the heap.
        let local_hist = Rc::new(RefCell::new((Histogram::new(), Histogram::new())));
        {
            let h = h.clone();
            let local_hist = Rc::clone(&local_hist);
            let wait_hist = Arc::clone(&wait_hist);
            sim.spawn(async move {
                for round in 0..ROUNDS {
                    if round == ARM_AT {
                        ARMED.store(true, Ordering::SeqCst);
                    }
                    if round == DISARM_AT {
                        ARMED.store(false, Ordering::SeqCst);
                    }
                    // Attach a wake origin (the dependency-capture path):
                    // origin propagation must be as allocation-free as the
                    // plain open.
                    let origin = WakeOrigin {
                        label: (round << 32) | 1,
                        at: h.now(),
                    };
                    gate.open_at_tagged_from(h.now() + 1, 1, origin);
                    // Metrics armed on the hot loop: record spans the
                    // linear and log bucket ranges, and a merge runs every
                    // round — all of it inside the counted window.
                    {
                        let (ref mut a, ref mut b) = *local_hist.borrow_mut();
                        a.record(round);
                        a.record(round << 8);
                        b.merge(a);
                    }
                    // The observability recording side, live inside the
                    // counted window: relaxed counter bump, shared
                    // pre-allocated histogram record, and the disarmed
                    // host-trace fast path (one relaxed load).
                    TICKS.fetch_add(1, Ordering::Relaxed);
                    wait_hist.lock().expect("hist lock").record(round);
                    osim_metrics::host_trace_span("job", "noop", 0, trace_t0);
                    h.sleep(1).await;
                }
            });
        }
        sim.run().expect("no deadlock");

        let counted = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(
            counted, 0,
            "{kind:?}: {counted} heap allocation(s) in the steady-state window \
             (rounds {ARM_AT}..{DISARM_AT}, {WAITERS} waiters)"
        );
        // The window was not vacuously quiet: the engine-side histograms
        // were recording throughout (one wait per waiter wake, one fan-out
        // sample per open), and the direct record/merge traffic landed.
        let eng = sim.hists();
        assert_eq!(eng.wake_fanout.count(), ROUNDS);
        assert_eq!(eng.gate_wait.count(), WAITERS as u64 * ROUNDS);
        assert_eq!(local_hist.borrow().0.count(), 2 * ROUNDS);
        // The recorder observed the recording-side traffic: a second
        // sample (outside the window) turns the counter's final value into
        // the window-delta sum.
        recorder.sample_now();
        let ticks: u64 = recorder
            .windows()
            .iter()
            .flat_map(|w| w.counters.iter())
            .filter(|(name, _)| name == "osim_test_ticks_total")
            .map(|(_, v)| v)
            .sum();
        assert_eq!(ticks, ROUNDS, "{kind:?}: recorder missed ticks");
    }
}
