//! Proof of the PR's zero-allocation claim: once warm, steady-state gate
//! `wait()`/`open_at()` traffic and event dispatch perform no heap
//! allocations under either scheduler — including with dependency-flow
//! capture armed, i.e. every open carrying a tagged [`WakeOrigin`].
//!
//! A counting `#[global_allocator]` is armed from inside the simulation
//! after a warm-up window (slab slots claimed, wheel buckets and queues at
//! capacity) and disarmed before teardown; the count of allocations inside
//! the window must be exactly zero. This file holds a single test so no
//! concurrent test thread can pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use osim_engine::{SchedulerKind, Sim, WakeOrigin};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_gate_and_dispatch_are_allocation_free() {
    const ROUNDS: u64 = 1_000;
    const ARM_AT: u64 = 300;
    const DISARM_AT: u64 = 900;
    const WAITERS: usize = 16;

    for kind in [SchedulerKind::CalendarQueue, SchedulerKind::BinaryHeap] {
        ARMED.store(false, Ordering::SeqCst);
        ALLOCS.store(0, Ordering::SeqCst);

        let sim = Sim::with_scheduler(kind);
        let h = sim.handle();
        let gate = h.gate();
        for _ in 0..WAITERS {
            let gate = gate.clone();
            sim.spawn(async move {
                for _ in 0..ROUNDS {
                    gate.wait().await;
                }
            });
        }
        {
            let h = h.clone();
            sim.spawn(async move {
                for round in 0..ROUNDS {
                    if round == ARM_AT {
                        ARMED.store(true, Ordering::SeqCst);
                    }
                    if round == DISARM_AT {
                        ARMED.store(false, Ordering::SeqCst);
                    }
                    // Attach a wake origin (the dependency-capture path):
                    // origin propagation must be as allocation-free as the
                    // plain open.
                    let origin = WakeOrigin {
                        label: (round << 32) | 1,
                        at: h.now(),
                    };
                    gate.open_at_tagged_from(h.now() + 1, 1, origin);
                    h.sleep(1).await;
                }
            });
        }
        sim.run().expect("no deadlock");

        let counted = ALLOCS.load(Ordering::SeqCst);
        assert_eq!(
            counted, 0,
            "{kind:?}: {counted} heap allocation(s) in the steady-state window \
             (rounds {ARM_AT}..{DISARM_AT}, {WAITERS} waiters)"
        );
    }
}
