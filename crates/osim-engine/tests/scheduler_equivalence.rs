//! Property: the calendar-queue scheduler and the reference binary heap
//! dispatch the *same* events in the *same* order — the total order on
//! `(cycle, seq)` — under randomized sleep/gate/spawn schedules.
//!
//! Each generated program runs once under each [`SchedulerKind`], logging
//! `(task, step, cycle)` at every action boundary; the two logs (and the
//! final simulated time) must be identical. The near/far delay mix pushes
//! events through both the wheel buckets and the overflow heap.

use std::cell::RefCell;
use std::rc::Rc;

use osim_engine::{EngineStats, SchedulerKind, ShakePolicy, Sim};
use proptest::prelude::*;

const GATES: usize = 3;

/// One step of a generated task program.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// Advance simulated time; delays beyond the wheel span (256 cycles)
    /// land in the overflow heap.
    Sleep(u64),
    /// Park on gate `.0` until any open.
    Wait(usize),
    /// Open gate `.0` at `now + .1`.
    Open(usize, u64),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u64..600).prop_map(Action::Sleep),
        (0..GATES).prop_map(Action::Wait),
        ((0..GATES), 0u64..600).prop_map(|(g, d)| Action::Open(g, d)),
    ]
}

fn program_strategy() -> impl Strategy<Value = Vec<Vec<Action>>> {
    proptest::collection::vec(proptest::collection::vec(action_strategy(), 0..8), 1..6)
}

type Log = Rc<RefCell<Vec<(usize, usize, u64)>>>;

/// Runs `program` under `kind`/`shake`, returning the dispatch log and
/// end time.
fn run_shaken(
    program: &[Vec<Action>],
    kind: SchedulerKind,
    shake: ShakePolicy,
) -> (Vec<(usize, usize, u64)>, u64) {
    let sim = Sim::with_policy(kind, shake);
    let h = sim.handle();
    let gates: Vec<_> = (0..GATES).map(|_| h.gate()).collect();
    let log: Log = Rc::default();
    let max_delay = 600;
    for (ti, actions) in program.iter().enumerate() {
        let h = h.clone();
        let gates = gates.clone();
        let log = Rc::clone(&log);
        let actions = actions.clone();
        sim.spawn(async move {
            for (si, action) in actions.iter().enumerate() {
                match *action {
                    Action::Sleep(d) => h.sleep(d).await,
                    Action::Wait(g) => {
                        gates[g].wait().await;
                    }
                    Action::Open(g, d) => gates[g].open_at(h.now() + d),
                }
                log.borrow_mut().push((ti, si, h.now()));
            }
        });
    }
    // Sweeper: generated programs may park tasks nobody opens for; keep
    // broadcasting on every gate until only the sweeper itself is left.
    // Fully deterministic, so it cannot mask an ordering divergence.
    {
        let h = h.clone();
        sim.spawn(async move {
            while h.live_tasks() > 1 {
                for g in &gates {
                    g.open_at(h.now());
                }
                h.sleep(max_delay).await;
            }
        });
    }
    let end = sim.run().expect("sweeper prevents deadlock");
    (Rc::try_unwrap(log).unwrap().into_inner(), end)
}

/// Runs `program` under `kind` with shaking off.
fn run(program: &[Vec<Action>], kind: SchedulerKind) -> (Vec<(usize, usize, u64)>, u64) {
    run_shaken(program, kind, ShakePolicy::Off)
}

/// A structured wait/open/abandon program whose event *totals* are
/// interleaving-invariant by construction: `waiters` tasks take a gate
/// ticket at cycle 0 and await it, `abandoners` take a ticket, sleep past
/// the opener, and drop it unawaited, and one opener wakes everyone at
/// `OPEN_AT`. Each task resumes exactly twice whatever the same-cycle
/// dispatch order is, and each abandoned ticket's wake dispatches stale.
/// Returns the engine counters and end time.
const OPEN_AT: u64 = 5000; // beyond the wheel span, so the overflow heap runs too

fn stale_run(
    kind: SchedulerKind,
    shake: ShakePolicy,
    waiters: usize,
    abandoners: &[u64],
) -> (EngineStats, u64) {
    let sim = Sim::with_policy(kind, shake);
    let h = sim.handle();
    let gate = h.gate();
    for _ in 0..waiters {
        let gate = gate.clone();
        sim.spawn(async move {
            gate.ticket().await;
        });
    }
    for &d in abandoners {
        let h = h.clone();
        let gate = gate.clone();
        sim.spawn(async move {
            let ticket = gate.ticket();
            // Outlive the opener's drain (cycle 1), die before the wake.
            h.sleep(2 + d).await;
            drop(ticket);
        });
    }
    {
        let h = h.clone();
        let gate = gate.clone();
        sim.spawn(async move {
            h.sleep(1).await;
            gate.open_at(OPEN_AT);
        });
    }
    let end = sim.run().expect("opener wakes every waiter");
    (sim.stats(), end)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calendar_and_heap_dispatch_identically(program in program_strategy()) {
        let (log_cal, end_cal) = run(&program, SchedulerKind::CalendarQueue);
        let (log_heap, end_heap) = run(&program, SchedulerKind::BinaryHeap);
        prop_assert_eq!(end_cal, end_heap, "end times diverged");
        prop_assert_eq!(log_cal, log_heap, "dispatch order diverged");
    }

    /// The equivalence holds per shake seed too: a seeded tie-break
    /// stream defines one total order that both queue implementations
    /// must realize identically.
    #[test]
    fn shaken_schedulers_dispatch_identically(program in program_strategy(), seed in any::<u64>()) {
        let shake = ShakePolicy::Seeded(seed);
        let (log_cal, end_cal) = run_shaken(&program, SchedulerKind::CalendarQueue, shake);
        let (log_heap, end_heap) = run_shaken(&program, SchedulerKind::BinaryHeap, shake);
        prop_assert_eq!(end_cal, end_heap, "end times diverged under seed {}", seed);
        prop_assert_eq!(log_cal, log_heap, "dispatch order diverged under seed {}", seed);
    }

    /// Event accounting is schedule-invariant: however a seed permutes
    /// same-cycle dispatch, the wait/open/abandon program dispatches the
    /// same number of events and skips the same number of stale wakes —
    /// and the exact totals follow from the program shape alone.
    #[test]
    fn stale_event_totals_are_schedule_invariant(
        waiters in 1usize..6,
        abandoners in proptest::collection::vec(0u64..600, 1..6),
        seeds in proptest::collection::vec(any::<u64>(), 1..4),
    ) {
        let tasks = (waiters + abandoners.len() + 1) as u64;
        let (ref_stats, ref_end) =
            stale_run(SchedulerKind::CalendarQueue, ShakePolicy::Off, waiters, &abandoners);
        prop_assert_eq!(ref_stats.events_dispatched, 2 * tasks, "two resumptions per task");
        prop_assert_eq!(ref_stats.stale_events, abandoners.len() as u64,
            "one stale wake per abandoned ticket");
        prop_assert_eq!(ref_end, OPEN_AT);
        let mut policies = vec![ShakePolicy::Off];
        policies.extend(seeds.iter().map(|&s| ShakePolicy::Seeded(s)));
        for shake in policies {
            for kind in [SchedulerKind::CalendarQueue, SchedulerKind::BinaryHeap] {
                let (stats, end) = stale_run(kind, shake, waiters, &abandoners);
                prop_assert_eq!(stats.events_dispatched, ref_stats.events_dispatched,
                    "dispatch total diverged under {:?}/{:?}", kind, shake);
                prop_assert_eq!(stats.stale_events, ref_stats.stale_events,
                    "stale total diverged under {:?}/{:?}", kind, shake);
                prop_assert_eq!(end, ref_end, "end time diverged under {:?}/{:?}", kind, shake);
            }
        }
    }
}
