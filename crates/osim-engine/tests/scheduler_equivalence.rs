//! Property: the calendar-queue scheduler and the reference binary heap
//! dispatch the *same* events in the *same* order — the total order on
//! `(cycle, seq)` — under randomized sleep/gate/spawn schedules.
//!
//! Each generated program runs once under each [`SchedulerKind`], logging
//! `(task, step, cycle)` at every action boundary; the two logs (and the
//! final simulated time) must be identical. The near/far delay mix pushes
//! events through both the wheel buckets and the overflow heap.

use std::cell::RefCell;
use std::rc::Rc;

use osim_engine::{SchedulerKind, Sim};
use proptest::prelude::*;

const GATES: usize = 3;

/// One step of a generated task program.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// Advance simulated time; delays beyond the wheel span (256 cycles)
    /// land in the overflow heap.
    Sleep(u64),
    /// Park on gate `.0` until any open.
    Wait(usize),
    /// Open gate `.0` at `now + .1`.
    Open(usize, u64),
}

fn action_strategy() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0u64..600).prop_map(Action::Sleep),
        (0..GATES).prop_map(Action::Wait),
        ((0..GATES), 0u64..600).prop_map(|(g, d)| Action::Open(g, d)),
    ]
}

fn program_strategy() -> impl Strategy<Value = Vec<Vec<Action>>> {
    proptest::collection::vec(proptest::collection::vec(action_strategy(), 0..8), 1..6)
}

type Log = Rc<RefCell<Vec<(usize, usize, u64)>>>;

/// Runs `program` under `kind`, returning the dispatch log and end time.
fn run(program: &[Vec<Action>], kind: SchedulerKind) -> (Vec<(usize, usize, u64)>, u64) {
    let sim = Sim::with_scheduler(kind);
    let h = sim.handle();
    let gates: Vec<_> = (0..GATES).map(|_| h.gate()).collect();
    let log: Log = Rc::default();
    let max_delay = 600;
    for (ti, actions) in program.iter().enumerate() {
        let h = h.clone();
        let gates = gates.clone();
        let log = Rc::clone(&log);
        let actions = actions.clone();
        sim.spawn(async move {
            for (si, action) in actions.iter().enumerate() {
                match *action {
                    Action::Sleep(d) => h.sleep(d).await,
                    Action::Wait(g) => {
                        gates[g].wait().await;
                    }
                    Action::Open(g, d) => gates[g].open_at(h.now() + d),
                }
                log.borrow_mut().push((ti, si, h.now()));
            }
        });
    }
    // Sweeper: generated programs may park tasks nobody opens for; keep
    // broadcasting on every gate until only the sweeper itself is left.
    // Fully deterministic, so it cannot mask an ordering divergence.
    {
        let h = h.clone();
        sim.spawn(async move {
            while h.live_tasks() > 1 {
                for g in &gates {
                    g.open_at(h.now());
                }
                h.sleep(max_delay).await;
            }
        });
    }
    let end = sim.run().expect("sweeper prevents deadlock");
    (Rc::try_unwrap(log).unwrap().into_inner(), end)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn calendar_and_heap_dispatch_identically(program in program_strategy()) {
        let (log_cal, end_cal) = run(&program, SchedulerKind::CalendarQueue);
        let (log_heap, end_heap) = run(&program, SchedulerKind::BinaryHeap);
        prop_assert_eq!(end_cal, end_heap, "end times diverged");
        prop_assert_eq!(log_cal, log_heap, "dispatch order diverged");
    }
}
