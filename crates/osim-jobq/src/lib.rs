//! `osim-jobq` — reusable deterministic job queue with a content-addressed
//! result cache.
//!
//! Extracted from the sweep worker pool that lived inside
//! `osim-experiments` so other front ends (a future `osim-serve`, ad-hoc
//! tools) can share it. Three pieces, layered:
//!
//! * [`key`] — a stable 128-bit content hash ([`KeyBuilder`]/[`CacheKey`])
//!   for naming a unit of work by *everything that determines its output*.
//! * [`store`] — [`TextStore`], a two-tier (memory + one-file-per-entry
//!   disk) blob store with atomic writes, corrupt-entry accounting, and
//!   osim-metrics instrumentation.
//! * [`queue`] — ordered fan-out of [`Job`]s over worker threads with
//!   bounded-buffer backpressure ([`JobQueue`]), per-job/per-worker
//!   telemetry, a live progress line, and transparent cache probing
//!   through the [`ResultCache`] trait.
//!
//! The queue knows nothing about simulators or report schemas: results are
//! any `Send` type, cache entries are text, and the mapping between the
//! two is the caller's codec (see `runcache` in `osim-experiments`).

pub mod key;
pub mod queue;
pub mod store;

pub use key::{CacheKey, KeyBuilder};
pub use queue::{
    drain_telemetry, fill_live_registry, no_counters, run_jobs, set_progress, CountersFn, Job,
    JobQueue, JobTiming, Outcome, ResultCache, RunCfg, Telemetry,
};
pub use store::{StoreCounts, TextStore};
