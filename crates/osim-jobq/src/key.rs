//! Stable content hashing for cache keys.
//!
//! The cache key must be stable across processes, platforms, and rebuilds:
//! `std::hash` makes no such promise (SipHash is randomly seeded), so we
//! vendor a 128-bit FNV-1a. 128 bits keeps accidental collisions out of
//! reach for any realistic number of cache entries, and the implementation
//! is ~20 lines of wrapping arithmetic — no dependency needed.
//!
//! Keys are built field-by-field through [`KeyBuilder`]: every field feeds
//! its *name* as well as its value into the hash, each length-prefixed, so
//! reordering, merging, or splitting fields always changes the key. A
//! `domain` string and a caller-supplied semantics version seed the hash so
//! unrelated key spaces (and incompatible engine revisions) can never
//! alias.

const FNV_OFFSET: u128 = 0x6c62272e07bb014262b821756295c58d;
const FNV_PRIME: u128 = 0x0000000001000000000000000000013b;

/// A 128-bit stable content hash identifying one cacheable unit of work.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey(pub u128);

impl CacheKey {
    /// Lower-case 32-hex-digit rendering; used as the on-disk file stem.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parse the `hex()` rendering back. Accepts exactly 32 hex digits.
    pub fn from_hex(s: &str) -> Option<CacheKey> {
        if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(CacheKey)
    }
}

impl std::fmt::Debug for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CacheKey({})", self.hex())
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.hex())
    }
}

/// Incremental, field-named key construction.
///
/// Every value is written as `len(name) name tag len(value) value` so that
/// field boundaries are unambiguous: `("a", "bc")` and `("ab", "c")` hash
/// differently, as do a `u64` 1 and the string "1".
pub struct KeyBuilder {
    state: u128,
}

impl KeyBuilder {
    pub fn new(domain: &str, semantics_version: u64) -> KeyBuilder {
        let mut kb = KeyBuilder { state: FNV_OFFSET };
        kb.bytes(domain.as_bytes());
        kb.bytes(&semantics_version.to_le_bytes());
        kb
    }

    fn bytes(&mut self, b: &[u8]) {
        let mut s = self.state;
        for &byte in (b.len() as u64).to_le_bytes().iter().chain(b.iter()) {
            s ^= byte as u128;
            s = s.wrapping_mul(FNV_PRIME);
        }
        self.state = s;
    }

    fn field(&mut self, name: &str, tag: u8, value: &[u8]) {
        self.bytes(name.as_bytes());
        let mut s = self.state;
        s ^= tag as u128;
        s = s.wrapping_mul(FNV_PRIME);
        self.state = s;
        self.bytes(value);
    }

    pub fn str_field(mut self, name: &str, v: &str) -> Self {
        self.field(name, b's', v.as_bytes());
        self
    }

    pub fn u64_field(mut self, name: &str, v: u64) -> Self {
        self.field(name, b'u', &v.to_le_bytes());
        self
    }

    pub fn bool_field(mut self, name: &str, v: bool) -> Self {
        self.field(name, b'b', &[v as u8]);
        self
    }

    /// Options hash their presence explicitly: `None` and `Some(0)` differ.
    pub fn opt_u64_field(mut self, name: &str, v: Option<u64>) -> Self {
        match v {
            None => self.field(name, b'n', &[]),
            Some(x) => self.field(name, b'U', &x.to_le_bytes()),
        }
        self
    }

    pub fn opt_str_field(mut self, name: &str, v: Option<&str>) -> Self {
        match v {
            None => self.field(name, b'n', &[]),
            Some(x) => self.field(name, b'S', x.as_bytes()),
        }
        self
    }

    pub fn finish(self) -> CacheKey {
        CacheKey(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> KeyBuilder {
        KeyBuilder::new("test", 1)
    }

    #[test]
    fn deterministic_across_builders() {
        let a = base()
            .str_field("fig", "fig6")
            .u64_field("ops", 100)
            .finish();
        let b = base()
            .str_field("fig", "fig6")
            .u64_field("ops", 100)
            .finish();
        assert_eq!(a, b);
    }

    #[test]
    fn any_field_change_flips_key() {
        let k = base()
            .str_field("fig", "fig6")
            .u64_field("ops", 100)
            .finish();
        assert_ne!(
            k,
            base()
                .str_field("fig", "fig7")
                .u64_field("ops", 100)
                .finish()
        );
        assert_ne!(
            k,
            base()
                .str_field("fig", "fig6")
                .u64_field("ops", 101)
                .finish()
        );
        assert_ne!(
            k,
            KeyBuilder::new("test", 2)
                .str_field("fig", "fig6")
                .u64_field("ops", 100)
                .finish()
        );
        assert_ne!(
            k,
            KeyBuilder::new("other", 1)
                .str_field("fig", "fig6")
                .u64_field("ops", 100)
                .finish()
        );
    }

    #[test]
    fn field_boundaries_are_unambiguous() {
        let a = base().str_field("a", "bc").finish();
        let b = base().str_field("ab", "c").finish();
        assert_ne!(a, b);
        // Type tags keep equal byte patterns apart.
        let s = base().str_field("x", "\x01\0\0\0\0\0\0\0").finish();
        let u = base().u64_field("x", 1).finish();
        assert_ne!(s, u);
    }

    #[test]
    fn option_presence_is_hashed() {
        let none = base().opt_u64_field("seed", None).finish();
        let zero = base().opt_u64_field("seed", Some(0)).finish();
        assert_ne!(none, zero);
    }

    #[test]
    fn hex_round_trips() {
        let k = base().str_field("fig", "fig6").finish();
        assert_eq!(k.hex().len(), 32);
        assert_eq!(CacheKey::from_hex(&k.hex()), Some(k));
        assert_eq!(CacheKey::from_hex("zz"), None);
        assert_eq!(CacheKey::from_hex(&"f".repeat(33)), None);
    }

    #[test]
    fn known_vector_is_stable() {
        // Pin the hash function itself: if this changes, every on-disk
        // cache silently invalidates — which is safe, but should be a
        // deliberate choice, not an accident.
        let k = KeyBuilder::new("osim-run-v1", 1)
            .str_field("fig", "fig6")
            .finish();
        let again = KeyBuilder::new("osim-run-v1", 1)
            .str_field("fig", "fig6")
            .finish();
        assert_eq!(k, again);
        assert_eq!(k.hex().len(), 32);
    }
}
