//! Deterministic parallel execution of generic jobs.
//!
//! Callers first *plan* their work — a flat, ordered list of [`Job`]s —
//! and only then consume the results. The split lets the runs execute on
//! a worker pool: each job is built, run and torn down entirely inside
//! one worker thread, while results land in slots indexed by submission
//! order. Consuming the slots in that order makes everything rendered
//! from them byte-identical to a serial run regardless of worker count or
//! completion order.
//!
//! Two layers are offered:
//!
//! * [`JobQueue`] — long-lived workers fed through a bounded queue.
//!   [`JobQueue::submit`] blocks once `capacity` jobs are in flight, so a
//!   fast planner cannot buffer unbounded closures ahead of slow workers
//!   (backpressure).
//! * [`run_jobs`] — the batch convenience wrapper: submit a whole plan,
//!   wait, get results back in submission order. `threads <= 1` executes
//!   inline on the calling thread (the serial reference behaviour).
//!
//! Jobs carrying a [`CacheKey`] are probed against the batch's
//! [`ResultCache`] before execution: a hit skips the run entirely and is
//! reported as an instantly-completed job — it contributes no worker busy
//! time and is excluded from the ETA's throughput estimate, but shows up
//! in the progress line and telemetry under a distinct `hit` label.
//!
//! The queue is additionally *instrumented*: every batch records per-job
//! queue wait and run wall time, the worker that executed it, cache-hit
//! status, and caller-defined engine counters into a process-wide
//! [`Telemetry`] accumulator (drained by `drain_telemetry`). With
//! [`set_progress`] armed a live status line — jobs queued/running/done,
//! cache hits, ETA, per-worker state — is maintained on **stderr**, so
//! stdout and any machine-readable output stay byte-identical whatever
//! the host timing does.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

use osim_metrics::trace::{host_trace_armed, host_trace_span};
use osim_metrics::{Histogram, Registry};

use crate::key::CacheKey;

/// Worker tracks beyond this index fold into the last busy counter; 64
/// matches the `OMap` shard count and far exceeds any realistic `--jobs`.
const MAX_TRACKED_WORKERS: usize = 64;

/// Monotone live counters for the scrape plane.
///
/// Unlike [`Telemetry`] (drained once per invocation into `--sweep-json`),
/// these never reset: the flight recorder and external scrapers diff
/// consecutive snapshots to recover rates. The recording side is raw
/// atomics plus pre-allocated histograms — no allocation, so an armed
/// recorder cannot fail the counting-allocator guard.
struct LiveMetrics {
    jobs_total: AtomicU64,
    cache_hits_total: AtomicU64,
    backpressure_waits_total: AtomicU64,
    /// Jobs sitting in a bounded queue, not yet claimed by a worker.
    queued: AtomicU64,
    /// Jobs currently executing (or probing the cache).
    running: AtomicU64,
    backpressure_wait_us: Mutex<Histogram>,
    job_latency_us: Mutex<Histogram>,
    worker_busy_us: [AtomicU64; MAX_TRACKED_WORKERS],
}

fn live() -> &'static LiveMetrics {
    static LIVE: OnceLock<LiveMetrics> = OnceLock::new();
    LIVE.get_or_init(|| LiveMetrics {
        jobs_total: AtomicU64::new(0),
        cache_hits_total: AtomicU64::new(0),
        backpressure_waits_total: AtomicU64::new(0),
        queued: AtomicU64::new(0),
        running: AtomicU64::new(0),
        backpressure_wait_us: Mutex::new(Histogram::default()),
        job_latency_us: Mutex::new(Histogram::default()),
        worker_busy_us: std::array::from_fn(|_| AtomicU64::new(0)),
    })
}

/// Snapshots the queue's live metrics into `reg` under the
/// `osim_jobq_*` family names. Called by the scrape plane's collector.
pub fn fill_live_registry(reg: &mut Registry) {
    let m = live();
    reg.counter_add(
        "osim_jobq_jobs_total",
        &[],
        m.jobs_total.load(Ordering::Relaxed),
    );
    reg.counter_add(
        "osim_jobq_cache_hits_total",
        &[],
        m.cache_hits_total.load(Ordering::Relaxed),
    );
    reg.counter_add(
        "osim_jobq_backpressure_waits_total",
        &[],
        m.backpressure_waits_total.load(Ordering::Relaxed),
    );
    reg.gauge_set(
        "osim_jobq_queue_depth",
        &[],
        m.queued.load(Ordering::Relaxed) as f64,
    );
    reg.gauge_set(
        "osim_jobq_running",
        &[],
        m.running.load(Ordering::Relaxed) as f64,
    );
    {
        let h = m
            .backpressure_wait_us
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        reg.hist_mut("osim_jobq_backpressure_wait_us", &[])
            .merge(&h);
    }
    {
        let h = m.job_latency_us.lock().unwrap_or_else(|e| e.into_inner());
        reg.hist_mut("osim_jobq_job_latency_us", &[]).merge(&h);
    }
    for (i, busy) in m.worker_busy_us.iter().enumerate() {
        let us = busy.load(Ordering::Relaxed);
        if us > 0 {
            reg.counter_add(
                "osim_jobq_worker_busy_us_total",
                &[("worker", &i.to_string())],
                us,
            );
        }
    }
}

/// One unit of work: an opaque closure plus the label and optional cache
/// key the queue needs to report and deduplicate it.
pub struct Job<R> {
    /// Display label (`fig/bench/tag` in the sweep runner).
    pub label: String,
    /// Content hash of everything that determines the result. `None`
    /// bypasses the cache even when one is armed.
    pub key: Option<CacheKey>,
    /// Performs the run.
    pub run: Box<dyn FnOnce() -> R + Send>,
}

impl<R> Job<R> {
    /// An uncached job running `f`.
    pub fn new(label: impl Into<String>, f: impl FnOnce() -> R + Send + 'static) -> Self {
        Job {
            label: label.into(),
            key: None,
            run: Box::new(f),
        }
    }

    /// A cacheable job: `key` must cover every input that affects `f`'s
    /// result.
    pub fn keyed(
        label: impl Into<String>,
        key: CacheKey,
        f: impl FnOnce() -> R + Send + 'static,
    ) -> Self {
        Job {
            label: label.into(),
            key: Some(key),
            run: Box::new(f),
        }
    }
}

/// A completed [`Job`]: its identity plus the result and how it was
/// obtained.
pub struct Outcome<R> {
    /// The job's display label.
    pub label: String,
    /// The job's cache key, if it had one.
    pub key: Option<CacheKey>,
    /// `true` when the result came from the cache instead of running.
    pub cache_hit: bool,
    /// The job's result.
    pub result: R,
}

/// A result cache consulted before running keyed jobs.
///
/// `lookup` returning `Some` must yield a value indistinguishable from
/// re-running the job — the queue trusts it blindly. Implementations are
/// expected to treat corrupt or unreadable entries as misses, never
/// errors.
pub trait ResultCache<R>: Send + Sync {
    /// Fetch a previously stored result, or `None` to run the job.
    fn lookup(&self, key: &CacheKey, label: &str) -> Option<R>;
    /// Persist a freshly computed result.
    fn store(&self, key: &CacheKey, label: &str, result: &R);
}

/// Extracts `(events_dispatched, stale_events)`-style deterministic
/// counters from a result for telemetry. Use [`no_counters`] when the
/// result type has none.
pub type CountersFn<R> = fn(&R) -> (u64, u64);

/// A [`CountersFn`] reporting zeros.
pub fn no_counters<R>(_: &R) -> (u64, u64) {
    (0, 0)
}

/// Host-side timing of one executed job. Everything in here is wall-clock
/// and therefore nondeterministic — it must never leak into byte-compared
/// output; it is only surfaced through telemetry sinks like `--sweep-json`.
#[derive(Debug, Clone)]
pub struct JobTiming {
    /// The job's display label.
    pub label: String,
    /// Milliseconds between batch submission and the job starting.
    pub queue_ms: f64,
    /// Milliseconds the job ran for (cache-probe time for hits).
    pub run_ms: f64,
    /// Worker index (0 for the inline path).
    pub worker: usize,
    /// `true` when the result was served from the cache.
    pub cache_hit: bool,
    /// First caller-defined counter (engine events dispatched, in osim).
    pub events_dispatched: u64,
    /// Second caller-defined counter (stale wakeups skipped, in osim).
    pub stale_events: u64,
}

/// Accumulated queue telemetry for the whole process: one entry per job
/// across every batch the invocation executed.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Batches executed.
    pub batches: u64,
    /// Sum of batch wall times, in milliseconds.
    pub wall_ms: f64,
    /// Per-worker busy time (ms), indexed by worker id. Cache hits
    /// contribute nothing here — no simulation ran.
    pub busy_ms: Vec<f64>,
    /// Jobs served from the result cache.
    pub cache_hits: u64,
    /// Keyed jobs that missed and had to run (unkeyed jobs count too
    /// when a cache was armed for their batch).
    pub cache_misses: u64,
    /// Per-job host-side timings, in completion-recording order.
    pub jobs: Vec<JobTiming>,
}

impl Telemetry {
    /// Total stale-event rate across every job (0 when nothing dispatched).
    pub fn stale_rate(&self) -> f64 {
        let dispatched: u64 = self.jobs.iter().map(|j| j.events_dispatched).sum();
        let stale: u64 = self.jobs.iter().map(|j| j.stale_events).sum();
        if dispatched == 0 {
            0.0
        } else {
            stale as f64 / dispatched as f64
        }
    }

    /// Per-worker utilization: busy time over accumulated batch wall time.
    pub fn utilization(&self) -> Vec<f64> {
        self.busy_ms
            .iter()
            .map(|&b| {
                if self.wall_ms > 0.0 {
                    b / self.wall_ms
                } else {
                    0.0
                }
            })
            .collect()
    }
}

static PROGRESS: AtomicBool = AtomicBool::new(false);

fn telemetry() -> &'static Mutex<Telemetry> {
    static T: OnceLock<Mutex<Telemetry>> = OnceLock::new();
    T.get_or_init(|| Mutex::new(Telemetry::default()))
}

/// Arms (or disarms) the live stderr progress line for subsequent batches.
pub fn set_progress(on: bool) {
    PROGRESS.store(on, Ordering::Relaxed);
}

/// Takes the telemetry accumulated so far, leaving the accumulator empty.
pub fn drain_telemetry() -> Telemetry {
    std::mem::take(&mut *telemetry().lock().expect("telemetry mutex poisoned"))
}

/// Shared progress state of one in-flight batch.
struct Progress {
    started: Instant,
    total: AtomicUsize,
    done: AtomicUsize,
    hits: AtomicUsize,
    /// What each worker is currently running (`None` = idle).
    current: Vec<Mutex<Option<String>>>,
}

impl Progress {
    fn new(workers: usize) -> Self {
        Progress {
            started: Instant::now(),
            total: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            current: (0..workers).map(|_| Mutex::new(None)).collect(),
        }
    }

    fn add_total(&self, n: usize) {
        self.total.fetch_add(n, Ordering::Relaxed);
    }

    fn begin(&self, worker: usize, label: &str) {
        *self.current[worker]
            .lock()
            .expect("progress mutex poisoned") = Some(label.to_string());
        self.render();
    }

    fn finish(&self, worker: usize) {
        self.done.fetch_add(1, Ordering::Relaxed);
        *self.current[worker]
            .lock()
            .expect("progress mutex poisoned") = None;
        self.render();
    }

    /// A cache hit completes instantly: it never occupies the worker slot,
    /// is counted separately, and is shown with a distinct `hit:` label so
    /// the line reflects that no simulation ran.
    fn hit(&self, worker: usize, label: &str) {
        self.done.fetch_add(1, Ordering::Relaxed);
        self.hits.fetch_add(1, Ordering::Relaxed);
        if PROGRESS.load(Ordering::Relaxed) {
            *self.current[worker]
                .lock()
                .expect("progress mutex poisoned") = Some(format!("hit:{label}"));
            self.render();
            *self.current[worker]
                .lock()
                .expect("progress mutex poisoned") = None;
        }
    }

    fn render(&self) {
        if !PROGRESS.load(Ordering::Relaxed) {
            return;
        }
        let total = self.total.load(Ordering::Relaxed);
        let done = self.done.load(Ordering::Relaxed);
        let hits = self.hits.load(Ordering::Relaxed);
        let mut running = 0usize;
        let mut states = String::new();
        for (i, slot) in self.current.iter().enumerate() {
            let cur = slot.lock().expect("progress mutex poisoned");
            match cur.as_deref() {
                Some(label) => {
                    running += 1;
                    states.push_str(&format!(" w{i}:{label}"));
                }
                None => states.push_str(&format!(" w{i}:idle")),
            }
        }
        let queued = total.saturating_sub(done + running);
        let elapsed = self.started.elapsed().as_secs_f64();
        // ETA extrapolates from *executed* jobs only: cache hits are
        // effectively free, and folding them into the throughput estimate
        // would make the remaining (possibly uncached) work look faster
        // than it is.
        let executed = done - hits;
        let remaining = total - done;
        let eta = if remaining == 0 {
            "0.0s".to_string()
        } else if executed > 0 {
            format!("{:.1}s", elapsed / executed as f64 * remaining as f64)
        } else if hits > 0 {
            // Everything so far was a hit; assume the rest will be too.
            "~0s".to_string()
        } else {
            "?".to_string()
        };
        let hit_note = if hits > 0 {
            format!(" ({hits} hit)")
        } else {
            String::new()
        };
        // \r keeps it a single live line; \x1b[K clears the tail of a
        // longer previous render.
        eprint!(
            "\r[sweep] {done}/{total} done{hit_note}, {running} running, {queued} queued, eta {eta} |{states}\x1b[K"
        );
    }

    /// Terminates the live line and prints the batch's final summary,
    /// including the cache hit/miss split that `--sweep-json` carries but
    /// the stderr surface previously omitted.
    fn close(&self) {
        if PROGRESS.load(Ordering::Relaxed) {
            let done = self.done.load(Ordering::Relaxed);
            let hits = self.hits.load(Ordering::Relaxed);
            let misses = done.saturating_sub(hits);
            let elapsed = self.started.elapsed().as_secs_f64();
            eprintln!();
            eprintln!(
                "[sweep] done: {done} jobs in {elapsed:.1}s ({hits} cache hits, {misses} misses)"
            );
        }
    }
}

/// Runs (or cache-serves) one job under the batch's progress/telemetry
/// instrumentation.
fn exec_timed<R>(
    job: Job<R>,
    worker: usize,
    batch_start: Instant,
    progress: &Progress,
    cache: Option<&dyn ResultCache<R>>,
    counters: CountersFn<R>,
) -> Outcome<R> {
    let Job { label, key, run } = job;
    let queue_ms = batch_start.elapsed().as_secs_f64() * 1e3;
    let m = live();
    m.running.fetch_add(1, Ordering::Relaxed);
    if let (Some(k), Some(c)) = (key.as_ref(), cache) {
        let probe_started = Instant::now();
        let hit = c.lookup(k, &label);
        if host_trace_armed() {
            let outcome = if hit.is_some() { "hit" } else { "miss" };
            host_trace_span(
                "cache",
                &format!("probe:{outcome} {label}"),
                worker as u64,
                probe_started,
            );
        }
        if let Some(result) = hit {
            let probe_ms = probe_started.elapsed().as_secs_f64() * 1e3;
            m.jobs_total.fetch_add(1, Ordering::Relaxed);
            m.cache_hits_total.fetch_add(1, Ordering::Relaxed);
            m.running.fetch_sub(1, Ordering::Relaxed);
            progress.hit(worker, &label);
            let (events_dispatched, stale_events) = counters(&result);
            let mut t = telemetry().lock().expect("telemetry mutex poisoned");
            t.cache_hits += 1;
            t.jobs.push(JobTiming {
                label: label.clone(),
                queue_ms,
                run_ms: probe_ms,
                worker,
                cache_hit: true,
                events_dispatched,
                stale_events,
            });
            return Outcome {
                label,
                key,
                cache_hit: true,
                result,
            };
        }
    }
    progress.begin(worker, &label);
    let started = Instant::now();
    let result = run();
    let run_ms = started.elapsed().as_secs_f64() * 1e3;
    if host_trace_armed() {
        host_trace_span("job", &label, worker as u64, started);
    }
    let run_us = (run_ms * 1e3) as u64;
    m.jobs_total.fetch_add(1, Ordering::Relaxed);
    m.job_latency_us
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .record(run_us);
    m.worker_busy_us[worker.min(MAX_TRACKED_WORKERS - 1)].fetch_add(run_us, Ordering::Relaxed);
    m.running.fetch_sub(1, Ordering::Relaxed);
    if let (Some(k), Some(c)) = (key.as_ref(), cache) {
        c.store(k, &label, &result);
    }
    progress.finish(worker);
    let (events_dispatched, stale_events) = counters(&result);
    let mut t = telemetry().lock().expect("telemetry mutex poisoned");
    if t.busy_ms.len() <= worker {
        t.busy_ms.resize(worker + 1, 0.0);
    }
    t.busy_ms[worker] += run_ms;
    if cache.is_some() {
        t.cache_misses += 1;
    }
    t.jobs.push(JobTiming {
        label: label.clone(),
        queue_ms,
        run_ms,
        worker,
        cache_hit: false,
        events_dispatched,
        stale_events,
    });
    Outcome {
        label,
        key,
        cache_hit: false,
        result,
    }
}

/// How a batch executes: worker count, optional result cache, and the
/// telemetry counters extractor.
pub struct RunCfg<R> {
    /// Worker threads. `<= 1` runs inline on the calling thread.
    pub threads: usize,
    /// Result cache consulted for keyed jobs.
    pub cache: Option<Arc<dyn ResultCache<R>>>,
    /// Extracts deterministic counters from each result for telemetry.
    pub counters: CountersFn<R>,
}

impl<R> RunCfg<R> {
    /// Serial, uncached, counter-less execution.
    pub fn serial() -> Self {
        RunCfg {
            threads: 1,
            cache: None,
            counters: no_counters,
        }
    }

    /// Uncached execution on `threads` workers.
    pub fn threads(threads: usize) -> Self {
        RunCfg {
            threads,
            cache: None,
            counters: no_counters,
        }
    }
}

struct QState<R> {
    pending: VecDeque<(usize, Job<R>)>,
    results: Vec<Option<Outcome<R>>>,
    submitted: usize,
    completed: usize,
    closed: bool,
}

struct Shared<R> {
    q: Mutex<QState<R>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
    progress: Progress,
    batch_start: Instant,
    cache: Option<Arc<dyn ResultCache<R>>>,
    counters: CountersFn<R>,
}

fn qlock<R>(shared: &Shared<R>) -> MutexGuard<'_, QState<R>> {
    shared.q.lock().expect("job queue mutex poisoned")
}

/// A streaming job queue: long-lived workers fed through a bounded buffer.
///
/// [`submit`](JobQueue::submit) blocks while `capacity` jobs are in flight
/// (queued or running), which bounds how many planned-but-unstarted
/// closures exist at once — the backpressure a future socket-fed sweep
/// service needs, and a no-op for batch callers that size `capacity` to
/// the plan. [`finish`](JobQueue::finish) waits for everything and
/// returns the outcomes in submission order.
pub struct JobQueue<R: Send + 'static> {
    shared: Arc<Shared<R>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl<R: Send + 'static> JobQueue<R> {
    /// A queue with `workers` threads admitting at most `capacity` in-flight
    /// jobs (both clamped to at least 1).
    pub fn new(
        workers: usize,
        capacity: usize,
        cfg_cache: Option<Arc<dyn ResultCache<R>>>,
        counters: CountersFn<R>,
    ) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            q: Mutex::new(QState {
                pending: VecDeque::new(),
                results: Vec::new(),
                submitted: 0,
                completed: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity: capacity.max(1),
            progress: Progress::new(workers),
            batch_start: Instant::now(),
            cache: cfg_cache,
            counters,
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, w))
            })
            .collect();
        JobQueue {
            shared,
            workers: handles,
        }
    }

    /// Enqueues a job, blocking while the in-flight window is full.
    /// Returns the job's submission index.
    pub fn submit(&self, job: Job<R>) -> usize {
        let mut st = qlock(&self.shared);
        let mut wait_started: Option<Instant> = None;
        while st.submitted - st.completed >= self.shared.capacity {
            if wait_started.is_none() {
                wait_started = Some(Instant::now());
            }
            st = self
                .shared
                .not_full
                .wait(st)
                .expect("job queue mutex poisoned");
        }
        if let Some(t0) = wait_started {
            let m = live();
            m.backpressure_waits_total.fetch_add(1, Ordering::Relaxed);
            m.backpressure_wait_us
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .record(t0.elapsed().as_micros() as u64);
        }
        let idx = st.submitted;
        st.submitted += 1;
        st.results.push(None);
        st.pending.push_back((idx, job));
        live().queued.fetch_add(1, Ordering::Relaxed);
        drop(st);
        self.shared.progress.add_total(1);
        self.shared.progress.render();
        self.shared.not_empty.notify_one();
        idx
    }

    /// Closes the queue, waits for every submitted job, and returns the
    /// outcomes in submission order.
    pub fn finish(self) -> Vec<Outcome<R>> {
        {
            let mut st = qlock(&self.shared);
            st.closed = true;
        }
        self.shared.not_empty.notify_all();
        for h in self.workers {
            h.join().expect("worker thread panicked");
        }
        self.shared.progress.close();
        let mut st = qlock(&self.shared);
        std::mem::take(&mut st.results)
            .into_iter()
            .map(|r| r.expect("worker filled every claimed slot"))
            .collect()
    }
}

fn worker_loop<R: Send + 'static>(shared: &Shared<R>, worker: usize) {
    loop {
        let (idx, job) = {
            let mut st = qlock(shared);
            loop {
                if let Some(x) = st.pending.pop_front() {
                    live().queued.fetch_sub(1, Ordering::Relaxed);
                    break x;
                }
                if st.closed {
                    return;
                }
                st = shared.not_empty.wait(st).expect("job queue mutex poisoned");
            }
        };
        let outcome = exec_timed(
            job,
            worker,
            shared.batch_start,
            &shared.progress,
            shared.cache.as_deref(),
            shared.counters,
        );
        let mut st = qlock(shared);
        st.results[idx] = Some(outcome);
        st.completed += 1;
        drop(st);
        shared.not_full.notify_one();
    }
}

/// Runs a whole plan, returning results in submission order. `threads <= 1`
/// (or a single job) executes inline on the calling thread — the serial
/// reference behaviour; either way the returned order, and therefore
/// everything rendered from it, is identical.
pub fn run_jobs<R: Send + 'static>(jobs: Vec<Job<R>>, cfg: RunCfg<R>) -> Vec<Outcome<R>> {
    let n = jobs.len();
    if n == 0 {
        return Vec::new();
    }
    let batch_start = Instant::now();
    let out = if cfg.threads <= 1 || n <= 1 {
        let progress = Progress::new(1);
        progress.add_total(n);
        let outs = jobs
            .into_iter()
            .map(|j| {
                exec_timed(
                    j,
                    0,
                    batch_start,
                    &progress,
                    cfg.cache.as_deref(),
                    cfg.counters,
                )
            })
            .collect();
        progress.close();
        outs
    } else {
        let q = JobQueue::new(cfg.threads.min(n), n, cfg.cache, cfg.counters);
        for j in jobs {
            q.submit(j);
        }
        q.finish()
    };
    let mut t = telemetry().lock().expect("telemetry mutex poisoned");
    t.batches += 1;
    t.wall_ms += batch_start.elapsed().as_secs_f64() * 1e3;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::atomic::AtomicU64;

    use crate::key::KeyBuilder;

    /// The telemetry accumulator is process-global and the test harness
    /// runs tests concurrently, so every test that executes jobs holds
    /// this lock to keep exact assertions meaningful.
    fn guard() -> MutexGuard<'static, ()> {
        static L: OnceLock<Mutex<()>> = OnceLock::new();
        L.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    fn job(i: u64) -> Job<u64> {
        Job::new(format!("job{i}"), move || i * 10)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let _g = guard();
        let jobs: Vec<Job<u64>> = (0..16).map(job).collect();
        let outs = run_jobs(jobs, RunCfg::threads(4));
        assert_eq!(outs.len(), 16);
        for (i, o) in outs.iter().enumerate() {
            assert_eq!(o.label, format!("job{i}"));
            assert_eq!(o.result, i as u64 * 10);
            assert!(!o.cache_hit);
        }
    }

    #[test]
    fn inline_and_empty_paths() {
        let _g = guard();
        assert_eq!(
            run_jobs((0..2).map(job).collect(), RunCfg::serial()).len(),
            2
        );
        assert_eq!(
            run_jobs(Vec::<Job<u64>>::new(), RunCfg::threads(8)).len(),
            0
        );
    }

    #[test]
    fn backpressure_bounds_in_flight_jobs() {
        let _g = guard();
        // capacity 2 with 1 worker: submit must block rather than buffer
        // the whole plan; everything still completes in order.
        let q: JobQueue<u64> = JobQueue::new(1, 2, None, no_counters);
        for i in 0..8 {
            q.submit(job(i));
        }
        let outs = q.finish();
        assert_eq!(outs.len(), 8);
        for (i, o) in outs.iter().enumerate() {
            assert_eq!(o.result, i as u64 * 10);
        }
    }

    struct MapCache {
        entries: Mutex<HashMap<CacheKey, u64>>,
        lookups: AtomicU64,
        stores: AtomicU64,
    }

    impl MapCache {
        fn new() -> Self {
            MapCache {
                entries: Mutex::new(HashMap::new()),
                lookups: AtomicU64::new(0),
                stores: AtomicU64::new(0),
            }
        }
    }

    impl ResultCache<u64> for MapCache {
        fn lookup(&self, key: &CacheKey, _label: &str) -> Option<u64> {
            self.lookups.fetch_add(1, Ordering::Relaxed);
            self.entries.lock().expect("lock").get(key).copied()
        }
        fn store(&self, key: &CacheKey, _label: &str, result: &u64) {
            self.stores.fetch_add(1, Ordering::Relaxed);
            self.entries.lock().expect("lock").insert(*key, *result);
        }
    }

    fn keyed_jobs(n: u64) -> Vec<Job<u64>> {
        (0..n)
            .map(|i| {
                let key = KeyBuilder::new("test", 1).u64_field("i", i).finish();
                Job::keyed(format!("job{i}"), key, move || i * 10)
            })
            .collect()
    }

    #[test]
    fn cache_hits_skip_execution_and_are_counted() {
        let _g = guard();
        drain_telemetry();
        let cache = Arc::new(MapCache::new());
        let cfg = |c: &Arc<MapCache>| RunCfg {
            threads: 2,
            cache: Some(Arc::clone(c) as Arc<dyn ResultCache<u64>>),
            counters: no_counters,
        };
        let cold = run_jobs(keyed_jobs(6), cfg(&cache));
        assert!(cold.iter().all(|o| !o.cache_hit));
        assert_eq!(cache.stores.load(Ordering::Relaxed), 6);
        let warm = run_jobs(keyed_jobs(6), cfg(&cache));
        assert!(warm.iter().all(|o| o.cache_hit));
        assert_eq!(
            cache.stores.load(Ordering::Relaxed),
            6,
            "hits must not re-store"
        );
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.result, w.result);
            assert_eq!(c.label, w.label);
        }
        let t = drain_telemetry();
        assert_eq!(t.cache_hits, 6);
        assert_eq!(t.cache_misses, 6);
        let hits: Vec<&JobTiming> = t.jobs.iter().filter(|j| j.cache_hit).collect();
        assert_eq!(hits.len(), 6);
        // Satellite: hits are not folded into worker busy time. Six tiny
        // closures can't account for less than the probe-only total, so
        // just assert busy time only came from the cold batch.
        let busy: f64 = t.busy_ms.iter().sum();
        let cold_run: f64 = t
            .jobs
            .iter()
            .filter(|j| !j.cache_hit)
            .map(|j| j.run_ms)
            .sum();
        assert!(
            (busy - cold_run).abs() < 1e-6,
            "busy {busy} vs cold runs {cold_run}"
        );
    }

    #[test]
    fn unkeyed_jobs_bypass_an_armed_cache() {
        let _g = guard();
        let cache = Arc::new(MapCache::new());
        let outs = run_jobs(
            (0..3).map(job).collect(),
            RunCfg {
                threads: 1,
                cache: Some(Arc::clone(&cache) as Arc<dyn ResultCache<u64>>),
                counters: no_counters,
            },
        );
        assert!(outs.iter().all(|o| !o.cache_hit));
        assert_eq!(cache.lookups.load(Ordering::Relaxed), 0);
        assert_eq!(cache.stores.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn live_registry_reflects_executed_jobs() {
        let _g = guard();
        let before = {
            let mut reg = Registry::new();
            fill_live_registry(&mut reg);
            reg.counter("osim_jobq_jobs_total", &[])
        };
        let outs = run_jobs((0..5).map(job).collect(), RunCfg::threads(2));
        assert_eq!(outs.len(), 5);
        let mut reg = Registry::new();
        fill_live_registry(&mut reg);
        let after = reg.counter("osim_jobq_jobs_total", &[]);
        assert!(
            after >= before + 5,
            "jobs_total {after} should advance by at least 5 over {before}"
        );
        // All five jobs completed, so nothing is left queued or running.
        assert!(reg.hist("osim_jobq_job_latency_us", &[]).is_some());
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE osim_jobq_jobs_total counter"));
        assert!(text.contains("osim_jobq_queue_depth 0"));
        assert!(text.contains("osim_jobq_running 0"));
    }

    #[test]
    fn backpressure_wait_is_recorded_live() {
        let _g = guard();
        let before = {
            let mut reg = Registry::new();
            fill_live_registry(&mut reg);
            reg.counter("osim_jobq_backpressure_waits_total", &[])
        };
        // Capacity 1 with a slow worker forces every later submit to wait.
        let q: JobQueue<u64> = JobQueue::new(1, 1, None, no_counters);
        for i in 0..4 {
            q.submit(Job::new(format!("slow{i}"), move || {
                std::thread::sleep(std::time::Duration::from_millis(2));
                i
            }));
        }
        q.finish();
        let mut reg = Registry::new();
        fill_live_registry(&mut reg);
        let after = reg.counter("osim_jobq_backpressure_waits_total", &[]);
        assert!(after > before, "submit never blocked: {before} -> {after}");
    }

    #[test]
    fn telemetry_records_every_job() {
        let _g = guard();
        drain_telemetry();
        let outs = run_jobs((0..4).map(job).collect(), RunCfg::threads(2));
        assert_eq!(outs.len(), 4);
        let t = drain_telemetry();
        assert!(t.batches >= 1);
        let mine: Vec<&JobTiming> = t
            .jobs
            .iter()
            .filter(|j| j.label.starts_with("job"))
            .collect();
        assert!(mine.len() >= 4);
        for j in mine {
            assert!(j.run_ms >= 0.0 && j.queue_ms >= 0.0, "{}", j.label);
        }
        assert!(!t.utilization().is_empty());
        assert!((0.0..=1.0).contains(&t.stale_rate()));
    }
}
