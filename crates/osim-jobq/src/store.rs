//! Two-tier content-addressed text store.
//!
//! Entries are UTF-8 text blobs addressed by [`CacheKey`]. Tier one is an
//! in-process map (`CacheKey → Arc<str>`); tier two is an optional
//! directory with one file per entry, named `<32-hex-key>.json`. Disk
//! writes go through a temp file + atomic rename, so readers — including
//! concurrent sweeps sharing the directory — only ever observe complete
//! entries. A torn write can at worst leave a stray temp file, never a
//! half-entry under the final name.
//!
//! The store itself is *format-agnostic*: it hands back whatever text was
//! stored. Decoding (and deciding that an entry is corrupt) belongs to the
//! caller, which reports it via [`TextStore::note_corrupt`] so the entry is
//! dropped and counted; every I/O anomaly is a miss, never an error.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use osim_metrics::{Histogram, Registry};

use crate::key::CacheKey;

/// Snapshot of a store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounts {
    /// Lookups answered (from either tier).
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Hits that had to read the disk tier.
    pub disk_hits: u64,
    /// Entries written.
    pub stores: u64,
    /// Entries the caller reported as corrupt (each becomes a miss).
    pub corrupt: u64,
    /// Disk writes that failed (the memory tier still holds the entry).
    pub write_errors: u64,
}

/// A memory-first, optionally disk-backed text store.
pub struct TextStore {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<CacheKey, Arc<str>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    stores: AtomicU64,
    corrupt: AtomicU64,
    write_errors: AtomicU64,
    /// Wall time of successful entry reads (memory or disk), nanoseconds.
    read_ns: Mutex<Histogram>,
}

impl TextStore {
    /// A memory-only store (no persistence).
    pub fn memory() -> Self {
        Self::build(None)
    }

    /// A store persisting entries under `dir` (created on first write).
    pub fn at_dir(dir: impl Into<PathBuf>) -> Self {
        Self::build(Some(dir.into()))
    }

    fn build(dir: Option<PathBuf>) -> Self {
        TextStore {
            dir,
            mem: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            corrupt: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            read_ns: Mutex::new(Histogram::new()),
        }
    }

    /// The disk tier's directory, if the store has one.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn path_of(&self, key: &CacheKey) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{}.json", key.hex())))
    }

    fn mem_lock(&self) -> std::sync::MutexGuard<'_, HashMap<CacheKey, Arc<str>>> {
        self.mem.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Fetches an entry, promoting disk hits into the memory tier.
    /// Any read failure — missing file, unreadable bytes — is a miss.
    pub fn get(&self, key: &CacheKey) -> Option<Arc<str>> {
        let started = std::time::Instant::now();
        if let Some(text) = self.mem_lock().get(key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.record_read(started);
            return Some(text);
        }
        let Some(path) = self.path_of(key) else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let text: Arc<str> = text.into();
                self.mem_lock().insert(*key, Arc::clone(&text));
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.record_read(started);
                Some(text)
            }
            Err(_) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn record_read(&self, started: std::time::Instant) {
        self.read_ns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .record(started.elapsed().as_nanos() as u64);
    }

    /// Stores an entry in both tiers. Disk failures are counted, not
    /// raised: the run already has its result, and a read-only or full
    /// disk must never fail a sweep.
    pub fn put(&self, key: &CacheKey, text: &str) {
        self.mem_lock().insert(*key, text.into());
        self.stores.fetch_add(1, Ordering::Relaxed);
        let Some(path) = self.path_of(key) else {
            return;
        };
        if self.write_atomic(&path, text).is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn write_atomic(&self, path: &Path, text: &str) -> std::io::Result<()> {
        let dir = path.parent().expect("entry path always has a parent dir");
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!(
            ".{}.{}.tmp",
            path.file_stem().and_then(|s| s.to_str()).unwrap_or("entry"),
            std::process::id()
        ));
        std::fs::write(&tmp, text)?;
        match std::fs::rename(&tmp, path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                Err(e)
            }
        }
    }

    /// Drops a corrupt entry from both tiers and counts it. The caller
    /// decodes entries; this is how it reports a failure back.
    pub fn note_corrupt(&self, key: &CacheKey) {
        self.corrupt.fetch_add(1, Ordering::Relaxed);
        self.mem_lock().remove(key);
        if let Some(path) = self.path_of(key) {
            let _ = std::fs::remove_file(path);
        }
    }

    /// Empties the memory tier (forcing subsequent hits through disk) —
    /// used by the cache benchmark to time the disk tier in isolation.
    pub fn drop_memory(&self) {
        self.mem_lock().clear();
    }

    /// Paths of the disk tier's entry files, sorted by name. Temp files
    /// and foreign files are excluded.
    pub fn disk_entries(&self) -> Vec<PathBuf> {
        let Some(dir) = self.dir.as_ref() else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let Ok(rd) = std::fs::read_dir(dir) else {
            return Vec::new();
        };
        for entry in rd.flatten() {
            let path = entry.path();
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            let ext_ok = path.extension().and_then(|e| e.to_str()) == Some("json");
            if ext_ok && CacheKey::from_hex(stem).is_some() {
                out.push(path);
            }
        }
        out.sort();
        out
    }

    /// Removes every entry (both tiers), returning how many disk entry
    /// files were deleted.
    pub fn clear(&self) -> usize {
        self.mem_lock().clear();
        let entries = self.disk_entries();
        let mut removed = 0;
        for path in entries {
            if std::fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// Current counter values.
    pub fn counts(&self) -> StoreCounts {
        StoreCounts {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            stores: self.stores.load(Ordering::Relaxed),
            corrupt: self.corrupt.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the entry-read latency histogram (nanoseconds).
    pub fn read_hist(&self) -> Histogram {
        self.read_ns
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Exports the store's counters and read-latency histogram into an
    /// osim-metrics registry under `osim_cache_*`.
    pub fn fill_registry(&self, reg: &mut Registry) {
        let c = self.counts();
        reg.counter_add("osim_cache_hits_total", &[], c.hits);
        reg.counter_add("osim_cache_misses_total", &[], c.misses);
        reg.counter_add("osim_cache_disk_hits_total", &[], c.disk_hits);
        reg.counter_add("osim_cache_stores_total", &[], c.stores);
        reg.counter_add("osim_cache_corrupt_total", &[], c.corrupt);
        reg.counter_add("osim_cache_write_errors_total", &[], c.write_errors);
        let hist = self.read_hist();
        reg.hist_mut("osim_cache_read_ns", &[]).merge(&hist);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBuilder;

    fn key(i: u64) -> CacheKey {
        KeyBuilder::new("store-test", 1).u64_field("i", i).finish()
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("osim-jobq-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn memory_round_trip_and_counts() {
        let s = TextStore::memory();
        assert!(s.get(&key(1)).is_none());
        s.put(&key(1), "hello");
        assert_eq!(s.get(&key(1)).as_deref(), Some("hello"));
        let c = s.counts();
        assert_eq!((c.hits, c.misses, c.stores, c.disk_hits), (1, 1, 1, 0));
        assert!(s.read_hist().count() >= 1);
    }

    #[test]
    fn disk_persists_across_store_instances() {
        let dir = tmp_dir("persist");
        {
            let s = TextStore::at_dir(&dir);
            s.put(&key(2), "{\"v\":2}");
        }
        let s2 = TextStore::at_dir(&dir);
        assert_eq!(s2.get(&key(2)).as_deref(), Some("{\"v\":2}"));
        assert_eq!(s2.counts().disk_hits, 1);
        // Promoted into memory: a second get is a memory hit.
        assert_eq!(s2.get(&key(2)).as_deref(), Some("{\"v\":2}"));
        assert_eq!(s2.counts().disk_hits, 1);
        assert_eq!(s2.disk_entries().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_memory_forces_disk_reads() {
        let dir = tmp_dir("dropmem");
        let s = TextStore::at_dir(&dir);
        s.put(&key(3), "x");
        s.drop_memory();
        assert_eq!(s.get(&key(3)).as_deref(), Some("x"));
        assert_eq!(s.counts().disk_hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn note_corrupt_drops_both_tiers() {
        let dir = tmp_dir("corrupt");
        let s = TextStore::at_dir(&dir);
        s.put(&key(4), "bad");
        s.note_corrupt(&key(4));
        assert!(s.get(&key(4)).is_none());
        assert_eq!(s.counts().corrupt, 1);
        assert!(s.disk_entries().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_removes_entries_but_not_foreign_files() {
        let dir = tmp_dir("clear");
        let s = TextStore::at_dir(&dir);
        s.put(&key(5), "a");
        s.put(&key(6), "b");
        std::fs::write(dir.join("README.txt"), "keep me").expect("write foreign file");
        assert_eq!(s.disk_entries().len(), 2);
        assert_eq!(s.clear(), 2);
        assert!(s.disk_entries().is_empty());
        assert!(dir.join("README.txt").exists());
        assert!(s.get(&key(5)).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn registry_export_names_the_counters() {
        let s = TextStore::memory();
        s.put(&key(7), "x");
        let _ = s.get(&key(7));
        let mut reg = Registry::new();
        s.fill_registry(&mut reg);
        let prom = reg.to_prometheus();
        assert!(prom.contains("osim_cache_hits_total"), "{prom}");
        assert!(prom.contains("osim_cache_stores_total"), "{prom}");
    }
}
