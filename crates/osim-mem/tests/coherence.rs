//! Coherence-protocol scenario tests for the hierarchy: MESI state walks,
//! inclusion, and the no-allocate/fill-local paths the O-structure manager
//! depends on.

use osim_mem::{AccessKind, CacheCfg, Hierarchy, HierarchyCfg, Level};

fn hier(cores: usize) -> Hierarchy {
    Hierarchy::new(HierarchyCfg::paper(cores))
}

#[test]
fn read_read_write_upgrade_walk() {
    let mut h = hier(4);
    // Three cores read the same line: first from DRAM, then L2.
    assert_eq!(h.access(0, 0x9000, AccessKind::Read).level, Level::Dram);
    assert_eq!(h.access(1, 0x9000, AccessKind::Read).level, Level::L2);
    assert_eq!(h.access(2, 0x9000, AccessKind::Read).level, Level::L2);
    // Core 1 writes: local hit + upgrade, invalidating cores 0 and 2.
    let inv_before = h.stats.invalidations;
    assert_eq!(h.access(1, 0x9000, AccessKind::Write).level, Level::L1);
    assert_eq!(h.stats.invalidations - inv_before, 2);
    // Cores 0 and 2 lost their copies; core 1 now forwards dirty data.
    assert_eq!(h.access(0, 0x9000, AccessKind::Read).level, Level::RemoteL1);
    assert_eq!(h.access(2, 0x9000, AccessKind::Read).level, Level::L2);
}

#[test]
fn dirty_forward_then_both_can_read_locally() {
    let mut h = hier(2);
    h.access(0, 0x40, AccessKind::Write);
    assert_eq!(h.access(1, 0x40, AccessKind::Read).level, Level::RemoteL1);
    // After the forward both have Shared copies: local hits on both sides.
    assert_eq!(h.access(0, 0x40, AccessKind::Read).level, Level::L1);
    assert_eq!(h.access(1, 0x40, AccessKind::Read).level, Level::L1);
}

#[test]
fn ping_pong_writes_bounce_between_cores() {
    let mut h = hier(2);
    h.access(0, 0x80, AccessKind::Write);
    for i in 0..6 {
        let writer = 1 - (i % 2);
        let r = h.access(writer, 0x80, AccessKind::Write);
        assert_eq!(r.level, Level::RemoteL1, "iteration {i}");
    }
    assert!(h.stats.remote_forwards >= 6);
}

#[test]
fn l2_eviction_back_invalidates_l1() {
    // A tiny L2 forces evictions that must strip L1 copies (inclusion).
    let mut h = Hierarchy::new(HierarchyCfg {
        cores: 1,
        l1: CacheCfg::l1_paper(),
        l2: CacheCfg {
            size_bytes: 4096, // 64 lines, 16-way => 4 sets
            assoc: 16,
            hit_latency: 35,
        },
        dram_latency: 120,
    });
    // 17 lines mapping to the same L2 set: stride = sets * 64 = 256.
    for i in 0..17u32 {
        h.access(0, i * 256, AccessKind::Read);
    }
    assert!(h.stats.back_invalidations >= 1, "inclusion enforced");
    // The back-invalidated line is a miss in L1 despite L1 having room.
    let r = h.access(0, 0, AccessKind::Read);
    assert_ne!(r.level, Level::L1);
}

#[test]
fn read_no_alloc_then_fill_local_promotes() {
    let mut h = hier(2);
    h.access(0, 0x200, AccessKind::ReadNoAlloc);
    // The walk decided this block matters: promote it without a charge.
    let dropped = h.fill_local(0, 0x200);
    assert!(dropped.is_empty());
    assert_eq!(h.access(0, 0x200, AccessKind::Read).level, Level::L1);
    // The promotion respected sharing: another core reading demotes both.
    assert_eq!(h.access(1, 0x200, AccessKind::Read).level, Level::L2);
    assert_eq!(h.access(1, 0x200, AccessKind::Read).level, Level::L1);
}

#[test]
fn fill_local_is_shared_when_others_hold_the_line() {
    let mut h = hier(2);
    h.access(1, 0x300, AccessKind::Read); // core 1 holds it (Exclusive)
    h.fill_local(0, 0x300);
    // A write by core 0 must still invalidate core 1 (its copy was Shared,
    // not Exclusive).
    let inv = h.stats.invalidations;
    h.access(0, 0x300, AccessKind::Write);
    assert!(h.stats.invalidations > inv);
    assert_ne!(h.access(1, 0x300, AccessKind::Read).level, Level::L1);
}

#[test]
fn write_miss_after_l2_hit_invalidates_sharers() {
    let mut h = hier(3);
    h.access(0, 0x600, AccessKind::Read);
    h.access(1, 0x600, AccessKind::Read);
    // Core 2 write-misses; data comes from L2; cores 0/1 get invalidated.
    let r = h.access(2, 0x600, AccessKind::Write);
    assert_eq!(r.level, Level::L2);
    assert_ne!(h.access(0, 0x600, AccessKind::Read).level, Level::L1);
    // Core 2 owns it dirty now.
    assert_eq!(h.access(2, 0x600, AccessKind::Write).level, Level::L1);
}

#[test]
fn per_core_l1_stats_attribute_correctly() {
    let mut h = hier(2);
    h.access(0, 0x700, AccessKind::Read);
    h.access(0, 0x700, AccessKind::Read);
    h.access(1, 0x700, AccessKind::Write);
    assert_eq!(h.stats.l1_read_misses[0], 1);
    assert_eq!(h.stats.l1_read_hits[0], 1);
    assert_eq!(h.stats.l1_write_misses[1], 1);
    assert_eq!(h.stats.l1_read_hits[1], 0);
}
