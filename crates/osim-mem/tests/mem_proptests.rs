//! Property-based tests for the memory substrate: physical memory as a
//! sparse byte store, page-table translation laws, and cache behaviour
//! against a trivially correct model.

use std::collections::HashMap;

use proptest::prelude::*;

use osim_mem::cache::{Cache, CacheCfg, LineKind, Mesi};
use osim_mem::{HierarchyCfg, MemSys, PageFlags, PAGE_SIZE};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Writes to distinct word addresses never interfere (physical memory
    /// behaves as a map of words).
    #[test]
    fn phys_mem_is_a_word_map(
        writes in proptest::collection::vec((0u32..2048, any::<u32>()), 1..64),
    ) {
        let mut ms = MemSys::new(HierarchyCfg::paper(1), 64 << 20);
        let base_va = ms.map_zeroed(2, PageFlags::Conventional).unwrap();
        let mut model: HashMap<u32, u32> = HashMap::new();
        for (word, val) in writes {
            let va = base_va + word * 4;
            let pa = ms.pt.translate_conventional(va).unwrap();
            ms.phys.write_u32(pa, val);
            model.insert(word, val);
        }
        for (word, want) in model {
            let pa = ms.pt.translate_conventional(base_va + word * 4).unwrap();
            prop_assert_eq!(ms.phys.read_u32(pa), want);
        }
    }

    /// Translation is a bijection on mapped pages: distinct vas map to
    /// distinct pas, and offsets are preserved.
    #[test]
    fn translation_preserves_offsets(pages in 1u32..8, offsets in proptest::collection::vec(0u32..PAGE_SIZE, 1..16)) {
        let mut ms = MemSys::new(HierarchyCfg::paper(1), 64 << 20);
        let base = ms.map_zeroed(pages, PageFlags::Conventional).unwrap();
        let mut seen = HashMap::new();
        for p in 0..pages {
            for &off in &offsets {
                let va = base + p * PAGE_SIZE + off;
                let (pa, _) = ms.pt.translate(va).unwrap();
                prop_assert_eq!(pa % PAGE_SIZE, va % PAGE_SIZE, "offset preserved");
                if let Some(prev_va) = seen.insert(pa, va) {
                    prop_assert_eq!(prev_va, va, "pa aliased by two vas");
                }
            }
        }
    }

    /// The cache agrees with a model that tracks (set-capped) residency:
    /// a probe hits iff the line was filled and neither invalidated nor
    /// evicted. We verify the weaker invariant that a hit implies a prior
    /// fill without an intervening invalidate, and that capacity is never
    /// exceeded.
    #[test]
    fn cache_never_hits_uninstalled_lines(
        ops in proptest::collection::vec((0u32..64, 0u8..3), 1..200),
    ) {
        let mut c = Cache::new(CacheCfg { size_bytes: 1024, assoc: 2, hit_latency: 1 });
        let mut installed: HashMap<u32, bool> = HashMap::new(); // tag -> possibly resident
        for (slot, op) in ops {
            let tag = slot * 64;
            match op {
                0 => {
                    c.fill(tag, LineKind::Data, Mesi::Shared);
                    installed.insert(tag, true);
                }
                1 => {
                    c.invalidate(tag, LineKind::Data);
                    installed.insert(tag, false);
                }
                _ => {
                    let hit = c.probe(tag, LineKind::Data).is_some();
                    if hit {
                        prop_assert_eq!(installed.get(&tag), Some(&true),
                            "hit on a line never filled (or invalidated)");
                    }
                }
            }
            prop_assert!(c.resident() <= 16, "capacity exceeded");
        }
    }
}
