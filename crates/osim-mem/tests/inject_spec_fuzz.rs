//! Fuzz/property tests for the `--inject` spec parser: arbitrary byte
//! strings must yield a typed [`SpecError`] (never a panic), valid specs
//! must round-trip through [`FaultPlan::to_spec`], and duplicate keys are
//! a hard error rather than a silent last-wins.

use proptest::prelude::*;

use osim_mem::{FaultPlan, PoolShrink, SpecError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser is total: any byte soup either parses or returns a typed
    /// error. Accepted specs must additionally survive a canonicalizing
    /// round-trip.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let spec = String::from_utf8_lossy(&bytes);
        if let Ok(plan) = FaultPlan::parse(&spec) {
            let back = FaultPlan::parse(&plan.to_spec());
            prop_assert_eq!(back, Ok(plan), "canonical spec must re-parse");
        }
    }

    /// Structured near-miss inputs — the shapes a typo actually produces —
    /// also never panic, and their canonical forms re-parse.
    #[test]
    fn keyish_soup_never_panics(
        parts in proptest::collection::vec(
            prop_oneof![
                Just("pool-pressure".to_string()),
                Just("chaos".to_string()),
                Just("jitter".to_string()),
                Just("jitter=3".to_string()),
                Just("seed=".to_string()),
                Just("=7".to_string()),
                Just("==".to_string()),
                Just("".to_string()),
                (0u64..1 << 40).prop_map(|n| format!("seed={n}")),
                (0u64..1 << 40).prop_map(|n| format!("shrink-at={n}")),
                any::<u8>().prop_map(|b| format!("carve-fail-pct={b}")),
            ],
            0..6,
        ),
    ) {
        let spec = parts.join(",");
        if let Ok(plan) = FaultPlan::parse(&spec) {
            let back = FaultPlan::parse(&plan.to_spec());
            prop_assert_eq!(back, Ok(plan));
        }
    }

    /// Every expressible plan's canonical spec parses back to the same
    /// plan (`to_spec` and `parse` are inverses on the plan domain).
    #[test]
    fn plans_round_trip(
        seed in any::<u64>(),
        shrink in proptest::option::of((1u64..1 << 20, 0u32..4096)),
        carve_fail_pct in 0u8..=100,
        max_carve_failures in 0u32..16,
        refill_budget in proptest::option::of(0u32..64),
        latency_jitter in 0u64..32,
        coherence_delay in 0u64..128,
    ) {
        let plan = FaultPlan {
            seed,
            pool_shrink: shrink.map(|(at_alloc, keep_blocks)| PoolShrink { at_alloc, keep_blocks }),
            // `to_spec` only emits max-carve-failures alongside a nonzero
            // fail percentage; mirror that coupling here.
            carve_fail_pct,
            max_carve_failures: if carve_fail_pct > 0 { max_carve_failures } else { 0 },
            refill_budget,
            latency_jitter,
            coherence_delay,
        };
        let back = FaultPlan::parse(&plan.to_spec());
        prop_assert_eq!(back, Ok(plan));
    }
}

#[test]
fn duplicate_keys_are_a_hard_error() {
    assert_eq!(
        FaultPlan::parse("jitter=1,jitter=2"),
        Err(SpecError::DuplicateKey("jitter".to_string()))
    );
    assert_eq!(
        FaultPlan::parse("chaos,seed=1,coherence-delay=5,seed=9"),
        Err(SpecError::DuplicateKey("seed".to_string()))
    );
    // Distinct keys that touch the same field are not duplicates.
    assert!(FaultPlan::parse("shrink-at=4,shrink-keep=2").is_ok());
}

#[test]
fn errors_are_typed_and_specific() {
    assert_eq!(
        FaultPlan::parse("bogus"),
        Err(SpecError::UnknownPreset("bogus".to_string()))
    );
    assert_eq!(
        FaultPlan::parse("seed=1,chaos"),
        Err(SpecError::MisplacedPreset("chaos".to_string()))
    );
    assert_eq!(
        FaultPlan::parse("jitterz=1"),
        Err(SpecError::UnknownKey("jitterz".to_string()))
    );
    match FaultPlan::parse("carve-fail-pct=101") {
        Err(SpecError::BadValue { key, value, .. }) => {
            assert_eq!(key, "carve-fail-pct");
            assert_eq!(value, "101");
        }
        other => panic!("expected BadValue, got {other:?}"),
    }
    match FaultPlan::parse("jitter=x") {
        Err(SpecError::BadValue { key, .. }) => assert_eq!(key, "jitter"),
        other => panic!("expected BadValue, got {other:?}"),
    }
    // Errors render as single-line human-readable messages.
    let msg = FaultPlan::parse("jitter=1,jitter=2")
        .unwrap_err()
        .to_string();
    assert!(
        msg.contains("jitter") && msg.contains("more than once"),
        "{msg}"
    );
}
