//! Simulated memory system for the O-structures microarchitecture.
//!
//! This crate models the parts of the paper's platform (Table II) that sit
//! below the O-structure manager:
//!
//! * [`phys::PhysMem`] — a sparse, paged 32-bit physical memory that actually
//!   stores data (version blocks are real 16-byte records in here, linked by
//!   physical pointers).
//! * [`page::PageTable`] — virtual→physical translation plus the paper's
//!   protection extension: pages are tagged *conventional*, *versioned root*
//!   or *version-block pool*, and the wrong kind of access faults.
//! * [`cache::Cache`] — a set-associative, LRU, write-back cache holding
//!   line metadata (tags + MESI state). Data itself stays in [`phys::PhysMem`];
//!   the caches are a timing and coherence filter, which is all the paper's
//!   evaluation needs.
//! * [`hierarchy::Hierarchy`] — per-core L1s over a shared inclusive L2 over
//!   DRAM, with invalidation-based coherence and the paper's latencies
//!   (L1 4 cycles, L2 35 cycles, DRAM 60 ns = 120 cycles at 2 GHz).
//!
//! Compressed version-block lines (§III-A of the paper) occupy real L1 slots
//! here, but their *contents* are owned by `osim-uarch`; the hierarchy
//! reports compressed-line evictions and invalidations so the O-structure
//! manager can drop its side state, mirroring the paper's "discard the
//! compressed version block on a coherence message" rule.

pub mod cache;
pub mod events;
pub mod fault;
pub mod fxhash;
pub mod hierarchy;
pub mod inject;
pub mod page;
pub mod phys;
pub mod stats;

pub use cache::{Cache, CacheCfg};
pub use events::{EventLog, MemEvent, MemEventKind};
pub use fault::Fault;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use hierarchy::{AccessKind, AccessResult, Hierarchy, HierarchyCfg, Level};
pub use inject::{FaultPlan, Injector, PoolShrink, SpecError};
pub use page::{PageFlags, PageTable, WalkEvent, PAGE_SIZE};
pub use phys::PhysMem;
pub use stats::{MemHists, MemStats};

/// The full memory system of one simulated machine, bundled so the
/// O-structure manager and the cores can thread it through their operations.
pub struct MemSys {
    /// The cache hierarchy (timing + coherence).
    pub hier: Hierarchy,
    /// Physical memory (data).
    pub phys: PhysMem,
    /// The process page table (translation + protection).
    pub pt: PageTable,
}

impl MemSys {
    /// Builds a memory system with the given hierarchy configuration and
    /// `ram_bytes` of allocatable simulated RAM.
    pub fn new(cfg: HierarchyCfg, ram_bytes: u64) -> Self {
        MemSys {
            hier: Hierarchy::new(cfg),
            phys: PhysMem::new(ram_bytes),
            pt: PageTable::new(),
        }
    }

    /// Maps `n` fresh zeroed pages with the given flags, returning the
    /// virtual base address of the first page (pages are virtually
    /// contiguous).
    pub fn map_zeroed(&mut self, n: u32, flags: PageFlags) -> Option<u32> {
        let mut base = None;
        for _ in 0..n {
            let ppn = self.phys.alloc_page()?;
            let va = self.pt.map_next(ppn, flags);
            base.get_or_insert(va);
        }
        base
    }
}

/// Cache line size in bytes (Table II: 64 B blocks at both levels).
pub const LINE_BYTES: u32 = 64;

/// Returns the 64-byte-aligned line address containing `addr`.
#[inline]
pub fn line_of(addr: u32) -> u32 {
    addr & !(LINE_BYTES - 1)
}
