//! Memory-system statistics.

use osim_metrics::Histogram;

/// Latency distributions recorded by the [`crate::Hierarchy`] alongside
/// the [`MemStats`] counters. Values are simulated cycles, so the
/// contents are deterministic and scheduler-invariant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemHists {
    /// Latencies of accesses satisfied by the local L1.
    pub l1_access: Histogram,
    /// Latencies of accesses that missed the L1 (remote-L1 forward, L2
    /// hit, or DRAM fill — the miss-path service time).
    pub l2_access: Histogram,
    /// Latencies of accesses whose service required a coherence action:
    /// an S→M upgrade, a dirty remote-L1 forward, or a write reaching a
    /// line other cores still share.
    pub coherence_delay: Histogram,
}

impl MemHists {
    /// Clears all three histograms.
    pub fn reset(&mut self) {
        self.l1_access.reset();
        self.l2_access.reset();
        self.coherence_delay.reset();
    }
}

/// Counters accumulated by the [`crate::Hierarchy`].
///
/// `l1_*` counters are per-core (indexed by core id); the shared-level
/// counters are global. The paper quotes L1 read miss rates (Fig. 9
/// discussion) and qualitative hit-rate statements (§IV-D), which these
/// counters regenerate.
#[derive(Debug, Clone, Default)]
pub struct MemStats {
    /// Per-core L1 read hits (demand data reads, including versioned ops
    /// that hit compressed or data lines).
    pub l1_read_hits: Vec<u64>,
    /// Per-core L1 read misses.
    pub l1_read_misses: Vec<u64>,
    /// Per-core L1 write hits.
    pub l1_write_hits: Vec<u64>,
    /// Per-core L1 write misses.
    pub l1_write_misses: Vec<u64>,
    /// L2 hits (on L1 misses).
    pub l2_hits: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
    /// L1 misses satisfied by a dirty line forwarded from another core's L1.
    pub remote_forwards: u64,
    /// Data-line invalidations sent to remote L1s (write upgrades / RFOs).
    pub invalidations: u64,
    /// S→M upgrades that hit locally but had to invalidate sharers.
    pub upgrades: u64,
    /// L1 lines dropped because the inclusive L2 evicted their line.
    pub back_invalidations: u64,
    /// Compressed-line hits (direct O-structure accesses).
    pub compressed_hits: u64,
    /// Compressed-line misses (direct access fell back to a full lookup).
    pub compressed_misses: u64,
    /// Compressed lines discarded by coherence messages.
    pub compressed_coherence_drops: u64,
}

impl MemStats {
    pub(crate) fn new(cores: usize) -> Self {
        MemStats {
            l1_read_hits: vec![0; cores],
            l1_read_misses: vec![0; cores],
            l1_write_hits: vec![0; cores],
            l1_write_misses: vec![0; cores],
            ..Default::default()
        }
    }

    /// Aggregate L1 read hit rate across all cores, in [0, 1].
    pub fn l1_read_hit_rate(&self) -> f64 {
        let hits: u64 = self.l1_read_hits.iter().sum();
        let misses: u64 = self.l1_read_misses.iter().sum();
        ratio(hits, misses)
    }

    /// Aggregate L1 hit rate (reads + writes) across all cores, in [0, 1].
    pub fn l1_hit_rate(&self) -> f64 {
        let hits: u64 =
            self.l1_read_hits.iter().sum::<u64>() + self.l1_write_hits.iter().sum::<u64>();
        let misses: u64 =
            self.l1_read_misses.iter().sum::<u64>() + self.l1_write_misses.iter().sum::<u64>();
        ratio(hits, misses)
    }

    /// Total demand accesses observed at the L1s.
    pub fn l1_accesses(&self) -> u64 {
        self.l1_read_hits.iter().sum::<u64>()
            + self.l1_read_misses.iter().sum::<u64>()
            + self.l1_write_hits.iter().sum::<u64>()
            + self.l1_write_misses.iter().sum::<u64>()
    }

    /// Resets every counter, keeping the core count.
    pub fn reset(&mut self) {
        *self = MemStats::new(self.l1_read_hits.len());
    }
}

fn ratio(hits: u64, misses: u64) -> f64 {
    if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates() {
        let mut s = MemStats::new(2);
        s.l1_read_hits[0] = 3;
        s.l1_read_misses[1] = 1;
        assert!((s.l1_read_hit_rate() - 0.75).abs() < 1e-12);
        s.l1_write_hits[0] = 4;
        assert!((s.l1_hit_rate() - 7.0 / 8.0).abs() < 1e-12);
        assert_eq!(s.l1_accesses(), 8);
        s.reset();
        assert_eq!(s.l1_accesses(), 0);
        assert_eq!(s.l1_read_hits.len(), 2);
    }

    #[test]
    fn empty_rates_are_zero() {
        let s = MemStats::new(1);
        assert_eq!(s.l1_read_hit_rate(), 0.0);
        assert_eq!(s.l1_hit_rate(), 0.0);
    }
}
