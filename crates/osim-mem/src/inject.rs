//! Deterministic, seeded fault injection.
//!
//! A [`FaultPlan`] describes *what* to break and a seed describes *when*:
//! the same plan over the same workload replays the identical injected
//! schedule, because every random decision is drawn from a private
//! splitmix64 stream whose consumption order is fixed by the (already
//! deterministic) simulation. Consumers (the `osim-uarch` manager, the
//! experiment harness) hold an [`Injector`] built from the plan.
//!
//! Injectable faults:
//!
//! * **pool shrink** — drop the version-block free list to a given size at
//!   the Nth allocation, modeling mid-run storage pressure;
//! * **carve failure** — make the OS refill trap's carve attempt fail
//!   transiently (with a bounded consecutive-failure count) or cap the
//!   total number of successful refills (a hard storage budget);
//! * **latency jitter** — perturb every versioned operation by a seeded
//!   0..=N extra cycles;
//! * **coherence delay** — deliver compressed-line invalidation losses
//!   late, charging the victim extra cycles before its retry.

/// Shrink the free list once, mid-run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolShrink {
    /// Trigger before the Nth version-block allocation (1-based).
    pub at_alloc: u64,
    /// Free-list blocks to keep; the rest are dropped.
    pub keep_blocks: u32,
}

/// A deterministic fault-injection plan. `FaultPlan::default()` injects
/// nothing; presets and `key=value` overrides come from [`FaultPlan::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the private decision stream.
    pub seed: u64,
    /// One-shot mid-run free-list shrink.
    pub pool_shrink: Option<PoolShrink>,
    /// Probability (percent) that a refill-trap carve fails transiently.
    pub carve_fail_pct: u8,
    /// Upper bound on *consecutive* injected carve failures, so bounded
    /// retry always converges unless the refill budget is exhausted.
    pub max_carve_failures: u32,
    /// Total successful OS refills allowed (`None` = unlimited). `Some(0)`
    /// models a machine that can never grow the pool.
    pub refill_budget: Option<u32>,
    /// Extra 0..=N cycles added to every versioned operation.
    pub latency_jitter: u64,
    /// Extra cycles charged when a stall follows a coherence invalidation
    /// (a delayed/reordered invalidation delivery).
    pub coherence_delay: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0x05eed,
            pool_shrink: None,
            carve_fail_pct: 0,
            max_carve_failures: 0,
            refill_budget: None,
            latency_jitter: 0,
            coherence_delay: 0,
        }
    }
}

/// Why an `--inject` spec did not parse. Every malformed input — including
/// arbitrary bytes — maps to one of these; the parser never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// A bare word (no `=`) that names no known preset.
    UnknownPreset(String),
    /// A preset name appearing after the first comma-separated part, where
    /// it would silently clobber the overrides before it.
    MisplacedPreset(String),
    /// A `key=value` pair with an unrecognized key.
    UnknownKey(String),
    /// A recognized key whose value did not parse or was out of range.
    BadValue {
        /// The key the value was given for.
        key: String,
        /// The offending value text.
        value: String,
        /// What the key accepts.
        expected: &'static str,
    },
    /// The same key given twice. Last-wins would silently mask a typo in a
    /// long spec, so duplicates are a hard error.
    DuplicateKey(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::UnknownPreset(p) => write!(f, "unknown fault-injection preset {p:?}"),
            SpecError::MisplacedPreset(p) => {
                write!(f, "preset {p:?} must come first in the spec")
            }
            SpecError::UnknownKey(k) => write!(f, "unknown fault-injection key {k:?}"),
            SpecError::BadValue {
                key,
                value,
                expected,
            } => write!(
                f,
                "bad value {value:?} for key {key:?} (expected {expected})"
            ),
            SpecError::DuplicateKey(k) => {
                write!(
                    f,
                    "key {k:?} given more than once (duplicates are an error)"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl FaultPlan {
    /// Parses an `--inject` spec: a preset name, `key=value` pairs, or a
    /// preset followed by overrides, comma-separated.
    ///
    /// Presets: `pool-pressure`, `pool-exhaustion`, `latency-jitter`,
    /// `coherence-delay`, `chaos`. Keys: `seed`, `shrink-at`,
    /// `shrink-keep`, `carve-fail-pct`, `max-carve-failures`,
    /// `refill-budget`, `jitter`, `coherence-delay`.
    ///
    /// Total on every input: arbitrary bytes yield a typed [`SpecError`],
    /// never a panic, and a repeated key is rejected rather than silently
    /// taking the last occurrence.
    pub fn parse(spec: &str) -> Result<FaultPlan, SpecError> {
        let mut plan = FaultPlan::default();
        let mut seen: Vec<String> = Vec::new();
        for (i, part) in spec.split(',').enumerate() {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                None => {
                    if i != 0 {
                        return Err(SpecError::MisplacedPreset(part.to_string()));
                    }
                    plan = Self::preset(part)
                        .ok_or_else(|| SpecError::UnknownPreset(part.to_string()))?;
                }
                Some((key, value)) => {
                    let key = key.trim();
                    if seen.iter().any(|k| k == key) {
                        return Err(SpecError::DuplicateKey(key.to_string()));
                    }
                    plan.set(key, value.trim())?;
                    seen.push(key.to_string());
                }
            }
        }
        Ok(plan)
    }

    fn preset(name: &str) -> Option<FaultPlan> {
        let base = FaultPlan::default();
        Some(match name {
            // Mid-run pool loss plus transient refill failures: the run
            // must recover through bounded retry (nonzero retries and
            // recovered allocations, but no error).
            "pool-pressure" => FaultPlan {
                pool_shrink: Some(PoolShrink {
                    at_alloc: 48,
                    keep_blocks: 0,
                }),
                carve_fail_pct: 100,
                max_carve_failures: 2,
                ..base
            },
            // Pool loss with no refills allowed at all: allocation
            // eventually surfaces `OutOfVersionBlocks` as a typed error.
            "pool-exhaustion" => FaultPlan {
                pool_shrink: Some(PoolShrink {
                    at_alloc: 48,
                    keep_blocks: 0,
                }),
                refill_budget: Some(0),
                ..base
            },
            "latency-jitter" => FaultPlan {
                latency_jitter: 6,
                ..base
            },
            "coherence-delay" => FaultPlan {
                coherence_delay: 40,
                ..base
            },
            "chaos" => FaultPlan {
                pool_shrink: Some(PoolShrink {
                    at_alloc: 96,
                    keep_blocks: 8,
                }),
                carve_fail_pct: 50,
                max_carve_failures: 2,
                latency_jitter: 4,
                coherence_delay: 24,
                ..base
            },
            _ => return None,
        })
    }

    fn set(&mut self, key: &str, value: &str) -> Result<(), SpecError> {
        fn num<T: std::str::FromStr>(
            key: &str,
            value: &str,
            expected: &'static str,
        ) -> Result<T, SpecError> {
            value.parse().map_err(|_| SpecError::BadValue {
                key: key.to_string(),
                value: value.to_string(),
                expected,
            })
        }
        match key {
            "seed" => self.seed = num(key, value, "an unsigned integer")?,
            "shrink-at" => {
                let at: u64 = num(key, value, "an allocation count")?;
                let keep = self.pool_shrink.map(|s| s.keep_blocks).unwrap_or(0);
                self.pool_shrink = Some(PoolShrink {
                    at_alloc: at,
                    keep_blocks: keep,
                });
            }
            "shrink-keep" => {
                let keep: u32 = num(key, value, "a block count")?;
                let at = self.pool_shrink.map(|s| s.at_alloc).unwrap_or(1);
                self.pool_shrink = Some(PoolShrink {
                    at_alloc: at,
                    keep_blocks: keep,
                });
            }
            "carve-fail-pct" => {
                let pct: u8 = num(key, value, "a percentage 0..=100")?;
                if pct > 100 {
                    return Err(SpecError::BadValue {
                        key: key.to_string(),
                        value: value.to_string(),
                        expected: "a percentage 0..=100",
                    });
                }
                self.carve_fail_pct = pct;
            }
            "max-carve-failures" => self.max_carve_failures = num(key, value, "a failure count")?,
            "refill-budget" => self.refill_budget = Some(num(key, value, "a refill count")?),
            "jitter" => self.latency_jitter = num(key, value, "a cycle count")?,
            "coherence-delay" => self.coherence_delay = num(key, value, "a cycle count")?,
            _ => return Err(SpecError::UnknownKey(key.to_string())),
        }
        Ok(())
    }

    /// Canonical `key=value` spec of this plan (parse/format round-trips),
    /// used to stamp the plan into run reports.
    pub fn to_spec(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        if let Some(s) = self.pool_shrink {
            parts.push(format!("shrink-at={}", s.at_alloc));
            parts.push(format!("shrink-keep={}", s.keep_blocks));
        }
        if self.carve_fail_pct > 0 {
            parts.push(format!("carve-fail-pct={}", self.carve_fail_pct));
            parts.push(format!("max-carve-failures={}", self.max_carve_failures));
        }
        if let Some(b) = self.refill_budget {
            parts.push(format!("refill-budget={b}"));
        }
        if self.latency_jitter > 0 {
            parts.push(format!("jitter={}", self.latency_jitter));
        }
        if self.coherence_delay > 0 {
            parts.push(format!("coherence-delay={}", self.coherence_delay));
        }
        parts.join(",")
    }
}

/// Runtime state of one plan: the decision stream plus the counters that
/// make the bounded-failure and budget rules stateful.
#[derive(Debug, Clone, Copy)]
pub struct Injector {
    plan: FaultPlan,
    rng: u64,
    allocs_seen: u64,
    shrink_done: bool,
    consecutive_carve_failures: u32,
    refills_done: u32,
}

impl Injector {
    /// Builds the runtime state for a plan.
    pub fn new(plan: FaultPlan) -> Self {
        Injector {
            plan,
            rng: plan.seed,
            allocs_seen: 0,
            shrink_done: false,
            consecutive_carve_failures: 0,
            refills_done: 0,
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn next(&mut self) -> u64 {
        // splitmix64: tiny, deterministic, and self-contained (this crate
        // deliberately has no dependencies).
        self.rng = self.rng.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Called once per version-block allocation; returns `Some(keep)` when
    /// the one-shot pool shrink triggers on this allocation.
    pub fn shrink_due(&mut self) -> Option<u32> {
        self.allocs_seen += 1;
        let s = self.plan.pool_shrink?;
        if self.shrink_done || self.allocs_seen < s.at_alloc {
            return None;
        }
        self.shrink_done = true;
        Some(s.keep_blocks)
    }

    /// Whether another successful OS refill is permitted by the budget.
    pub fn refill_allowed(&self) -> bool {
        match self.plan.refill_budget {
            Some(budget) => self.refills_done < budget,
            None => true,
        }
    }

    /// Decides whether this refill-trap carve attempt fails transiently.
    /// At most [`FaultPlan::max_carve_failures`] consecutive failures are
    /// injected, so retry loops bounded above that always converge.
    pub fn transient_carve_failure(&mut self) -> bool {
        if self.plan.carve_fail_pct == 0
            || self.consecutive_carve_failures >= self.plan.max_carve_failures
        {
            self.consecutive_carve_failures = 0;
            return false;
        }
        let fail = self.next() % 100 < self.plan.carve_fail_pct as u64;
        if fail {
            self.consecutive_carve_failures += 1;
        } else {
            self.consecutive_carve_failures = 0;
        }
        fail
    }

    /// Records a successful refill carve (consumes budget).
    pub fn note_refill(&mut self) {
        self.refills_done += 1;
        self.consecutive_carve_failures = 0;
    }

    /// Seeded per-operation latency perturbation, 0..=`latency_jitter`.
    pub fn jitter(&mut self) -> u64 {
        if self.plan.latency_jitter == 0 {
            return 0;
        }
        self.next() % (self.plan.latency_jitter + 1)
    }

    /// Extra cycles charged to a coherence-invalidation-caused stall.
    pub fn coherence_delay(&self) -> u64 {
        self.plan.coherence_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let mut inj = Injector::new(FaultPlan::default());
        assert_eq!(inj.shrink_due(), None);
        assert!(inj.refill_allowed());
        assert!(!inj.transient_carve_failure());
        assert_eq!(inj.jitter(), 0);
        assert_eq!(inj.coherence_delay(), 0);
    }

    #[test]
    fn presets_parse() {
        let p = FaultPlan::parse("pool-pressure").unwrap();
        assert_eq!(p.carve_fail_pct, 100);
        assert_eq!(p.max_carve_failures, 2);
        assert!(p.pool_shrink.is_some());
        let p = FaultPlan::parse("pool-exhaustion").unwrap();
        assert_eq!(p.refill_budget, Some(0));
        assert!(FaultPlan::parse("latency-jitter").unwrap().latency_jitter > 0);
        assert!(FaultPlan::parse("coherence-delay").unwrap().coherence_delay > 0);
        assert!(FaultPlan::parse("chaos").unwrap().pool_shrink.is_some());
        assert!(FaultPlan::parse("bogus").is_err());
    }

    #[test]
    fn overrides_and_round_trip() {
        let p = FaultPlan::parse("pool-pressure,seed=7,jitter=3,shrink-at=10").unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.latency_jitter, 3);
        assert_eq!(p.pool_shrink.unwrap().at_alloc, 10);
        assert_eq!(p.pool_shrink.unwrap().keep_blocks, 0);
        let back = FaultPlan::parse(&p.to_spec()).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn key_value_only_spec() {
        let p = FaultPlan::parse("refill-budget=2,coherence-delay=9").unwrap();
        assert_eq!(p.refill_budget, Some(2));
        assert_eq!(p.coherence_delay, 9);
        assert!(FaultPlan::parse("jitter=x").is_err());
        assert!(FaultPlan::parse("carve-fail-pct=101").is_err());
        assert!(FaultPlan::parse("seed=1,pool-pressure").is_err());
    }

    #[test]
    fn consecutive_carve_failures_are_bounded() {
        let plan = FaultPlan {
            carve_fail_pct: 100,
            max_carve_failures: 2,
            ..FaultPlan::default()
        };
        let mut inj = Injector::new(plan);
        assert!(inj.transient_carve_failure());
        assert!(inj.transient_carve_failure());
        assert!(!inj.transient_carve_failure(), "third attempt must pass");
        assert!(inj.transient_carve_failure(), "counter reset after success");
    }

    #[test]
    fn refill_budget_counts_down() {
        let plan = FaultPlan {
            refill_budget: Some(1),
            ..FaultPlan::default()
        };
        let mut inj = Injector::new(plan);
        assert!(inj.refill_allowed());
        inj.note_refill();
        assert!(!inj.refill_allowed());
    }

    #[test]
    fn decision_stream_is_seed_deterministic() {
        let plan = FaultPlan {
            latency_jitter: 13,
            ..FaultPlan::default()
        };
        let a: Vec<u64> = {
            let mut inj = Injector::new(plan);
            (0..64).map(|_| inj.jitter()).collect()
        };
        let b: Vec<u64> = {
            let mut inj = Injector::new(plan);
            (0..64).map(|_| inj.jitter()).collect()
        };
        assert_eq!(a, b);
        assert!(a.iter().any(|&j| j > 0));
        assert!(a.iter().all(|&j| j <= 13));
        let other = Injector::new(FaultPlan { seed: 99, ..plan });
        let c: Vec<u64> = {
            let mut inj = other;
            (0..64).map(|_| inj.jitter()).collect()
        };
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn shrink_triggers_once_at_threshold() {
        let plan = FaultPlan {
            pool_shrink: Some(PoolShrink {
                at_alloc: 3,
                keep_blocks: 5,
            }),
            ..FaultPlan::default()
        };
        let mut inj = Injector::new(plan);
        assert_eq!(inj.shrink_due(), None);
        assert_eq!(inj.shrink_due(), None);
        assert_eq!(inj.shrink_due(), Some(5));
        assert_eq!(inj.shrink_due(), None, "one-shot");
    }
}
