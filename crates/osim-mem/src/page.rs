//! Page table with the paper's version-block protection bit.

use crate::fault::Fault;

/// Page size in bytes. 4 KiB, as on the paper's ARM platform.
pub const PAGE_SIZE: u32 = 4096;

/// How a virtual page may be used.
///
/// The paper extends the page table with "a bit indicating that a page
/// contains version blocks" and faults mismatched accesses. We keep two
/// versioned kinds because the runtime maps two distinct versioned regions:
/// user-visible O-structure *roots* and the *pool* pages that the free list
/// is carved from. Both have the version-block bit set as far as the
/// protection rules are concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFlags {
    /// Ordinary data page: conventional loads/stores only.
    Conventional,
    /// Page of O-structure root words: versioned instructions only.
    VersionedRoot,
    /// Page carved into 16-byte version blocks for the free list. Only the
    /// O-structure manager itself dereferences these (via physical
    /// pointers); *no* user-visible access is legal.
    VBlockPool,
}

impl PageFlags {
    /// True if the version-block page-table bit is set for this kind.
    pub fn versioned_bit(self) -> bool {
        !matches!(self, PageFlags::Conventional)
    }
}

#[derive(Clone, Copy)]
struct Pte {
    ppn: u32,
    flags: PageFlags,
}

/// A single-address-space page table (the simulator models one process, as
/// gem5 SE mode does).
#[derive(Default)]
pub struct PageTable {
    entries: Vec<Option<Pte>>,
    next_vpn: u32,
}

impl PageTable {
    /// Creates an empty page table. Virtual page 0 is never handed out so
    /// that va 0 behaves as a null pointer.
    pub fn new() -> Self {
        PageTable {
            entries: Vec::new(),
            next_vpn: 1,
        }
    }

    /// Maps the next free virtual page to physical page `ppn` with `flags`,
    /// returning the virtual base address of the new page.
    pub fn map_next(&mut self, ppn: u32, flags: PageFlags) -> u32 {
        let vpn = self.next_vpn;
        self.next_vpn += 1;
        if self.entries.len() <= vpn as usize {
            self.entries.resize_with(vpn as usize + 1, || None);
        }
        self.entries[vpn as usize] = Some(Pte { ppn, flags });
        vpn * PAGE_SIZE
    }

    /// Translates a virtual address, returning `(pa, flags)`.
    pub fn translate(&self, va: u32) -> Result<(u32, PageFlags), Fault> {
        let vpn = (va / PAGE_SIZE) as usize;
        match self.entries.get(vpn).copied().flatten() {
            Some(pte) => Ok((pte.ppn * PAGE_SIZE + va % PAGE_SIZE, pte.flags)),
            None => Err(Fault::NotMapped { va }),
        }
    }

    /// Translation for a conventional `LOAD`/`STORE`: faults on pages whose
    /// version-block bit is set.
    pub fn translate_conventional(&self, va: u32) -> Result<u32, Fault> {
        let (pa, flags) = self.translate(va)?;
        if flags.versioned_bit() {
            return Err(Fault::ConventionalAccessToVersionedPage { va });
        }
        Ok(pa)
    }

    /// Translation for an O-structure instruction: faults unless the page is
    /// a versioned-root page, and requires 4-byte alignment (roots are
    /// 32-bit words).
    pub fn translate_versioned(&self, va: u32) -> Result<u32, Fault> {
        if !va.is_multiple_of(4) {
            return Err(Fault::Misaligned { va });
        }
        let (pa, flags) = self.translate(va)?;
        match flags {
            PageFlags::VersionedRoot => Ok(pa),
            _ => Err(Fault::VersionedAccessToConventionalPage { va }),
        }
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_translate() {
        let mut pt = PageTable::new();
        let va = pt.map_next(7, PageFlags::Conventional);
        let (pa, flags) = pt.translate(va + 12).unwrap();
        assert_eq!(pa, 7 * PAGE_SIZE + 12);
        assert_eq!(flags, PageFlags::Conventional);
    }

    #[test]
    fn unmapped_faults() {
        let pt = PageTable::new();
        assert_eq!(pt.translate(0x1234), Err(Fault::NotMapped { va: 0x1234 }));
    }

    #[test]
    fn conventional_access_to_versioned_page_faults() {
        let mut pt = PageTable::new();
        let va = pt.map_next(3, PageFlags::VersionedRoot);
        assert_eq!(
            pt.translate_conventional(va),
            Err(Fault::ConventionalAccessToVersionedPage { va })
        );
        let va2 = pt.map_next(4, PageFlags::VBlockPool);
        assert_eq!(
            pt.translate_conventional(va2),
            Err(Fault::ConventionalAccessToVersionedPage { va: va2 })
        );
    }

    #[test]
    fn versioned_access_to_conventional_page_faults() {
        let mut pt = PageTable::new();
        let va = pt.map_next(3, PageFlags::Conventional);
        assert_eq!(
            pt.translate_versioned(va),
            Err(Fault::VersionedAccessToConventionalPage { va })
        );
    }

    #[test]
    fn versioned_access_to_pool_page_faults() {
        // User code must not address version blocks directly, even with
        // versioned instructions: only root pages are legal targets.
        let mut pt = PageTable::new();
        let va = pt.map_next(3, PageFlags::VBlockPool);
        assert_eq!(
            pt.translate_versioned(va),
            Err(Fault::VersionedAccessToConventionalPage { va })
        );
    }

    #[test]
    fn misaligned_versioned_access_faults() {
        let mut pt = PageTable::new();
        let va = pt.map_next(3, PageFlags::VersionedRoot);
        assert_eq!(
            pt.translate_versioned(va + 2),
            Err(Fault::Misaligned { va: va + 2 })
        );
    }

    #[test]
    fn null_page_is_never_mapped() {
        let mut pt = PageTable::new();
        let va = pt.map_next(1, PageFlags::Conventional);
        assert!(va >= PAGE_SIZE);
        assert!(pt.translate(0).is_err());
    }
}
