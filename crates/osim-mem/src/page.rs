//! Page table with the paper's version-block protection bit.

use std::cell::{Cell, RefCell};

use crate::events::EventLog;
use crate::fault::Fault;

/// Page size in bytes. 4 KiB, as on the paper's ARM platform.
pub const PAGE_SIZE: u32 = 4096;

/// How a virtual page may be used.
///
/// The paper extends the page table with "a bit indicating that a page
/// contains version blocks" and faults mismatched accesses. We keep two
/// versioned kinds because the runtime maps two distinct versioned regions:
/// user-visible O-structure *roots* and the *pool* pages that the free list
/// is carved from. Both have the version-block bit set as far as the
/// protection rules are concerned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageFlags {
    /// Ordinary data page: conventional loads/stores only.
    Conventional,
    /// Page of O-structure root words: versioned instructions only.
    VersionedRoot,
    /// Page carved into 16-byte version blocks for the free list. Only the
    /// O-structure manager itself dereferences these (via physical
    /// pointers); *no* user-visible access is legal.
    VBlockPool,
}

impl PageFlags {
    /// True if the version-block page-table bit is set for this kind.
    pub fn versioned_bit(self) -> bool {
        !matches!(self, PageFlags::Conventional)
    }
}

#[derive(Clone, Copy)]
struct Pte {
    ppn: u32,
    flags: PageFlags,
}

/// One observable page-table walk (a `translate*` call).
///
/// Observation only: walks are logged through interior mutability so the
/// `&self` translation API (used under shared borrows by the host-side
/// result validators) is unchanged, and logging never affects timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalkEvent {
    /// Hierarchy clock at the walk ([`PageTable::set_clock`]).
    pub cycle: u64,
    /// Virtual address translated.
    pub va: u32,
    /// Version-block bit of the resolved page (false on faults).
    pub versioned: bool,
    /// The walk ended in a fault (unmapped or protection mismatch).
    pub fault: bool,
}

impl WalkEvent {
    /// Short stable name for exporters.
    pub fn kind_name(&self) -> &'static str {
        match (self.fault, self.versioned) {
            (true, _) => "pt_walk_fault",
            (false, true) => "pt_walk_versioned",
            (false, false) => "pt_walk",
        }
    }
}

/// A single-address-space page table (the simulator models one process, as
/// gem5 SE mode does).
#[derive(Default)]
pub struct PageTable {
    entries: Vec<Option<Pte>>,
    next_vpn: u32,
    /// Cheap enabled flag mirroring `events` so the disabled hot path pays
    /// one `Cell` read, not a `RefCell` borrow, per walk.
    events_on: Cell<bool>,
    events: RefCell<EventLog<WalkEvent>>,
    clock: Cell<u64>,
}

impl PageTable {
    /// Creates an empty page table. Virtual page 0 is never handed out so
    /// that va 0 behaves as a null pointer.
    pub fn new() -> Self {
        PageTable {
            entries: Vec::new(),
            next_vpn: 1,
            events_on: Cell::new(false),
            events: RefCell::new(EventLog::disabled()),
            clock: Cell::new(0),
        }
    }

    /// Arms walk-event capture with a ring of `capacity` events.
    pub fn enable_walk_events(&self, capacity: usize) {
        *self.events.borrow_mut() = EventLog::with_capacity(capacity);
        self.events_on.set(capacity > 0);
    }

    /// Stamps the cycle subsequent walk events carry (mirrors
    /// [`crate::Hierarchy::set_clock`]).
    pub fn set_clock(&self, cycle: u64) {
        self.clock.set(cycle);
    }

    /// The captured walk events in arrival order.
    pub fn walk_events(&self) -> Vec<WalkEvent> {
        self.events.borrow().records()
    }

    /// Walk events overwritten because the ring was full.
    pub fn walk_dropped(&self) -> u64 {
        self.events.borrow().dropped
    }

    /// Number of walk events currently retained.
    pub fn walk_event_len(&self) -> usize {
        self.events.borrow().len()
    }

    fn log_walk(&self, va: u32, versioned: bool, fault: bool) {
        if !self.events_on.get() {
            return;
        }
        self.events.borrow_mut().push(WalkEvent {
            cycle: self.clock.get(),
            va,
            versioned,
            fault,
        });
    }

    /// Maps the next free virtual page to physical page `ppn` with `flags`,
    /// returning the virtual base address of the new page.
    pub fn map_next(&mut self, ppn: u32, flags: PageFlags) -> u32 {
        let vpn = self.next_vpn;
        self.next_vpn += 1;
        if self.entries.len() <= vpn as usize {
            self.entries.resize_with(vpn as usize + 1, || None);
        }
        self.entries[vpn as usize] = Some(Pte { ppn, flags });
        vpn * PAGE_SIZE
    }

    /// The raw PTE walk, shared by every `translate*` entry point; does not
    /// log, so each walk is captured exactly once by its public caller.
    fn lookup(&self, va: u32) -> Result<(u32, PageFlags), Fault> {
        let vpn = (va / PAGE_SIZE) as usize;
        match self.entries.get(vpn).copied().flatten() {
            Some(pte) => Ok((pte.ppn * PAGE_SIZE + va % PAGE_SIZE, pte.flags)),
            None => Err(Fault::NotMapped { va }),
        }
    }

    /// Translates a virtual address, returning `(pa, flags)`.
    pub fn translate(&self, va: u32) -> Result<(u32, PageFlags), Fault> {
        let out = self.lookup(va);
        match &out {
            Ok((_, flags)) => self.log_walk(va, flags.versioned_bit(), false),
            Err(_) => self.log_walk(va, false, true),
        }
        out
    }

    /// Translation for a conventional `LOAD`/`STORE`: faults on pages whose
    /// version-block bit is set.
    pub fn translate_conventional(&self, va: u32) -> Result<u32, Fault> {
        let (pa, flags) = self.lookup(va).inspect_err(|_| {
            self.log_walk(va, false, true);
        })?;
        if flags.versioned_bit() {
            self.log_walk(va, true, true);
            return Err(Fault::ConventionalAccessToVersionedPage { va });
        }
        self.log_walk(va, false, false);
        Ok(pa)
    }

    /// Translation for an O-structure instruction: faults unless the page is
    /// a versioned-root page, and requires 4-byte alignment (roots are
    /// 32-bit words).
    pub fn translate_versioned(&self, va: u32) -> Result<u32, Fault> {
        if !va.is_multiple_of(4) {
            return Err(Fault::Misaligned { va });
        }
        let (pa, flags) = self.lookup(va).inspect_err(|_| {
            self.log_walk(va, false, true);
        })?;
        match flags {
            PageFlags::VersionedRoot => {
                self.log_walk(va, true, false);
                Ok(pa)
            }
            _ => {
                self.log_walk(va, flags.versioned_bit(), true);
                Err(Fault::VersionedAccessToConventionalPage { va })
            }
        }
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_and_translate() {
        let mut pt = PageTable::new();
        let va = pt.map_next(7, PageFlags::Conventional);
        let (pa, flags) = pt.translate(va + 12).unwrap();
        assert_eq!(pa, 7 * PAGE_SIZE + 12);
        assert_eq!(flags, PageFlags::Conventional);
    }

    #[test]
    fn unmapped_faults() {
        let pt = PageTable::new();
        assert_eq!(pt.translate(0x1234), Err(Fault::NotMapped { va: 0x1234 }));
    }

    #[test]
    fn conventional_access_to_versioned_page_faults() {
        let mut pt = PageTable::new();
        let va = pt.map_next(3, PageFlags::VersionedRoot);
        assert_eq!(
            pt.translate_conventional(va),
            Err(Fault::ConventionalAccessToVersionedPage { va })
        );
        let va2 = pt.map_next(4, PageFlags::VBlockPool);
        assert_eq!(
            pt.translate_conventional(va2),
            Err(Fault::ConventionalAccessToVersionedPage { va: va2 })
        );
    }

    #[test]
    fn versioned_access_to_conventional_page_faults() {
        let mut pt = PageTable::new();
        let va = pt.map_next(3, PageFlags::Conventional);
        assert_eq!(
            pt.translate_versioned(va),
            Err(Fault::VersionedAccessToConventionalPage { va })
        );
    }

    #[test]
    fn versioned_access_to_pool_page_faults() {
        // User code must not address version blocks directly, even with
        // versioned instructions: only root pages are legal targets.
        let mut pt = PageTable::new();
        let va = pt.map_next(3, PageFlags::VBlockPool);
        assert_eq!(
            pt.translate_versioned(va),
            Err(Fault::VersionedAccessToConventionalPage { va })
        );
    }

    #[test]
    fn misaligned_versioned_access_faults() {
        let mut pt = PageTable::new();
        let va = pt.map_next(3, PageFlags::VersionedRoot);
        assert_eq!(
            pt.translate_versioned(va + 2),
            Err(Fault::Misaligned { va: va + 2 })
        );
    }

    #[test]
    fn walk_events_capture_hits_and_faults() {
        let mut pt = PageTable::new();
        let conv = pt.map_next(2, PageFlags::Conventional);
        let root = pt.map_next(3, PageFlags::VersionedRoot);
        // Disabled by default: walks leave no trace.
        let _ = pt.translate(conv);
        assert_eq!(pt.walk_event_len(), 0);

        pt.enable_walk_events(8);
        pt.set_clock(42);
        let _ = pt.translate_conventional(conv);
        let _ = pt.translate_versioned(root);
        let _ = pt.translate(0xdead_f000); // unmapped → fault
        let _ = pt.translate_conventional(root); // protection mismatch
        let ev = pt.walk_events();
        assert_eq!(ev.len(), 4);
        assert!(ev.iter().all(|e| e.cycle == 42));
        assert_eq!(ev[0].kind_name(), "pt_walk");
        assert_eq!(ev[1].kind_name(), "pt_walk_versioned");
        assert!(ev[2].fault && ev[3].fault);
        assert_eq!(pt.walk_dropped(), 0);
    }

    #[test]
    fn walk_ring_counts_drops() {
        let mut pt = PageTable::new();
        let va = pt.map_next(2, PageFlags::Conventional);
        pt.enable_walk_events(2);
        for _ in 0..5 {
            let _ = pt.translate(va);
        }
        assert_eq!(pt.walk_event_len(), 2);
        assert_eq!(pt.walk_dropped(), 3);
    }

    #[test]
    fn null_page_is_never_mapped() {
        let mut pt = PageTable::new();
        let va = pt.map_next(1, PageFlags::Conventional);
        assert!(va >= PAGE_SIZE);
        assert!(pt.translate(0).is_err());
    }
}
