//! Set-associative cache model (tags + MESI state, LRU replacement).

use crate::LINE_BYTES;

/// Cache geometry and hit latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCfg {
    /// Total capacity in bytes.
    pub size_bytes: u32,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Hit latency in cycles.
    pub hit_latency: u64,
}

impl CacheCfg {
    /// The paper's L1 D-cache: 32 KB, 8-way, 64 B lines, 4-cycle hits.
    pub fn l1_paper() -> Self {
        CacheCfg {
            size_bytes: 32 * 1024,
            assoc: 8,
            hit_latency: 4,
        }
    }

    /// An L1 of `kb` kilobytes, keeping the paper's associativity and
    /// latency — the Figure 9 sweep (8 kB – 128 kB).
    pub fn l1_sized(kb: u32) -> Self {
        CacheCfg {
            size_bytes: kb * 1024,
            assoc: 8,
            hit_latency: 4,
        }
    }

    /// The paper's shared L2: 1.5 MB per core, 16-way, 35-cycle hits.
    pub fn l2_paper(cores: usize) -> Self {
        CacheCfg {
            size_bytes: (3 * 1024 * 1024 / 2) * cores as u32,
            assoc: 16,
            hit_latency: 35,
        }
    }

    fn n_sets(&self) -> u32 {
        (self.size_bytes / LINE_BYTES / self.assoc).max(1)
    }
}

/// MESI stable states; Invalid is represented by absence from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mesi {
    Modified,
    Exclusive,
    Shared,
}

/// What a cache line holds.
///
/// `Compressed` lines are the paper's compressed version-block lines: eight
/// `(data, version-offset, lock-offset)` entries for one O-structure. They
/// share the L1's sets and ways with ordinary data lines ("caches that are
/// at least two-way associative can store both compressed and uncompressed
/// versions of an O-structure at the same time"). Their tag is the physical
/// address of the O-structure's root word, which uniquely identifies the
/// version-block list; the entry payloads live in the O-structure manager.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineKind {
    Data,
    Compressed,
}

/// Metadata for one resident cache line.
#[derive(Debug, Clone, Copy)]
pub struct Line {
    /// Line-aligned physical address for `Data`; root word physical address
    /// for `Compressed`.
    pub tag: u32,
    pub kind: LineKind,
    pub state: Mesi,
}

/// A set-associative, LRU, write-back cache holding metadata only.
///
/// Each set's `Vec` is kept in recency order — coldest line at the front,
/// hottest at the back — so the eviction victim is simply the front element
/// and no per-line timestamp scan is needed.
pub struct Cache {
    cfg: CacheCfg,
    n_sets: u32,
    sets: Vec<Vec<Line>>,
    /// Resident-line count across all sets, maintained incrementally.
    resident: usize,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    pub fn new(cfg: CacheCfg) -> Self {
        let n_sets = cfg.n_sets();
        Cache {
            cfg,
            n_sets,
            sets: (0..n_sets).map(|_| Vec::new()).collect(),
            resident: 0,
        }
    }

    /// This cache's configuration.
    pub fn cfg(&self) -> &CacheCfg {
        &self.cfg
    }

    /// Hit latency in cycles.
    pub fn hit_latency(&self) -> u64 {
        self.cfg.hit_latency
    }

    /// Set index. Data lines index by line address; compressed lines index
    /// by their root *word* (O-structure identity), spreading structures
    /// whose root words share a line across sets — hardware indexes these
    /// by the version-block list's location, which is similarly spread.
    #[inline]
    fn set_of_kind(&self, tag: u32, kind: LineKind) -> usize {
        let idx = match kind {
            LineKind::Data => tag / LINE_BYTES,
            LineKind::Compressed => tag / 4,
        };
        (idx % self.n_sets) as usize
    }

    /// Looks a line up and refreshes its LRU position. Returns its state.
    pub fn probe(&mut self, tag: u32, kind: LineKind) -> Option<Mesi> {
        let set = self.set_of_kind(tag, kind);
        let lines = &mut self.sets[set];
        let idx = lines.iter().position(|l| l.tag == tag && l.kind == kind)?;
        let state = lines[idx].state;
        // Move to the back: most recently used.
        lines[idx..].rotate_left(1);
        Some(state)
    }

    /// Looks a line up without touching LRU state (used by coherence
    /// snoops, which must not perturb replacement decisions).
    pub fn peek(&self, tag: u32, kind: LineKind) -> Option<Mesi> {
        let set = self.set_of_kind(tag, kind);
        self.sets[set]
            .iter()
            .find(|l| l.tag == tag && l.kind == kind)
            .map(|l| l.state)
    }

    /// Changes the MESI state of a resident line. Panics if absent.
    pub fn set_state(&mut self, tag: u32, kind: LineKind, state: Mesi) {
        let set = self.set_of_kind(tag, kind);
        match self.sets[set]
            .iter_mut()
            .find(|l| l.tag == tag && l.kind == kind)
        {
            Some(line) => line.state = state,
            None => panic!("set_state on absent line"),
        }
    }

    /// Inserts a line, evicting the LRU victim of its set if full.
    /// Returns the victim, if any.
    ///
    /// If the line is already resident its state is updated in place.
    pub fn fill(&mut self, tag: u32, kind: LineKind, state: Mesi) -> Option<Line> {
        let set = self.set_of_kind(tag, kind);
        let ways = self.cfg.assoc as usize;
        let lines = &mut self.sets[set];
        if let Some(idx) = lines.iter().position(|l| l.tag == tag && l.kind == kind) {
            lines[idx].state = state;
            lines[idx..].rotate_left(1);
            return None;
        }
        let victim = if lines.len() >= ways {
            // The front of the recency order is the LRU victim.
            Some(lines.remove(0))
        } else {
            self.resident += 1;
            None
        };
        lines.push(Line { tag, kind, state });
        victim
    }

    /// Removes a line, returning it if it was resident.
    pub fn invalidate(&mut self, tag: u32, kind: LineKind) -> Option<Line> {
        let set = self.set_of_kind(tag, kind);
        let lines = &mut self.sets[set];
        let idx = lines.iter().position(|l| l.tag == tag && l.kind == kind)?;
        self.resident -= 1;
        // `remove`, not `swap_remove`: the order of the survivors *is* the
        // LRU order now.
        Some(lines.remove(idx))
    }

    /// Number of resident lines (all sets, both kinds).
    pub fn resident(&self) -> usize {
        self.resident
    }

    /// Drops every resident line (used when reconfiguring between runs).
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.resident = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways of 64 B lines.
        Cache::new(CacheCfg {
            size_bytes: 256,
            assoc: 2,
            hit_latency: 4,
        })
    }

    #[test]
    fn fill_then_probe_hits() {
        let mut c = tiny();
        assert_eq!(c.probe(0x0, LineKind::Data), None);
        assert!(c.fill(0x0, LineKind::Data, Mesi::Exclusive).is_none());
        assert_eq!(c.probe(0x0, LineKind::Data), Some(Mesi::Exclusive));
    }

    #[test]
    fn lru_eviction_picks_coldest() {
        let mut c = tiny();
        // Set 0 holds lines whose (addr/64) is even: 0x0, 0x80, 0x100...
        c.fill(0x000, LineKind::Data, Mesi::Shared);
        c.fill(0x080, LineKind::Data, Mesi::Shared);
        c.probe(0x000, LineKind::Data); // make 0x0 the hottest
        let victim = c.fill(0x100, LineKind::Data, Mesi::Shared).unwrap();
        assert_eq!(victim.tag, 0x080);
        assert_eq!(c.peek(0x000, LineKind::Data), Some(Mesi::Shared));
        assert_eq!(c.peek(0x100, LineKind::Data), Some(Mesi::Shared));
    }

    #[test]
    fn data_and_compressed_with_same_tag_coexist() {
        let mut c = tiny();
        c.fill(0x40, LineKind::Data, Mesi::Modified);
        c.fill(0x40, LineKind::Compressed, Mesi::Exclusive);
        assert_eq!(c.peek(0x40, LineKind::Data), Some(Mesi::Modified));
        assert_eq!(c.peek(0x40, LineKind::Compressed), Some(Mesi::Exclusive));
        assert_eq!(c.resident(), 2);
    }

    #[test]
    fn refill_updates_state_in_place() {
        let mut c = tiny();
        c.fill(0x0, LineKind::Data, Mesi::Shared);
        assert!(c.fill(0x0, LineKind::Data, Mesi::Modified).is_none());
        assert_eq!(c.peek(0x0, LineKind::Data), Some(Mesi::Modified));
        assert_eq!(c.resident(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.fill(0x0, LineKind::Data, Mesi::Shared);
        let line = c.invalidate(0x0, LineKind::Data).unwrap();
        assert_eq!(line.tag, 0x0);
        assert_eq!(c.probe(0x0, LineKind::Data), None);
        assert!(c.invalidate(0x0, LineKind::Data).is_none());
    }

    #[test]
    fn peek_does_not_touch_lru() {
        let mut c = tiny();
        c.fill(0x000, LineKind::Data, Mesi::Shared);
        c.fill(0x080, LineKind::Data, Mesi::Shared);
        c.peek(0x000, LineKind::Data); // must not refresh 0x000
        let victim = c.fill(0x100, LineKind::Data, Mesi::Shared).unwrap();
        assert_eq!(victim.tag, 0x000);
    }

    #[test]
    fn paper_l1_geometry() {
        let cfg = CacheCfg::l1_paper();
        assert_eq!(cfg.n_sets(), 64); // 32 KiB / 64 B / 8 ways
        let c = Cache::new(CacheCfg::l2_paper(32));
        assert_eq!(c.cfg().size_bytes, 48 * 1024 * 1024);
    }
}
