//! Bounded event capture shared by the observable layers.
//!
//! [`EventLog`] is the generic building block: a ring buffer that keeps the
//! most recent `capacity` events and counts what it had to overwrite. The
//! memory hierarchy logs [`MemEvent`]s into one; `osim-uarch` reuses the
//! same type for its manager events. Logging is observation-only — it
//! never changes simulated timing — and a disabled log costs one branch
//! per prospective event.

use crate::hierarchy::{AccessKind, Level};

/// A bounded, most-recent-first event buffer.
///
/// Disabled by default ([`EventLog::disabled`]); enabling happens by
/// replacing the log with [`EventLog::with_capacity`]. When full, `push`
/// overwrites the oldest record and increments [`EventLog::dropped`].
#[derive(Debug, Clone)]
pub struct EventLog<T> {
    enabled: bool,
    capacity: usize,
    records: Vec<T>,
    /// Index of the oldest record once the buffer has wrapped.
    head: usize,
    /// Events overwritten because the buffer was full.
    pub dropped: u64,
}

impl<T> Default for EventLog<T> {
    /// Same as [`EventLog::disabled`]: records nothing.
    fn default() -> Self {
        EventLog {
            enabled: false,
            capacity: 0,
            records: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }
}

impl<T: Clone> EventLog<T> {
    /// A log that records nothing.
    pub fn disabled() -> Self {
        EventLog {
            enabled: false,
            capacity: 0,
            records: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// A log keeping the most recent `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        EventLog {
            enabled: capacity > 0,
            capacity,
            records: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Whether `push` stores anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event (oldest is overwritten when full).
    pub fn push(&mut self, event: T) {
        if !self.enabled {
            return;
        }
        if self.records.len() < self.capacity {
            self.records.push(event);
        } else {
            self.records[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The retained events in arrival order (oldest first).
    pub fn records(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.records.len());
        out.extend_from_slice(&self.records[self.head..]);
        out.extend_from_slice(&self.records[..self.head]);
        out
    }
}

/// One observable memory-hierarchy event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemEvent {
    /// Simulated cycle stamped from the hierarchy clock (set by the
    /// issuing core via [`crate::Hierarchy::set_clock`]).
    pub cycle: u64,
    /// Core that triggered the event (for coherence drops: the victim).
    pub core: usize,
    /// Physical address involved.
    pub pa: u32,
    /// What happened.
    pub kind: MemEventKind,
}

/// Kinds of memory-hierarchy events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemEventKind {
    /// A demand access completed.
    Access {
        /// Read/write/no-allocate-read.
        kind: AccessKind,
        /// Level that satisfied it.
        level: Level,
        /// Cycles charged.
        latency: u64,
    },
    /// A compressed O-structure line was discarded on this core by another
    /// core's mutation of the same structure.
    CompressedCoherenceDrop,
    /// An L2 fill evicted a resident line (`pa` is the victim's tag; the
    /// victim is also back-invalidated from every L1).
    L2Evict {
        /// Victim was in MESI Modified (write-back to DRAM implied).
        dirty: bool,
    },
}

impl MemEvent {
    /// Short stable name for exporters.
    pub fn kind_name(&self) -> &'static str {
        match self.kind {
            MemEventKind::Access { level, .. } => match level {
                Level::L1 => "access_l1",
                Level::RemoteL1 => "access_remote_l1",
                Level::L2 => "access_l2",
                Level::Dram => "access_dram",
            },
            MemEventKind::CompressedCoherenceDrop => "coherence_drop",
            MemEventKind::L2Evict { dirty } => {
                if dirty {
                    "l2_evict_dirty"
                } else {
                    "l2_evict"
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log: EventLog<u32> = EventLog::disabled();
        log.push(1);
        assert!(!log.enabled());
        assert!(log.is_empty());
        assert_eq!(log.dropped, 0);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut log = EventLog::with_capacity(3);
        for i in 0..5u32 {
            log.push(i);
        }
        assert_eq!(log.records(), vec![2, 3, 4]);
        assert_eq!(log.len(), 3);
        assert_eq!(log.dropped, 2);
    }

    #[test]
    fn under_capacity_preserves_order() {
        let mut log = EventLog::with_capacity(10);
        log.push("a");
        log.push("b");
        assert_eq!(log.records(), vec!["a", "b"]);
        assert_eq!(log.dropped, 0);
    }
}
