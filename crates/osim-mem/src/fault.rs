//! Architectural faults raised by the simulated memory system.

/// A protection or addressing fault, as defined in §III of the paper
/// ("Addressing and protection").
///
/// In real hardware these would be delivered to the operating system; in the
/// simulator they surface as `Err` values so tests can assert that the
/// protection model actually rejects each class of illegal access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Virtual address has no page-table mapping.
    NotMapped { va: u32 },
    /// A conventional `LOAD`/`STORE` touched a page whose version-block bit
    /// is set (either a versioned-root page or a version-block pool page).
    ConventionalAccessToVersionedPage { va: u32 },
    /// An O-structure instruction referenced a page whose version-block bit
    /// is *not* set.
    VersionedAccessToConventionalPage { va: u32 },
    /// An O-structure access reached a version block whose head bit is
    /// clear, i.e. user code tried to enter a version-block list somewhere
    /// other than its head.
    NotListHead { pa: u32 },
    /// `UNLOCK-VERSION` for a version the task does not hold locked.
    NotLockOwner { va: u32, version: u32 },
    /// `STORE-VERSION` for a version that already exists (versions are
    /// write-once: "Once created, a version can be locked but not modified").
    VersionExists { va: u32, version: u32 },
    /// The version-block free list was exhausted and the OS refill trap also
    /// could not produce memory (simulated RAM budget exceeded).
    OutOfVersionBlocks,
    /// Misaligned O-structure root access (roots are 4-byte words).
    Misaligned { va: u32 },
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::NotMapped { va } => write!(f, "page fault: va {va:#010x} not mapped"),
            Fault::ConventionalAccessToVersionedPage { va } => {
                write!(f, "conventional access to versioned page at va {va:#010x}")
            }
            Fault::VersionedAccessToConventionalPage { va } => {
                write!(f, "versioned access to conventional page at va {va:#010x}")
            }
            Fault::NotListHead { pa } => {
                write!(f, "version block at pa {pa:#010x} is not a list head")
            }
            Fault::NotLockOwner { va, version } => {
                write!(
                    f,
                    "unlock of version {version} at va {va:#010x} by non-owner"
                )
            }
            Fault::VersionExists { va, version } => {
                write!(f, "store to existing version {version} at va {va:#010x}")
            }
            Fault::OutOfVersionBlocks => write!(f, "version block storage exhausted"),
            Fault::Misaligned { va } => write!(f, "misaligned O-structure access at {va:#010x}"),
        }
    }
}

impl std::error::Error for Fault {}
