//! A fast, deterministic hasher for the simulator's host-side maps.
//!
//! The default `std` hasher (SipHash) is DoS-resistant but costs tens of
//! nanoseconds per lookup, which dominates the hot paths of a simulator that
//! performs several map lookups per modeled memory access. Keys here are
//! small integers derived from simulated physical addresses — there is no
//! untrusted input to defend against — so we use the multiply-rotate scheme
//! popularized by Firefox and rustc ("FxHash").
//!
//! Host-side only: hashing affects *where* entries land in a table, never
//! what a lookup returns, and none of the simulator's maps are iterated in
//! a way that feeds observable output, so simulated results are unchanged.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher for small integer keys.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

/// The golden-ratio multiplier used by rustc's FxHash.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<(usize, u32), u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i as usize % 7, i), i * 3);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i as usize % 7, i)), Some(&(i * 3)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn set_roundtrip() {
        let mut s: FxHashSet<u32> = FxHashSet::default();
        assert!(s.insert(42));
        assert!(!s.insert(42));
        assert!(s.remove(&42));
        assert!(s.is_empty());
    }

    #[test]
    fn deterministic_across_instances() {
        // BuildHasherDefault has no random state: two hashers agree.
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let h1 = b.hash_one(0xdead_beef_u32);
        let h2 = FxBuildHasher::default().hash_one(0xdead_beef_u32);
        assert_eq!(h1, h2);
    }

    #[test]
    fn byte_slices_hash_consistently() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        assert_eq!(b.hash_one("abc"), b.hash_one("abc"));
        assert_ne!(b.hash_one("abc"), b.hash_one("abd"));
    }
}
