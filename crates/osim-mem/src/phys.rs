//! Sparse 32-bit simulated physical memory.

use crate::page::PAGE_SIZE;

/// Simulated physical memory.
///
/// Pages are allocated on demand by [`PhysMem::alloc_page`] and stored
/// sparsely, so a simulated "64 GB" machine (Table II) costs only what the
/// workload actually touches. All data in the simulation — workload heap
/// data, O-structure roots, and version blocks — lives in here, addressed by
/// physical address.
pub struct PhysMem {
    pages: Vec<Option<Box<[u8; PAGE_SIZE as usize]>>>,
    /// Next physical page number to hand out.
    next_ppn: u32,
    /// Upper bound on allocatable pages (simulated RAM size).
    max_pages: u32,
}

impl PhysMem {
    /// Creates a physical memory capped at `max_bytes` of backing RAM.
    pub fn new(max_bytes: u64) -> Self {
        let max_pages = (max_bytes / PAGE_SIZE as u64).min(1 << 20) as u32;
        PhysMem {
            pages: Vec::new(),
            next_ppn: 1, // keep ppn 0 unused so pa 0 can serve as null
            max_pages,
        }
    }

    /// Allocates a zeroed physical page, returning its page number.
    ///
    /// Returns `None` when the simulated RAM is exhausted.
    pub fn alloc_page(&mut self) -> Option<u32> {
        if self.next_ppn >= self.max_pages {
            return None;
        }
        let ppn = self.next_ppn;
        self.next_ppn += 1;
        if self.pages.len() <= ppn as usize {
            self.pages.resize_with(ppn as usize + 1, || None);
        }
        self.pages[ppn as usize] = Some(Box::new([0; PAGE_SIZE as usize]));
        Some(ppn)
    }

    /// Number of physical pages allocated so far.
    pub fn allocated_pages(&self) -> u32 {
        self.next_ppn - 1
    }

    #[inline]
    fn page(&self, pa: u32) -> &[u8; PAGE_SIZE as usize] {
        self.pages
            .get((pa / PAGE_SIZE) as usize)
            .and_then(|p| p.as_ref())
            .unwrap_or_else(|| panic!("access to unallocated physical page, pa {pa:#010x}"))
    }

    #[inline]
    fn page_mut(&mut self, pa: u32) -> &mut [u8; PAGE_SIZE as usize] {
        self.pages
            .get_mut((pa / PAGE_SIZE) as usize)
            .and_then(|p| p.as_mut())
            .unwrap_or_else(|| panic!("access to unallocated physical page, pa {pa:#010x}"))
    }

    /// Reads one byte at physical address `pa`.
    #[inline]
    pub fn read_u8(&self, pa: u32) -> u8 {
        self.page(pa)[(pa % PAGE_SIZE) as usize]
    }

    /// Writes one byte at physical address `pa`.
    #[inline]
    pub fn write_u8(&mut self, pa: u32, v: u8) {
        self.page_mut(pa)[(pa % PAGE_SIZE) as usize] = v;
    }

    /// Reads a little-endian `u32` at 4-byte-aligned physical address `pa`.
    #[inline]
    pub fn read_u32(&self, pa: u32) -> u32 {
        debug_assert_eq!(pa % 4, 0, "misaligned u32 read at {pa:#010x}");
        let off = (pa % PAGE_SIZE) as usize;
        let p = self.page(pa);
        u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]])
    }

    /// Writes a little-endian `u32` at 4-byte-aligned physical address `pa`.
    #[inline]
    pub fn write_u32(&mut self, pa: u32, v: u32) {
        debug_assert_eq!(pa % 4, 0, "misaligned u32 write at {pa:#010x}");
        let off = (pa % PAGE_SIZE) as usize;
        self.page_mut(pa)[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_rw() {
        let mut m = PhysMem::new(1 << 20);
        let ppn = m.alloc_page().unwrap();
        let base = ppn * PAGE_SIZE;
        assert_eq!(m.read_u32(base), 0, "fresh pages are zeroed");
        m.write_u32(base + 8, 0xdead_beef);
        assert_eq!(m.read_u32(base + 8), 0xdead_beef);
        m.write_u8(base + 1, 0x42);
        assert_eq!(m.read_u8(base + 1), 0x42);
    }

    #[test]
    fn pages_are_independent() {
        let mut m = PhysMem::new(1 << 20);
        let a = m.alloc_page().unwrap() * PAGE_SIZE;
        let b = m.alloc_page().unwrap() * PAGE_SIZE;
        m.write_u32(a, 1);
        m.write_u32(b, 2);
        assert_eq!(m.read_u32(a), 1);
        assert_eq!(m.read_u32(b), 2);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut m = PhysMem::new(3 * PAGE_SIZE as u64);
        assert!(m.alloc_page().is_some());
        assert!(m.alloc_page().is_some());
        assert!(
            m.alloc_page().is_none(),
            "ppn 0 is reserved, so 3 pages give 2 allocs"
        );
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn unallocated_access_panics() {
        let m = PhysMem::new(1 << 20);
        m.read_u32(0x5000);
    }
}
