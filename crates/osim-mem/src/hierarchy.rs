//! The cache hierarchy: per-core L1s, shared inclusive L2, DRAM, and
//! invalidation-based coherence.

use crate::cache::{Cache, CacheCfg, LineKind, Mesi};
use crate::events::{EventLog, MemEvent, MemEventKind};
use crate::fxhash::FxHashMap;
use crate::line_of;
use crate::stats::{MemHists, MemStats};

/// Which L1s hold a copy of one line, as a core bitmask, plus the single
/// core (if any) holding it Modified. A pure host-side acceleration
/// structure: it mirrors the per-core caches exactly so coherence actions
/// visit only actual sharers instead of scanning every core.
#[derive(Debug, Clone, Copy, Default)]
struct DirEntry {
    sharers: u64,
    dirty: Option<usize>,
}

impl DirEntry {
    fn is_empty(&self) -> bool {
        self.sharers == 0
    }
}

/// Calls `f` for each set bit of `mask`, in ascending core order — the
/// same order the previous `0..cores` scans visited cores in.
fn for_each_core(mask: u64, mut f: impl FnMut(usize)) {
    let mut m = mask;
    while m != 0 {
        let c = m.trailing_zeros() as usize;
        f(c);
        m &= m - 1;
    }
}

/// Full hierarchy configuration.
#[derive(Debug, Clone)]
pub struct HierarchyCfg {
    /// Number of cores (each gets a private L1 D-cache).
    pub cores: usize,
    /// L1 geometry/latency.
    pub l1: CacheCfg,
    /// Shared L2 geometry/latency. The paper scales L2 capacity with the
    /// core count (1.5 MB × #cores); use [`CacheCfg::l2_paper`].
    pub l2: CacheCfg,
    /// DRAM access latency in cycles (60 ns at 2 GHz = 120 cycles).
    pub dram_latency: u64,
}

impl HierarchyCfg {
    /// The configuration of Table II for `cores` cores.
    pub fn paper(cores: usize) -> Self {
        HierarchyCfg {
            cores,
            l1: CacheCfg::l1_paper(),
            l2: CacheCfg::l2_paper(cores),
            dram_latency: 120,
        }
    }
}

/// Where an access was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Local L1 hit.
    L1,
    /// Dirty data forwarded from another core's L1.
    RemoteL1,
    /// Shared L2 hit.
    L2,
    /// Main memory.
    Dram,
}

/// Kind of demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Demand load.
    Read,
    /// Demand store (requires exclusive ownership).
    Write,
    /// Load that must not allocate in the local L1 — used for the
    /// intermediate blocks of a version-list walk ("to avoid cache
    /// pollution, only the block that holds the requested version is
    /// inserted into the cache"). Still allocates in the shared L2.
    ReadNoAlloc,
}

/// Outcome of a hierarchy access.
#[derive(Debug, Clone)]
pub struct AccessResult {
    /// Latency in cycles.
    pub latency: u64,
    /// Level that satisfied the access.
    pub level: Level,
    /// Compressed O-structure lines (identified by `(core, root_pa)`) that
    /// were evicted or invalidated as a side effect. The O-structure manager
    /// must drop its payloads for these.
    pub dropped_compressed: Vec<(usize, u32)>,
}

/// Per-core L1s over a shared inclusive L2 over DRAM.
pub struct Hierarchy {
    cfg: HierarchyCfg,
    l1s: Vec<Cache>,
    l2: Cache,
    /// Counters; `reset` between warm-up and measurement phases.
    pub stats: MemStats,
    /// Latency distributions; `reset` alongside [`Hierarchy::stats`].
    pub hists: MemHists,
    /// Observable event stream (disabled by default; enable by replacing
    /// with [`EventLog::with_capacity`]). Observation-only: logging never
    /// changes access latencies.
    pub events: EventLog<MemEvent>,
    /// Simulated cycle stamped onto events; the hierarchy has no clock of
    /// its own, so issuing cores publish theirs via [`Hierarchy::set_clock`].
    clock: u64,
    /// L1 presence directory for data lines, keyed by line address.
    data_dir: FxHashMap<u32, DirEntry>,
    /// L1 presence directory for compressed lines, keyed by root word PA.
    comp_dir: FxHashMap<u32, u64>,
}

impl Hierarchy {
    /// Builds an empty hierarchy.
    pub fn new(cfg: HierarchyCfg) -> Self {
        assert!(
            cfg.cores <= 64,
            "the L1 presence directory packs sharers into a u64 core mask"
        );
        let l1s: Vec<Cache> = (0..cfg.cores).map(|_| Cache::new(cfg.l1)).collect();
        let l2 = Cache::new(cfg.l2);
        let stats = MemStats::new(cfg.cores);
        // The directories track lines resident in some L1, so their
        // population is bounded by the total L1 line count. Pre-sizing to
        // that bound keeps the hot demand-access path free of rehashes.
        let l1_lines_total = cfg.cores * (cfg.l1.size_bytes / crate::LINE_BYTES) as usize;
        Hierarchy {
            cfg,
            l1s,
            l2,
            stats,
            hists: MemHists::default(),
            events: EventLog::disabled(),
            clock: 0,
            data_dir: FxHashMap::with_capacity_and_hasher(l1_lines_total, Default::default()),
            comp_dir: FxHashMap::with_capacity_and_hasher(l1_lines_total, Default::default()),
        }
    }

    /// Records that `core`'s L1 now holds `line` (data) in `state`. Any
    /// victim the fill evicted must be removed separately via
    /// [`Hierarchy::dir_remove_victim`].
    fn dir_add_data(&mut self, core: usize, line: u32, state: Mesi) {
        let e = self.data_dir.entry(line).or_default();
        e.sharers |= 1 << core;
        if state == Mesi::Modified {
            e.dirty = Some(core);
        } else if e.dirty == Some(core) {
            e.dirty = None;
        }
    }

    /// Removes `core` from the directory entry of an evicted/invalidated
    /// line (either kind).
    fn dir_remove_victim(&mut self, core: usize, victim: &crate::cache::Line) {
        match victim.kind {
            LineKind::Data => self.dir_remove_data(core, victim.tag),
            LineKind::Compressed => self.dir_remove_comp(core, victim.tag),
        }
    }

    fn dir_remove_data(&mut self, core: usize, line: u32) {
        if let Some(e) = self.data_dir.get_mut(&line) {
            e.sharers &= !(1 << core);
            if e.dirty == Some(core) {
                e.dirty = None;
            }
            if e.is_empty() {
                self.data_dir.remove(&line);
            }
        }
    }

    fn dir_set_state_data(&mut self, core: usize, line: u32, state: Mesi) {
        if let Some(e) = self.data_dir.get_mut(&line) {
            if state == Mesi::Modified {
                e.dirty = Some(core);
            } else if e.dirty == Some(core) {
                e.dirty = None;
            }
        }
    }

    fn dir_add_comp(&mut self, core: usize, root_pa: u32) {
        *self.comp_dir.entry(root_pa).or_default() |= 1 << core;
    }

    fn dir_remove_comp(&mut self, core: usize, root_pa: u32) {
        if let Some(m) = self.comp_dir.get_mut(&root_pa) {
            *m &= !(1 << core);
            if *m == 0 {
                self.comp_dir.remove(&root_pa);
            }
        }
    }

    /// Sharer mask of a data line, excluding `core`.
    fn data_sharers_except(&self, core: usize, line: u32) -> u64 {
        self.data_dir
            .get(&line)
            .map_or(0, |e| e.sharers & !(1 << core))
    }

    /// The configuration this hierarchy was built with.
    pub fn cfg(&self) -> &HierarchyCfg {
        &self.cfg
    }

    /// Publishes the current simulated cycle for event timestamps.
    pub fn set_clock(&mut self, cycle: u64) {
        self.clock = cycle;
    }

    /// The most recently published simulated cycle.
    pub fn clock(&self) -> u64 {
        self.clock
    }

    /// Performs a demand access by `core` to physical address `pa`.
    ///
    /// Updates MESI state, fills/evicts lines and returns the latency. The
    /// access is for a *data* line; compressed O-structure lines have their
    /// own entry points below.
    pub fn access(&mut self, core: usize, pa: u32, kind: AccessKind) -> AccessResult {
        let line = line_of(pa);
        let mut dropped = Vec::new();
        let is_write = kind == AccessKind::Write;

        if let Some(state) = self.l1s[core].probe(line, LineKind::Data) {
            // L1 hit.
            if is_write {
                self.stats.l1_write_hits[core] += 1;
                if state == Mesi::Shared {
                    // Upgrade: invalidate every other copy.
                    self.stats.upgrades += 1;
                    self.invalidate_others(core, line);
                }
                self.l1s[core].set_state(line, LineKind::Data, Mesi::Modified);
                self.dir_set_state_data(core, line, Mesi::Modified);
            } else {
                self.stats.l1_read_hits[core] += 1;
            }
            self.hists.l1_access.record(self.cfg.l1.hit_latency);
            if is_write && state == Mesi::Shared {
                self.hists.coherence_delay.record(self.cfg.l1.hit_latency);
            }
            self.events.push(MemEvent {
                cycle: self.clock,
                core,
                pa,
                kind: MemEventKind::Access {
                    kind,
                    level: Level::L1,
                    latency: self.cfg.l1.hit_latency,
                },
            });
            return AccessResult {
                latency: self.cfg.l1.hit_latency,
                level: Level::L1,
                dropped_compressed: dropped,
            };
        }

        // L1 miss.
        if is_write {
            self.stats.l1_write_misses[core] += 1;
        } else {
            self.stats.l1_read_misses[core] += 1;
        }

        // Snoop for a dirty copy — the directory knows the (unique) owner.
        let dirty_owner = self
            .data_dir
            .get(&line)
            .and_then(|e| e.dirty)
            .filter(|&c| c != core);

        let (level, latency) = if let Some(owner) = dirty_owner {
            // Cache-to-cache forward; the paper notes LLC and remote-L1
            // latencies are comparable, so we charge the L2 hit latency.
            self.stats.remote_forwards += 1;
            // Write the dirty data back into the L2 (stays inclusive).
            if let Some(victim) = self.l2.fill(line, LineKind::Data, Mesi::Modified) {
                self.push_l2_evict(core, &victim);
            }
            if is_write {
                self.l1s[owner].invalidate(line, LineKind::Data);
                self.dir_remove_data(owner, line);
                self.stats.invalidations += 1;
            } else {
                self.l1s[owner].set_state(line, LineKind::Data, Mesi::Shared);
                self.dir_set_state_data(owner, line, Mesi::Shared);
            }
            (Level::RemoteL1, self.cfg.l2.hit_latency)
        } else if self.l2.probe(line, LineKind::Data).is_some() {
            if is_write {
                if self.data_sharers_except(core, line) != 0 {
                    self.hists.coherence_delay.record(self.cfg.l2.hit_latency);
                }
                self.invalidate_others(core, line);
            }
            (Level::L2, self.cfg.l2.hit_latency)
        } else {
            // DRAM fill; allocate in L2 (inclusive).
            self.stats.l2_misses += 1;
            if let Some(victim) = self.l2.fill(line, LineKind::Data, Mesi::Exclusive) {
                self.push_l2_evict(core, &victim);
                self.back_invalidate(victim.tag, &mut dropped);
            }
            (Level::Dram, self.cfg.dram_latency)
        };
        if level == Level::L2 {
            self.stats.l2_hits += 1;
        }
        self.hists.l2_access.record(latency);
        if level == Level::RemoteL1 {
            self.hists.coherence_delay.record(latency);
        }

        // Fill the local L1 unless the caller asked not to pollute it.
        if kind != AccessKind::ReadNoAlloc {
            let others = self.data_sharers_except(core, line);
            let others_share = others != 0;
            let state = if is_write {
                Mesi::Modified
            } else if others_share {
                Mesi::Shared
            } else {
                Mesi::Exclusive
            };
            // Keep peers coherent: a read next to sharers demotes everyone.
            if !is_write && others_share {
                for_each_core(others, |c| {
                    self.l1s[c].set_state(line, LineKind::Data, Mesi::Shared);
                    self.dir_set_state_data(c, line, Mesi::Shared);
                });
            }
            if let Some(victim) = self.l1s[core].fill(line, LineKind::Data, state) {
                if victim.kind == LineKind::Compressed {
                    dropped.push((core, victim.tag));
                }
                self.dir_remove_victim(core, &victim);
            }
            self.dir_add_data(core, line, state);
        }

        self.events.push(MemEvent {
            cycle: self.clock,
            core,
            pa,
            kind: MemEventKind::Access {
                kind,
                level,
                latency,
            },
        });
        AccessResult {
            latency,
            level,
            dropped_compressed: dropped,
        }
    }

    /// Installs the line containing `pa` into `core`'s L1 without charging
    /// latency or demand-access statistics.
    ///
    /// Used for the version block that *matched* during a full list walk:
    /// the walk already paid for fetching it (as a no-allocate read), and
    /// the paper's pollution rule says exactly this one block is then
    /// inserted into the cache. Returns compressed lines evicted by the
    /// fill.
    pub fn fill_local(&mut self, core: usize, pa: u32) -> Vec<(usize, u32)> {
        let line = line_of(pa);
        let mut dropped = Vec::new();
        if self.l1s[core].peek(line, LineKind::Data).is_some() {
            return dropped;
        }
        let others_share = self.data_sharers_except(core, line) != 0;
        let state = if others_share {
            Mesi::Shared
        } else {
            Mesi::Exclusive
        };
        if let Some(victim) = self.l1s[core].fill(line, LineKind::Data, state) {
            if victim.kind == LineKind::Compressed {
                dropped.push((core, victim.tag));
            }
            self.dir_remove_victim(core, &victim);
        }
        self.dir_add_data(core, line, state);
        dropped
    }

    /// Records an L2 fill victim (observation only; never changes timing).
    fn push_l2_evict(&mut self, core: usize, victim: &crate::cache::Line) {
        self.events.push(MemEvent {
            cycle: self.clock,
            core,
            pa: victim.tag,
            kind: MemEventKind::L2Evict {
                dirty: victim.state == Mesi::Modified,
            },
        });
    }

    /// Invalidates every remote L1 copy of `line` (write upgrade / RFO).
    fn invalidate_others(&mut self, core: usize, line: u32) {
        let others = self.data_sharers_except(core, line);
        for_each_core(others, |c| {
            if self.l1s[c].invalidate(line, LineKind::Data).is_some() {
                self.stats.invalidations += 1;
            }
            self.dir_remove_data(c, line);
        });
    }

    /// Enforces inclusion: when the L2 evicts a line, every L1 copy goes too.
    fn back_invalidate(&mut self, line: u32, dropped: &mut Vec<(usize, u32)>) {
        let mask = self.data_dir.get(&line).map_or(0, |e| e.sharers);
        for_each_core(mask, |c| {
            if self.l1s[c].invalidate(line, LineKind::Data).is_some() {
                self.stats.back_invalidations += 1;
            }
            self.dir_remove_data(c, line);
        });
        let _ = dropped; // compressed lines are not L2-backed; nothing to drop
    }

    // ------------------------------------------------------------------
    // Compressed O-structure lines (§III-A). Tagged by the physical address
    // of the O-structure's root word; payloads live in `osim-uarch`.
    // ------------------------------------------------------------------

    /// Probes `core`'s L1 for the compressed line of the O-structure rooted
    /// at `root_pa`. Returns true on hit (and counts it).
    pub fn compressed_probe(&mut self, core: usize, root_pa: u32) -> bool {
        let hit = self.l1s[core]
            .probe(root_pa, LineKind::Compressed)
            .is_some();
        if hit {
            self.stats.compressed_hits += 1;
        } else {
            self.stats.compressed_misses += 1;
        }
        hit
    }

    /// Allocates (or refreshes) the compressed line for `root_pa` in
    /// `core`'s L1, reporting any compressed victim that had to be evicted.
    pub fn compressed_fill(&mut self, core: usize, root_pa: u32) -> Vec<(usize, u32)> {
        let mut dropped = Vec::new();
        if let Some(victim) = self.l1s[core].fill(root_pa, LineKind::Compressed, Mesi::Exclusive) {
            if victim.kind == LineKind::Compressed {
                dropped.push((core, victim.tag));
            }
            self.dir_remove_victim(core, &victim);
        }
        self.dir_add_comp(core, root_pa);
        dropped
    }

    /// Drops `core`'s own compressed line for `root_pa`, if resident.
    pub fn compressed_drop(&mut self, core: usize, root_pa: u32) -> bool {
        let hit = self.l1s[core]
            .invalidate(root_pa, LineKind::Compressed)
            .is_some();
        if hit {
            self.dir_remove_comp(core, root_pa);
        }
        hit
    }

    /// Coherence broadcast: a version store/lock/unlock by `core` modified
    /// the O-structure rooted at `root_pa`, so every *other* core's
    /// compressed line for it is discarded (the paper's "simplest course of
    /// action"). Returns the dropped `(core, root_pa)` pairs.
    pub fn compressed_invalidate_others(&mut self, core: usize, root_pa: u32) -> Vec<(usize, u32)> {
        let mut dropped = Vec::new();
        let mask = self
            .comp_dir
            .get(&root_pa)
            .map_or(0, |m| m & !(1u64 << core));
        for_each_core(mask, |c| {
            if self.l1s[c]
                .invalidate(root_pa, LineKind::Compressed)
                .is_some()
            {
                self.stats.compressed_coherence_drops += 1;
                self.events.push(MemEvent {
                    cycle: self.clock,
                    core: c,
                    pa: root_pa,
                    kind: MemEventKind::CompressedCoherenceDrop,
                });
                dropped.push((c, root_pa));
            }
            self.dir_remove_comp(c, root_pa);
        });
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hier(cores: usize) -> Hierarchy {
        Hierarchy::new(HierarchyCfg::paper(cores))
    }

    #[test]
    fn cold_read_goes_to_dram_then_hits_l1() {
        let mut h = hier(2);
        let r = h.access(0, 0x1000, AccessKind::Read);
        assert_eq!(r.level, Level::Dram);
        assert_eq!(r.latency, 120);
        let r = h.access(0, 0x1004, AccessKind::Read); // same line
        assert_eq!(r.level, Level::L1);
        assert_eq!(r.latency, 4);
        assert_eq!(h.stats.l1_read_hits[0], 1);
        assert_eq!(h.stats.l1_read_misses[0], 1);
    }

    #[test]
    fn second_core_hits_shared_l2() {
        let mut h = hier(2);
        h.access(0, 0x1000, AccessKind::Read);
        let r = h.access(1, 0x1000, AccessKind::Read);
        assert_eq!(r.level, Level::L2);
        assert_eq!(r.latency, 35);
    }

    #[test]
    fn dirty_remote_line_is_forwarded() {
        let mut h = hier(2);
        h.access(0, 0x1000, AccessKind::Read);
        h.access(0, 0x1000, AccessKind::Write); // E -> M locally
        let r = h.access(1, 0x1000, AccessKind::Read);
        assert_eq!(r.level, Level::RemoteL1);
        assert_eq!(h.stats.remote_forwards, 1);
        // Both ends are now Shared; a write by core 1 must invalidate core 0.
        let r = h.access(1, 0x1000, AccessKind::Write);
        assert_eq!(r.level, Level::L1);
        assert!(h.stats.upgrades >= 1);
        assert!(h.stats.invalidations >= 1);
        // Core 0 lost its copy.
        let r = h.access(0, 0x1000, AccessKind::Read);
        assert_ne!(r.level, Level::L1);
    }

    #[test]
    fn write_miss_invalidates_remote_dirty_owner() {
        let mut h = hier(2);
        h.access(0, 0x2000, AccessKind::Write); // core 0 owns dirty
        let r = h.access(1, 0x2000, AccessKind::Write);
        assert_eq!(r.level, Level::RemoteL1);
        assert_eq!(h.stats.invalidations, 1);
        // Core 1 now owns it exclusively.
        let r = h.access(1, 0x2000, AccessKind::Write);
        assert_eq!(r.level, Level::L1);
    }

    #[test]
    fn read_no_alloc_skips_l1() {
        let mut h = hier(1);
        let r = h.access(0, 0x3000, AccessKind::ReadNoAlloc);
        assert_eq!(r.level, Level::Dram);
        // Not in L1: the next read hits L2 (which was filled), not L1.
        let r = h.access(0, 0x3000, AccessKind::Read);
        assert_eq!(r.level, Level::L2);
        let r = h.access(0, 0x3000, AccessKind::Read);
        assert_eq!(r.level, Level::L1);
    }

    #[test]
    fn l1_capacity_eviction() {
        // 32 KB, 8-way, 64 sets: 9 lines mapping to the same set evict one.
        let mut h = hier(1);
        for i in 0..9u32 {
            // Stride of 64 sets * 64 B = 4096 keeps the set index equal.
            h.access(0, i * 4096, AccessKind::Read);
        }
        let r = h.access(0, 0, AccessKind::Read);
        assert_ne!(r.level, Level::L1, "LRU line must have been evicted");
    }

    #[test]
    fn compressed_lines_probe_fill_drop() {
        let mut h = hier(2);
        let root = 0x4010;
        assert!(!h.compressed_probe(0, root));
        h.compressed_fill(0, root);
        assert!(h.compressed_probe(0, root));
        // Other cores do not see it.
        assert!(!h.compressed_probe(1, root));
        h.compressed_fill(1, root);
        // A store by core 0 invalidates core 1's copy only.
        let dropped = h.compressed_invalidate_others(0, root);
        assert_eq!(dropped, vec![(1, root)]);
        assert!(h.compressed_probe(0, root));
        assert!(!h.compressed_probe(1, root));
        assert_eq!(h.stats.compressed_coherence_drops, 1);
    }

    #[test]
    fn compressed_and_data_share_l1_capacity() {
        let mut h = hier(1);
        // Fill one set with 8 data lines, then a compressed fill evicts one.
        for i in 0..8u32 {
            h.access(0, i * 4096, AccessKind::Read);
        }
        let dropped = h.compressed_fill(0, 0); // maps to set 0 as well
        assert!(dropped.is_empty(), "victim was a data line, not compressed");
        assert!(h.compressed_probe(0, 0), "compressed line is resident");
        // The victim was the LRU data line (0x0); the hottest one survives.
        let r = h.access(0, 7 * 4096, AccessKind::Read);
        assert_eq!(r.level, Level::L1);
        let r = h.access(0, 0, AccessKind::Read);
        assert_ne!(r.level, Level::L1, "LRU data line was evicted");
    }

    #[test]
    fn event_log_captures_accesses_and_coherence_drops() {
        let mut h = hier(2);
        h.events = EventLog::with_capacity(64);
        h.set_clock(17);
        h.access(0, 0x1000, AccessKind::Read);
        h.set_clock(42);
        h.access(0, 0x1000, AccessKind::Read);
        let events = h.events.records();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].cycle, 17);
        assert_eq!(events[0].kind_name(), "access_dram");
        assert_eq!(events[1].cycle, 42);
        assert_eq!(events[1].kind_name(), "access_l1");
        // Coherence drops name their victim core.
        h.compressed_fill(1, 0x4000);
        h.compressed_invalidate_others(0, 0x4000);
        let events = h.events.records();
        let drop = events.last().unwrap();
        assert_eq!(drop.kind, MemEventKind::CompressedCoherenceDrop);
        assert_eq!(drop.core, 1);
        assert_eq!(drop.pa, 0x4000);
    }

    #[test]
    fn event_logging_does_not_change_latency() {
        let mut quiet = hier(1);
        let mut loud = hier(1);
        loud.events = EventLog::with_capacity(4);
        for i in 0..32u32 {
            let a = quiet.access(0, i * 256, AccessKind::Read);
            let b = loud.access(0, i * 256, AccessKind::Read);
            assert_eq!(a.latency, b.latency);
        }
    }

    #[test]
    fn determinism() {
        let mut a = hier(4);
        let mut b = hier(4);
        let seq: Vec<(usize, u32, AccessKind)> = (0..2000)
            .map(|i| {
                let core = (i * 7) % 4;
                let pa = ((i * 193) % 4096) as u32 * 64;
                let kind = match i % 3 {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    _ => AccessKind::ReadNoAlloc,
                };
                (core, pa, kind)
            })
            .collect();
        for &(c, pa, k) in &seq {
            let ra = a.access(c, pa, k);
            let rb = b.access(c, pa, k);
            assert_eq!(ra.latency, rb.latency);
            assert_eq!(ra.level, rb.level);
        }
    }
}
