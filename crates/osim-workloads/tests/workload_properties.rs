//! Cross-workload properties: protocol ablation equivalence, garbage
//! collection under parallel load, scaling sanity, and statistic plumbing.

use osim_cpu::MachineCfg;
use osim_uarch::GcConfig;
use osim_workloads::harness::DsCfg;
use osim_workloads::rbtree::LockHold;
use osim_workloads::{btree, hashtable, levenshtein, linked_list, matmul, rbtree};

fn cfg(initial: usize, ops: usize, rpw: u32, seed: u64) -> DsCfg {
    DsCfg {
        initial,
        ops,
        reads_per_write: rpw,
        scan_range: 0,
        key_space: initial as u32 * 4,
        seed,
        insert_only: false,
    }
}

/// Both protocol variants (Fig. 1-faithful per-pass renames vs lock-only
/// ordering) compute the same results; renames only change timing and
/// version churn.
#[test]
fn rename_ablation_is_semantically_equivalent() {
    let c = cfg(60, 60, 2, 77);
    let with = linked_list::run_versioned_with(MachineCfg::paper(4), &c, true);
    let without = linked_list::run_versioned_with(MachineCfg::paper(4), &c, false);
    with.assert_ok();
    without.assert_ok();
    assert!(
        with.ostats.allocated_blocks > 4 * without.ostats.allocated_blocks,
        "renames churn versions: {} vs {}",
        with.ostats.allocated_blocks,
        without.ostats.allocated_blocks
    );
}

/// A tight free list forces the collector to run *during* a parallel
/// hand-over-hand workload, and the results still validate — on-the-fly
/// collection is invisible to the program.
#[test]
fn gc_runs_under_parallel_load_without_corruption() {
    let mut m = MachineCfg::paper(4);
    m.omgr.initial_free_blocks = 1024;
    m.omgr.refill_blocks = 512;
    m.omgr.gc = GcConfig { watermark: 100_000 }; // collect eagerly
    let c = cfg(60, 120, 1, 13);
    let r = linked_list::run_versioned_with(m, &c, true);
    r.assert_ok();
    assert!(r.ostats.gc_phases > 0, "collector must have run");
    assert!(r.ostats.reclaimed_blocks > 0);
}

/// The write-intensive mixes allocate more versions than read-intensive
/// ones (writes create versions; snapshot reads do not).
#[test]
fn writes_create_versions_reads_do_not() {
    let ri = btree::run_versioned(MachineCfg::paper(4), &cfg(60, 80, 4, 5));
    let wi = btree::run_versioned(MachineCfg::paper(4), &cfg(60, 80, 1, 5));
    ri.assert_ok();
    wi.assert_ok();
    assert!(wi.ostats.stores > ri.ostats.stores);
}

/// Adding cores never makes the versioned runs slower on the regular
/// (data-parallel) benchmarks.
#[test]
fn regular_benchmarks_scale_monotonically() {
    let mat = matmul::MatmulCfg { n: 12, seed: 3 };
    let lev = levenshtein::LevCfg { len: 40, seed: 3 };
    let mut last_mat = u64::MAX;
    let mut last_lev = u64::MAX;
    for cores in [1usize, 2, 4, 8] {
        let rm = matmul::run_versioned(MachineCfg::paper(cores), &mat);
        rm.assert_ok();
        assert!(rm.cycles <= last_mat, "matmul slowed at {cores} cores");
        last_mat = rm.cycles;
        let rl = levenshtein::run_versioned(MachineCfg::paper(cores), &lev);
        rl.assert_ok();
        assert!(rl.cycles <= last_lev, "levenshtein slowed at {cores} cores");
        last_lev = rl.cycles;
    }
}

/// Direct (compressed-line) accesses must dominate full lookups on a
/// single core, where nothing invalidates the lines — the paper's "direct
/// version accesses outnumber traversals".
#[test]
fn direct_access_dominates_on_one_core() {
    let r = linked_list::run_versioned(MachineCfg::paper(1), &cfg(80, 80, 4, 21));
    r.assert_ok();
    assert!(
        r.ostats.direct_hits * 2 > r.ostats.full_lookups,
        "direct {} vs full {}",
        r.ostats.direct_hits,
        r.ostats.full_lookups
    );
}

/// The hash table's order cell stalls mutators, not readers (§IV-D).
#[test]
fn hashtable_readers_stall_less_than_mutators() {
    let wi = hashtable::run_versioned(MachineCfg::paper(8), &cfg(200, 128, 1, 9));
    wi.assert_ok();
    assert!(wi.cpu.root_loads > 0);
    assert!(
        wi.cpu.root_stall_rate() > 0.3,
        "{}",
        wi.cpu.root_stall_rate()
    );
}

/// LockHold policies agree on results (the ablation changes timing only).
#[test]
fn rbtree_lock_hold_policies_agree() {
    let c = cfg(60, 60, 2, 41);
    let long = rbtree::run_versioned_with(MachineCfg::paper(4), &c, LockHold::Long);
    let short = rbtree::run_versioned_with(MachineCfg::paper(4), &c, LockHold::Short);
    long.assert_ok();
    short.assert_ok();
}

/// Machines of different core counts produce identical *results* for the
/// same workload (determinism is per-machine; correctness is universal).
#[test]
fn results_are_core_count_independent() {
    let c = cfg(50, 60, 2, 31);
    for cores in [1usize, 2, 4, 8] {
        btree::run_versioned(MachineCfg::paper(cores), &c).assert_ok();
    }
}

/// Unversioned baselines never touch the O-structure machinery.
#[test]
fn baselines_issue_no_versioned_traffic() {
    let c = cfg(50, 40, 4, 61);
    for r in [
        linked_list::run_unversioned(MachineCfg::paper(1), &c),
        btree::run_unversioned(MachineCfg::paper(1), &c),
        hashtable::run_unversioned(MachineCfg::paper(1), &c),
    ] {
        r.assert_ok();
        assert_eq!(r.cpu.versioned_ops, 0);
        assert_eq!(r.ostats.stores, 0);
    }
}
