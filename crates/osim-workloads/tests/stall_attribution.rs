//! Stall-cause attribution invariants. The per-cause split is maintained
//! by a single charge point in the task context, so across workloads,
//! seeds, mixes, and core counts it must sum *exactly* to the aggregate
//! stall-cycle counter — and so must the per-core split.

use proptest::prelude::*;

use osim_cpu::MachineCfg;
use osim_workloads::harness::{DsCfg, DsResult};
use osim_workloads::{btree, linked_list};

fn cfg(initial: usize, ops: usize, rpw: u32, seed: u64) -> DsCfg {
    DsCfg {
        initial,
        ops,
        reads_per_write: rpw,
        scan_range: 0,
        key_space: initial as u32 * 4,
        seed,
        insert_only: false,
    }
}

fn assert_attribution(r: &DsResult, what: &str) {
    r.assert_ok();
    let by_cause: u64 = r.cpu.stall_by_cause.iter().sum();
    assert_eq!(
        by_cause, r.cpu.stall_cycles,
        "{what}: per-cause stall split does not sum to the aggregate"
    );
    let per_core: u64 = r.cpu.per_core.iter().map(|c| c.stall_cycles).sum();
    assert_eq!(
        per_core, r.cpu.stall_cycles,
        "{what}: per-core stall split does not sum to the aggregate"
    );
}

/// A contended parallel run actually stalls, and every stalled cycle is
/// attributed to some cause.
#[test]
fn contended_run_attributes_its_stalls() {
    let r = linked_list::run_versioned(MachineCfg::paper(8), &cfg(40, 120, 1, 42));
    assert_attribution(&r, "linked list 8c");
    assert!(r.cpu.stall_cycles > 0, "contention must stall");
    assert!(
        r.cpu.stall_by_cause.iter().any(|&c| c > 0),
        "stalls must name a cause"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn linked_list_stall_split_sums_exactly(
        cores in 1usize..=8,
        ops in 30usize..90,
        rpw in 1u32..=4,
        seed in 0u64..1000,
    ) {
        let r = linked_list::run_versioned(MachineCfg::paper(cores), &cfg(40, ops, rpw, seed));
        assert_attribution(&r, "linked list");
    }

    #[test]
    fn btree_stall_split_sums_exactly(
        cores in 1usize..=8,
        ops in 30usize..90,
        rpw in 1u32..=4,
        seed in 0u64..1000,
    ) {
        let r = btree::run_versioned(MachineCfg::paper(cores), &cfg(48, ops, rpw, seed));
        assert_attribution(&r, "btree");
    }
}
