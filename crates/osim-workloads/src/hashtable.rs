//! Chained hash table (§IV-D).
//!
//! Buckets are sorted singly-linked chains of versioned `next` cells, with
//! one versioned *order cell* serving as the table's root: every mutator
//! enters it in task order with `LOCK-LOAD-VERSION` and holds it until it
//! has locked its bucket's head (hand-over-hand from the order cell into
//! the bucket); readers pass it with a plain `LOAD-VERSION`. This is the
//! "root ordering" the paper identifies as the hash-table bottleneck —
//! "on write-intensive hash tables, up to 85% of versioned root loads are
//! stalled. However, readers do not lock the root".
//!
//! Node layout (conventional, 8 bytes): `+0` key, `+4` va of the node's
//! versioned `next` cell. Bucket head cells are a contiguous run of
//! versioned root words.

use std::cell::RefCell;
use std::rc::Rc;

use osim_cpu::{task, Machine, MachineCfg, TaskCtx};
use osim_uarch::Version;

use crate::harness::{self, DsCfg, DsResult, Op, OpResult};
use crate::vers;

const NODE_BYTES: u32 = 8;
const HOP_WORK: u64 = 4;
const OP_WORK: u64 = 20;
/// Instruction budget for hashing a key.
const HASH_WORK: u64 = 10;

/// Average chain length the table is sized for.
const LOAD_FACTOR: usize = 4;

fn n_buckets(initial: usize) -> u32 {
    ((initial / LOAD_FACTOR).max(4) as u32).next_power_of_two()
}

fn bucket_of(key: u32, buckets: u32) -> u32 {
    // Fibonacci hashing; cheap and deterministic.
    (key.wrapping_mul(0x9e37_79b9) >> 16) & (buckets - 1)
}

struct Table {
    order_cell: u32,
    bucket_base: u32,
    buckets: u32,
}

impl Table {
    fn bucket_cell(&self, key: u32) -> u32 {
        self.bucket_base + 4 * bucket_of(key, self.buckets)
    }
}

async fn new_node(ctx: &TaskCtx, key: u32) -> (u32, u32) {
    let node = ctx.malloc(NODE_BYTES).await;
    let cell = ctx.malloc_root().await;
    ctx.store_u32(node, key).await;
    ctx.store_u32(node + 4, cell).await;
    (node, cell)
}

/// Population: one version per cell, chains sorted per bucket.
async fn populate_versioned(ctx: TaskCtx, table: Rc<Table>, keys: Vec<u32>) {
    let pv = vers::passv(ctx.tid());
    let mut chains: Vec<Vec<u32>> = vec![Vec::new(); table.buckets as usize];
    for &k in &keys {
        chains[bucket_of(k, table.buckets) as usize].push(k);
    }
    for (b, chain) in chains.iter_mut().enumerate() {
        chain.sort_unstable();
        let mut next = 0u32;
        for &key in chain.iter().rev() {
            let (node, cell) = new_node(&ctx, key).await;
            ctx.store_version(cell, pv, next).await;
            next = node;
        }
        ctx.store_version(table.bucket_base + 4 * b as u32, pv, next)
            .await;
    }
    ctx.store_version(table.order_cell, pv, 0).await;
}

/// A mutating task: ordered entry through the order cell, then the same
/// hand-over-hand chain protocol as the linked list.
async fn mutate(ctx: &TaskCtx, table: &Table, entry: Version, op: Op) -> OpResult {
    let tid = ctx.tid();
    let cap = vers::cap(tid);
    let pass = vers::passv(tid);
    let key = match op {
        Op::Insert(k) | Op::Delete(k) => k,
        _ => unreachable!("mutate with read op"),
    };
    ctx.work(OP_WORK).await;
    // Ordered entry: lock the order cell at the entry version, hash, lock
    // the bucket head, then release the order cell renamed to our pass
    // version (the next task's entry point).
    ctx.tag_root();
    ctx.lock_load_version(table.order_cell, entry).await;
    ctx.work(HASH_WORK).await;
    let bucket = table.bucket_cell(key);
    let (bvl, first) = ctx.lock_load_latest(bucket, cap).await;
    ctx.unlock_version(table.order_cell, entry, Some(pass))
        .await;

    let mut prev_cell = bucket;
    let mut prev_locked = bvl;
    let mut cur = first;
    let mut cur_key = None;
    loop {
        if cur == 0 {
            break;
        }
        let k = ctx.load_u32(cur).await;
        ctx.work(HOP_WORK).await;
        if k >= key {
            cur_key = Some(k);
            break;
        }
        let cell = ctx.load_u32(cur + 4).await;
        let (vl, nxt) = ctx.lock_load_latest(cell, cap).await;
        // Chain cells are ordered by the locks alone; only the order cell
        // above carried a rename (the entry chain).
        ctx.unlock_version(prev_cell, prev_locked, None).await;
        prev_cell = cell;
        prev_locked = vl;
        cur = nxt;
    }

    match op {
        Op::Insert(k) => {
            if cur_key == Some(k) {
                ctx.unlock_version(prev_cell, prev_locked, None).await;
                OpResult::Inserted(false)
            } else {
                ctx.work(OP_WORK).await;
                let (node, cell) = new_node(ctx, k).await;
                ctx.store_version(cell, vers::modv(tid, 0), cur).await;
                ctx.store_version(prev_cell, vers::modv(tid, 1), node).await;
                ctx.unlock_version(prev_cell, prev_locked, None).await;
                OpResult::Inserted(true)
            }
        }
        Op::Delete(k) => {
            if cur_key == Some(k) {
                ctx.work(OP_WORK).await;
                let vcell = ctx.load_u32(cur + 4).await;
                let (vvl, vnext) = ctx.lock_load_latest(vcell, cap).await;
                ctx.store_version(prev_cell, vers::modv(tid, 0), vnext)
                    .await;
                ctx.unlock_version(prev_cell, prev_locked, None).await;
                ctx.unlock_version(vcell, vvl, None).await;
                OpResult::Deleted(true)
            } else {
                ctx.unlock_version(prev_cell, prev_locked, None).await;
                OpResult::Deleted(false)
            }
        }
        _ => unreachable!(),
    }
}

/// A read-only task: unordered entry (no lock on the order cell).
async fn read(ctx: &TaskCtx, table: &Table, entry: Version, key: u32) -> OpResult {
    let cap = vers::cap(ctx.tid());
    ctx.work(OP_WORK).await;
    ctx.tag_root();
    ctx.load_version(table.order_cell, entry).await;
    ctx.work(HASH_WORK).await;
    let bucket = table.bucket_cell(key);
    let (_, mut cur) = ctx.load_latest(bucket, cap).await;
    loop {
        if cur == 0 {
            return OpResult::Found(false);
        }
        let k = ctx.load_u32(cur).await;
        ctx.work(HOP_WORK).await;
        if k == key {
            return OpResult::Found(true);
        }
        if k > key {
            return OpResult::Found(false);
        }
        let cell = ctx.load_u32(cur + 4).await;
        (_, cur) = ctx.load_latest(cell, cap).await;
    }
}

fn extract_versioned(m: &Machine, table: &Table) -> Vec<u32> {
    let st = m.state();
    let st = st.borrow();
    let latest = |cell: u32| -> u32 {
        st.omgr
            .peek_latest(&st.ms, cell, u32::MAX)
            .expect("valid cell")
            .map(|(_, v)| v)
            .unwrap_or(0)
    };
    let read = |va: u32| {
        st.ms
            .phys
            .read_u32(st.ms.pt.translate_conventional(va).expect("mapped"))
    };
    let mut out = Vec::new();
    for b in 0..table.buckets {
        let mut cur = latest(table.bucket_base + 4 * b);
        while cur != 0 {
            out.push(read(cur));
            cur = latest(read(cur + 4));
        }
    }
    out.sort_unstable();
    out
}

/// Runs the versioned parallel hash table.
pub fn run_versioned(mcfg: MachineCfg, cfg: &DsCfg) -> DsResult {
    let initial = harness::gen_initial(cfg);
    let ops = harness::gen_ops(cfg);
    let (want_results, want_final) = harness::replay_reference(&initial, &ops);

    let mut m = Machine::new(mcfg);
    let table = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        let buckets = n_buckets(cfg.initial);
        let order_cell = s
            .alloc
            .alloc_root(&mut s.ms)
            .expect("simulated RAM exhausted");
        let bucket_base = (0..buckets)
            .map(|_| {
                s.alloc
                    .alloc_root(&mut s.ms)
                    .expect("simulated RAM exhausted")
            })
            .next()
            .expect("at least one bucket");
        // Reserve the remaining bucket cells contiguously.
        for _ in 1..buckets {
            s.alloc
                .alloc_root(&mut s.ms)
                .expect("simulated RAM exhausted");
        }
        Rc::new(Table {
            order_cell,
            bucket_base,
            buckets,
        })
    };

    let pop_tid = m.next_tid();
    let keys = initial.clone();
    let t2 = Rc::clone(&table);
    m.run_tasks(vec![task(move |ctx| populate_versioned(ctx, t2, keys))])
        .expect("population");
    m.reset_stats();

    let results: Rc<RefCell<Vec<Option<OpResult>>>> = Rc::new(RefCell::new(vec![None; ops.len()]));
    let first = m.next_tid();
    let mut entry = vers::passv(pop_tid);
    let mut tasks = Vec::with_capacity(ops.len());
    for (i, &op) in ops.iter().enumerate() {
        let tid = first + i as u32;
        let e = entry;
        let is_write = matches!(op, Op::Insert(_) | Op::Delete(_));
        if is_write {
            entry = vers::passv(tid);
        }
        let results = Rc::clone(&results);
        let table = Rc::clone(&table);
        tasks.push(task(move |ctx| async move {
            let r = match op {
                Op::Insert(_) | Op::Delete(_) => mutate(&ctx, &table, e, op).await,
                Op::Lookup(k) => read(&ctx, &table, e, k).await,
                Op::Scan(k, _) => read(&ctx, &table, e, k).await, // tables have no ordered scans
            };
            results.borrow_mut()[i] = Some(r);
        }));
    }
    let report = m.run_tasks(tasks).expect("measurement deadlocked");

    let got: Vec<OpResult> = Rc::try_unwrap(results)
        .expect("tasks done")
        .into_inner()
        .into_iter()
        .map(|r| r.expect("op recorded"))
        .collect();
    let got_final = extract_versioned(&m, &table);
    let (ok, detail) = harness::validate(&got, &got_final, &want_results, &want_final);
    harness::collect(&m, report.cycles(), ok, detail)
}

// ----------------------------------------------------------------------
// Unversioned sequential baseline
// ----------------------------------------------------------------------

/// Runs the unversioned sequential hash table: nodes are `{key, next}`
/// pairs in conventional memory, bucket heads a conventional array.
pub fn run_unversioned(mcfg: MachineCfg, cfg: &DsCfg) -> DsResult {
    let initial = harness::gen_initial(cfg);
    let ops = harness::gen_ops(cfg);
    let (want_results, want_final) = harness::replay_reference(&initial, &ops);

    let mut m = Machine::new(mcfg);
    let buckets = n_buckets(cfg.initial);
    let bucket_base = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc
            .alloc_data(&mut s.ms, buckets * 4)
            .expect("simulated RAM exhausted")
    };

    let keys = initial.clone();
    m.run_tasks(vec![task(move |ctx| async move {
        let mut chains: Vec<Vec<u32>> = vec![Vec::new(); buckets as usize];
        for &k in &keys {
            chains[bucket_of(k, buckets) as usize].push(k);
        }
        for (b, chain) in chains.iter_mut().enumerate() {
            chain.sort_unstable();
            let mut next = 0u32;
            for &key in chain.iter().rev() {
                let node = ctx.malloc(NODE_BYTES).await;
                ctx.store_u32(node, key).await;
                ctx.store_u32(node + 4, next).await;
                next = node;
            }
            ctx.store_u32(bucket_base + 4 * b as u32, next).await;
        }
    })])
    .expect("population");
    m.reset_stats();

    let results: Rc<RefCell<Vec<OpResult>>> = Rc::new(RefCell::new(Vec::new()));
    let ops2 = ops.clone();
    let results2 = Rc::clone(&results);
    let report = m
        .run_tasks(vec![task(move |ctx| async move {
            for &op in &ops2 {
                let key = match op {
                    Op::Lookup(k) | Op::Insert(k) | Op::Delete(k) | Op::Scan(k, _) => k,
                };
                ctx.work(OP_WORK + HASH_WORK).await;
                let head = bucket_base + 4 * bucket_of(key, buckets);
                // Walk to the first key >= target, keeping the edge.
                let mut edge = head;
                let mut cur = ctx.load_u32(head).await;
                let mut cur_key = None;
                while cur != 0 {
                    let k = ctx.load_u32(cur).await;
                    ctx.work(HOP_WORK).await;
                    if k >= key {
                        cur_key = Some(k);
                        break;
                    }
                    edge = cur + 4;
                    cur = ctx.load_u32(cur + 4).await;
                }
                let r = match op {
                    Op::Lookup(k) | Op::Scan(k, _) => OpResult::Found(cur_key == Some(k)),
                    Op::Insert(k) => {
                        if cur_key == Some(k) {
                            OpResult::Inserted(false)
                        } else {
                            ctx.work(OP_WORK).await;
                            let node = ctx.malloc(NODE_BYTES).await;
                            ctx.store_u32(node, k).await;
                            ctx.store_u32(node + 4, cur).await;
                            ctx.store_u32(edge, node).await;
                            OpResult::Inserted(true)
                        }
                    }
                    Op::Delete(k) => {
                        if cur_key == Some(k) {
                            ctx.work(OP_WORK).await;
                            let next = ctx.load_u32(cur + 4).await;
                            ctx.store_u32(edge, next).await;
                            OpResult::Deleted(true)
                        } else {
                            OpResult::Deleted(false)
                        }
                    }
                };
                results2.borrow_mut().push(r);
            }
        })])
        .expect("measurement");

    let got = Rc::try_unwrap(results).expect("task done").into_inner();
    let got_final = {
        let st = m.state();
        let st = st.borrow();
        let read = |va: u32| {
            st.ms
                .phys
                .read_u32(st.ms.pt.translate_conventional(va).expect("mapped"))
        };
        let mut out = Vec::new();
        for b in 0..buckets {
            let mut cur = read(bucket_base + 4 * b);
            while cur != 0 {
                out.push(read(cur));
                cur = read(cur + 4);
            }
        }
        out.sort_unstable();
        out
    };
    let (ok, detail) = harness::validate(&got, &got_final, &want_results, &want_final);
    harness::collect(&m, report.cycles(), ok, detail)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(initial: usize, ops: usize, rpw: u32) -> DsCfg {
        DsCfg {
            initial,
            ops,
            reads_per_write: rpw,
            scan_range: 0,
            key_space: (initial as u32) * 4,
            seed: 23,
            insert_only: false,
        }
    }

    #[test]
    fn bucket_distribution_is_full_range() {
        let buckets = n_buckets(1000);
        assert_eq!(buckets, 256);
        let mut seen = vec![false; buckets as usize];
        for k in 0..10_000u32 {
            seen[bucket_of(k, buckets) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "hash covers all buckets");
    }

    #[test]
    fn unversioned_sequential_matches_reference() {
        run_unversioned(MachineCfg::paper(1), &cfg(80, 100, 4)).assert_ok();
    }

    #[test]
    fn versioned_parallel_matches_reference() {
        run_versioned(MachineCfg::paper(4), &cfg(80, 100, 4)).assert_ok();
    }

    #[test]
    fn versioned_write_intensive_matches_reference() {
        run_versioned(MachineCfg::paper(8), &cfg(80, 100, 1)).assert_ok();
    }

    #[test]
    fn write_intensive_stalls_the_root_harder_than_read_intensive() {
        // §IV-D: root ordering forms a bottleneck on write-intensive
        // tables; read mixes stall far less because readers do not lock.
        let wi = run_versioned(MachineCfg::paper(8), &cfg(200, 128, 1));
        let ri = run_versioned(MachineCfg::paper(8), &cfg(200, 128, 4));
        wi.assert_ok();
        ri.assert_ok();
        assert!(
            wi.cpu.root_stall_rate() > ri.cpu.root_stall_rate(),
            "write-intensive {:.2} vs read-intensive {:.2}",
            wi.cpu.root_stall_rate(),
            ri.cpu.root_stall_rate()
        );
    }

    #[test]
    fn deterministic() {
        let c = cfg(60, 60, 4);
        let a = run_versioned(MachineCfg::paper(4), &c);
        let b = run_versioned(MachineCfg::paper(4), &c);
        assert_eq!(a.cycles, b.cycles);
    }
}
