//! Red-black tree (§IV-D): a single serialized writer, snapshot readers.
//!
//! "The red-black tree benchmark is an attempt to handle balanced data
//! structures, which are harder to parallelize due to the rebalancing
//! procedure. Our implementation allows a single writer, and readers might
//! see a slightly unbalanced tree."
//!
//! Writers serialize on a versioned *order cell* (held for the whole
//! operation) and restructure by **path copying**: every insert/delete
//! builds fresh copies of the O(log n) nodes it changes and publishes the
//! new tree with a single `STORE-VERSION` to the root cell. Each root
//! version is therefore a complete immutable snapshot — readers pick the
//! newest root ≤ their cap and can never observe a half-rotated tree,
//! while old snapshots stay reachable for older readers until the garbage
//! collector reclaims their root versions.
//!
//! The rebalancing algorithm is the classic functional red-black
//! formulation (Okasaki's insert balance, Kahrs' delete), implemented on a
//! host-side *mirror arena* that stays bit-identical to simulated memory:
//! the writer still performs the real memory traffic (path loads, node
//! materialization stores, root publish), but the algorithmic decisions run
//! on the mirror, keeping the async surface small. Tests assert
//! mirror/memory agreement and the red-black invariants.
//!
//! Node layout (conventional heap, 16 bytes): `+0` key, `+4` color
//! (0 = red, 1 = black), `+8` va of the versioned left cell, `+12` va of
//! the versioned right cell.

use std::cell::RefCell;
use std::rc::Rc;

use osim_cpu::{task, Machine, MachineCfg, TaskCtx};
use osim_uarch::Version;

use crate::harness::{self, DsCfg, DsResult, Op, OpResult};
use crate::vers;

const NODE_BYTES: u32 = 16;
const HOP_WORK: u64 = 6;
const OP_WORK: u64 = 20;
/// Instruction budget for building one copied node host-side.
const COPY_WORK: u64 = 12;

/// How long the writer holds the order cell (the §IV-D delete-locking
/// ablation: the paper's baseline "was locking a deleted pointer longer
/// than necessary; algorithmic modifications shortened the locking").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockHold {
    /// Baseline: the order cell is released only after the writer's
    /// post-publication bookkeeping.
    Long,
    /// Optimized: released immediately after the new root is published.
    Short,
}

// ----------------------------------------------------------------------
// Persistent (copy-on-write) red-black tree on a host arena
// ----------------------------------------------------------------------

/// Arena-based persistent red-black tree. All mutation builds new nodes;
/// `usize::MAX` is the empty tree.
pub mod persistent {
    pub const NIL: usize = usize::MAX;

    /// Node color.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Color {
        Red,
        Black,
    }
    use Color::{Black, Red};

    /// An arena node. `va` is filled in when the node is materialized in
    /// simulated memory (0 = not yet materialized).
    #[derive(Debug, Clone, Copy)]
    pub struct Node {
        pub key: u32,
        pub color: Color,
        pub l: usize,
        pub r: usize,
        pub va: u32,
    }

    /// The arena. Old nodes are never mutated once published, so every
    /// historical root index remains a valid snapshot.
    #[derive(Default)]
    pub struct Arena {
        pub nodes: Vec<Node>,
    }

    impl Arena {
        /// Creates a node, returning its index.
        fn mk(&mut self, color: Color, l: usize, key: u32, r: usize) -> usize {
            self.nodes.push(Node {
                key,
                color,
                l,
                r,
                va: 0,
            });
            self.nodes.len() - 1
        }

        fn is_red(&self, i: usize) -> bool {
            i != NIL && self.nodes[i].color == Red
        }

        fn is_black_node(&self, i: usize) -> bool {
            i != NIL && self.nodes[i].color == Black
        }

        /// Kahrs' `balance`: resolves a red-red violation under a black
        /// parent (also used by delete's rebalancing).
        fn balance(&mut self, l: usize, key: u32, r: usize) -> usize {
            let n = |a: &Self, i: usize| a.nodes[i];
            if self.is_red(l) && self.is_red(r) {
                let (lc, rc) = (n(self, l), n(self, r));
                let lb = self.mk(Black, lc.l, lc.key, lc.r);
                let rb = self.mk(Black, rc.l, rc.key, rc.r);
                return self.mk(Red, lb, key, rb);
            }
            if self.is_red(l) {
                let lc = n(self, l);
                if self.is_red(lc.l) {
                    let ll = n(self, lc.l);
                    let a = self.mk(Black, ll.l, ll.key, ll.r);
                    let b = self.mk(Black, lc.r, key, r);
                    return self.mk(Red, a, lc.key, b);
                }
                if self.is_red(lc.r) {
                    let lr = n(self, lc.r);
                    let a = self.mk(Black, lc.l, lc.key, lr.l);
                    let b = self.mk(Black, lr.r, key, r);
                    return self.mk(Red, a, lr.key, b);
                }
            }
            if self.is_red(r) {
                let rc = n(self, r);
                if self.is_red(rc.r) {
                    let rr = n(self, rc.r);
                    let a = self.mk(Black, l, key, rc.l);
                    let b = self.mk(Black, rr.l, rr.key, rr.r);
                    return self.mk(Red, a, rc.key, b);
                }
                if self.is_red(rc.l) {
                    let rl = n(self, rc.l);
                    let a = self.mk(Black, l, key, rl.l);
                    let b = self.mk(Black, rl.r, rc.key, rc.r);
                    return self.mk(Red, a, rl.key, b);
                }
            }
            self.mk(Black, l, key, r)
        }

        fn ins(&mut self, t: usize, key: u32, inserted: &mut bool) -> usize {
            if t == NIL {
                *inserted = true;
                return self.mk(Red, NIL, key, NIL);
            }
            let node = self.nodes[t];
            match (key.cmp(&node.key), node.color) {
                (std::cmp::Ordering::Equal, _) => {
                    *inserted = false;
                    t
                }
                (std::cmp::Ordering::Less, Black) => {
                    let nl = self.ins(node.l, key, inserted);
                    if *inserted {
                        self.balance(nl, node.key, node.r)
                    } else {
                        t
                    }
                }
                (std::cmp::Ordering::Greater, Black) => {
                    let nr = self.ins(node.r, key, inserted);
                    if *inserted {
                        self.balance(node.l, node.key, nr)
                    } else {
                        t
                    }
                }
                (std::cmp::Ordering::Less, Red) => {
                    let nl = self.ins(node.l, key, inserted);
                    if *inserted {
                        self.mk(Red, nl, node.key, node.r)
                    } else {
                        t
                    }
                }
                (std::cmp::Ordering::Greater, Red) => {
                    let nr = self.ins(node.r, key, inserted);
                    if *inserted {
                        self.mk(Red, node.l, node.key, nr)
                    } else {
                        t
                    }
                }
            }
        }

        /// Persistent insert. Returns `(new_root, inserted)`; the root of a
        /// changed tree is always black.
        pub fn insert(&mut self, root: usize, key: u32) -> (usize, bool) {
            let mut inserted = false;
            let t = self.ins(root, key, &mut inserted);
            if !inserted {
                return (root, false);
            }
            let n = self.nodes[t];
            let black_root = if n.color == Red {
                self.mk(Black, n.l, n.key, n.r)
            } else {
                t
            };
            (black_root, true)
        }

        // --- Kahrs delete -------------------------------------------------

        /// `sub1`: demote a black node to red (black-height bookkeeping).
        fn sub1(&mut self, t: usize) -> usize {
            debug_assert!(self.is_black_node(t), "sub1 requires a black node");
            let n = self.nodes[t];
            self.mk(Red, n.l, n.key, n.r)
        }

        fn balleft(&mut self, l: usize, key: u32, r: usize) -> usize {
            if self.is_red(l) {
                let ln = self.nodes[l];
                let lb = self.mk(Black, ln.l, ln.key, ln.r);
                return self.mk(Red, lb, key, r);
            }
            if self.is_black_node(r) {
                let rn = self.nodes[r];
                let rr = self.mk(Red, rn.l, rn.key, rn.r);
                return self.balance(l, key, rr);
            }
            debug_assert!(self.is_red(r) && self.is_black_node(self.nodes[r].l));
            let rn = self.nodes[r];
            let rl = self.nodes[rn.l];
            let a = self.mk(Black, l, key, rl.l);
            let c1 = self.sub1(rn.r);
            let b = self.balance(rl.r, rn.key, c1);
            self.mk(Red, a, rl.key, b)
        }

        fn balright(&mut self, l: usize, key: u32, r: usize) -> usize {
            if self.is_red(r) {
                let rn = self.nodes[r];
                let rb = self.mk(Black, rn.l, rn.key, rn.r);
                return self.mk(Red, l, key, rb);
            }
            if self.is_black_node(l) {
                let ln = self.nodes[l];
                let lr = self.mk(Red, ln.l, ln.key, ln.r);
                return self.balance(lr, key, r);
            }
            debug_assert!(self.is_red(l) && self.is_black_node(self.nodes[l].r));
            let ln = self.nodes[l];
            let lr = self.nodes[ln.r];
            let a1 = self.sub1(ln.l);
            let a = self.balance(a1, ln.key, lr.l);
            let b = self.mk(Black, lr.r, key, r);
            self.mk(Red, a, lr.key, b)
        }

        /// `app` (fuse): joins the two subtrees of a deleted node.
        fn app(&mut self, l: usize, r: usize) -> usize {
            if l == NIL {
                return r;
            }
            if r == NIL {
                return l;
            }
            let (ln, rn) = (self.nodes[l], self.nodes[r]);
            match (ln.color, rn.color) {
                (Color::Red, Color::Red) => {
                    let m = self.app(ln.r, rn.l);
                    if self.is_red(m) {
                        let mn = self.nodes[m];
                        let a = self.mk(Red, ln.l, ln.key, mn.l);
                        let b = self.mk(Red, mn.r, rn.key, rn.r);
                        self.mk(Red, a, mn.key, b)
                    } else {
                        let b = self.mk(Red, m, rn.key, rn.r);
                        self.mk(Red, ln.l, ln.key, b)
                    }
                }
                (Color::Black, Color::Black) => {
                    let m = self.app(ln.r, rn.l);
                    if self.is_red(m) {
                        let mn = self.nodes[m];
                        let a = self.mk(Black, ln.l, ln.key, mn.l);
                        let b = self.mk(Black, mn.r, rn.key, rn.r);
                        self.mk(Red, a, mn.key, b)
                    } else {
                        let b = self.mk(Black, m, rn.key, rn.r);
                        self.balleft(ln.l, ln.key, b)
                    }
                }
                (_, Color::Red) => {
                    let m = self.app(l, rn.l);
                    self.mk(Red, m, rn.key, rn.r)
                }
                (Color::Red, _) => {
                    let m = self.app(ln.r, r);
                    self.mk(Red, ln.l, ln.key, m)
                }
            }
        }

        fn del(&mut self, t: usize, key: u32) -> usize {
            debug_assert_ne!(t, NIL, "del called below a missing key");
            let n = self.nodes[t];
            match key.cmp(&n.key) {
                std::cmp::Ordering::Less => {
                    let nl = self.del(n.l, key);
                    if self.is_black_node(n.l) {
                        self.balleft(nl, n.key, n.r)
                    } else {
                        self.mk(Red, nl, n.key, n.r)
                    }
                }
                std::cmp::Ordering::Greater => {
                    let nr = self.del(n.r, key);
                    if self.is_black_node(n.r) {
                        self.balright(n.l, n.key, nr)
                    } else {
                        self.mk(Red, n.l, n.key, nr)
                    }
                }
                std::cmp::Ordering::Equal => self.app(n.l, n.r),
            }
        }

        /// Persistent delete. The key **must** be present (callers check
        /// membership first). Returns the new root.
        pub fn delete(&mut self, root: usize, key: u32) -> usize {
            let t = self.del(root, key);
            if t == NIL {
                return NIL;
            }
            let n = self.nodes[t];
            if n.color == Red {
                self.mk(Black, n.l, n.key, n.r)
            } else {
                t
            }
        }

        /// Membership test (no copying).
        pub fn contains(&self, mut t: usize, key: u32) -> bool {
            while t != NIL {
                let n = self.nodes[t];
                match key.cmp(&n.key) {
                    std::cmp::Ordering::Equal => return true,
                    std::cmp::Ordering::Less => t = n.l,
                    std::cmp::Ordering::Greater => t = n.r,
                }
            }
            false
        }

        /// In-order keys.
        pub fn keys(&self, root: usize) -> Vec<u32> {
            let mut out = Vec::new();
            let mut stack = Vec::new();
            let mut cur = root;
            loop {
                while cur != NIL {
                    stack.push(cur);
                    cur = self.nodes[cur].l;
                }
                let Some(t) = stack.pop() else { break };
                out.push(self.nodes[t].key);
                cur = self.nodes[t].r;
            }
            out
        }

        /// Checks the red-black invariants: BST order, no red-red edges,
        /// equal black height. Returns the black height.
        pub fn check_invariants(&self, root: usize) -> Result<u32, String> {
            fn go(a: &Arena, t: usize, lo: Option<u32>, hi: Option<u32>) -> Result<u32, String> {
                if t == NIL {
                    return Ok(1);
                }
                let n = a.nodes[t];
                if lo.is_some_and(|lo| n.key <= lo) || hi.is_some_and(|hi| n.key >= hi) {
                    return Err(format!("BST order violated at key {}", n.key));
                }
                if n.color == Red && (a.is_red(n.l) || a.is_red(n.r)) {
                    return Err(format!("red-red edge at key {}", n.key));
                }
                let lh = go(a, n.l, lo, Some(n.key))?;
                let rh = go(a, n.r, Some(n.key), hi)?;
                if lh != rh {
                    return Err(format!("black height mismatch at key {}", n.key));
                }
                Ok(lh + u32::from(n.color == Black))
            }
            if self.is_red(root) {
                return Err("root is red".into());
            }
            go(self, root, None, None)
        }
    }
}

use persistent::{Arena, Color, NIL};

// ----------------------------------------------------------------------
// Simulated writer / readers
// ----------------------------------------------------------------------

type Shape = std::collections::BTreeMap<u32, (Option<u32>, Option<u32>, u32)>;

/// Extracts `key -> (left key, right key, color)` plus the root key from an
/// arena snapshot (host-side bookkeeping, no simulated cost).
fn shape_of(arena: &Arena, root: usize) -> (Shape, Option<u32>) {
    let mut shape = Shape::default();
    let mut stack = vec![root];
    while let Some(i) = stack.pop() {
        if i == NIL {
            continue;
        }
        let n = arena.nodes[i];
        let child = |c: usize| (c != NIL).then(|| arena.nodes[c].key);
        shape.insert(
            n.key,
            (
                child(n.l),
                child(n.r),
                if n.color == Color::Red { 0 } else { 1 },
            ),
        );
        stack.push(n.l);
        stack.push(n.r);
    }
    let root_key = (root != NIL).then(|| arena.nodes[root].key);
    (shape, root_key)
}

/// The physical embodiment of one tree node (identity = key; versioned
/// child cells hold every historical child pointer).
#[derive(Clone, Copy)]
struct PhysNode {
    va: u32,
    lcell: u32,
    rcell: u32,
}

struct RbShared {
    arena: Arena,
    root: usize,
    root_cell: u32,
    order_cell: u32,
    hold: LockHold,
    /// Materialized nodes by key.
    phys: std::collections::HashMap<u32, PhysNode>,
    /// Current tree shape (mirrors the newest versions in memory).
    shape: Shape,
    root_key: Option<u32>,
}

/// Applies the difference between the current shape and the tree rooted at
/// `new_root` as *in-place versioned updates*: fresh nodes are allocated,
/// and every changed child pointer becomes a new version of that node's
/// cell. Old versions stay behind for snapshot readers — the mechanism the
/// whole paper is about — so no copying of unchanged nodes is needed.
async fn apply_diff(ctx: &TaskCtx, sh: &Rc<RefCell<RbShared>>, new_root: usize, ver: Version) {
    let (new_shape, new_root_key) = {
        let s = sh.borrow();
        shape_of(&s.arena, new_root)
    };
    // Pass 1: allocate nodes for keys that just appeared.
    let fresh: Vec<(u32, u32)> = {
        let s = sh.borrow();
        new_shape
            .iter()
            .filter(|(k, _)| !s.phys.contains_key(k))
            .map(|(&k, &(_, _, color))| (k, color))
            .collect()
    };
    for (key, color) in fresh {
        ctx.work(COPY_WORK).await;
        let node = ctx.malloc(NODE_BYTES).await;
        let lcell = ctx.malloc_root().await;
        let rcell = ctx.malloc_root().await;
        ctx.store_u32(node, key).await;
        ctx.store_u32(node + 4, color).await;
        ctx.store_u32(node + 8, lcell).await;
        ctx.store_u32(node + 12, rcell).await;
        sh.borrow_mut().phys.insert(
            key,
            PhysNode {
                va: node,
                lcell,
                rcell,
            },
        );
    }
    // Pass 2: publish changed child pointers and colors.
    type Write = Option<(u32, u32)>; // (address-or-cell, value)
    let changes: Vec<(u32, Write, Write, Write)> = {
        let s = sh.borrow();
        let va_of = |k: Option<u32>| k.map_or(0, |k| s.phys[&k].va);
        new_shape
            .iter()
            .filter_map(|(&key, &(nl, nr, ncolor))| {
                let p = s.phys[&key];
                let old = s.shape.get(&key);
                let lw = (old.map(|o| o.0) != Some(nl)).then(|| (p.lcell, va_of(nl)));
                let rw = (old.map(|o| o.1) != Some(nr)).then(|| (p.rcell, va_of(nr)));
                let cw = (old.map(|o| o.2) != Some(ncolor)).then_some((p.va + 4, ncolor));
                (lw.is_some() || rw.is_some() || cw.is_some()).then_some((key, lw, rw, cw))
            })
            .collect()
    };
    for (_, lw, rw, cw) in changes {
        if let Some((cell, va)) = lw {
            ctx.store_version(cell, ver, va).await;
        }
        if let Some((cell, va)) = rw {
            ctx.store_version(cell, ver, va).await;
        }
        if let Some((addr, color)) = cw {
            // Colors are writer-private metadata (readers never consult
            // them), so a conventional in-place store suffices.
            ctx.store_u32(addr, color).await;
        }
    }
    // Root pointer last.
    let (old_root_key, root_cell) = {
        let s = sh.borrow();
        (s.root_key, s.root_cell)
    };
    if old_root_key != new_root_key {
        let va = {
            let s = sh.borrow();
            new_root_key.map_or(0, |k| s.phys[&k].va)
        };
        ctx.store_version(root_cell, ver, va).await;
    }
    // Host bookkeeping: drop removed keys, install the new shape.
    {
        let mut s = sh.borrow_mut();
        let removed: Vec<u32> = s
            .shape
            .keys()
            .filter(|k| !new_shape.contains_key(k))
            .copied()
            .collect();
        for k in removed {
            // The node's memory (and its cells' old versions) stays for
            // snapshot readers; only the identity mapping is retired.
            s.phys.remove(&k);
        }
        s.shape = new_shape;
        s.root_key = new_root_key;
        s.root = new_root;
    }
}

/// Issues the realistic read traffic of one root-to-key descent.
async fn descend_traffic(ctx: &TaskCtx, sh: &Rc<RefCell<RbShared>>, key: u32) {
    let cap = vers::cap(ctx.tid());
    let root_cell = sh.borrow().root_cell;
    let (_, mut cur) = ctx.load_latest(root_cell, cap).await;
    while cur != 0 {
        let k = ctx.load_u32(cur).await;
        ctx.work(HOP_WORK).await;
        if k == key {
            break;
        }
        let cell = ctx.load_u32(cur + if key < k { 8 } else { 12 }).await;
        (_, cur) = ctx.load_latest(cell, cap).await;
    }
}

/// One writer operation, fully serialized on the order cell.
async fn write_op(ctx: &TaskCtx, sh: Rc<RefCell<RbShared>>, entry: Version, op: Op) -> OpResult {
    let tid = ctx.tid();
    let pass = vers::passv(tid);
    let (order_cell, hold) = {
        let sh = sh.borrow();
        (sh.order_cell, sh.hold)
    };
    ctx.work(OP_WORK).await;
    ctx.tag_root();
    ctx.lock_load_version(order_cell, entry).await;

    let key = match op {
        Op::Insert(k) | Op::Delete(k) => k,
        _ => unreachable!("write_op with read op"),
    };
    descend_traffic(ctx, &sh, key).await;

    let (new_root, result) = {
        let mut s = sh.borrow_mut();
        let root = s.root;
        match op {
            Op::Insert(k) => {
                let (nr, inserted) = s.arena.insert(root, k);
                (nr, OpResult::Inserted(inserted))
            }
            Op::Delete(k) => {
                if s.arena.contains(root, k) {
                    (s.arena.delete(root, k), OpResult::Deleted(true))
                } else {
                    (root, OpResult::Deleted(false))
                }
            }
            _ => unreachable!(),
        }
    };

    if new_root != sh.borrow().root {
        apply_diff(ctx, &sh, new_root, vers::modv(tid, 0)).await;
    }

    match hold {
        LockHold::Short => {
            ctx.unlock_version(order_cell, entry, Some(pass)).await;
            ctx.work(4 * OP_WORK).await; // bookkeeping off the critical path
        }
        LockHold::Long => {
            // Baseline: bookkeeping happens while the order cell is held,
            // throttling every later task (the delete-locking observation
            // of §IV-D).
            ctx.work(4 * OP_WORK).await;
            ctx.unlock_version(order_cell, entry, Some(pass)).await;
        }
    }
    result
}

/// Snapshot lookup.
async fn lookup(ctx: &TaskCtx, sh: &Rc<RefCell<RbShared>>, entry: Version, key: u32) -> OpResult {
    let cap = vers::cap(ctx.tid());
    let (order_cell, root_cell) = {
        let sh = sh.borrow();
        (sh.order_cell, sh.root_cell)
    };
    ctx.work(OP_WORK).await;
    ctx.tag_root();
    ctx.load_version(order_cell, entry).await;
    let (_, mut cur) = ctx.load_latest(root_cell, cap).await;
    while cur != 0 {
        let k = ctx.load_u32(cur).await;
        ctx.work(HOP_WORK).await;
        if k == key {
            return OpResult::Found(true);
        }
        let cell = ctx.load_u32(cur + if key < k { 8 } else { 12 }).await;
        (_, cur) = ctx.load_latest(cell, cap).await;
    }
    OpResult::Found(false)
}

/// Snapshot range scan (ascending, up to `range` keys ≥ `from`).
async fn scan(
    ctx: &TaskCtx,
    sh: &Rc<RefCell<RbShared>>,
    entry: Version,
    from: u32,
    range: u32,
) -> OpResult {
    let cap = vers::cap(ctx.tid());
    let (order_cell, root_cell) = {
        let sh = sh.borrow();
        (sh.order_cell, sh.root_cell)
    };
    ctx.work(OP_WORK).await;
    ctx.tag_root();
    ctx.load_version(order_cell, entry).await;
    let mut out = Vec::new();
    let mut stack: Vec<(u32, u32)> = Vec::new();
    let (_, mut cur) = ctx.load_latest(root_cell, cap).await;
    loop {
        while cur != 0 {
            let k = ctx.load_u32(cur).await;
            ctx.work(HOP_WORK).await;
            if k >= from {
                stack.push((cur, k));
                let cell = ctx.load_u32(cur + 8).await;
                (_, cur) = ctx.load_latest(cell, cap).await;
            } else {
                let cell = ctx.load_u32(cur + 12).await;
                (_, cur) = ctx.load_latest(cell, cap).await;
            }
        }
        let Some((node, k)) = stack.pop() else { break };
        out.push(k);
        if out.len() as u32 >= range {
            break;
        }
        let cell = ctx.load_u32(node + 12).await;
        (_, cur) = ctx.load_latest(cell, cap).await;
    }
    OpResult::Scanned(out)
}

fn extract_versioned(m: &Machine, root_cell: u32) -> Vec<u32> {
    let st = m.state();
    let st = st.borrow();
    let latest = |cell: u32| -> u32 {
        st.omgr
            .peek_latest(&st.ms, cell, u32::MAX)
            .expect("valid cell")
            .map(|(_, v)| v)
            .unwrap_or(0)
    };
    let read = |va: u32| {
        st.ms
            .phys
            .read_u32(st.ms.pt.translate_conventional(va).expect("mapped"))
    };
    let mut out = Vec::new();
    let mut stack = vec![latest(root_cell)];
    while let Some(n) = stack.pop() {
        if n == 0 {
            continue;
        }
        out.push(read(n));
        stack.push(latest(read(n + 8)));
        stack.push(latest(read(n + 12)));
    }
    out.sort_unstable();
    out
}

/// Runs the versioned red-black tree with the given lock-hold policy.
pub fn run_versioned_with(mcfg: MachineCfg, cfg: &DsCfg, hold: LockHold) -> DsResult {
    let initial = harness::gen_initial(cfg);
    let ops = harness::gen_ops(cfg);
    let (want_results, want_final) = harness::replay_reference(&initial, &ops);

    let mut m = Machine::new(mcfg);
    let (root_cell, order_cell) = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        (
            s.alloc
                .alloc_root(&mut s.ms)
                .expect("simulated RAM exhausted"),
            s.alloc
                .alloc_root(&mut s.ms)
                .expect("simulated RAM exhausted"),
        )
    };

    // Build the initial tree in the arena, then materialize it.
    let mut arena = Arena::default();
    let mut root = NIL;
    for &k in &initial {
        let (nr, _) = arena.insert(root, k);
        root = nr;
    }
    let sh = Rc::new(RefCell::new(RbShared {
        arena,
        root: NIL, // population applies the diff from the empty tree
        root_cell,
        order_cell,
        hold,
        phys: std::collections::HashMap::new(),
        shape: Shape::default(),
        root_key: None,
    }));

    let pop_tid = m.next_tid();
    let sh2 = Rc::clone(&sh);
    m.run_tasks(vec![task(move |ctx| async move {
        let pv = vers::passv(ctx.tid());
        apply_diff(&ctx, &sh2, root, pv).await;
        if sh2.borrow().root_key.is_none() {
            ctx.store_version(root_cell, pv, 0).await;
        }
        ctx.store_version(order_cell, pv, 0).await;
    })])
    .expect("population");
    m.reset_stats();

    let results: Rc<RefCell<Vec<Option<OpResult>>>> = Rc::new(RefCell::new(vec![None; ops.len()]));
    let first = m.next_tid();
    let mut entry = vers::passv(pop_tid);
    let mut tasks = Vec::with_capacity(ops.len());
    for (i, &op) in ops.iter().enumerate() {
        let tid = first + i as u32;
        let e = entry;
        let is_write = matches!(op, Op::Insert(_) | Op::Delete(_));
        if is_write {
            entry = vers::passv(tid);
        }
        let results = Rc::clone(&results);
        let sh = Rc::clone(&sh);
        tasks.push(task(move |ctx| async move {
            let r = match op {
                Op::Insert(_) | Op::Delete(_) => write_op(&ctx, sh, e, op).await,
                Op::Lookup(k) => lookup(&ctx, &sh, e, k).await,
                Op::Scan(k, n) => scan(&ctx, &sh, e, k, n).await,
            };
            results.borrow_mut()[i] = Some(r);
        }));
    }
    let report = m.run_tasks(tasks).expect("measurement deadlocked");

    let got: Vec<OpResult> = Rc::try_unwrap(results)
        .expect("tasks done")
        .into_inner()
        .into_iter()
        .map(|r| r.expect("op recorded"))
        .collect();
    let got_final = extract_versioned(&m, root_cell);
    let (mut ok, mut detail) = harness::validate(&got, &got_final, &want_results, &want_final);
    // Mirror/memory agreement plus the red-black invariants.
    {
        let s = sh.borrow();
        let mirror_keys = s.arena.keys(s.root);
        if mirror_keys != got_final {
            ok = false;
            detail = "mirror arena diverged from simulated memory".into();
        } else if let Err(e) = s.arena.check_invariants(s.root) {
            ok = false;
            detail = format!("red-black invariant violated: {e}");
        }
    }
    harness::collect(&m, report.cycles(), ok, detail)
}

/// Runs the versioned red-black tree with the optimized (short) hold.
pub fn run_versioned(mcfg: MachineCfg, cfg: &DsCfg) -> DsResult {
    run_versioned_with(mcfg, cfg, LockHold::Short)
}

/// Unversioned sequential baseline: the same red-black algorithm with
/// in-place conventional updates (the shape diff is applied by overwriting
/// node words instead of creating versions).
pub fn run_unversioned(mcfg: MachineCfg, cfg: &DsCfg) -> DsResult {
    let initial = harness::gen_initial(cfg);
    let ops = harness::gen_ops(cfg);
    let (want_results, want_final) = harness::replay_reference(&initial, &ops);

    let mut m = Machine::new(mcfg);
    let root_word = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        s.alloc
            .alloc_data(&mut s.ms, 4)
            .expect("simulated RAM exhausted")
    };

    let mut arena = Arena::default();
    let mut root = NIL;
    for &k in &initial {
        let (nr, _) = arena.insert(root, k);
        root = nr;
    }
    let sh = Rc::new(RefCell::new(UnvShared {
        arena,
        root: NIL,
        root_word,
        phys: std::collections::HashMap::new(),
        shape: Shape::default(),
        root_key: None,
    }));

    // Population: apply the diff from the empty tree.
    let sh2 = Rc::clone(&sh);
    m.run_tasks(vec![task(move |ctx| async move {
        apply_diff_unversioned(&ctx, &sh2, root).await;
    })])
    .expect("population");
    m.reset_stats();

    let results: Rc<RefCell<Vec<OpResult>>> = Rc::new(RefCell::new(Vec::new()));
    let ops2 = ops.clone();
    let results2 = Rc::clone(&results);
    let sh3 = Rc::clone(&sh);
    let report = m
        .run_tasks(vec![task(move |ctx| async move {
            for &op in &ops2 {
                ctx.work(OP_WORK).await;
                let key = match op {
                    Op::Lookup(k) | Op::Insert(k) | Op::Delete(k) | Op::Scan(k, _) => k,
                };
                // Read traffic: descend to the key.
                {
                    let mut cur = ctx.load_u32(root_word).await;
                    while cur != 0 {
                        let k = ctx.load_u32(cur).await;
                        ctx.work(HOP_WORK).await;
                        if k == key {
                            break;
                        }
                        cur = ctx.load_u32(cur + if key < k { 8 } else { 12 }).await;
                    }
                }
                let r = match op {
                    Op::Lookup(k) => {
                        let found = {
                            let s = sh3.borrow();
                            s.arena.contains(s.root, k)
                        };
                        OpResult::Found(found)
                    }
                    Op::Scan(k, n) => {
                        let keys: Vec<u32> = {
                            let s = sh3.borrow();
                            s.arena
                                .keys(s.root)
                                .into_iter()
                                .filter(|&x| x >= k)
                                .take(n as usize)
                                .collect()
                        };
                        // Charge the scan's additional read traffic.
                        ctx.work(HOP_WORK * keys.len() as u64).await;
                        OpResult::Scanned(keys)
                    }
                    Op::Insert(k) => {
                        let (new_root, inserted) = {
                            let mut s = sh3.borrow_mut();
                            let r0 = s.root;
                            s.arena.insert(r0, k)
                        };
                        if inserted {
                            apply_diff_unversioned(&ctx, &sh3, new_root).await;
                        }
                        OpResult::Inserted(inserted)
                    }
                    Op::Delete(k) => {
                        let new_root = {
                            let mut s = sh3.borrow_mut();
                            let r0 = s.root;
                            if s.arena.contains(r0, k) {
                                Some(s.arena.delete(r0, k))
                            } else {
                                None
                            }
                        };
                        match new_root {
                            Some(nr) => {
                                apply_diff_unversioned(&ctx, &sh3, nr).await;
                                OpResult::Deleted(true)
                            }
                            None => OpResult::Deleted(false),
                        }
                    }
                };
                results2.borrow_mut().push(r);
            }
        })])
        .expect("measurement");

    let got = Rc::try_unwrap(results).expect("task done").into_inner();
    let got_final = {
        let s = sh.borrow();
        s.arena.keys(s.root)
    };
    let (ok, detail) = harness::validate(&got, &got_final, &want_results, &want_final);
    harness::collect(&m, report.cycles(), ok, detail)
}

struct UnvShared {
    arena: Arena,
    root: usize,
    root_word: u32,
    /// key -> node va (layout: +0 key, +4 color, +8 left va, +12 right va).
    phys: std::collections::HashMap<u32, u32>,
    shape: Shape,
    root_key: Option<u32>,
}

/// The unversioned twin of [`apply_diff`]: conventional in-place stores.
async fn apply_diff_unversioned(ctx: &TaskCtx, sh: &Rc<RefCell<UnvShared>>, new_root: usize) {
    let (new_shape, new_root_key) = {
        let s = sh.borrow();
        shape_of(&s.arena, new_root)
    };
    let fresh: Vec<(u32, u32)> = {
        let s = sh.borrow();
        new_shape
            .iter()
            .filter(|(k, _)| !s.phys.contains_key(k))
            .map(|(&k, &(_, _, color))| (k, color))
            .collect()
    };
    for (key, color) in fresh {
        ctx.work(COPY_WORK).await;
        let node = ctx.malloc(NODE_BYTES).await;
        ctx.store_u32(node, key).await;
        ctx.store_u32(node + 4, color).await;
        sh.borrow_mut().phys.insert(key, node);
    }
    type Write = Option<(u32, u32)>; // (address, value)
    let changes: Vec<(Write, Write, Write)> = {
        let s = sh.borrow();
        let va_of = |k: Option<u32>| k.map_or(0, |k| s.phys[&k]);
        new_shape
            .iter()
            .filter_map(|(&key, &(nl, nr, ncolor))| {
                let va = s.phys[&key];
                let old = s.shape.get(&key);
                let lw = (old.map(|o| o.0) != Some(nl)).then(|| (va + 8, va_of(nl)));
                let rw = (old.map(|o| o.1) != Some(nr)).then(|| (va + 12, va_of(nr)));
                let cw = (old.map(|o| o.2) != Some(ncolor)).then_some((va + 4, ncolor));
                (lw.is_some() || rw.is_some() || cw.is_some()).then_some((lw, rw, cw))
            })
            .collect()
    };
    for (lw, rw, cw) in changes {
        for w in [lw, rw, cw].into_iter().flatten() {
            ctx.store_u32(w.0, w.1).await;
        }
    }
    let (old_root_key, root_word) = {
        let s = sh.borrow();
        (s.root_key, s.root_word)
    };
    if old_root_key != new_root_key {
        let va = {
            let s = sh.borrow();
            new_root_key.map_or(0, |k| s.phys[&k])
        };
        ctx.store_u32(root_word, va).await;
    }
    {
        let mut s = sh.borrow_mut();
        let removed: Vec<u32> = s
            .shape
            .keys()
            .filter(|k| !new_shape.contains_key(k))
            .copied()
            .collect();
        for k in removed {
            s.phys.remove(&k);
        }
        s.shape = new_shape;
        s.root_key = new_root_key;
        s.root = new_root;
    }
}

#[cfg(test)]
mod tests {
    use super::persistent::{Arena, NIL};
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::collections::BTreeSet;

    #[test]
    fn persistent_insert_keeps_invariants() {
        let mut a = Arena::default();
        let mut root = NIL;
        for k in 0..200u32 {
            let (nr, ins) = a.insert(root, k.wrapping_mul(0x9e37) % 501);
            root = nr;
            let _ = ins;
            a.check_invariants(root).expect("invariants after insert");
        }
    }

    #[test]
    fn persistent_randomized_against_btreeset() {
        let mut rng = SmallRng::seed_from_u64(99);
        let mut a = Arena::default();
        let mut root = NIL;
        let mut model = BTreeSet::new();
        for step in 0..3000 {
            let k = rng.gen_range(0..200u32);
            if rng.gen_bool(0.5) {
                let (nr, inserted) = a.insert(root, k);
                root = nr;
                assert_eq!(inserted, model.insert(k), "insert {k} at step {step}");
            } else if a.contains(root, k) {
                root = a.delete(root, k);
                assert!(model.remove(&k), "delete {k} at step {step}");
            } else {
                assert!(!model.contains(&k));
            }
            a.check_invariants(root)
                .unwrap_or_else(|e| panic!("step {step}: {e}"));
        }
        let want: Vec<u32> = model.into_iter().collect();
        assert_eq!(a.keys(root), want);
    }

    #[test]
    fn persistent_snapshots_survive_mutation() {
        let mut a = Arena::default();
        let mut root = NIL;
        for k in [5u32, 2, 8, 1, 9] {
            root = a.insert(root, k).0;
        }
        let snapshot = root;
        root = a.delete(root, 5);
        root = a.insert(root, 7).0;
        assert_eq!(a.keys(snapshot), vec![1, 2, 5, 8, 9], "old snapshot intact");
        assert_eq!(a.keys(root), vec![1, 2, 7, 8, 9]);
    }

    fn cfg(initial: usize, ops: usize, rpw: u32) -> DsCfg {
        DsCfg {
            initial,
            ops,
            reads_per_write: rpw,
            scan_range: 0,
            key_space: (initial as u32) * 4,
            seed: 31,
            insert_only: false,
        }
    }

    #[test]
    fn unversioned_sequential_matches_reference() {
        run_unversioned(MachineCfg::paper(1), &cfg(60, 60, 4)).assert_ok();
    }

    #[test]
    fn versioned_parallel_matches_reference() {
        run_versioned(MachineCfg::paper(4), &cfg(60, 60, 4)).assert_ok();
    }

    #[test]
    fn versioned_write_intensive_matches_reference() {
        run_versioned(MachineCfg::paper(8), &cfg(60, 80, 1)).assert_ok();
    }

    #[test]
    fn versioned_scans_match_reference() {
        let mut c = cfg(60, 60, 3);
        c.scan_range = 8;
        run_versioned(MachineCfg::paper(4), &c).assert_ok();
    }

    #[test]
    fn short_hold_beats_long_hold() {
        // The §IV-D ablation: shortening the writer's lock hold helps
        // parallel throughput.
        let c = cfg(80, 96, 1);
        let long = run_versioned_with(MachineCfg::paper(8), &c, LockHold::Long);
        let short = run_versioned_with(MachineCfg::paper(8), &c, LockHold::Short);
        long.assert_ok();
        short.assert_ok();
        assert!(
            short.cycles < long.cycles,
            "short {} vs long {}",
            short.cycles,
            long.cycles
        );
    }

    #[test]
    fn deterministic() {
        let c = cfg(50, 40, 4);
        let a = run_versioned(MachineCfg::paper(4), &c);
        let b = run_versioned(MachineCfg::paper(4), &c);
        assert_eq!(a.cycles, b.cycles);
    }
}
