//! Levenshtein edit distance (§IV-B).
//!
//! The dynamic-programming matrix `D[(n+1) × (m+1)]` is stored in
//! O-structures used as I-structures (one version per cell). Row `i` is one
//! task: it keeps `D[i][j-1]` in a register and loads `D[i-1][j-1]` /
//! `D[i-1][j]` with `LOAD-VERSION`, so row tasks pipeline in a wavefront —
//! row `i` starts as soon as row `i-1` has produced its first cells, the
//! same "direct translation of the sequential code, augmented with
//! versioning" the paper describes.

use std::rc::Rc;

use osim_cpu::{task, Machine, MachineCfg, TaskCtx};

use crate::harness::{self, DsResult};

const IVER: u32 = 1;
/// Instruction budget per DP cell (two compares, one add, a select).
const CELL_WORK: u64 = 8;
const ROW_WORK: u64 = 8;

/// Levenshtein configuration.
#[derive(Debug, Clone, Copy)]
pub struct LevCfg {
    /// String length (paper: 1000).
    pub len: usize,
    /// Input seed.
    pub seed: u32,
}

impl LevCfg {
    /// The paper's configuration: strings of length 1000.
    pub fn paper() -> Self {
        LevCfg { len: 1000, seed: 2 }
    }
}

fn gen_string(cfg: &LevCfg, which: u32) -> Vec<u32> {
    (0..cfg.len as u32)
        .map(|i| {
            let mut x = i ^ which.wrapping_mul(0xdead_beef) ^ cfg.seed.rotate_left(16);
            x = x.wrapping_mul(0x85eb_ca6b);
            x ^= x >> 13;
            x = x.wrapping_mul(0xc2b2_ae35);
            (x >> 13) & 0x7 // 8-letter alphabet: plenty of matches
        })
        .collect()
}

fn reference(cfg: &LevCfg) -> u32 {
    let a = gen_string(cfg, 0);
    let b = gen_string(cfg, 1);
    let n = a.len();
    let mut prev: Vec<u32> = (0..=n as u32).collect();
    let mut cur = vec![0u32; n + 1];
    for i in 1..=n {
        cur[0] = i as u32;
        for j in 1..=n {
            let cost = u32::from(a[i - 1] != b[j - 1]);
            cur[j] = (prev[j] + 1).min(cur[j - 1] + 1).min(prev[j - 1] + cost);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

struct Layout {
    a: u32,
    b: u32,
    /// (len+1)^2 versioned cells, row-major.
    d: u32,
    len: u32,
}

impl Layout {
    fn cell(&self, i: u32, j: u32) -> u32 {
        self.d + 4 * (i * (self.len + 1) + j)
    }
}

/// Row task `i` (1-based): consumes row `i-1`, produces row `i`.
async fn row_task(ctx: TaskCtx, l: Rc<Layout>, i: u32) {
    let n = l.len;
    ctx.work(ROW_WORK).await;
    let ai = ctx.load_u32(l.a + 4 * (i - 1)).await;
    // D[i][0] = i.
    ctx.store_version(l.cell(i, 0), IVER, i).await;
    let mut left = i; // D[i][j-1]
    let mut diag = ctx.load_version(l.cell(i - 1, 0), IVER).await;
    for j in 1..=n {
        let up = ctx.load_version(l.cell(i - 1, j), IVER).await;
        let bj = ctx.load_u32(l.b + 4 * (j - 1)).await;
        ctx.work(CELL_WORK).await;
        let cost = u32::from(ai != bj);
        let v = (up + 1).min(left + 1).min(diag + cost);
        ctx.store_version(l.cell(i, j), IVER, v).await;
        diag = up;
        left = v;
    }
}

fn run_common(mut m: Machine, cfg: &LevCfg, versioned: bool) -> DsResult {
    let n = cfg.len as u32;
    let layout = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        let a = s
            .alloc
            .alloc_data(&mut s.ms, n * 4)
            .expect("simulated RAM exhausted");
        let b = s
            .alloc
            .alloc_data(&mut s.ms, n * 4)
            .expect("simulated RAM exhausted");
        let cells = (n + 1) * (n + 1);
        let d = if versioned {
            let first = s
                .alloc
                .alloc_root(&mut s.ms)
                .expect("simulated RAM exhausted");
            for _ in 1..cells {
                s.alloc
                    .alloc_root(&mut s.ms)
                    .expect("simulated RAM exhausted");
            }
            first
        } else {
            s.alloc
                .alloc_data(&mut s.ms, cells * 4)
                .expect("simulated RAM exhausted")
        };
        Rc::new(Layout { a, b, d, len: n })
    };

    // Population: the strings and the base row D[0][*].
    let (sa, sb) = (gen_string(cfg, 0), gen_string(cfg, 1));
    let l2 = Rc::clone(&layout);
    let versioned2 = versioned;
    m.run_tasks(vec![task(move |ctx| async move {
        for (i, &v) in sa.iter().enumerate() {
            ctx.store_u32(l2.a + 4 * i as u32, v).await;
        }
        for (i, &v) in sb.iter().enumerate() {
            ctx.store_u32(l2.b + 4 * i as u32, v).await;
        }
        for j in 0..=l2.len {
            if versioned2 {
                ctx.store_version(l2.cell(0, j), IVER, j).await;
            } else {
                ctx.store_u32(l2.cell(0, j), j).await;
            }
        }
    })])
    .expect("population");
    m.reset_stats();

    let report = if versioned {
        let tasks = (1..=n)
            .map(|i| {
                let l = Rc::clone(&layout);
                task(move |ctx| row_task(ctx, l, i))
            })
            .collect();
        m.run_tasks(tasks).expect("measurement")
    } else {
        let l = Rc::clone(&layout);
        m.run_tasks(vec![task(move |ctx| async move {
            let n = l.len;
            for i in 1..=n {
                ctx.work(ROW_WORK).await;
                let ai = ctx.load_u32(l.a + 4 * (i - 1)).await;
                ctx.store_u32(l.cell(i, 0), i).await;
                let mut left = i;
                let mut diag = ctx.load_u32(l.cell(i - 1, 0)).await;
                for j in 1..=n {
                    let up = ctx.load_u32(l.cell(i - 1, j)).await;
                    let bj = ctx.load_u32(l.b + 4 * (j - 1)).await;
                    ctx.work(CELL_WORK).await;
                    let cost = u32::from(ai != bj);
                    let v = (up + 1).min(left + 1).min(diag + cost);
                    ctx.store_u32(l.cell(i, j), v).await;
                    diag = up;
                    left = v;
                }
            }
        })])
        .expect("measurement")
    };

    let want = reference(cfg);
    let got = {
        let st = m.state();
        let st = st.borrow();
        let cell = layout.cell(n, n);
        if versioned {
            st.omgr
                .peek_latest(&st.ms, cell, u32::MAX)
                .expect("valid cell")
                .map(|(_, v)| v)
                .unwrap_or(u32::MAX)
        } else {
            st.ms
                .phys
                .read_u32(st.ms.pt.translate_conventional(cell).expect("mapped"))
        }
    };
    let ok = got == want;
    let detail = if ok {
        String::new()
    } else {
        format!("distance {got}, expected {want}")
    };
    harness::collect(&m, report.cycles(), ok, detail)
}

/// Versioned parallel (row-pipelined) Levenshtein.
pub fn run_versioned(mcfg: MachineCfg, cfg: &LevCfg) -> DsResult {
    run_common(Machine::new(mcfg), cfg, true)
}

/// Unversioned sequential baseline.
pub fn run_unversioned(mcfg: MachineCfg, cfg: &LevCfg) -> DsResult {
    run_common(Machine::new(mcfg), cfg, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LevCfg {
        LevCfg { len: 32, seed: 9 }
    }

    #[test]
    fn reference_sanity() {
        // Distance of a string to itself is 0.
        let c = LevCfg { len: 16, seed: 4 };
        let a = gen_string(&c, 0);
        assert_eq!(a.len(), 16);
        // The reference of equal strings would be 0; our two strings differ.
        assert!(reference(&c) > 0);
    }

    #[test]
    fn unversioned_matches_reference() {
        run_unversioned(MachineCfg::paper(1), &small()).assert_ok();
    }

    #[test]
    fn versioned_sequential_matches_reference() {
        run_versioned(MachineCfg::paper(1), &small()).assert_ok();
    }

    #[test]
    fn versioned_parallel_matches_and_scales() {
        let seq = run_versioned(MachineCfg::paper(1), &small());
        let par = run_versioned(MachineCfg::paper(8), &small());
        seq.assert_ok();
        par.assert_ok();
        assert!(
            par.cycles * 2 < seq.cycles,
            "wavefront pipelining: {} vs {}",
            par.cycles,
            seq.cycles
        );
    }

    #[test]
    fn deterministic() {
        let a = run_versioned(MachineCfg::paper(4), &small());
        let b = run_versioned(MachineCfg::paper(4), &small());
        assert_eq!(a.cycles, b.cycles);
    }
}
