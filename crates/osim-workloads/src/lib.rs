//! The paper's evaluation workloads (§IV), implemented against the
//! simulated machine.
//!
//! Regular (versioning-only) workloads:
//!
//! * [`matmul`] — chained dense matrix multiplication, `R = (A×B)×C`, with
//!   the intermediate product in O-structures used as I-structures.
//! * [`levenshtein`] — edit-distance dynamic program; row tasks pipeline on
//!   versioned cells of the previous row.
//!
//! Irregular (versioning + renaming + locking) workloads, each in a
//! versioned parallel variant and an unversioned sequential baseline:
//!
//! * [`linked_list`] — sorted singly-linked list, the Fig. 1 pipeline.
//! * [`btree`] — unbalanced binary search tree, plus the read-write-lock
//!   parallel baseline of the snapshot-isolation study (Fig. 8) and range
//!   scans.
//! * [`hashtable`] — chained hash table with in-order root entry.
//! * [`rbtree`] — red-black tree with a single serialized writer and
//!   snapshot readers.
//!
//! The [`harness`] module generates deterministic operation mixes, replays
//! them on a host-side reference to get the sequential semantics, and
//! checks the simulated run (including every lookup/scan result) against
//! it — the "output identical to a sequential execution" property of
//! §IV-D.
//!
//! Version-id discipline: see [`vers`]. Task ids map to version *slots* of
//! 16, so one task can write a cell several times (red-black rotations),
//! rename cells it passes (hand-over-hand), and never collide with another
//! task's versions.

pub mod btree;
pub mod harness;
pub mod hashtable;
pub mod levenshtein;
pub mod linked_list;
pub mod matmul;
pub mod rbtree;
pub mod vers;

pub use harness::{DsCfg, DsResult, Op, OpResult};
