//! Chained dense matrix multiplication `R = (A × B) × C` (§IV-B).
//!
//! The intermediate product `T = A × B` lives in O-structures used as
//! I-structures (one version per element, version 1): producer tasks
//! compute rows of `T` with `STORE-VERSION`, consumer tasks compute rows of
//! `R` with `LOAD-VERSION`, blocking element-wise until the producer
//! catches up — the fine-grained RAW synchronization of §II-A without any
//! renaming or locking. `A`, `B`, `C` and `R` are conventional arrays.
//!
//! The paper runs 100×100 matrices ("larger workloads could not be
//! simulated in reasonable time" — same here); the dimension is a
//! parameter.

use std::rc::Rc;

use osim_cpu::{task, Machine, MachineCfg, TaskCtx};

use crate::harness::{self, DsResult};

/// Version used for every I-structure element.
const IVER: u32 = 1;
/// Instruction budget for one multiply-accumulate step.
const FMA_WORK: u64 = 4;
/// Instruction budget for per-row loop overhead.
const ROW_WORK: u64 = 8;

/// Matmul configuration.
#[derive(Debug, Clone, Copy)]
pub struct MatmulCfg {
    /// Matrix dimension (paper: 100).
    pub n: usize,
    /// RNG-free deterministic input seed.
    pub seed: u32,
}

impl MatmulCfg {
    /// The paper's configuration: 3 dense 100×100 matrices.
    pub fn paper() -> Self {
        MatmulCfg { n: 100, seed: 1 }
    }
}

fn gen_matrix(cfg: &MatmulCfg, which: u32) -> Vec<u32> {
    let n = cfg.n;
    (0..n * n)
        .map(|i| {
            let x = (i as u32)
                .wrapping_mul(0x9e37_79b9)
                .wrapping_add(cfg.seed.wrapping_mul(which + 1));
            x >> 24 // small values; products stay meaningful mod 2^32
        })
        .collect()
}

/// Host-side reference: `(A × B) × C` with wrapping arithmetic.
fn reference(cfg: &MatmulCfg) -> Vec<u32> {
    let n = cfg.n;
    let a = gen_matrix(cfg, 0);
    let b = gen_matrix(cfg, 1);
    let c = gen_matrix(cfg, 2);
    let mul = |x: &[u32], y: &[u32]| {
        let mut out = vec![0u32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0u32;
                for k in 0..n {
                    acc = acc.wrapping_add(x[i * n + k].wrapping_mul(y[k * n + j]));
                }
                out[i * n + j] = acc;
            }
        }
        out
    };
    mul(&mul(&a, &b), &c)
}

async fn write_matrix(ctx: &TaskCtx, base: u32, m: &[u32]) {
    for (i, &v) in m.iter().enumerate() {
        ctx.store_u32(base + 4 * i as u32, v).await;
    }
}

struct Layout {
    a: u32,
    b: u32,
    c: u32,
    r: u32,
    /// Base va of the n×n versioned cells of T (contiguous root words).
    t: u32,
    n: u32,
}

/// Producer task: row `i` of `T = A × B`, stored element-wise as version 1.
async fn t_row(ctx: TaskCtx, l: Rc<Layout>, i: u32) {
    let n = l.n;
    ctx.work(ROW_WORK).await;
    for j in 0..n {
        let mut acc = 0u32;
        for k in 0..n {
            let av = ctx.load_u32(l.a + 4 * (i * n + k)).await;
            let bv = ctx.load_u32(l.b + 4 * (k * n + j)).await;
            ctx.work(FMA_WORK).await;
            acc = acc.wrapping_add(av.wrapping_mul(bv));
        }
        ctx.store_version(l.t + 4 * (i * n + j), IVER, acc).await;
    }
}

/// Consumer task: row `i` of `R = T × C`, loading T element-wise and
/// blocking until each element has been produced.
async fn r_row(ctx: TaskCtx, l: Rc<Layout>, i: u32) {
    let n = l.n;
    ctx.work(ROW_WORK).await;
    for j in 0..n {
        let mut acc = 0u32;
        for k in 0..n {
            let tv = ctx.load_version(l.t + 4 * (i * n + k), IVER).await;
            let cv = ctx.load_u32(l.c + 4 * (k * n + j)).await;
            ctx.work(FMA_WORK).await;
            acc = acc.wrapping_add(tv.wrapping_mul(cv));
        }
        ctx.store_u32(l.r + 4 * (i * n + j), acc).await;
    }
}

fn run_common(mut m: Machine, cfg: &MatmulCfg, versioned: bool) -> DsResult {
    let n = cfg.n as u32;
    let layout = {
        let st = m.state();
        let mut st = st.borrow_mut();
        let s = &mut *st;
        let words = n * n * 4;
        let a = s
            .alloc
            .alloc_data(&mut s.ms, words)
            .expect("simulated RAM exhausted");
        let b = s
            .alloc
            .alloc_data(&mut s.ms, words)
            .expect("simulated RAM exhausted");
        let c = s
            .alloc
            .alloc_data(&mut s.ms, words)
            .expect("simulated RAM exhausted");
        let r = s
            .alloc
            .alloc_data(&mut s.ms, words)
            .expect("simulated RAM exhausted");
        let t = if versioned {
            let first = s
                .alloc
                .alloc_root(&mut s.ms)
                .expect("simulated RAM exhausted");
            for _ in 1..(n * n) {
                s.alloc
                    .alloc_root(&mut s.ms)
                    .expect("simulated RAM exhausted");
            }
            first
        } else {
            s.alloc
                .alloc_data(&mut s.ms, words)
                .expect("simulated RAM exhausted")
        };
        Rc::new(Layout { a, b, c, r, t, n })
    };

    // Population: write the inputs.
    let (ma, mb, mc) = (gen_matrix(cfg, 0), gen_matrix(cfg, 1), gen_matrix(cfg, 2));
    let l2 = Rc::clone(&layout);
    m.run_tasks(vec![task(move |ctx| async move {
        write_matrix(&ctx, l2.a, &ma).await;
        write_matrix(&ctx, l2.b, &mb).await;
        write_matrix(&ctx, l2.c, &mc).await;
    })])
    .expect("population");
    m.reset_stats();

    let report = if versioned {
        // One task per T row and per R row; the static scheduler interleaves
        // them across cores and versioned loads pipeline R behind T.
        let mut tasks = Vec::with_capacity(2 * cfg.n);
        for i in 0..n {
            let l = Rc::clone(&layout);
            tasks.push(task(move |ctx| t_row(ctx, l, i)));
        }
        for i in 0..n {
            let l = Rc::clone(&layout);
            tasks.push(task(move |ctx| r_row(ctx, l, i)));
        }
        m.run_tasks(tasks).expect("measurement")
    } else {
        // Sequential unversioned: both products in one task.
        let l = Rc::clone(&layout);
        m.run_tasks(vec![task(move |ctx| async move {
            let n = l.n;
            ctx.work(ROW_WORK).await;
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0u32;
                    for k in 0..n {
                        let av = ctx.load_u32(l.a + 4 * (i * n + k)).await;
                        let bv = ctx.load_u32(l.b + 4 * (k * n + j)).await;
                        ctx.work(FMA_WORK).await;
                        acc = acc.wrapping_add(av.wrapping_mul(bv));
                    }
                    ctx.store_u32(l.t + 4 * (i * n + j), acc).await;
                }
            }
            for i in 0..n {
                for j in 0..n {
                    let mut acc = 0u32;
                    for k in 0..n {
                        let tv = ctx.load_u32(l.t + 4 * (i * n + k)).await;
                        let cv = ctx.load_u32(l.c + 4 * (k * n + j)).await;
                        ctx.work(FMA_WORK).await;
                        acc = acc.wrapping_add(tv.wrapping_mul(cv));
                    }
                    ctx.store_u32(l.r + 4 * (i * n + j), acc).await;
                }
            }
        })])
        .expect("measurement")
    };

    // Validate R against the host reference.
    let want = reference(cfg);
    let (ok, detail) = {
        let st = m.state();
        let st = st.borrow();
        let mut ok = true;
        let mut detail = String::new();
        for (i, &w) in want.iter().enumerate() {
            let pa = st
                .ms
                .pt
                .translate_conventional(layout.r + 4 * i as u32)
                .expect("mapped");
            let got = st.ms.phys.read_u32(pa);
            if got != w {
                ok = false;
                detail = format!("R[{i}] = {got}, expected {w}");
                break;
            }
        }
        (ok, detail)
    };
    harness::collect(&m, report.cycles(), ok, detail)
}

/// Versioned parallel matmul chain.
pub fn run_versioned(mcfg: MachineCfg, cfg: &MatmulCfg) -> DsResult {
    run_common(Machine::new(mcfg), cfg, true)
}

/// Unversioned sequential baseline.
pub fn run_unversioned(mcfg: MachineCfg, cfg: &MatmulCfg) -> DsResult {
    run_common(Machine::new(mcfg), cfg, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MatmulCfg {
        MatmulCfg { n: 12, seed: 5 }
    }

    #[test]
    fn unversioned_matches_reference() {
        run_unversioned(MachineCfg::paper(1), &small()).assert_ok();
    }

    #[test]
    fn versioned_sequential_matches_reference() {
        run_versioned(MachineCfg::paper(1), &small()).assert_ok();
    }

    #[test]
    fn versioned_parallel_matches_reference_and_scales() {
        let seq = run_versioned(MachineCfg::paper(1), &small());
        let par = run_versioned(MachineCfg::paper(8), &small());
        seq.assert_ok();
        par.assert_ok();
        assert!(
            par.cycles * 3 < seq.cycles,
            "matmul is data-parallel: {} vs {}",
            par.cycles,
            seq.cycles
        );
    }

    #[test]
    fn versioning_overhead_visible_on_one_core() {
        // §IV-B: single-threaded versioned matmul is notably slower than
        // unversioned (the paper reports about 2.5x).
        let unv = run_unversioned(MachineCfg::paper(1), &small());
        let ver = run_versioned(MachineCfg::paper(1), &small());
        assert!(ver.cycles > unv.cycles);
    }

    #[test]
    fn consumers_block_until_producers_store() {
        let r = run_versioned(MachineCfg::paper(2), &small());
        r.assert_ok();
        // With 2 cores and the T/R task interleaving, at least some R-row
        // loads must have stalled on unproduced T elements.
        assert!(r.cpu.versioned_loads > 0);
    }

    #[test]
    fn deterministic() {
        let a = run_versioned(MachineCfg::paper(4), &small());
        let b = run_versioned(MachineCfg::paper(4), &small());
        assert_eq!(a.cycles, b.cycles);
    }
}
